// Quickstart: one honest PVR round and one Byzantine round, end to end.
//
// Reproduces the paper's Figure-1 scenario: AS A (the prover) has promised
// its customer B to export the shortest route it receives from providers
// N1..N3. The example runs the full protocol over the simulated network —
// signed inputs, bit commitments, gossip, selective reveals, export — first
// with an honest A, then with an A that exports a longer route than it
// should. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "engine/verification_engine.h"

namespace {

using namespace pvr;

bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                     const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

void run_scenario(const char* title, const core::ProverMisbehavior& misbehavior) {
  std::printf("=== %s ===\n", title);

  core::Figure1Setup setup{.seed = 42};
  setup.misbehavior = misbehavior;
  core::Figure1Handles handles = core::make_figure1_world(setup);
  core::Figure1World& world = *handles.world;

  // Providers N1..N3 advertise routes of lengths 4, 2, 6; the promise says
  // B must receive the length-2 one.
  const std::vector<std::size_t> lengths = {4, 2, 6};
  world.sim.schedule(0, [&] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), /*epoch=*/1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
      std::printf("  N%zu (AS%u) provides a %zu-hop route\n", i + 1,
                  world.providers[i], lengths[i]);
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  // Finalize through the verification engine — the default path for
  // simulator-driven rounds (finalize_round is the sequential fallback).
  engine::VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  engine::finalize_world_round(engine, world, handles.round_id(1));

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  const core::Auditor auditor(&handles.keys->directory);
  bool any_violation = false;
  for (const bgp::AsNumber verifier : verifiers) {
    for (const core::Evidence& evidence : world.node(verifier).evidence()) {
      any_violation = true;
      std::printf("  DETECTED: %s\n", evidence.to_string().c_str());
      std::printf("    auditor verdict: %s\n",
                  auditor.validate(evidence) ? "evidence valid (provable)"
                                             : "not third-party provable");
    }
  }

  const auto accepted =
      world.node(world.recipient).accepted_route(handles.round_id(1));
  if (accepted) {
    std::printf("  B accepted: %s\n", accepted->to_string().c_str());
  } else {
    std::printf("  B accepted no route\n");
  }
  if (!any_violation) {
    std::printf("  all PVR checks passed; nothing leaked beyond the promise\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("PVR quickstart: private and verifiable routing (HotNets-X 2011)\n\n");
  run_scenario("Honest prover", {});
  run_scenario("Byzantine prover: exports a non-minimal route",
               {.export_nonminimal = true});
  run_scenario("Byzantine prover: forges bits to match the lie",
               {.export_nonminimal = true, .bits_match_lie = true});
  return 0;
}
