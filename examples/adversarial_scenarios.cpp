// Drives the src/scenario/ harness end to end: generated power-law
// topology, carved-out PVR neighborhoods, jittered traffic, and one
// adversary per named scenario — printing what each attack looked like on
// the wire and how the shipped evidence checks caught it.
//
//   ./example_adversarial_scenarios [--seed=N] [--rounds=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace pvr;

  std::uint64_t seed = 1;
  std::size_t rounds = 60;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::strtoull(argv[i] + 9, nullptr, 10);
    }
  }

  std::printf("adversarial scenario harness (seed %llu, %zu rounds each)\n\n",
              static_cast<unsigned long long>(seed), rounds);
  bool all_caught = true;
  for (const std::string& name : scenario::scenario_names()) {
    const scenario::ScenarioSpec spec =
        scenario::named_scenario(name, seed, rounds);
    const scenario::ScenarioReport report = scenario::run_scenario(spec);
    std::printf("%s (adversary: %s)\n", name.c_str(),
                report.adversary.c_str());
    std::printf("  %zu ASes generated, %zu PVR neighborhoods, %llu rounds "
                "in %llu windows%s\n",
                report.as_count, report.neighborhoods,
                static_cast<unsigned long long>(report.rounds_started),
                static_cast<unsigned long long>(report.windows_fired),
                report.coalesced ? " (arrivals coalesced)" : "");
    std::printf("  detection %.0f%% of %llu attacked rounds, "
                "%llu false accusations, %llu audit failures\n",
                100.0 * report.detection_rate,
                static_cast<unsigned long long>(report.attacked_rounds),
                static_cast<unsigned long long>(report.false_evidence),
                static_cast<unsigned long long>(report.audit_failures));
    std::printf("  %.1f KB on the wire (%.1f KB gossip), %.0f rounds/sec\n\n",
                report.bytes_total / 1024.0, report.bytes_gossip / 1024.0,
                report.rounds_per_sec);
    all_caught = all_caught && report.detection_rate == 1.0 &&
                 report.false_evidence == 0;
  }
  std::printf("%s\n", all_caught
                          ? "every attack caught, nobody framed"
                          : "MISSED ATTACKS OR FALSE EVIDENCE — see above");
  return all_caught ? 0 : 1;
}
