// Internet-scale feasibility: BGP + PVR over a synthetic Gao–Rexford
// AS topology.
//
// Generates a 100-AS customer/provider/peer hierarchy, runs the BGP
// speakers to convergence on the simulated network, then picks a transit
// AS and runs a real PVR round over the candidate routes in its Adj-RIB-In
// — the piggybacking deployment the paper envisions (§3.8). Prints
// convergence and per-round overhead numbers.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bgp/speaker.h"
#include "core/min_protocol.h"

namespace {

using namespace pvr;

}  // namespace

int main() {
  std::printf("PVR on an internet-scale topology\n\n");
  const auto prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

  // 1. Topology.
  crypto::Drbg topo_rng(2026, "internet-scale");
  const bgp::AsGraph graph = bgp::generate_gao_rexford(
      {.as_count = 100, .tier1_count = 5, .extra_provider_probability = 0.35},
      topo_rng);
  std::printf("topology: %zu ASes, %zu links\n", graph.as_count(),
              graph.link_count());

  // 2. BGP to convergence; AS 100 (a stub) originates the prefix.
  net::Simulator sim(1);
  const bgp::AsNumber origin = 100;
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    bgp::SpeakerConfig config{.asn = asn, .graph = &graph};
    if (asn == origin) config.originated = {prefix};
    sim.add_node(asn, std::make_unique<bgp::BgpSpeaker>(std::move(config)));
  }
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    for (const bgp::AsNumber neighbor : graph.neighbors(asn)) {
      if (asn < neighbor) sim.connect(asn, neighbor, {.latency = 2000});
    }
  }
  sim.run();
  std::printf("BGP converged at t=%.1f ms: %llu updates, %llu bytes on the wire\n",
              static_cast<double>(sim.now()) / 1000.0,
              static_cast<unsigned long long>(sim.stats().messages_sent),
              static_cast<unsigned long long>(sim.stats().bytes_sent));
  for (const auto& [channel, stats] : sim.stats().per_channel) {
    std::printf("  %-12s %6llu msgs  %8llu bytes\n", channel.c_str(),
                static_cast<unsigned long long>(stats.messages_sent),
                static_cast<unsigned long long>(stats.bytes_sent));
  }

  // 3. Pick the transit AS with the most candidates for the prefix.
  bgp::AsNumber prover = 0;
  std::size_t best_candidates = 0;
  for (const bgp::AsNumber asn : graph.as_numbers()) {
    const auto& speaker = dynamic_cast<bgp::BgpSpeaker&>(sim.node(asn));
    const std::size_t count = speaker.candidates(prefix).size();
    if (count > best_candidates) {
      best_candidates = count;
      prover = asn;
    }
  }
  auto& speaker = dynamic_cast<bgp::BgpSpeaker&>(sim.node(prover));
  const std::vector<bgp::Route> candidates = speaker.candidates(prefix);
  std::printf("\nprover: AS%u with %zu candidate routes for %s\n", prover,
              candidates.size(), prefix.to_string().c_str());

  // 4. Keys for the prover's neighborhood (1024-bit, per §3.8).
  std::vector<bgp::AsNumber> participants = graph.neighbors(prover);
  participants.push_back(prover);
  crypto::Drbg key_rng(7, "internet-scale-keys");
  const auto t_keys = std::chrono::steady_clock::now();
  const core::AsKeyPairs keys = core::generate_keys(participants, key_rng, 1024);
  std::printf("generated %zu RSA-1024 key pairs in %.2f s\n", keys.directory.size(),
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t_keys).count());

  // 5. One PVR round over the real Adj-RIB-In: each providing neighbor
  //    signs its announcement, the prover commits/reveals/exports.
  const core::ProtocolId id{.prover = prover, .prefix = prefix, .epoch = 1};
  std::map<bgp::AsNumber, std::optional<core::SignedMessage>> inputs;
  for (const bgp::Route& route : candidates) {
    const core::InputAnnouncement announcement{
        .id = id, .provider = route.next_hop, .route = route};
    inputs[route.next_hop] =
        core::sign_message(route.next_hop,
                           keys.private_keys.at(route.next_hop).priv,
                           announcement.encode());
  }

  crypto::Drbg round_rng(3, "internet-scale-round");
  const auto t_round = std::chrono::steady_clock::now();
  const core::ProverResult result = core::run_prover(
      id, core::OperatorKind::kMinimum, inputs, /*max_len=*/16,
      keys.private_keys.at(prover).priv, round_rng, {});
  const double prover_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_round)
          .count();

  std::size_t wire_bytes = result.signed_bundle.encode().size() +
                           result.recipient_reveal.encode().size() +
                           result.export_statement.encode().size();
  for (const auto& [provider, reveal] : result.provider_reveals) {
    wire_bytes += reveal.encode().size();
  }
  std::printf("PVR round: %.2f ms prover CPU, %zu bytes of protocol traffic\n",
              prover_seconds * 1000.0, wire_bytes);

  // 6. Verify as every participating neighbor.
  const auto t_verify = std::chrono::steady_clock::now();
  std::size_t violations = 0;
  for (const auto& [provider, input] : inputs) {
    const auto announcement = core::InputAnnouncement::decode(input->payload);
    const auto it = result.provider_reveals.find(provider);
    violations += core::verify_as_provider(
                      keys.directory, provider, announcement,
                      result.signed_bundle,
                      it == result.provider_reveals.end() ? nullptr : &it->second)
                      .size();
  }
  // Every customer of the prover acts as a recipient B.
  for (const bgp::AsNumber customer : graph.customers_of(prover)) {
    if (!keys.directory.contains(customer)) continue;
    violations += core::verify_as_recipient(keys.directory, customer,
                                            result.signed_bundle,
                                            &result.recipient_reveal,
                                            &result.export_statement)
                      .size();
  }
  const double verify_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_verify)
          .count();
  std::printf("verification across the neighborhood: %.2f ms, %zu violations\n",
              verify_seconds * 1000.0, violations);
  std::printf("\nconclusion: a full PVR round costs a few signatures and "
              "hashes per update\n(paper §3.8), piggybacked on ordinary BGP "
              "convergence.\n");
  return violations == 0 ? 0 : 1;
}
