// Multi-process scenario deployment over loopback TCP (DESIGN.md §13).
//
// The conductor forks N node processes (this same binary re-exec'd with
// --node), runs a named scenario in lockstep over real sockets, and then
// proves the distributed run IS the simulated run:
//
//   1. the distributed report fingerprint equals a pure run_scenario() of
//      the same spec, byte for byte,
//   2. the merged message trace the conductor collected replays through
//      scenario::replay_trace (SimTransport machinery) to the same
//      fingerprint at workers 1, 2, and 8,
//   3. the attack is fully detected with zero false evidence.
//
//   ./example_multiprocess_world [--scenario=NAME] [--seed=N]
//                                [--rounds=N] [--processes=N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/multiprocess.h"
#include "scenario/replay.h"
#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace pvr;

  // Node-process re-exec path (spawned by the conductor, not by hand):
  //   --node <scenario> <seed> <rounds> <index> <processes> <control_port>
  if (argc >= 8 && std::strcmp(argv[1], "--node") == 0) {
    return scenario::run_node_process(
        argv[2], std::strtoull(argv[3], nullptr, 10),
        std::strtoull(argv[4], nullptr, 10),
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10),
        static_cast<std::uint16_t>(std::strtoul(argv[7], nullptr, 10)));
  }

  scenario::MultiprocessOptions options;
  options.self_exe = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      options.scenario = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      options.rounds = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--processes=", 12) == 0) {
      options.processes = std::strtoull(argv[i] + 12, nullptr, 10);
    }
  }

  std::printf("multiprocess deployment: %s, seed %llu, %zu rounds, "
              "%zu node processes + conductor\n",
              options.scenario.c_str(),
              static_cast<unsigned long long>(options.seed), options.rounds,
              options.processes);

  const scenario::MultiprocessResult distributed =
      scenario::run_conductor(options);
  std::printf("  distributed: %llu/%llu attacked rounds detected, "
              "%llu evidence items (%llu false), %zu messages traced\n",
              static_cast<unsigned long long>(
                  distributed.report.detected_rounds),
              static_cast<unsigned long long>(
                  distributed.report.attacked_rounds),
              static_cast<unsigned long long>(
                  distributed.report.evidence_total),
              static_cast<unsigned long long>(
                  distributed.report.false_evidence),
              distributed.trace.entries.size());

  if (distributed.report.detection_rate != 1.0 ||
      distributed.report.false_evidence != 0 ||
      distributed.report.verify_failures != 0) {
    std::printf("FAIL: distributed run missed the attack or fabricated "
                "evidence\n");
    return 1;
  }

  // Parity leg 1: the monolithic simulator run of the same spec.
  const scenario::ScenarioSpec spec = scenario::named_scenario(
      options.scenario, options.seed, options.rounds);
  const scenario::ScenarioReport simulated = scenario::run_scenario(spec);
  if (simulated.fingerprint() != distributed.report.fingerprint()) {
    std::printf("FAIL: distributed fingerprint diverges from the "
                "simulator run\n  sim: %s\n  dist: %s\n",
                simulated.fingerprint().c_str(),
                distributed.report.fingerprint().c_str());
    return 1;
  }
  std::printf("  fingerprint parity: distributed == simulated\n");

  // Parity leg 2: the collected trace replays through the simulator-side
  // machinery to the same fingerprint at every worker count.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const scenario::ScenarioReport replayed =
        scenario::replay_trace(spec, distributed.trace, workers);
    if (replayed.fingerprint() != distributed.report.fingerprint()) {
      std::printf("FAIL: trace replay at %zu workers diverges\n", workers);
      return 1;
    }
  }
  std::printf("  trace replay parity: workers 1, 2, 8 all match\n");
  std::printf("OK\n");
  return 0;
}
