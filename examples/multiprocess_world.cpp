// Multi-process scenario deployment over loopback TCP (DESIGN.md §13).
//
// The conductor forks N node processes (this same binary re-exec'd with
// --node), runs a named scenario in lockstep over real sockets, and then
// proves the distributed run IS the simulated run:
//
//   1. the distributed report fingerprint equals a pure run_scenario() of
//      the same spec, byte for byte,
//   2. the merged message trace the conductor collected replays through
//      scenario::replay_trace (SimTransport machinery) to the same
//      fingerprint at workers 1, 2, and 8,
//   3. the attack is fully detected with zero false evidence,
//   4. the conductor's merged metrics shards (its own delta + every
//      child's) reproduce the single-process run's SIM-domain metrics
//      fingerprint byte for byte (DESIGN.md §14).
//
//   ./example_multiprocess_world [--scenario=NAME] [--seed=N]
//                                [--rounds=N] [--processes=N]
//                                [--trace-out=BASE] [--obs-out=PATH]
//
// --trace-out arms Chrome tracing in every process and stitches the shards
// into BASE.json; --obs-out appends the machine-readable parity row plus
// one obs_snapshot row per rank and the polled stats timeline to PATH
// (the socket-smoke CI artifacts).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "scenario/multiprocess.h"
#include "scenario/replay.h"
#include "scenario/runner.h"

int main(int argc, char** argv) {
  using namespace pvr;

  // Node-process re-exec path (spawned by the conductor, not by hand):
  //   --node <scenario> <seed> <rounds> <index> <processes> <control_port>
  //          <trace_base|->
  // The trailing slot carries the per-process trace base ("-" = tracing
  // off; execl argv cannot carry an empty string).
  if (argc >= 8 && std::strcmp(argv[1], "--node") == 0) {
    std::string trace_base;
    if (argc >= 9 && std::strcmp(argv[8], "-") != 0) trace_base = argv[8];
    return scenario::run_node_process(
        argv[2], std::strtoull(argv[3], nullptr, 10),
        std::strtoull(argv[4], nullptr, 10),
        std::strtoull(argv[5], nullptr, 10),
        std::strtoull(argv[6], nullptr, 10),
        static_cast<std::uint16_t>(std::strtoul(argv[7], nullptr, 10)),
        trace_base);
  }

  scenario::MultiprocessOptions options;
  options.self_exe = argv[0];
  std::string obs_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      options.scenario = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      options.rounds = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--processes=", 12) == 0) {
      options.processes = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      options.trace_base = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--obs-out=", 10) == 0) {
      obs_out = argv[i] + 10;
    }
  }

  std::printf("multiprocess deployment: %s, seed %llu, %zu rounds, "
              "%zu node processes + conductor\n",
              options.scenario.c_str(),
              static_cast<unsigned long long>(options.seed), options.rounds,
              options.processes);

  const scenario::MultiprocessResult distributed =
      scenario::run_conductor(options);
  std::printf("  distributed: %llu/%llu attacked rounds detected, "
              "%llu evidence items (%llu false), %zu messages traced\n",
              static_cast<unsigned long long>(
                  distributed.report.detected_rounds),
              static_cast<unsigned long long>(
                  distributed.report.attacked_rounds),
              static_cast<unsigned long long>(
                  distributed.report.evidence_total),
              static_cast<unsigned long long>(
                  distributed.report.false_evidence),
              distributed.trace.entries.size());

  if (distributed.report.detection_rate != 1.0 ||
      distributed.report.false_evidence != 0 ||
      distributed.report.verify_failures != 0) {
    std::printf("FAIL: distributed run missed the attack or fabricated "
                "evidence\n");
    return 1;
  }

  // Parity leg 1: the monolithic simulator run of the same spec.
  const scenario::ScenarioSpec spec = scenario::named_scenario(
      options.scenario, options.seed, options.rounds);
  const scenario::ScenarioReport simulated = scenario::run_scenario(spec);
  if (simulated.fingerprint() != distributed.report.fingerprint()) {
    std::printf("FAIL: distributed fingerprint diverges from the "
                "simulator run\n  sim: %s\n  dist: %s\n",
                simulated.fingerprint().c_str(),
                distributed.report.fingerprint().c_str());
    return 1;
  }
  std::printf("  fingerprint parity: distributed == simulated\n");

  // Parity leg 4 (DESIGN.md §14): the merged metrics shards — conductor
  // delta + every child's — must carry the exact SIM-domain section the
  // single-process run recorded. Trivially equal (all zeros) under
  // -DPVR_OBS=OFF, byte-identical counters when compiled in.
  const bool obs_parity =
      distributed.merged_obs.sim_fingerprint() == simulated.obs_sim_fingerprint;
  if (!obs_parity) {
    std::printf("FAIL: merged obs shards diverge from the single-process "
                "run\n  sim:  %s\n  dist: %s\n",
                simulated.obs_sim_fingerprint.c_str(),
                distributed.merged_obs.sim_fingerprint().c_str());
    return 1;
  }
  std::printf("  obs aggregation parity: %zu shards merged == single-process "
              "(%zu stats polls)\n",
              distributed.child_obs.size() + 1,
              distributed.stats_timeline.size());
  if (!distributed.merged_trace_path.empty()) {
    std::printf("  merged trace: %s\n", distributed.merged_trace_path.c_str());
  }

  // Machine-readable artifact rows (socket-smoke CI): the parity gate row,
  // one obs_snapshot row per rank, and a per-rank poll summary.
  if (!obs_out.empty()) {
    std::FILE* out = std::fopen(obs_out.c_str(), "w");
    if (out == nullptr) {
      std::printf("FAIL: cannot open --obs-out=%s\n", obs_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\"bench\":\"multiprocess_obs\",\"scenario\":\"%s\","
                 "\"seed\":%llu,\"rounds\":%zu,\"processes\":%zu,"
                 "\"obs_enabled\":%s,\"multiprocess_obs_parity\":%s,"
                 "\"stats_polls\":%zu}\n",
                 options.scenario.c_str(),
                 static_cast<unsigned long long>(options.seed), options.rounds,
                 options.processes, obs::kCompiledIn ? "true" : "false",
                 obs_parity ? "true" : "false",
                 distributed.stats_timeline.size());
    std::fprintf(out,
                 "{\"bench\":\"obs_snapshot\",\"source\":\"multiprocess_"
                 "merged\",\"seed\":%llu,\"obs_enabled\":%s,%s}\n",
                 static_cast<unsigned long long>(options.seed),
                 obs::kCompiledIn ? "true" : "false",
                 distributed.merged_obs.to_json_fields().c_str());
    for (std::size_t rank = 0; rank < distributed.child_obs.size(); ++rank) {
      std::fprintf(out,
                   "{\"bench\":\"obs_snapshot\",\"source\":\"multiprocess_"
                   "rank%zu\",\"rank\":%zu,\"seed\":%llu,\"obs_enabled\":%s,"
                   "%s}\n",
                   rank, rank, static_cast<unsigned long long>(options.seed),
                   obs::kCompiledIn ? "true" : "false",
                   distributed.child_obs[rank].to_json_fields().c_str());
    }
    // Per-rank poll summary: how the live gauges moved over the run.
    for (std::size_t rank = 0; rank < options.processes; ++rank) {
      std::size_t polls = 0;
      long long max_open = 0;
      long long peak_open = 0;
      unsigned long long last_verifies = 0;
      unsigned long long last_sent = 0;
      for (const auto& point : distributed.stats_timeline) {
        if (point.rank != rank) continue;
        polls += 1;
        max_open = std::max<long long>(max_open, point.open_rounds);
        peak_open = std::max<long long>(peak_open, point.peak_open_rounds);
        last_verifies = point.rsa_verifies;
        last_sent = point.messages_sent;
      }
      std::fprintf(out,
                   "{\"bench\":\"obs_stats_poll\",\"rank\":%zu,\"polls\":%zu,"
                   "\"max_open_rounds\":%lld,\"peak_open_rounds\":%lld,"
                   "\"rsa_verifies\":%llu,\"messages_sent\":%llu}\n",
                   rank, polls, max_open, peak_open, last_verifies, last_sent);
    }
    std::fclose(out);
    std::printf("  obs rows: %s\n", obs_out.c_str());
  }

  // Parity leg 2: the collected trace replays through the simulator-side
  // machinery to the same fingerprint at every worker count.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const scenario::ScenarioReport replayed =
        scenario::replay_trace(spec, distributed.trace, workers);
    if (replayed.fingerprint() != distributed.report.fingerprint()) {
      std::printf("FAIL: trace replay at %zu workers diverges\n", workers);
      return 1;
    }
  }
  std::printf("  trace replay parity: workers 1, 2, 8 all match\n");
  std::printf("OK\n");
  return 0;
}
