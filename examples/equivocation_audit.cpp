// Equivocation and the audit trail (§2.3 Evidence / Accuracy).
//
// A Byzantine prover shows different commitment bundles to different
// neighbors. Each bundle is locally self-consistent, so no single verifier
// can tell — but the neighbors gossip the signed bundles (§3.2), the
// conflict surfaces, and the resulting Evidence object convinces a
// third-party auditor using nothing but the prover's own signatures.
// The example then shows the Accuracy half: the same accusation against an
// honest prover fails validation.
#include <cstdio>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "engine/verification_engine.h"

namespace {

using namespace pvr;

bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                     const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

std::vector<core::Evidence> run_world(bool equivocate) {
  core::Figure1Setup setup{.seed = 11, .provider_count = 4};
  if (equivocate) setup.misbehavior = {.equivocate = true};
  core::Figure1Handles handles = core::make_figure1_world(setup);
  core::Figure1World& world = *handles.world;

  world.sim.schedule(0, [&] {
    const std::vector<std::size_t> lengths = {3, 4, 5, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  // Engine-default finalize: all verifiers' checks run through the
  // sharded worker pool, findings land back on each node.
  engine::VerificationEngine engine({.workers = 4}, &handles.keys->directory);
  engine::finalize_world_round(engine, world, handles.round_id(1));

  std::vector<core::Evidence> all;
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  const core::Auditor auditor(&handles.keys->directory);
  for (const bgp::AsNumber verifier : verifiers) {
    for (const core::Evidence& evidence : world.node(verifier).evidence()) {
      std::printf("  %s\n", evidence.to_string().c_str());
      std::printf("    third-party auditor: %s\n",
                  auditor.validate(evidence) ? "CONVINCED" : "rejects");
      all.push_back(evidence);
    }
  }

  // Accuracy: try to frame the prover with doctored evidence.
  if (!all.empty()) {
    core::Evidence framed = all.front();
    framed.messages[1].payload[10] ^= 1;  // tamper with one signed artifact
    std::printf("  tampered copy of the same evidence: auditor %s\n",
                auditor.validate(framed) ? "CONVINCED (BUG!)" : "rejects");
  }
  return all;
}

}  // namespace

int main() {
  std::printf("PVR equivocation audit example\n\n");

  std::printf("Round 1: honest prover (no gossip conflicts expected)\n");
  const auto honest = run_world(false);
  std::printf("  violations detected: %zu\n\n", honest.size());

  std::printf("Round 2: prover equivocates to half its neighbors\n");
  const auto byzantine = run_world(true);
  std::printf("  violations detected: %zu\n", byzantine.size());

  const bool ok = honest.empty() && !byzantine.empty();
  std::printf("\n%s\n", ok ? "equivocation caught; honest round clean"
                           : "UNEXPECTED OUTCOME");
  return ok ? 0 : 1;
}
