// Partial transit: the paper's motivating contract (§1).
//
// "Network A might enter into a 'partial transit' relationship with network
// B and promise to deliver routes from, e.g., European peers in preference
// to other routes." We express that as the Figure-2 route-flow graph — the
// cheap domestic peer N1 is preferred only when strictly shorter, otherwise
// the best of the European peers N2..N4 is exported — and show both halves
// of PVR working on it:
//
//   1. the *structural* half (§3.5–3.7): A commits to the graph in a
//      blinded sparse Merkle tree; B receives structure-only disclosures,
//      rebuilds the visible graph, and statically checks it implements the
//      promise — without learning any input route;
//   2. the *value* half: A evaluates the graph and B checks the exported
//      route against the promise semantics.
#include <cstdio>

#include "core/graph_commitment.h"

namespace {

using namespace pvr;

bgp::Route route_len(std::size_t length, bgp::AsNumber next_hop) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(7000 + i));
  }
  return bgp::Route{.prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = next_hop,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

}  // namespace

int main() {
  std::printf("PVR partial-transit example (Figure 2 of the paper)\n\n");

  const bgp::AsNumber primary = 1;                  // domestic peer N1
  const std::vector<bgp::AsNumber> europeans = {2, 3, 4};  // N2..N4
  const bgp::AsNumber customer = 99;                // B

  // A's committed policy: "some route via N2..N4 unless N1 is shorter".
  const rfg::RouteFlowGraph graph =
      rfg::make_figure2_graph(primary, europeans, customer);
  graph.validate();
  std::printf("route-flow graph: %zu vertices (%zu variables, %zu operators)\n",
              graph.vertex_count(), graph.variable_ids().size(),
              graph.operator_ids().size());

  const core::Promise promise{
      .type = core::PromiseType::kFallbackUnlessPrimaryShorter,
      .subset = {europeans.begin(), europeans.end()},
      .primary = primary};
  std::printf("promise to AS%u: %s\n\n", customer, promise.to_string().c_str());

  // This epoch's inputs: N1 has a 4-hop route; N2 has 3 hops (wins).
  const std::map<rfg::VertexId, rfg::Value> inputs = {
      {rfg::input_variable_id(1), route_len(4, 1)},
      {rfg::input_variable_id(2), route_len(3, 2)},
      {rfg::input_variable_id(3), route_len(5, 3)},
      {rfg::input_variable_id(4), route_len(6, 4)},
  };
  const auto values = graph.evaluate(inputs);
  const rfg::Value& exported = values.at(rfg::kOutputVariableId);
  std::printf("A evaluates: exported route = %s\n",
              exported ? exported->to_string().c_str() : "(none)");

  // Commit: one blinded sparse-MHT root covers the whole graph + values.
  crypto::Drbg rng(7, "partial-transit");
  const core::GraphCommitment commitment(graph, values, rng);
  std::printf("commitment root: %s...\n",
              crypto::digest_hex(commitment.root()).substr(0, 16).c_str());

  // Access policy for B: structure everywhere, operator types, the output
  // value — but NOT the input route values.
  rfg::AccessPolicy policy;
  for (const rfg::VertexId& id : graph.variable_ids()) {
    policy.grant(customer, id, rfg::Component::kPredecessors);
    policy.grant(customer, id, rfg::Component::kSuccessors);
  }
  for (const rfg::VertexId& id : graph.operator_ids()) {
    policy.grant_all(customer, id);
  }
  policy.grant(customer, rfg::kOutputVariableId, rfg::Component::kPayload);

  // B pulls disclosures and rebuilds what it may see.
  core::DisclosedGraph view;
  std::size_t disclosure_bytes = 0;
  for (const rfg::VertexId& id : graph.variable_ids()) {
    const auto disclosure = commitment.disclose(id, customer, policy);
    disclosure_bytes += disclosure.proof.byte_size();
    if (!view.add(commitment.root(), disclosure)) {
      std::printf("  disclosure for %s FAILED verification!\n", id.c_str());
      return 1;
    }
  }
  for (const rfg::VertexId& id : graph.operator_ids()) {
    const auto disclosure = commitment.disclose(id, customer, policy);
    disclosure_bytes += disclosure.proof.byte_size();
    if (!view.add(commitment.root(), disclosure)) {
      std::printf("  disclosure for %s FAILED verification!\n", id.c_str());
      return 1;
    }
  }
  std::printf("B verified %zu disclosures (%zu proof bytes total)\n",
              view.size(), disclosure_bytes);

  // Structural check: does the committed policy implement the promise?
  std::printf("structural check (promise implemented by committed graph): %s\n",
              view.implements_promise(promise, customer) ? "PASS" : "FAIL");

  // Confidentiality: B cannot read the hidden inputs.
  const bool leak = view.variable_value(rfg::input_variable_id(1)).has_value() ||
                    view.variable_value(rfg::input_variable_id(2)).has_value();
  std::printf("input route values visible to B: %s\n", leak ? "YES (BUG)" : "no");

  // Value check: the disclosed output matches the promise semantics.
  const auto output_view = view.variable_value(rfg::kOutputVariableId);
  core::Promise::Inputs semantic_inputs;
  for (const auto& [id, value] : inputs) {
    semantic_inputs[graph.variable(id).neighbor] = value;
  }
  const bool kept = output_view.has_value() &&
                    promise.holds(semantic_inputs, *output_view);
  std::printf("promise semantics on the disclosed output: %s\n",
              kept ? "KEPT" : "VIOLATED");
  return kept && !leak ? 0 : 1;
}
