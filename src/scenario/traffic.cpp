#include "scenario/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/drbg.h"

namespace pvr::scenario {

namespace {

// Exponential draw with the given mean, floored at 1 µs so arrivals always
// advance simulated time.
[[nodiscard]] net::SimTime exponential(crypto::Drbg& rng, double mean_us) {
  const double u = rng.uniform_unit();
  const double draw = -mean_us * std::log(1.0 - u);
  return std::max<net::SimTime>(1, static_cast<net::SimTime>(draw));
}

}  // namespace

bgp::Ipv4Prefix round_prefix(std::size_t round_index) {
  // 10.H.L.0/24: 65536 distinct prefixes before wrapping.
  const auto index = static_cast<std::uint32_t>(round_index & 0xFFFFu);
  return bgp::Ipv4Prefix(0x0A000000u | (index << 8), 24);
}

std::vector<RoundArrival> generate_arrivals(const TrafficParams& params,
                                            std::size_t neighborhoods,
                                            std::size_t total_rounds,
                                            std::uint64_t seed) {
  if (neighborhoods == 0) {
    throw std::invalid_argument("generate_arrivals: no neighborhoods");
  }
  crypto::Drbg rng(seed, "scenario-traffic");
  std::vector<RoundArrival> arrivals;
  arrivals.reserve(total_rounds);

  net::SimTime clock = 1000;  // leave t=0 for node startup
  std::size_t in_burst = 0;
  for (std::size_t r = 0; r < total_rounds; ++r) {
    switch (params.process) {
      case ArrivalProcess::kUniform:
        clock += std::max<net::SimTime>(
            1, static_cast<net::SimTime>(params.mean_interarrival_us));
        break;
      case ArrivalProcess::kPoisson:
        clock += exponential(rng, params.mean_interarrival_us);
        break;
      case ArrivalProcess::kBursty:
        // burst_size arrivals share one nominal instant (their spread comes
        // from the per-round jitter), then an exponential gap.
        if (in_burst == 0) clock += exponential(rng, params.mean_interarrival_us);
        in_burst = (in_burst + 1) % std::max<std::size_t>(1, params.burst_size);
        break;
    }
    const net::SimTime jitter =
        params.start_jitter_us == 0 ? 0 : rng.uniform(params.start_jitter_us);
    arrivals.push_back(RoundArrival{
        .neighborhood = r % neighborhoods,
        .prefix = round_prefix(r / neighborhoods),
        .epoch = params.rounds_per_epoch == 0 ? 1
                                              : 1 + r / params.rounds_per_epoch,
        .at = clock + jitter});
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const RoundArrival& a, const RoundArrival& b) {
                     return a.at < b.at;
                   });
  return arrivals;
}

}  // namespace pvr::scenario
