#include "scenario/runner.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "core/verify_context.h"
#include "engine/verification_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/world.h"

namespace pvr::scenario {

namespace {

[[nodiscard]] double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-hood node pointers, resolved ONCE at world-build time. The pre-PR-5
// runner re-did a dynamic_cast<core::PvrNode&> inside every hot scheduling
// lambda (per provider input, per start_round) and again per verifier at
// verification and scoring time; the cached pointers make those paths a
// plain indexed load (measured in bench_scenarios' rounds_per_sec).
struct HoodNodes {
  core::PvrNode* prover = nullptr;
  std::vector<core::PvrNode*> providers;  // Neighborhood::providers order
  std::vector<core::PvrNode*> verifiers;  // Neighborhood::verifiers() order
  std::vector<core::PvrNode*> members;    // prover + verifiers
};

}  // namespace

std::string ScenarioReport::fingerprint() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "%s|%s|seed=%" PRIu64 "|ases=%zu|hoods=%zu|nodes=%zu|started=%" PRIu64
      "|windows=%" PRIu64 "|coalesced=%d|attacked=%" PRIu64
      "|detected=%" PRIu64 "|evidence=%" PRIu64 "|false=%" PRIu64
      "|audit_fail=%" PRIu64 "|in=%" PRIu64 "|bundle=%" PRIu64
      "|gossip=%" PRIu64 "|reveal=%" PRIu64 "|total=%" PRIu64
      "|gossip_msgs=%" PRIu64,
      scenario.c_str(), adversary.c_str(), seed, as_count, neighborhoods,
      pvr_nodes, rounds_started, windows_fired, coalesced ? 1 : 0,
      attacked_rounds, detected_rounds, evidence_total, false_evidence,
      audit_failures, bytes_input, bytes_bundle, bytes_gossip,
      bytes_reveal_export, bytes_total, gossip_messages);
  return buffer;
}

std::string ScenarioReport::to_json_line() const {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"scenarios\",\"scenario\":\"%s\",\"adversary\":\"%s\","
      "\"seed\":%" PRIu64 ",\"workers\":%zu,\"as_count\":%zu,"
      "\"neighborhoods\":%zu,\"rounds_started\":%" PRIu64
      ",\"windows_fired\":%" PRIu64 ",\"coalesced\":%s,"
      "\"attacked_rounds\":%" PRIu64 ",\"detected_rounds\":%" PRIu64
      ",\"detection_rate\":%.4f,\"evidence_total\":%" PRIu64
      ",\"false_evidence\":%" PRIu64 ",\"audit_failures\":%" PRIu64
      ",\"verify_failures\":%" PRIu64 ",\"online\":%s"
      ",\"peak_open_rounds\":%" PRIu64 ",\"drain_batches\":%" PRIu64
      ",\"p50_settle_us\":%" PRIu64 ",\"p99_settle_us\":%" PRIu64
      ",\"rsa_verifies\":%" PRIu64 ",\"sig_cache_hits\":%" PRIu64
      ",\"world_cache_hits\":%" PRIu64
      ",\"bytes_total\":%" PRIu64 ",\"bytes_gossip\":%" PRIu64
      ",\"gossip_messages\":%" PRIu64 ",\"peak_root_digests\":%" PRIu64
      ",\"hw_threads\":%zu,\"sim_ms\":%.1f,\"verify_ms\":%.1f"
      ",\"wall_ms\":%.1f,\"pipeline_overlap_ratio\":%.4f"
      ",\"rounds_per_sec\":%.1f}",
      scenario.c_str(), adversary.c_str(), seed, workers, as_count,
      neighborhoods, rounds_started, windows_fired, coalesced ? "true" : "false",
      attacked_rounds, detected_rounds, detection_rate, evidence_total,
      false_evidence, audit_failures, verify_failures,
      online ? "true" : "false", peak_open_rounds, drain_batches,
      p50_settle_us, p99_settle_us, rsa_verifies, sig_cache_hits,
      world_cache_hits, bytes_total,
      bytes_gossip, gossip_messages, peak_root_digests, hw_threads, sim_ms,
      verify_ms, wall_ms, pipeline_overlap_ratio, rounds_per_sec);
  return buffer;
}

ScenarioReport run_scenario(const ScenarioSpec& spec,
                            net::MessageTrace* record) {
  if (spec.online && spec.drain_interval_us == 0) {
    throw std::invalid_argument(
        "run_scenario: online mode needs a nonzero drain_interval_us");
  }
  ScenarioReport report;
  report.scenario = spec.name;
  report.adversary = spec.adversary;
  report.seed = spec.seed;
  report.workers = spec.workers;
  report.online = spec.online;

  // Crypto profile baseline: the report's rsa_verifies/sig_cache_hits are
  // this run's delta of the process-wide counters (scenario runs are
  // sequential within a process). Both stay 0 under -DPVR_OBS=OFF.
  const obs::HotMetrics& hot = obs::MetricsRegistry::global().hot;
  const std::uint64_t rsa_verifies_before = hot.crypto_rsa_verifies.value();
  const std::uint64_t cache_hits_before = hot.crypto_sig_cache_hits.value();
  const std::uint64_t world_hits_before = hot.crypto_world_cache_hits.value();
  // Settle latencies aggregate through a local histogram so the report
  // carries them in BOTH obs build flavors (the global scenario.settle_us
  // histogram additionally feeds obs snapshots when hooks are compiled in).
  obs::Histogram settle_hist;

  // 1–3. The deterministic world plan: topology, neighborhoods, adversary,
  // keys, link latencies, and the jittered round schedule — shared with the
  // trace replayer and the multiprocess conductor, which must re-derive the
  // identical world (world.h).
  WorldPlan plan = plan_world(spec);
  const std::vector<Neighborhood>& hoods = plan.hoods;
  report.as_count = plan.topology.graph.as_count();
  report.neighborhoods = hoods.size();
  report.pvr_nodes = plan.participants.size();

  // 4. World: one PvrNode per participant, star + verifier-mesh links with
  // the planned jittered latencies. Node pointers are resolved here, once —
  // the scheduling lambdas, the verification loops, and the scoring pass
  // below all reuse them instead of re-running a dynamic_cast per event.
  net::Simulator sim(spec.seed);
  net::Transport& transport = sim.transport();
  if (record != nullptr) sim.set_trace(record);
  // The world-shared verification context: every node and engine worker
  // verifies through it, sharing per-key Montgomery precompute and (when
  // spec.world_sig_cache) the verified-signature cache. Verdicts match the
  // per-directory context exactly, so the fingerprint cannot see it.
  const core::VerifyContext world_ctx(&plan.keys.directory,
                                      spec.world_sig_cache);
  std::vector<HoodNodes> hood_nodes(hoods.size());
  for (std::size_t h = 0; h < hoods.size(); ++h) {
    const Neighborhood& hood = hoods[h];
    const auto add_node = [&](bgp::AsNumber asn,
                              core::PvrRole role) -> core::PvrNode* {
      core::PvrConfig cfg = plan.node_config(spec, h, asn, role);
      cfg.verify_ctx = &world_ctx;
      auto node = std::make_unique<core::PvrNode>(std::move(cfg));
      core::PvrNode* raw = node.get();
      sim.add_node(asn, std::move(node));
      return raw;
    };
    HoodNodes& nodes = hood_nodes[h];
    nodes.prover = add_node(hood.prover, core::PvrRole::kProver);
    core::PvrNode* recipient = add_node(hood.recipient, core::PvrRole::kRecipient);
    for (const bgp::AsNumber provider : hood.providers) {
      nodes.providers.push_back(add_node(provider, core::PvrRole::kProvider));
    }
    // Same order as Neighborhood::verifiers(): providers, then recipient.
    nodes.verifiers = nodes.providers;
    nodes.verifiers.push_back(recipient);
    nodes.members = nodes.verifiers;
    nodes.members.push_back(nodes.prover);
  }
  for (const PlannedLink& link : plan.links) {
    sim.connect(link.a, link.b, link.config);
  }
  plan.adversary->install(transport, hoods, plan.attacked, spec.seed);

  // 5. Jittered round traffic, scheduled in the plan's canonical order so
  // same-time events keep their historical sequence tiebreak.
  for (const AppEvent& event : plan.app_events) {
    if (event.is_input) {
      core::PvrNode* provider_node =
          hood_nodes[event.hood].providers[event.provider_index];
      sim.schedule(event.at, [&transport, provider_node, event] {
        provider_node->provide_input(
            transport, event.epoch, event.prefix,
            provider_route(event.prefix, event.actor, event.route_length));
      });
    } else {
      core::PvrNode* prover_node = hood_nodes[event.hood].prover;
      sim.schedule(event.at, [&transport, prover_node, event] {
        prover_node->start_round(transport, event.epoch, event.prefix);
      });
    }
  }

  // 6. Engine-backed verification. Offline: run to quiescence, submit every
  // round, one drain. Online (the paper's deployment model): each prover's
  // window-close event queues its rounds; once a round's settle horizon has
  // passed, a periodic in-simulation drain submits it to the long-lived
  // engine, folds the findings back, and GCs the settled state — so memory
  // tracks concurrently-open windows, not trace length. Either way the
  // engine drains with rethrow_errors = false: a round whose closure threw
  // is COUNTED (report.verify_failures, gated nonzero-fatal by the bench
  // and CI) instead of silently discarded like the pre-PR-5
  // `(void)engine.drain()` — or, worse, aborting the whole trace.
  engine::VerificationEngine engine({.workers = spec.workers}, &world_ctx);
  const bool pipelined = spec.online && spec.pipelined;
  double verify_blocked_ms = 0;  // sim-thread wall time spent on verification
  double overlapped_ms = 0;      // fold time that overlapped the simulation
  double fold_window_ms = 0;     // total async fold window across batches

  struct SettledEntry {
    net::SimTime settled_at = 0;
    std::size_t hood = 0;
    core::ProtocolId id;
  };
  std::deque<SettledEntry> pending;  // window-close order == settle order
  // The two-slot batch buffer (DESIGN.md §12): `batch` is the slot being
  // gathered and sealed this tick; `inflight` is the previous batch, owned
  // by the engine's workers until the next tick harvests it. Entries are
  // immutable after sealing — the engine verifies over the shared_ptr
  // RoundState snapshots defer_finalize_checks took at submit time, so the
  // simulator mutating live node state in between cannot race the checks.
  std::vector<SettledEntry> batch;
  std::vector<SettledEntry> inflight;
  bool inflight_active = false;

  // Rounds left to harvest per (hood, epoch): when the count hits zero,
  // every round of the epoch is past its settle horizon AND harvested, so
  // the epoch's seen-root dedup digests retire (gc_epoch_roots).
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t>
      epoch_rounds_left;
  if (spec.online) {
    for (const RoundArrival& arrival : plan.arrivals) {
      epoch_rounds_left[{arrival.neighborhood, arrival.epoch}] += 1;
    }
  }

  const net::SimTime settle_horizon =
      spec.settle_horizon_us != 0
          ? spec.settle_horizon_us
          : settle_horizon_for(spec, *plan.adversary, [&] {
              std::size_t most = 0;
              for (const Neighborhood& hood : hoods) {
                most = std::max(most, hood.providers.size() + 1);
              }
              return most;
            }());

  const auto consume_report = [&](const engine::EngineReport& drained) {
    report.verify_failures += drained.failed_rounds;
    report.drain_batches += 1;
    overlapped_ms += drained.overlapped_ms;
    fold_window_ms += drained.verify_wall_ms;
  };

  // Harvest the in-flight batch: collect() applies its folded findings to
  // the nodes (one tick after submission), then the settled state is GC'd
  // and fully-harvested epochs retire their root-dedup digests.
  const auto harvest = [&] {
    if (!inflight_active) return;
    const double t0 = now_ms();
    const obs::TraceSpan span("scenario.harvest", "scenario");
    consume_report(engine.collect(/*rethrow_errors=*/false));
    for (const SettledEntry& entry : inflight) {
      for (core::PvrNode* member : hood_nodes[entry.hood].members) {
        (void)member->gc_finalized(entry.id);
      }
      const auto left = epoch_rounds_left.find({entry.hood, entry.id.epoch});
      if (left != epoch_rounds_left.end() && --left->second == 0) {
        // The settle horizon bounds gossip chains AND the adversary's
        // replay lag, so with every round of this (hood, epoch) harvested,
        // no message referencing the epoch's roots can still arrive — a
        // late replay after this retirement would miss the dedup and
        // re-create round state, which the fingerprint-parity gates would
        // catch (same empirical enforcement as the horizon itself).
        const bgp::AsNumber prover = hoods[entry.hood].prover;
        for (core::PvrNode* member : hood_nodes[entry.hood].members) {
          (void)member->gc_epoch_roots(prover, entry.id.epoch);
        }
        epoch_rounds_left.erase(left);
      }
    }
    inflight.clear();
    inflight_active = false;
    verify_blocked_ms += now_ms() - t0;
  };

  // Gather every settled round and seal them as the next batch: submit all
  // verifier rounds, then begin_drain hands the batch to the workers
  // WITHOUT blocking (pipelined mode harvests it next tick).
  const auto submit_settled = [&](bool flush_all) {
    batch.clear();
    while (!pending.empty() &&
           (flush_all || pending.front().settled_at <= sim.now())) {
      batch.push_back(pending.front());
      pending.pop_front();
    }
    if (batch.empty()) return;
    const double t0 = now_ms();
    const obs::TraceSpan flush_span("scenario.drain_flush", "scenario");
    obs::TraceWriter& tracer = obs::TraceWriter::global();
    for (const SettledEntry& entry : batch) {
      for (core::PvrNode* verifier : hood_nodes[entry.hood].verifiers) {
        (void)engine.submit_node_round(*verifier, entry.id);
      }
      // Settle latency in SIM time, recorded at SUBMISSION: the round's
      // window closed at settled_at - settle_horizon and this tick is when
      // its verification was sealed. Identical at any worker count (the
      // drain schedule is simulated) and identical pipelined or not — the
      // harvest landing one tick later must not widen the gated quantiles.
      const net::SimTime close_at = entry.settled_at - settle_horizon;
      const std::uint64_t latency =
          static_cast<std::uint64_t>(sim.now() - close_at);
      settle_hist.record(latency);
      PVR_OBS_RECORD(scenario_settle_us, latency);
      if (tracer.active()) {
        tracer.sim_span("round.settle", entry.hood,
                        static_cast<std::uint64_t>(close_at),
                        static_cast<std::uint64_t>(sim.now()));
      }
    }
    engine.begin_drain();
    inflight.swap(batch);
    inflight_active = true;
    verify_blocked_ms += now_ms() - t0;
  };

  if (spec.online) {
    report.settle_horizon_us = settle_horizon;
    for (std::size_t h = 0; h < hoods.size(); ++h) {
      const bgp::AsNumber prover = hoods[h].prover;
      hood_nodes[h].prover->set_window_close_handler(
          [&sim, &pending, settle_horizon, h, prover](
              std::uint64_t epoch, const std::vector<bgp::Ipv4Prefix>& prefixes) {
            const net::SimTime settled_at = sim.now() + settle_horizon;
            for (const bgp::Ipv4Prefix& prefix : prefixes) {
              pending.push_back(SettledEntry{
                  .settled_at = settled_at,
                  .hood = h,
                  .id = core::ProtocolId{
                      .prover = prover, .prefix = prefix, .epoch = epoch}});
            }
          });
    }
    if (pipelined) {
      // Pipelined tick: harvest batch N (findings applied one tick late),
      // then seal batch N+1 — the workers verify it while the simulator
      // advances toward the next tick.
      sim.schedule_periodic(spec.drain_interval_us, [&] {
        harvest();
        submit_settled(false);
      });
    } else {
      // Synchronous A/B schedule (pre-pipelining): seal and immediately
      // harvest inside one tick — blocking engine.drain semantics.
      sim.schedule_periodic(spec.drain_interval_us, [&] {
        submit_settled(false);
        harvest();
      });
    }
  }

  // Distributed-parity baseline (DESIGN.md §14): everything from here to the
  // end of scoring is the work the multiprocess deployment shards across the
  // conductor and its children. The delta's SIM-domain fingerprint is the
  // single-process reference merged_obs must reproduce; world planning and
  // key generation above run identically in EVERY process, so the delta
  // excludes them on both sides.
  const obs::MetricsSnapshot obs_baseline =
      obs::MetricsRegistry::global().snapshot();

  const double t_sim = now_ms();
  {
    const obs::TraceSpan sim_span("scenario.sim_run", "scenario");
    sim.run();
  }
  // Drain work ran interleaved on this thread; subtract the blocked share.
  report.sim_ms = now_ms() - t_sim - verify_blocked_ms;

  if (spec.online) {
    // Tail barrier: harvest whatever the final tick left in flight, then
    // flush the rounds whose settle horizon outlived the trace (plus any
    // final partial batch) and harvest those too. The simulator is
    // quiescent, so these submit against exactly the state the offline
    // path would have seen — after this barrier, online == offline.
    report.harvest_pending_at_end = inflight_active;
    harvest();
    submit_settled(true);
    harvest();
  } else {
    const double t_verify = now_ms();
    for (const RoundArrival& arrival : plan.arrivals) {
      const Neighborhood& hood = hoods[arrival.neighborhood];
      const core::ProtocolId id{.prover = hood.prover,
                                .prefix = arrival.prefix,
                                .epoch = arrival.epoch};
      for (core::PvrNode* verifier : hood_nodes[arrival.neighborhood].verifiers) {
        (void)engine.submit_node_round(*verifier, id);
      }
    }
    consume_report(engine.drain(/*rethrow_errors=*/false));
    verify_blocked_ms += now_ms() - t_verify;
  }
  report.wall_ms = now_ms() - t_sim;
  report.verify_ms = verify_blocked_ms + overlapped_ms;
  report.pipeline_overlap_ratio =
      fold_window_ms > 0 ? overlapped_ms / fold_window_ms : 0.0;

  // 7. Score: the canonical pass shared with replay and the multiprocess
  // conductor (world.h) — identical evidence logs in identical order must
  // score identically wherever they were produced.
  score_evidence(plan,
                 [&hood_nodes](std::size_t h, std::size_t v)
                     -> const std::vector<core::Evidence>& {
                   return hood_nodes[h].verifiers[v]->evidence();
                 },
                 report);

  for (const HoodNodes& nodes : hood_nodes) {
    report.rounds_started += nodes.prover->rounds_started();
    report.windows_fired += nodes.prover->windows_fired();
    for (const core::PvrNode* member : nodes.members) {
      report.peak_open_rounds =
          std::max(report.peak_open_rounds,
                   static_cast<std::uint64_t>(member->peak_open_rounds()));
      report.peak_root_digests = std::max(
          report.peak_root_digests,
          static_cast<std::uint64_t>(member->peak_seen_root_digests()));
      report.final_root_epochs =
          std::max(report.final_root_epochs,
                   static_cast<std::uint64_t>(member->seen_root_epochs()));
    }
  }
  report.coalesced = report.windows_fired < report.rounds_started;

  fill_byte_accounting(sim.stats(), report);

  // Finalize the recorded trace: identity, the run's wire stats, and the
  // per-prover round counters replay_trace() reports instead of replaying
  // the provers' dynamic window machinery (DESIGN.md §13).
  if (record != nullptr) {
    sim.set_trace(nullptr);
    record->scenario = spec.name;
    record->seed = spec.seed;
    record->backend = "sim";
    record->stats = sim.stats();
    record->provers.clear();
    for (std::size_t h = 0; h < hoods.size(); ++h) {
      record->provers.push_back(net::TraceProverMeta{
          .node = hoods[h].prover,
          .rounds_started = hood_nodes[h].prover->rounds_started(),
          .windows_fired = hood_nodes[h].prover->windows_fired()});
    }
  }

  report.p50_settle_us = settle_hist.quantile(0.5);
  report.p99_settle_us = settle_hist.quantile(0.99);
  report.rsa_verifies = hot.crypto_rsa_verifies.value() - rsa_verifies_before;
  report.sig_cache_hits =
      hot.crypto_sig_cache_hits.value() - cache_hits_before;
  report.world_cache_hits =
      hot.crypto_world_cache_hits.value() - world_hits_before;

  // Throughput over MEASURED elapsed time: with pipelining, wall_ms can be
  // less than sim_ms + verify_ms (the overlapped share is counted in both),
  // and the rate should credit that overlap.
  report.hw_threads = std::thread::hardware_concurrency();
  report.rounds_per_sec =
      report.wall_ms <= 0.0 ? 0.0
                            : static_cast<double>(report.rounds_started) /
                                  (report.wall_ms / 1000.0);

  report.obs_sim_fingerprint =
      obs::MetricsSnapshot::delta(obs::MetricsRegistry::global().snapshot(),
                                  obs_baseline)
          .sim_fingerprint();
  return report;
}

std::vector<std::string> scenario_names() {
  return {"equivocation_storm", "batch_split_evasion", "drop_replay_chaos"};
}

ScenarioSpec named_scenario(std::string_view name, std::uint64_t seed,
                            std::size_t rounds) {
  ScenarioSpec spec;
  spec.name = std::string(name);
  spec.seed = seed;
  spec.rounds = rounds;
  spec.topology.as_count = 1200;
  spec.neighborhoods = 6;
  if (name == "equivocation_storm") {
    // Dense Poisson arrivals against a deadline five times the collection
    // window: THE workload that finally coalesces staggered start_round
    // arrivals into shared aggregation windows.
    spec.adversary = "equivocator";
    spec.traffic.process = ArrivalProcess::kPoisson;
    spec.traffic.mean_interarrival_us = 1200;
    spec.batch_deadline = 20'000;
    return spec;
  }
  if (name == "batch_split_evasion") {
    // Bursts land several prefixes per neighborhood in one window; the
    // prover answers each burst with TWO signed windows claiming the same
    // prefixes (no shared batch number to pair on).
    spec.adversary = "batch_split";
    spec.traffic.process = ArrivalProcess::kBursty;
    spec.traffic.burst_size = 18;
    spec.traffic.mean_interarrival_us = 25'000;
    spec.batch_deadline = 15'000;
    return spec;
  }
  if (name == "drop_replay_chaos") {
    // Equivocating provers behind a hostile wire: gossip selectively
    // dropped, delayed, and stale roots replayed with reset hop counts.
    spec.adversary = "delay_replay";
    spec.traffic.process = ArrivalProcess::kPoisson;
    spec.traffic.mean_interarrival_us = 2000;
    spec.batch_deadline = 12'000;
    return spec;
  }
  throw std::invalid_argument("named_scenario: unknown scenario '" +
                              std::string(name) + "'");
}

}  // namespace pvr::scenario
