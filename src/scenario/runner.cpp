#include "scenario/runner.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/bundle_aggregation.h"
#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "crypto/sha256.h"
#include "engine/verification_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::scenario {

namespace {

// The runner's link latencies are drawn from [kMinLatency, kMaxLatency);
// collect_window must exceed kMaxLatency so a provider input sent at the
// prover's start instant still lands inside the collection window.
constexpr net::SimTime kMinLatency = 500;
constexpr net::SimTime kMaxLatency = 1500;

[[nodiscard]] double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Evidence is self-contained signed artifacts; recovering which rounds an
// item covers means decoding them. A bundle/reveal/export names its round
// exactly; an aggregation root names (prover, epoch) plus every claimed
// prefix. Decoding failures are expected (each payload matches exactly one
// schema) and simply contribute nothing.
void append_covered_rounds(const core::Evidence& item,
                           std::vector<core::ProtocolId>& out) {
  for (const core::SignedMessage& message : item.messages) {
    try {
      out.push_back(core::CommitmentBundle::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      const core::AggregatedBundle root =
          core::AggregatedBundle::decode(message.payload);
      for (const bgp::Ipv4Prefix& prefix : root.prefixes) {
        out.push_back(core::ProtocolId{
            .prover = root.prover, .prefix = prefix, .epoch = root.epoch});
      }
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::RevealToProvider::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::RevealToRecipient::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::ExportStatement::decode(message.payload).id);
    } catch (const std::out_of_range&) {
    }
  }
}

// Liveness classes are detectable but not third-party provable; everything
// else must convince the Auditor (audit_failures counts the exceptions).
[[nodiscard]] bool auditor_provable(core::ViolationKind kind) {
  return kind != core::ViolationKind::kMissingReveal &&
         kind != core::ViolationKind::kBadSignature;
}

[[nodiscard]] bgp::Route provider_route(const bgp::Ipv4Prefix& prefix,
                                        bgp::AsNumber provider,
                                        std::size_t length) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(provider);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(60000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = provider,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// Per-hood node pointers, resolved ONCE at world-build time. The pre-PR-5
// runner re-did a dynamic_cast<core::PvrNode&> inside every hot scheduling
// lambda (per provider input, per start_round) and again per verifier at
// verification and scoring time; the cached pointers make those paths a
// plain indexed load (measured in bench_scenarios' rounds_per_sec).
struct HoodNodes {
  core::PvrNode* prover = nullptr;
  std::vector<core::PvrNode*> providers;  // Neighborhood::providers order
  std::vector<core::PvrNode*> verifiers;  // Neighborhood::verifiers() order
  std::vector<core::PvrNode*> members;    // prover + verifiers
};

// Conservative bound on how long after its window closes a round can still
// be referenced by an in-flight message. After the prover's fan-out (one
// hop), the signed root floods the verifier mesh (the hop budget bounds
// each chain), the adversary may re-inject one captured copy after its
// replay lag (which floods again from a reset hop count), and every root
// arrival can trigger at most one escalation per verifier, each spreading
// bundles for another budget-bounded chain. Every hop costs at most the
// runner's latency ceiling plus the adversary's per-message delay bound.
// Soundness is enforced empirically: an understated horizon snapshots a
// round before its last message and breaks the online==offline fingerprint
// parity the tests and bench gate on.
[[nodiscard]] net::SimTime settle_horizon_for(const ScenarioSpec& spec,
                                              const AdversaryStrategy& adversary,
                                              std::size_t max_verifiers) {
  const net::SimTime per_hop = kMaxLatency + adversary.max_extra_delay();
  const net::SimTime chain =
      static_cast<net::SimTime>(spec.gossip_hop_budget) + 1;
  const net::SimTime cascades = static_cast<net::SimTime>(max_verifiers) + 2;
  return per_hop * (chain * cascades + 1) + adversary.max_replay_lag();
}

// Evenly spreads `fraction` of `count` indices (floor-difference trick):
// attacked and honest neighborhoods interleave instead of clustering.
[[nodiscard]] std::vector<bool> spread_attacked(std::size_t count,
                                                double fraction) {
  std::vector<bool> attacked(count, false);
  const double f = std::clamp(fraction, 0.0, 1.0);
  for (std::size_t i = 0; i < count; ++i) {
    attacked[i] = static_cast<std::size_t>(static_cast<double>(i + 1) * f) >
                  static_cast<std::size_t>(static_cast<double>(i) * f);
  }
  return attacked;
}

}  // namespace

std::string ScenarioReport::fingerprint() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "%s|%s|seed=%" PRIu64 "|ases=%zu|hoods=%zu|nodes=%zu|started=%" PRIu64
      "|windows=%" PRIu64 "|coalesced=%d|attacked=%" PRIu64
      "|detected=%" PRIu64 "|evidence=%" PRIu64 "|false=%" PRIu64
      "|audit_fail=%" PRIu64 "|in=%" PRIu64 "|bundle=%" PRIu64
      "|gossip=%" PRIu64 "|reveal=%" PRIu64 "|total=%" PRIu64
      "|gossip_msgs=%" PRIu64,
      scenario.c_str(), adversary.c_str(), seed, as_count, neighborhoods,
      pvr_nodes, rounds_started, windows_fired, coalesced ? 1 : 0,
      attacked_rounds, detected_rounds, evidence_total, false_evidence,
      audit_failures, bytes_input, bytes_bundle, bytes_gossip,
      bytes_reveal_export, bytes_total, gossip_messages);
  return buffer;
}

std::string ScenarioReport::to_json_line() const {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"bench\":\"scenarios\",\"scenario\":\"%s\",\"adversary\":\"%s\","
      "\"seed\":%" PRIu64 ",\"workers\":%zu,\"as_count\":%zu,"
      "\"neighborhoods\":%zu,\"rounds_started\":%" PRIu64
      ",\"windows_fired\":%" PRIu64 ",\"coalesced\":%s,"
      "\"attacked_rounds\":%" PRIu64 ",\"detected_rounds\":%" PRIu64
      ",\"detection_rate\":%.4f,\"evidence_total\":%" PRIu64
      ",\"false_evidence\":%" PRIu64 ",\"audit_failures\":%" PRIu64
      ",\"verify_failures\":%" PRIu64 ",\"online\":%s"
      ",\"peak_open_rounds\":%" PRIu64 ",\"drain_batches\":%" PRIu64
      ",\"p50_settle_us\":%" PRIu64 ",\"p99_settle_us\":%" PRIu64
      ",\"rsa_verifies\":%" PRIu64 ",\"sig_cache_hits\":%" PRIu64
      ",\"bytes_total\":%" PRIu64 ",\"bytes_gossip\":%" PRIu64
      ",\"gossip_messages\":%" PRIu64 ",\"peak_root_digests\":%" PRIu64
      ",\"hw_threads\":%zu,\"sim_ms\":%.1f,\"verify_ms\":%.1f"
      ",\"wall_ms\":%.1f,\"pipeline_overlap_ratio\":%.4f"
      ",\"rounds_per_sec\":%.1f}",
      scenario.c_str(), adversary.c_str(), seed, workers, as_count,
      neighborhoods, rounds_started, windows_fired, coalesced ? "true" : "false",
      attacked_rounds, detected_rounds, detection_rate, evidence_total,
      false_evidence, audit_failures, verify_failures,
      online ? "true" : "false", peak_open_rounds, drain_batches,
      p50_settle_us, p99_settle_us, rsa_verifies, sig_cache_hits, bytes_total,
      bytes_gossip, gossip_messages, peak_root_digests, hw_threads, sim_ms,
      verify_ms, wall_ms, pipeline_overlap_ratio, rounds_per_sec);
  return buffer;
}

ScenarioReport run_scenario(const ScenarioSpec& spec) {
  if (spec.collect_window <= kMaxLatency) {
    throw std::invalid_argument(
        "run_scenario: collect_window must exceed the max link latency");
  }
  if (spec.online && spec.drain_interval_us == 0) {
    throw std::invalid_argument(
        "run_scenario: online mode needs a nonzero drain_interval_us");
  }
  ScenarioReport report;
  report.scenario = spec.name;
  report.adversary = spec.adversary;
  report.seed = spec.seed;
  report.workers = spec.workers;
  report.online = spec.online;

  // Crypto profile baseline: the report's rsa_verifies/sig_cache_hits are
  // this run's delta of the process-wide counters (scenario runs are
  // sequential within a process). Both stay 0 under -DPVR_OBS=OFF.
  const obs::HotMetrics& hot = obs::MetricsRegistry::global().hot;
  const std::uint64_t rsa_verifies_before = hot.crypto_rsa_verifies.value();
  const std::uint64_t cache_hits_before = hot.crypto_sig_cache_hits.value();
  // Settle latencies aggregate through a local histogram so the report
  // carries them in BOTH obs build flavors (the global scenario.settle_us
  // histogram additionally feeds obs snapshots when hooks are compiled in).
  obs::Histogram settle_hist;

  // 1. Topology and neighborhoods.
  const GeneratedTopology topology =
      generate_topology(spec.topology, spec.seed);
  report.as_count = topology.graph.as_count();
  const std::vector<Neighborhood> hoods = select_neighborhoods(
      topology, spec.neighborhoods, spec.min_providers, spec.max_providers);
  if (hoods.empty()) {
    throw std::runtime_error(
        "run_scenario: topology yielded no qualifying neighborhood");
  }
  report.neighborhoods = hoods.size();

  // 2. Adversary plan.
  const std::unique_ptr<AdversaryStrategy> adversary =
      make_adversary(spec.adversary);
  const core::ProverMisbehavior misbehavior = adversary->prover_misbehavior();
  const std::vector<bool> attacked =
      spread_attacked(hoods.size(), misbehavior.honest() ? 0.0
                                                         : spec.attacked_fraction);
  std::set<bgp::AsNumber> attacked_provers;
  std::set<bgp::AsNumber> colluders;
  for (std::size_t h = 0; h < hoods.size(); ++h) {
    if (!attacked[h]) continue;
    attacked_provers.insert(hoods[h].prover);
    for (const bgp::AsNumber colluder : adversary->colluders(hoods[h])) {
      colluders.insert(colluder);
    }
  }

  // 3. Keys for every participant.
  std::vector<bgp::AsNumber> participants;
  for (const Neighborhood& hood : hoods) {
    const std::vector<bgp::AsNumber> members = hood.members();
    participants.insert(participants.end(), members.begin(), members.end());
  }
  std::sort(participants.begin(), participants.end());
  crypto::Drbg key_rng(spec.seed, "scenario-keys");
  const core::AsKeyPairs keys =
      core::generate_keys(participants, key_rng, spec.key_bits);
  report.pvr_nodes = participants.size();

  // 4. World: one PvrNode per participant, star + verifier-mesh links with
  // jittered latencies. Node pointers are resolved here, once — the
  // scheduling lambdas, the verification loops, and the scoring pass below
  // all reuse them instead of re-running a dynamic_cast per event.
  net::Simulator sim(spec.seed);
  crypto::Drbg link_rng(spec.seed, "scenario-links");
  std::vector<HoodNodes> hood_nodes(hoods.size());
  for (std::size_t h = 0; h < hoods.size(); ++h) {
    const Neighborhood& hood = hoods[h];
    const auto add_node = [&](bgp::AsNumber asn,
                              core::PvrRole role) -> core::PvrNode* {
      core::PvrConfig config{
          .asn = asn,
          .role = role,
          .directory = &keys.directory,
          .private_key = &keys.private_keys.at(asn).priv,
          .op = core::OperatorKind::kMinimum,
          .max_len = spec.max_len,
          .prover = hood.prover,
          .providers = hood.providers,
          .recipient = hood.recipient,
          .collect_window = spec.collect_window,
          .batch_deadline = spec.batch_deadline,
          .misbehavior = role == core::PvrRole::kProver && attacked[h]
                             ? misbehavior
                             : core::ProverMisbehavior{},
          .rng_seed = spec.seed,
          .gossip_hop_budget = spec.gossip_hop_budget,
          .finalize_chunk_pairs = spec.finalize_chunk_pairs,
      };
      auto node = std::make_unique<core::PvrNode>(std::move(config));
      core::PvrNode* raw = node.get();
      sim.add_node(asn, std::move(node));
      return raw;
    };
    HoodNodes& nodes = hood_nodes[h];
    nodes.prover = add_node(hood.prover, core::PvrRole::kProver);
    core::PvrNode* recipient = add_node(hood.recipient, core::PvrRole::kRecipient);
    for (const bgp::AsNumber provider : hood.providers) {
      nodes.providers.push_back(add_node(provider, core::PvrRole::kProvider));
    }
    // Same order as Neighborhood::verifiers(): providers, then recipient.
    nodes.verifiers = nodes.providers;
    nodes.verifiers.push_back(recipient);
    nodes.members = nodes.verifiers;
    nodes.members.push_back(nodes.prover);

    const auto jittered = [&] {
      return net::LinkConfig{
          .latency = kMinLatency + link_rng.uniform(kMaxLatency - kMinLatency)};
    };
    const std::vector<bgp::AsNumber> verifiers = hood.verifiers();
    for (const bgp::AsNumber verifier : verifiers) {
      sim.connect(hood.prover, verifier, jittered());
    }
    for (std::size_t i = 0; i < verifiers.size(); ++i) {
      for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
        sim.connect(verifiers[i], verifiers[j], jittered());
      }
    }
  }
  adversary->install(sim, hoods, attacked, spec.seed);

  // 5. Jittered round traffic.
  const std::vector<RoundArrival> arrivals = generate_arrivals(
      spec.traffic, hoods.size(), spec.rounds, spec.seed);
  crypto::Drbg input_rng(spec.seed, "scenario-inputs");
  for (const RoundArrival& arrival : arrivals) {
    const Neighborhood& hood = hoods[arrival.neighborhood];
    const HoodNodes& nodes = hood_nodes[arrival.neighborhood];
    for (std::size_t p = 0; p < hood.providers.size(); ++p) {
      const bgp::AsNumber provider = hood.providers[p];
      core::PvrNode* provider_node = nodes.providers[p];
      const net::SimTime jitter = spec.traffic.input_jitter_us == 0
                                      ? 0
                                      : input_rng.uniform(spec.traffic.input_jitter_us);
      const std::size_t length = 1 + input_rng.uniform(spec.max_len);
      sim.schedule(arrival.at + jitter,
                   [&sim, arrival, provider, provider_node, length] {
        provider_node->provide_input(
            sim, arrival.epoch, arrival.prefix,
            provider_route(arrival.prefix, provider, length));
      });
    }
    core::PvrNode* prover_node = nodes.prover;
    sim.schedule(arrival.at + spec.traffic.input_jitter_us,
                 [&sim, prover_node, arrival] {
      prover_node->start_round(sim, arrival.epoch, arrival.prefix);
    });
  }

  // 6. Engine-backed verification. Offline: run to quiescence, submit every
  // round, one drain. Online (the paper's deployment model): each prover's
  // window-close event queues its rounds; once a round's settle horizon has
  // passed, a periodic in-simulation drain submits it to the long-lived
  // engine, folds the findings back, and GCs the settled state — so memory
  // tracks concurrently-open windows, not trace length. Either way the
  // engine drains with rethrow_errors = false: a round whose closure threw
  // is COUNTED (report.verify_failures, gated nonzero-fatal by the bench
  // and CI) instead of silently discarded like the pre-PR-5
  // `(void)engine.drain()` — or, worse, aborting the whole trace.
  engine::VerificationEngine engine({.workers = spec.workers},
                                    &keys.directory);
  const bool pipelined = spec.online && spec.pipelined;
  double verify_blocked_ms = 0;  // sim-thread wall time spent on verification
  double overlapped_ms = 0;      // fold time that overlapped the simulation
  double fold_window_ms = 0;     // total async fold window across batches

  struct SettledEntry {
    net::SimTime settled_at = 0;
    std::size_t hood = 0;
    core::ProtocolId id;
  };
  std::deque<SettledEntry> pending;  // window-close order == settle order
  // The two-slot batch buffer (DESIGN.md §12): `batch` is the slot being
  // gathered and sealed this tick; `inflight` is the previous batch, owned
  // by the engine's workers until the next tick harvests it. Entries are
  // immutable after sealing — the engine verifies over the shared_ptr
  // RoundState snapshots defer_finalize_checks took at submit time, so the
  // simulator mutating live node state in between cannot race the checks.
  std::vector<SettledEntry> batch;
  std::vector<SettledEntry> inflight;
  bool inflight_active = false;

  // Rounds left to harvest per (hood, epoch): when the count hits zero,
  // every round of the epoch is past its settle horizon AND harvested, so
  // the epoch's seen-root dedup digests retire (gc_epoch_roots).
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t>
      epoch_rounds_left;
  if (spec.online) {
    for (const RoundArrival& arrival : arrivals) {
      epoch_rounds_left[{arrival.neighborhood, arrival.epoch}] += 1;
    }
  }

  const net::SimTime settle_horizon =
      spec.settle_horizon_us != 0
          ? spec.settle_horizon_us
          : settle_horizon_for(spec, *adversary, [&] {
              std::size_t most = 0;
              for (const Neighborhood& hood : hoods) {
                most = std::max(most, hood.providers.size() + 1);
              }
              return most;
            }());

  const auto consume_report = [&](const engine::EngineReport& drained) {
    report.verify_failures += drained.failed_rounds;
    report.drain_batches += 1;
    overlapped_ms += drained.overlapped_ms;
    fold_window_ms += drained.verify_wall_ms;
  };

  // Harvest the in-flight batch: collect() applies its folded findings to
  // the nodes (one tick after submission), then the settled state is GC'd
  // and fully-harvested epochs retire their root-dedup digests.
  const auto harvest = [&] {
    if (!inflight_active) return;
    const double t0 = now_ms();
    const obs::TraceSpan span("scenario.harvest", "scenario");
    consume_report(engine.collect(/*rethrow_errors=*/false));
    for (const SettledEntry& entry : inflight) {
      for (core::PvrNode* member : hood_nodes[entry.hood].members) {
        (void)member->gc_finalized(entry.id);
      }
      const auto left = epoch_rounds_left.find({entry.hood, entry.id.epoch});
      if (left != epoch_rounds_left.end() && --left->second == 0) {
        // The settle horizon bounds gossip chains AND the adversary's
        // replay lag, so with every round of this (hood, epoch) harvested,
        // no message referencing the epoch's roots can still arrive — a
        // late replay after this retirement would miss the dedup and
        // re-create round state, which the fingerprint-parity gates would
        // catch (same empirical enforcement as the horizon itself).
        const bgp::AsNumber prover = hoods[entry.hood].prover;
        for (core::PvrNode* member : hood_nodes[entry.hood].members) {
          (void)member->gc_epoch_roots(prover, entry.id.epoch);
        }
        epoch_rounds_left.erase(left);
      }
    }
    inflight.clear();
    inflight_active = false;
    verify_blocked_ms += now_ms() - t0;
  };

  // Gather every settled round and seal them as the next batch: submit all
  // verifier rounds, then begin_drain hands the batch to the workers
  // WITHOUT blocking (pipelined mode harvests it next tick).
  const auto submit_settled = [&](bool flush_all) {
    batch.clear();
    while (!pending.empty() &&
           (flush_all || pending.front().settled_at <= sim.now())) {
      batch.push_back(pending.front());
      pending.pop_front();
    }
    if (batch.empty()) return;
    const double t0 = now_ms();
    const obs::TraceSpan flush_span("scenario.drain_flush", "scenario");
    obs::TraceWriter& tracer = obs::TraceWriter::global();
    for (const SettledEntry& entry : batch) {
      for (core::PvrNode* verifier : hood_nodes[entry.hood].verifiers) {
        (void)engine.submit_node_round(*verifier, entry.id);
      }
      // Settle latency in SIM time, recorded at SUBMISSION: the round's
      // window closed at settled_at - settle_horizon and this tick is when
      // its verification was sealed. Identical at any worker count (the
      // drain schedule is simulated) and identical pipelined or not — the
      // harvest landing one tick later must not widen the gated quantiles.
      const net::SimTime close_at = entry.settled_at - settle_horizon;
      const std::uint64_t latency =
          static_cast<std::uint64_t>(sim.now() - close_at);
      settle_hist.record(latency);
      PVR_OBS_RECORD(scenario_settle_us, latency);
      if (tracer.active()) {
        tracer.sim_span("round.settle", entry.hood,
                        static_cast<std::uint64_t>(close_at),
                        static_cast<std::uint64_t>(sim.now()));
      }
    }
    engine.begin_drain();
    inflight.swap(batch);
    inflight_active = true;
    verify_blocked_ms += now_ms() - t0;
  };

  if (spec.online) {
    report.settle_horizon_us = settle_horizon;
    for (std::size_t h = 0; h < hoods.size(); ++h) {
      const bgp::AsNumber prover = hoods[h].prover;
      hood_nodes[h].prover->set_window_close_handler(
          [&sim, &pending, settle_horizon, h, prover](
              std::uint64_t epoch, const std::vector<bgp::Ipv4Prefix>& prefixes) {
            const net::SimTime settled_at = sim.now() + settle_horizon;
            for (const bgp::Ipv4Prefix& prefix : prefixes) {
              pending.push_back(SettledEntry{
                  .settled_at = settled_at,
                  .hood = h,
                  .id = core::ProtocolId{
                      .prover = prover, .prefix = prefix, .epoch = epoch}});
            }
          });
    }
    if (pipelined) {
      // Pipelined tick: harvest batch N (findings applied one tick late),
      // then seal batch N+1 — the workers verify it while the simulator
      // advances toward the next tick.
      sim.schedule_periodic(spec.drain_interval_us, [&] {
        harvest();
        submit_settled(false);
      });
    } else {
      // Synchronous A/B schedule (pre-pipelining): seal and immediately
      // harvest inside one tick — blocking engine.drain semantics.
      sim.schedule_periodic(spec.drain_interval_us, [&] {
        submit_settled(false);
        harvest();
      });
    }
  }

  const double t_sim = now_ms();
  {
    const obs::TraceSpan sim_span("scenario.sim_run", "scenario");
    sim.run();
  }
  // Drain work ran interleaved on this thread; subtract the blocked share.
  report.sim_ms = now_ms() - t_sim - verify_blocked_ms;

  if (spec.online) {
    // Tail barrier: harvest whatever the final tick left in flight, then
    // flush the rounds whose settle horizon outlived the trace (plus any
    // final partial batch) and harvest those too. The simulator is
    // quiescent, so these submit against exactly the state the offline
    // path would have seen — after this barrier, online == offline.
    report.harvest_pending_at_end = inflight_active;
    harvest();
    submit_settled(true);
    harvest();
  } else {
    const double t_verify = now_ms();
    for (const RoundArrival& arrival : arrivals) {
      const Neighborhood& hood = hoods[arrival.neighborhood];
      const core::ProtocolId id{.prover = hood.prover,
                                .prefix = arrival.prefix,
                                .epoch = arrival.epoch};
      for (core::PvrNode* verifier : hood_nodes[arrival.neighborhood].verifiers) {
        (void)engine.submit_node_round(*verifier, id);
      }
    }
    consume_report(engine.drain(/*rethrow_errors=*/false));
    verify_blocked_ms += now_ms() - t_verify;
  }
  report.wall_ms = now_ms() - t_sim;
  report.verify_ms = verify_blocked_ms + overlapped_ms;
  report.pipeline_overlap_ratio =
      fold_window_ms > 0 ? overlapped_ms / fold_window_ms : 0.0;

  // 7. Score.
  const core::Auditor auditor(&keys.directory);
  const std::vector<core::ViolationKind> expected =
      adversary->expected_kinds();
  std::set<core::ProtocolId> attacked_rounds;
  for (const RoundArrival& arrival : arrivals) {
    const Neighborhood& hood = hoods[arrival.neighborhood];
    if (!attacked_provers.contains(hood.prover)) continue;
    attacked_rounds.insert(core::ProtocolId{.prover = hood.prover,
                                            .prefix = arrival.prefix,
                                            .epoch = arrival.epoch});
  }

  std::set<core::ProtocolId> detected;
  crypto::Sha256 evidence_hasher;
  for (std::size_t h = 0; h < hoods.size(); ++h) {
    const std::vector<bgp::AsNumber> verifier_asns = hoods[h].verifiers();
    for (std::size_t v = 0; v < verifier_asns.size(); ++v) {
      const bgp::AsNumber verifier = verifier_asns[v];
      const core::PvrNode& node = *hood_nodes[h].verifiers[v];
      for (const core::Evidence& item : node.evidence()) {
        report.evidence_total += 1;
        // Hash the evidence log IN ORDER (node order, then log order): the
        // digest pins the application order the two-slot pipeline must
        // preserve, not just the counts the fingerprint covers.
        evidence_hasher.update(item.to_string());
        for (const core::SignedMessage& msg : item.messages) {
          evidence_hasher.update(
              std::span<const std::uint8_t>(msg.payload));
        }
        if (!attacked_provers.contains(item.accused)) {
          report.false_evidence += 1;
          continue;
        }
        if (auditor_provable(item.kind) && !auditor.validate(item)) {
          report.audit_failures += 1;
        }
        if (colluders.contains(verifier)) continue;
        if (std::find(expected.begin(), expected.end(), item.kind) ==
            expected.end()) {
          continue;
        }
        std::vector<core::ProtocolId> covered;
        append_covered_rounds(item, covered);
        for (const core::ProtocolId& id : covered) {
          if (attacked_rounds.contains(id)) detected.insert(id);
        }
      }
    }
  }
  report.evidence_digest = crypto::digest_hex(evidence_hasher.finalize());
  report.attacked_rounds = attacked_rounds.size();
  report.detected_rounds = detected.size();
  report.detection_rate =
      attacked_rounds.empty()
          ? 1.0
          : static_cast<double>(detected.size()) /
                static_cast<double>(attacked_rounds.size());

  for (const HoodNodes& nodes : hood_nodes) {
    report.rounds_started += nodes.prover->rounds_started();
    report.windows_fired += nodes.prover->windows_fired();
    for (const core::PvrNode* member : nodes.members) {
      report.peak_open_rounds =
          std::max(report.peak_open_rounds,
                   static_cast<std::uint64_t>(member->peak_open_rounds()));
      report.peak_root_digests = std::max(
          report.peak_root_digests,
          static_cast<std::uint64_t>(member->peak_seen_root_digests()));
      report.final_root_epochs =
          std::max(report.final_root_epochs,
                   static_cast<std::uint64_t>(member->seen_root_epochs()));
    }
  }
  report.coalesced = report.windows_fired < report.rounds_started;

  const net::SimStats& stats = sim.stats();
  report.bytes_input = stats.channel_group(core::kInputChannel).bytes_sent;
  // kBundleChannel is a prefix of kBundleAggChannel, kGossipChannel of
  // kGossipRootChannel: each group covers both wire modes.
  report.bytes_bundle = stats.channel_group(core::kBundleChannel).bytes_sent;
  const net::ChannelStats gossip = stats.channel_group(core::kGossipChannel);
  report.bytes_gossip = gossip.bytes_sent;
  report.gossip_messages = gossip.messages_sent;
  report.bytes_reveal_export = stats.channel_group("pvr.reveal").bytes_sent +
                               stats.channel_group("pvr.export").bytes_sent;
  report.bytes_total = stats.channel_group("pvr.").bytes_sent;

  report.p50_settle_us = settle_hist.quantile(0.5);
  report.p99_settle_us = settle_hist.quantile(0.99);
  report.rsa_verifies = hot.crypto_rsa_verifies.value() - rsa_verifies_before;
  report.sig_cache_hits =
      hot.crypto_sig_cache_hits.value() - cache_hits_before;

  // Throughput over MEASURED elapsed time: with pipelining, wall_ms can be
  // less than sim_ms + verify_ms (the overlapped share is counted in both),
  // and the rate should credit that overlap.
  report.hw_threads = std::thread::hardware_concurrency();
  report.rounds_per_sec =
      report.wall_ms <= 0.0 ? 0.0
                            : static_cast<double>(report.rounds_started) /
                                  (report.wall_ms / 1000.0);
  return report;
}

std::vector<std::string> scenario_names() {
  return {"equivocation_storm", "batch_split_evasion", "drop_replay_chaos"};
}

ScenarioSpec named_scenario(std::string_view name, std::uint64_t seed,
                            std::size_t rounds) {
  ScenarioSpec spec;
  spec.name = std::string(name);
  spec.seed = seed;
  spec.rounds = rounds;
  spec.topology.as_count = 1200;
  spec.neighborhoods = 6;
  if (name == "equivocation_storm") {
    // Dense Poisson arrivals against a deadline five times the collection
    // window: THE workload that finally coalesces staggered start_round
    // arrivals into shared aggregation windows.
    spec.adversary = "equivocator";
    spec.traffic.process = ArrivalProcess::kPoisson;
    spec.traffic.mean_interarrival_us = 1200;
    spec.batch_deadline = 20'000;
    return spec;
  }
  if (name == "batch_split_evasion") {
    // Bursts land several prefixes per neighborhood in one window; the
    // prover answers each burst with TWO signed windows claiming the same
    // prefixes (no shared batch number to pair on).
    spec.adversary = "batch_split";
    spec.traffic.process = ArrivalProcess::kBursty;
    spec.traffic.burst_size = 18;
    spec.traffic.mean_interarrival_us = 25'000;
    spec.batch_deadline = 15'000;
    return spec;
  }
  if (name == "drop_replay_chaos") {
    // Equivocating provers behind a hostile wire: gossip selectively
    // dropped, delayed, and stale roots replayed with reset hop counts.
    spec.adversary = "delay_replay";
    spec.traffic.process = ArrivalProcess::kPoisson;
    spec.traffic.mean_interarrival_us = 2000;
    spec.batch_deadline = 12'000;
    return spec;
  }
  throw std::invalid_argument("named_scenario: unknown scenario '" +
                              std::string(name) + "'");
}

}  // namespace pvr::scenario
