// Seeded arrival processes for scenario round traffic.
//
// Every workload before this subsystem started its rounds at hand-picked
// instants (usually all at t=0), so the per-prefix collection windows and
// the batching deadline (PvrConfig::batch_deadline > collect_window) were
// never exercised under realistic jitter. The traffic model generates the
// start_round arrival schedule: Poisson (exponential inter-arrivals),
// bursty (bursts of simultaneous-ish arrivals separated by gaps), or
// uniform spacing — each with per-prefix jitter, deterministic in
// (params, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "bgp/prefix.h"
#include "net/simulator.h"

namespace pvr::scenario {

enum class ArrivalProcess : std::uint8_t {
  kUniform = 0,  // fixed spacing (+ jitter)
  kPoisson = 1,  // exponential inter-arrivals
  kBursty = 2,   // bursts of burst_size arrivals, exponential gaps
};

struct TrafficParams {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // Mean µs between consecutive round arrivals (Poisson/uniform), or
  // between bursts (bursty).
  double mean_interarrival_us = 2500;
  std::size_t burst_size = 8;
  // Per-round start jitter: the prover's start_round fires uniformly in
  // [0, start_jitter_us) after the nominal arrival (+ input lead, below).
  net::SimTime start_jitter_us = 1000;
  // Providers announce their inputs uniformly in [0, input_jitter_us)
  // after the nominal arrival; the prover starts only after the full
  // jitter span, so an input can never miss its own round's collection
  // window because of jitter alone (link latency must stay below
  // collect_window, which the runner enforces).
  net::SimTime input_jitter_us = 2000;
  // Epoch rotation: arrival r carries epoch 1 + r / rounds_per_epoch, so a
  // long trace spreads its rounds over successive epochs instead of piling
  // every window's root digest into epoch 1 — the workload the epoch-keyed
  // seen-root GC (PvrNode::gc_epoch_roots) needs to show its footprint
  // tracks OPEN epochs. 0 (default) keeps the legacy single-epoch trace.
  std::size_t rounds_per_epoch = 0;
};

// One scheduled protocol round of one neighborhood.
struct RoundArrival {
  std::size_t neighborhood = 0;
  bgp::Ipv4Prefix prefix;
  std::uint64_t epoch = 1;
  net::SimTime at = 0;  // nominal arrival (input jitter measured from here)
};

// The prefix the r-th round of a neighborhood runs over (10.x.y.0/24,
// unique per round index; neighborhoods may reuse prefixes because rounds
// are keyed by the full (prover, prefix, epoch) ProtocolId).
[[nodiscard]] bgp::Ipv4Prefix round_prefix(std::size_t round_index);

// Generates `total_rounds` arrivals round-robined across `neighborhoods`,
// ordered by arrival time. Deterministic in (params, counts, seed).
[[nodiscard]] std::vector<RoundArrival> generate_arrivals(
    const TrafficParams& params, std::size_t neighborhoods,
    std::size_t total_rounds, std::uint64_t seed);

}  // namespace pvr::scenario
