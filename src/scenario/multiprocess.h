// Multi-process scenario deployment: N node processes on loopback TCP,
// conducted in LOCKSTEP so the distributed run is bit-for-bit equivalent to
// the monolithic simulator run of the same spec.
//
// Free-running sockets cannot reproduce a simulator fingerprint — gossip
// relay fan-out depends on delivery order, and the kernel's interleaving is
// not the simulator's. So the conductor keeps the ONE deterministic event
// queue: it re-derives the world plan (scenario/world.h), populates its own
// net::Simulator with one proxy node per participant, and drives the real
// protocol state — which lives sharded across the node processes — by
// granting each event to the owning process over a control connection:
//
//   grant(app event k / timer id / deliver cookie)  →  child executes the
//   closure against its real PvrNodes and replies with the ordered list of
//   actions the handler took (sends with their wire metadata, one-shot
//   schedules). The conductor replays those actions into its simulator —
//   sends as PLACEHOLDER messages (same channel, same payload size, so
//   latency draws, interceptor decisions, and byte accounting are
//   identical; Message::cookie carries the correlation tag), schedules as
//   future grants. Real payload bytes travel peer-to-peer between node
//   processes, keyed by the same cookie, and are delivered to the
//   destination node when (and only when) the conductor grants it.
//
// Sequence parity is by construction: the conductor's simulator makes the
// same schedule()/send() calls in the same order as the monolithic run's
// handlers did, so same-time events tiebreak identically. At the end each
// child engine-verifies its local verifiers and ships the evidence logs,
// prover counters, and its MessageTrace shard (conductor-issued sequence
// numbers) back; the conductor scores with the shared score_evidence pass
// and merges the shards into one trace that replays through
// scenario::replay_trace to the same fingerprint. DESIGN.md §13.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message_trace.h"
#include "obs/metrics.h"
#include "scenario/runner.h"
#include "scenario/world.h"

namespace pvr::scenario {

struct MultiprocessOptions {
  // Both sides rebuild the spec as named_scenario(scenario, seed, rounds) —
  // the plan derivation is pure, so conductor and children agree on the
  // world without shipping it.
  std::string scenario = "equivocation_storm";
  std::uint64_t seed = 1;
  std::size_t rounds = 24;
  std::size_t processes = 3;  // node processes (the conductor is extra)
  std::string self_exe;       // argv[0]: re-exec'd with --node for children
  // Distributed observability (DESIGN.md §14). `trace_base` != "" arms
  // Chrome tracing in the conductor and every child ("<base>.conductor
  // .json" / "<base>.<pid>.json") and stitches the shards into
  // "<base>.json" after the run. `poll_stats` makes the conductor send a
  // kFrameStats probe to the granted child after every grant cycle,
  // accumulating the per-process time series below.
  std::string trace_base;
  bool poll_stats = true;
};

struct MultiprocessResult {
  ScenarioReport report;
  net::MessageTrace trace;  // merged shards, sorted by conductor sequence

  // Cross-process metrics aggregation: each child ships the snapshot DELTA
  // of its grant-loop + verification work in the result frame; merged_obs
  // is the conductor's own delta merged with every child's. Its kSim
  // section is byte-identical to the single-process run of the same spec
  // (ScenarioReport::obs_sim_fingerprint) — the distributed-parity gate.
  obs::MetricsSnapshot merged_obs;
  std::vector<obs::MetricsSnapshot> child_obs;  // per-rank deltas

  // One row per kFrameStats poll (every grant cycle when poll_stats).
  struct StatsPoint {
    std::uint32_t rank = 0;
    std::uint64_t at_us = 0;  // lockstep (sim) time of the poll
    std::int64_t open_rounds = 0;
    std::int64_t peak_open_rounds = 0;
    std::uint64_t rsa_verifies = 0;
    std::uint64_t messages_sent = 0;
  };
  std::vector<StatsPoint> stats_timeline;

  // Set when MultiprocessOptions::trace_base was given: the merged
  // Perfetto-loadable timeline (obs::merge_traces output).
  std::string merged_trace_path;
};

// Which node process owns `asn`: its index in the sorted participant list,
// round-robin over `processes`. Pure function of the plan, so every process
// computes the same map.
[[nodiscard]] std::size_t owner_of(const WorldPlan& plan, bgp::AsNumber asn,
                                   std::size_t processes);

// Conductor entry: forks/execs `processes` node children, runs the lockstep
// scenario, scores, and reaps them. Throws std::runtime_error if a child
// fails or disconnects mid-run.
[[nodiscard]] MultiprocessResult run_conductor(
    const MultiprocessOptions& options);

// Node-process entry (invoked by the --node re-exec): serves lockstep
// grants until the finish verb, then ships results. Returns the process
// exit code. A non-empty `trace_base` arms per-process Chrome tracing
// into "<trace_base>.<pid>.json" (the shard path travels back in the
// result frame for the conductor's merge).
int run_node_process(const std::string& scenario, std::uint64_t seed,
                     std::size_t rounds, std::size_t process_index,
                     std::size_t processes, std::uint16_t control_port,
                     const std::string& trace_base = {});

}  // namespace pvr::scenario
