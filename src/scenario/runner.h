// Deterministic adversarial scenario runner: the single entry point every
// workload harness (bench_scenarios, tests/scenario, examples) drives.
//
//   ScenarioSpec spec = named_scenario("equivocation_storm", seed, rounds);
//   ScenarioReport report = run_scenario(spec);
//   puts(report.to_json_line().c_str());
//
// One run: generate a power-law topology, carve disjoint Figure-1
// neighborhoods out of it, build PvrNodes over the simulator, arm the
// adversary (prover misbehavior + wire interceptor), schedule jittered
// round traffic, verify every round through the parallel engine — either
// offline (run to quiescence, then one drain) or online (ScenarioSpec::
// online: rounds stream into a long-lived engine as their windows close,
// drained every drain_interval_us of sim time, settled state GC'd) — and
// score the outcome. Everything except the wall-clock and drain-schedule
// fields of the report is a pure function of (spec) — fingerprint() is the
// byte-identity the determinism gates compare across worker counts, drain
// intervals, and online vs offline mode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/message_trace.h"
#include "scenario/adversary.h"
#include "scenario/topology_gen.h"
#include "scenario/traffic.h"

namespace pvr::scenario {

struct ScenarioSpec {
  std::string name = "custom";
  std::uint64_t seed = 1;
  TopologyParams topology;
  std::size_t neighborhoods = 6;  // PVR-active neighborhoods to carve out
  std::size_t min_providers = 4;
  std::size_t max_providers = 5;
  std::size_t rounds = 240;       // total rounds across all neighborhoods
  std::string adversary = "honest";
  // Fraction of neighborhoods whose prover mounts the attack (evenly
  // spread), so honest and attacked neighborhoods coexist and false
  // positives against the honest ones are actually observable.
  double attacked_fraction = 0.5;
  TrafficParams traffic;
  net::SimTime collect_window = 4000;
  net::SimTime batch_deadline = 0;  // > collect_window enables coalescing
  std::uint8_t gossip_hop_budget = 8;
  std::size_t finalize_chunk_pairs = 32;
  std::size_t workers = 8;
  std::size_t key_bits = 512;
  std::uint32_t max_len = 16;
  // Online verification (the paper's deployment model): rounds are
  // submitted to a long-lived engine as their windows close and the engine
  // drains every drain_interval_us of SIMULATED time, with settled rounds
  // GC'd so memory is bounded by concurrently-open windows instead of
  // trace length. false = legacy offline mode (verify after global
  // quiescence). The report fingerprint is byte-identical in both modes
  // at any worker count and any drain interval (DESIGN.md §10).
  bool online = false;
  net::SimTime drain_interval_us = 25'000;
  // Pipelined online verification (DESIGN.md §12, the default): each drain
  // tick first HARVESTS the previous batch's folded findings (applying
  // them one tick late) and then seals the next batch with a non-blocking
  // begin_drain, so engine workers verify batch N while the simulator
  // advances toward batch N+1's tick. false = the pre-PR-7 synchronous
  // schedule (submit + blocking drain inside one tick) — kept as the A/B
  // leg the interleaving stress tests compare evidence logs against.
  // Ignored offline. The fingerprint is byte-identical either way.
  bool pipelined = true;
  // How long after a window closes the runner waits before treating the
  // window's rounds as settled (no message referencing them can still be
  // in flight). 0 = derive a conservative bound from the link latency
  // ceiling, gossip hop budget, neighborhood size, and the adversary's
  // declared wire slack. Only consulted in online mode.
  net::SimTime settle_horizon_us = 0;
  // World-level verified-signature cache (core::VerifyContext with
  // cache_verdicts = true, shared by every node and engine worker): a
  // (signing input, signature) pair already verified anywhere in the world
  // skips the RSA exponentiation on re-verification — gossip re-delivers
  // the same signed bundles to many verifiers. Verdicts, and therefore the
  // report fingerprint and evidence_digest, are byte-identical with the
  // cache off (the parity test's matrix); only wall time and the kSched
  // exponentiation counters change.
  bool world_sig_cache = true;
};

struct ScenarioReport {
  // Identity.
  std::string scenario;
  std::string adversary;
  std::uint64_t seed = 0;
  std::size_t workers = 0;
  // World shape.
  std::size_t as_count = 0;
  std::size_t neighborhoods = 0;
  std::size_t pvr_nodes = 0;
  // Round/window accounting (summed over neighborhood provers).
  std::uint64_t rounds_started = 0;
  std::uint64_t windows_fired = 0;
  bool coalesced = false;  // windows_fired < rounds_started
  // Detection scoring.
  std::uint64_t attacked_rounds = 0;
  std::uint64_t detected_rounds = 0;
  double detection_rate = 1.0;  // 1.0 when nothing was attacked
  std::uint64_t evidence_total = 0;
  std::uint64_t false_evidence = 0;   // evidence accusing an honest AS
  std::uint64_t audit_failures = 0;   // provable evidence the Auditor rejected
  // Engine rounds whose verification closure threw (EngineReport::
  // failed_rounds summed over every drain). The pre-PR-5 runner discarded
  // drain()'s result entirely, silently swallowing exactly these; the
  // bench and the CI regression gate now fail on any nonzero value.
  std::uint64_t verify_failures = 0;
  // Online-mode memory accounting: the highest open-round count any single
  // node reached (PvrNode::peak_open_rounds, maxed over all nodes), and
  // the number of interleaved engine drains. Both depend on the drain
  // schedule, so neither joins the fingerprint — the GC tests gate
  // peak_open_rounds against a bound derived from the spec instead.
  std::uint64_t peak_open_rounds = 0;
  std::uint64_t drain_batches = 0;
  bool online = false;
  // Whether the trace ended with a sealed batch still in flight (the tail
  // barrier then harvested it) — the state the final-flush parity test
  // forces. Always false offline / non-pipelined.
  bool harvest_pending_at_end = false;
  // Root-dedup footprint (epoch-keyed seen-root GC): the highest live
  // digest count any node reached, and the epochs still holding digests
  // after the run (0 once every epoch retired). Drain-schedule-dependent,
  // so excluded from fingerprint(); the epoch-GC test bounds the peak by
  // open epochs instead.
  std::uint64_t peak_root_digests = 0;
  std::uint64_t final_root_epochs = 0;
  // The settle horizon the online run used (spec override or the derived
  // default; 0 offline), so harnesses can compute memory bounds from the
  // same number the runner actually waited out.
  net::SimTime settle_horizon_us = 0;
  // Wire accounting (per channel group).
  std::uint64_t bytes_input = 0;
  std::uint64_t bytes_bundle = 0;        // pvr.bundle + pvr.bundle.agg
  std::uint64_t bytes_gossip = 0;        // pvr.gossip + pvr.gossip.root
  std::uint64_t bytes_reveal_export = 0;
  std::uint64_t bytes_total = 0;         // all pvr.* channels
  std::uint64_t gossip_messages = 0;
  // Settle latency (online mode): sim-time µs from a round's window close
  // to the drain that verified and GC'd it, aggregated over every round
  // through a log-bucket histogram (quantiles are bucket upper edges).
  // Deterministic at any worker count, but a function of the drain
  // schedule — like drain_batches, reported and regression-gated (rule 7)
  // yet excluded from fingerprint(). 0 in offline mode.
  std::uint64_t p50_settle_us = 0;
  std::uint64_t p99_settle_us = 0;
  // Crypto profile for this run (global obs counter deltas): RSA verify
  // exponentiations performed and verified-root dedup hits that skipped
  // one. Zero under -DPVR_OBS=OFF, so excluded from fingerprint().
  std::uint64_t rsa_verifies = 0;
  std::uint64_t sig_cache_hits = 0;
  // World verdict-cache hits (crypto.world_cache_hits delta): verifications
  // answered from the shared VerifyContext without an exponentiation.
  // Schedule-dependent (which duplicate arrives first is a race between
  // workers), so excluded from fingerprint() like the other crypto deltas.
  std::uint64_t world_cache_hits = 0;
  // SHA-256 (hex) over every node's evidence log in node order — a strict
  // superset of the fingerprint's evidence COUNT: it pins the APPLICATION
  // ORDER, which the two-slot pipeline must preserve batch by batch.
  // Deterministic per verification schedule (identical pipelined vs
  // synchronous at the same drain schedule — the stress test's assertion)
  // but mode-dependent (offline applies in arrival order, online in settle
  // order), so excluded from fingerprint().
  std::string evidence_digest;
  // Wall clock — excluded from fingerprint(). sim_ms is the simulator's
  // own wall time (drain work subtracted), verify_ms the total
  // verification cost (sim-thread blocked time + worker time that
  // overlapped the simulation), wall_ms the measured end-to-end elapsed
  // time. With pipelining doing real work on a multi-core host,
  // wall_ms < sim_ms + verify_ms — the bench-gated inequality; on any
  // host, pipeline_overlap_ratio (overlapped fold time / total fold
  // window) is > 0 whenever batches verified while the simulator advanced.
  double sim_ms = 0;
  double verify_ms = 0;
  double wall_ms = 0;
  double pipeline_overlap_ratio = 0;
  double rounds_per_sec = 0;
  std::size_t hw_threads = 0;  // std::thread::hardware_concurrency()

  // The SIM-domain metrics fingerprint of this run's global-registry DELTA
  // (baseline right before the simulation, final read after scoring) —
  // the single-process reference the multiprocess conductor's merged
  // shards must reproduce byte-for-byte (DESIGN.md §14). Empty-valued
  // ("name=0|...") under -DPVR_OBS=OFF in BOTH deployments, so the parity
  // gate holds in both build flavors. Excluded from fingerprint() and
  // to_json_line(): it is itself a fingerprint, compared directly.
  std::string obs_sim_fingerprint;

  // Every deterministic field, one canonical string. Two runs of the same
  // spec — at ANY worker count — must produce identical fingerprints.
  [[nodiscard]] std::string fingerprint() const;
  [[nodiscard]] std::string to_json_line() const;
};

// Runs one scenario end to end. Throws std::runtime_error when the
// generated topology cannot supply a single qualifying neighborhood, and
// std::invalid_argument on specs whose timing cannot work (collect_window
// must exceed the max link latency or inputs could miss their windows).
//
// When `record` is non-null, the run additionally records its ordered
// delivery trace (plus wire stats and prover counters) into it — the
// artifact scenario::replay_trace() re-verifies to an identical
// fingerprint (DESIGN.md §13).
[[nodiscard]] ScenarioReport run_scenario(const ScenarioSpec& spec,
                                          net::MessageTrace* record = nullptr);

// Named presets — the scenario matrix bench_scenarios and CI sweep.
// "equivocation_storm", "batch_split_evasion", "drop_replay_chaos".
[[nodiscard]] std::vector<std::string> scenario_names();
[[nodiscard]] ScenarioSpec named_scenario(std::string_view name,
                                          std::uint64_t seed,
                                          std::size_t rounds);

}  // namespace pvr::scenario
