// Deterministic re-verification of a recorded delivery trace.
//
// replay_trace() re-derives the world plan from the spec, rebuilds every
// PvrNode, and re-delivers the trace's messages — at their recorded times,
// in their recorded global order — through a replay Transport whose send()
// is a sink (every message a node would emit is already in the trace as a
// delivery). Verifier-side protocol state is a pure function of delivery
// order, so the replayed evidence logs are byte-identical to the recorded
// run's; verifying them through the engine at ANY worker count and scoring
// with the shared scenario::score_evidence pass reproduces the original
// ScenarioReport::fingerprint() exactly (DESIGN.md §13).
//
// Prover-side dynamic state (round windows, coalescing timers) is NOT
// replayed: the prover's outputs are already in the trace, and its
// rounds_started/windows_fired counters travel in MessageTrace::provers.
// Provider own-input state IS replayed (the plan's provide_input events,
// sends swallowed) because verify-as-provider consults it.
#pragma once

#include <cstddef>

#include "net/message_trace.h"
#include "scenario/runner.h"

namespace pvr::scenario {

// Replays `trace` (recorded by run_scenario(spec, &trace) — or merged from
// multiprocess shards of the same spec) and re-verifies it offline with
// `workers` engine workers. Throws like run_scenario on a bad spec, and
// std::invalid_argument when the trace's identity (scenario name, seed)
// contradicts the spec.
[[nodiscard]] ScenarioReport replay_trace(const ScenarioSpec& spec,
                                          const net::MessageTrace& trace,
                                          std::size_t workers);

}  // namespace pvr::scenario
