#include "scenario/world.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/bundle_aggregation.h"
#include "crypto/sha256.h"

namespace pvr::scenario {

namespace {

// Evidence is self-contained signed artifacts; recovering which rounds an
// item covers means decoding them. A bundle/reveal/export names its round
// exactly; an aggregation root names (prover, epoch) plus every claimed
// prefix. Decoding failures are expected (each payload matches exactly one
// schema) and simply contribute nothing.
void append_covered_rounds(const core::Evidence& item,
                           std::vector<core::ProtocolId>& out) {
  for (const core::SignedMessage& message : item.messages) {
    try {
      out.push_back(core::CommitmentBundle::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      const core::AggregatedBundle root =
          core::AggregatedBundle::decode(message.payload);
      for (const bgp::Ipv4Prefix& prefix : root.prefixes) {
        out.push_back(core::ProtocolId{
            .prover = root.prover, .prefix = prefix, .epoch = root.epoch});
      }
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::RevealToProvider::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::RevealToRecipient::decode(message.payload).id);
      continue;
    } catch (const std::out_of_range&) {
    }
    try {
      out.push_back(core::ExportStatement::decode(message.payload).id);
    } catch (const std::out_of_range&) {
    }
  }
}

// Liveness classes are detectable but not third-party provable; everything
// else must convince the Auditor (audit_failures counts the exceptions).
[[nodiscard]] bool auditor_provable(core::ViolationKind kind) {
  return kind != core::ViolationKind::kMissingReveal &&
         kind != core::ViolationKind::kBadSignature;
}

// Evenly spreads `fraction` of `count` indices (floor-difference trick):
// attacked and honest neighborhoods interleave instead of clustering.
[[nodiscard]] std::vector<bool> spread_attacked(std::size_t count,
                                                double fraction) {
  std::vector<bool> attacked(count, false);
  const double f = std::clamp(fraction, 0.0, 1.0);
  for (std::size_t i = 0; i < count; ++i) {
    attacked[i] = static_cast<std::size_t>(static_cast<double>(i + 1) * f) >
                  static_cast<std::size_t>(static_cast<double>(i) * f);
  }
  return attacked;
}

}  // namespace

bgp::Route provider_route(const bgp::Ipv4Prefix& prefix,
                          bgp::AsNumber provider, std::size_t length) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(provider);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(60000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = provider,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// Conservative bound on how long after its window closes a round can still
// be referenced by an in-flight message. After the prover's fan-out (one
// hop), the signed root floods the verifier mesh (the hop budget bounds
// each chain), the adversary may re-inject one captured copy after its
// replay lag (which floods again from a reset hop count), and every root
// arrival can trigger at most one escalation per verifier, each spreading
// bundles for another budget-bounded chain. Every hop costs at most the
// runner's latency ceiling plus the adversary's per-message delay bound.
// Soundness is enforced empirically: an understated horizon snapshots a
// round before its last message and breaks the online==offline fingerprint
// parity the tests and bench gate on.
net::SimTime settle_horizon_for(const ScenarioSpec& spec,
                                const AdversaryStrategy& adversary,
                                std::size_t max_verifiers) {
  const net::SimTime per_hop = kMaxScenarioLatency + adversary.max_extra_delay();
  const net::SimTime chain =
      static_cast<net::SimTime>(spec.gossip_hop_budget) + 1;
  const net::SimTime cascades = static_cast<net::SimTime>(max_verifiers) + 2;
  return per_hop * (chain * cascades + 1) + adversary.max_replay_lag();
}

core::PvrConfig WorldPlan::node_config(const ScenarioSpec& spec,
                                       std::size_t hood, bgp::AsNumber asn,
                                       core::PvrRole role) const {
  const Neighborhood& neighborhood = hoods[hood];
  return core::PvrConfig{
      .asn = asn,
      .role = role,
      .directory = &keys.directory,
      .private_key = &keys.private_keys.at(asn).priv,
      .op = core::OperatorKind::kMinimum,
      .max_len = spec.max_len,
      .prover = neighborhood.prover,
      .providers = neighborhood.providers,
      .recipient = neighborhood.recipient,
      .collect_window = spec.collect_window,
      .batch_deadline = spec.batch_deadline,
      .misbehavior = role == core::PvrRole::kProver && attacked[hood]
                         ? misbehavior
                         : core::ProverMisbehavior{},
      .rng_seed = spec.seed,
      .gossip_hop_budget = spec.gossip_hop_budget,
      .finalize_chunk_pairs = spec.finalize_chunk_pairs,
  };
}

WorldPlan plan_world(const ScenarioSpec& spec) {
  if (spec.collect_window <= kMaxScenarioLatency) {
    throw std::invalid_argument(
        "plan_world: collect_window must exceed the max link latency");
  }
  WorldPlan plan;

  // 1. Topology and neighborhoods.
  plan.topology = generate_topology(spec.topology, spec.seed);
  plan.hoods = select_neighborhoods(plan.topology, spec.neighborhoods,
                                    spec.min_providers, spec.max_providers);
  if (plan.hoods.empty()) {
    throw std::runtime_error(
        "plan_world: topology yielded no qualifying neighborhood");
  }

  // 2. Adversary plan.
  plan.adversary = make_adversary(spec.adversary);
  plan.misbehavior = plan.adversary->prover_misbehavior();
  plan.attacked = spread_attacked(
      plan.hoods.size(),
      plan.misbehavior.honest() ? 0.0 : spec.attacked_fraction);
  for (std::size_t h = 0; h < plan.hoods.size(); ++h) {
    if (!plan.attacked[h]) continue;
    plan.attacked_provers.insert(plan.hoods[h].prover);
    for (const bgp::AsNumber colluder : plan.adversary->colluders(plan.hoods[h])) {
      plan.colluders.insert(colluder);
    }
  }

  // 3. Keys for every participant.
  for (const Neighborhood& hood : plan.hoods) {
    const std::vector<bgp::AsNumber> members = hood.members();
    plan.participants.insert(plan.participants.end(), members.begin(),
                             members.end());
  }
  std::sort(plan.participants.begin(), plan.participants.end());
  crypto::Drbg key_rng(spec.seed, "scenario-keys");
  plan.keys = core::generate_keys(plan.participants, key_rng, spec.key_bits);

  // 4. Link latencies, drawn in the canonical per-hood order (prover star,
  // then the verifier mesh upper triangle) so the DRBG stream matches the
  // historical runner draw for draw.
  crypto::Drbg link_rng(spec.seed, "scenario-links");
  const auto jittered = [&link_rng] {
    return net::LinkConfig{
        .latency = kMinScenarioLatency +
                   link_rng.uniform(kMaxScenarioLatency - kMinScenarioLatency)};
  };
  for (const Neighborhood& hood : plan.hoods) {
    const std::vector<bgp::AsNumber> verifiers = hood.verifiers();
    for (const bgp::AsNumber verifier : verifiers) {
      plan.links.push_back(PlannedLink{hood.prover, verifier, jittered()});
    }
    for (std::size_t i = 0; i < verifiers.size(); ++i) {
      for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
        plan.links.push_back(PlannedLink{verifiers[i], verifiers[j], jittered()});
      }
    }
  }

  // 5. Jittered round traffic, one AppEvent per scheduled closure in the
  // canonical order (per arrival: each provider's input, then the prover
  // start) with every jitter/length draw materialized.
  plan.arrivals = generate_arrivals(spec.traffic, plan.hoods.size(),
                                    spec.rounds, spec.seed);
  crypto::Drbg input_rng(spec.seed, "scenario-inputs");
  for (const RoundArrival& arrival : plan.arrivals) {
    const Neighborhood& hood = plan.hoods[arrival.neighborhood];
    for (std::size_t p = 0; p < hood.providers.size(); ++p) {
      const net::SimTime jitter =
          spec.traffic.input_jitter_us == 0
              ? 0
              : input_rng.uniform(spec.traffic.input_jitter_us);
      const std::size_t length = 1 + input_rng.uniform(spec.max_len);
      plan.app_events.push_back(AppEvent{.at = arrival.at + jitter,
                                         .is_input = true,
                                         .hood = arrival.neighborhood,
                                         .provider_index = p,
                                         .actor = hood.providers[p],
                                         .epoch = arrival.epoch,
                                         .prefix = arrival.prefix,
                                         .route_length = length});
    }
    plan.app_events.push_back(AppEvent{.at = arrival.at +
                                             spec.traffic.input_jitter_us,
                                       .is_input = false,
                                       .hood = arrival.neighborhood,
                                       .actor = hood.prover,
                                       .epoch = arrival.epoch,
                                       .prefix = arrival.prefix});
  }
  return plan;
}

void score_evidence(const WorldPlan& plan, const EvidenceAccessor& evidence_of,
                    ScenarioReport& report) {
  const core::Auditor auditor(&plan.keys.directory);
  const std::vector<core::ViolationKind> expected =
      plan.adversary->expected_kinds();
  std::set<core::ProtocolId> attacked_rounds;
  for (const RoundArrival& arrival : plan.arrivals) {
    const Neighborhood& hood = plan.hoods[arrival.neighborhood];
    if (!plan.attacked_provers.contains(hood.prover)) continue;
    attacked_rounds.insert(core::ProtocolId{.prover = hood.prover,
                                            .prefix = arrival.prefix,
                                            .epoch = arrival.epoch});
  }

  std::set<core::ProtocolId> detected;
  crypto::Sha256 evidence_hasher;
  for (std::size_t h = 0; h < plan.hoods.size(); ++h) {
    const std::vector<bgp::AsNumber> verifier_asns = plan.hoods[h].verifiers();
    for (std::size_t v = 0; v < verifier_asns.size(); ++v) {
      const bgp::AsNumber verifier = verifier_asns[v];
      for (const core::Evidence& item : evidence_of(h, v)) {
        report.evidence_total += 1;
        // Hash the evidence log IN ORDER (node order, then log order): the
        // digest pins the application order the two-slot pipeline must
        // preserve, not just the counts the fingerprint covers.
        evidence_hasher.update(item.to_string());
        for (const core::SignedMessage& msg : item.messages) {
          evidence_hasher.update(std::span<const std::uint8_t>(msg.payload));
        }
        if (!plan.attacked_provers.contains(item.accused)) {
          report.false_evidence += 1;
          continue;
        }
        if (auditor_provable(item.kind) && !auditor.validate(item)) {
          report.audit_failures += 1;
        }
        if (plan.colluders.contains(verifier)) continue;
        if (std::find(expected.begin(), expected.end(), item.kind) ==
            expected.end()) {
          continue;
        }
        std::vector<core::ProtocolId> covered;
        append_covered_rounds(item, covered);
        for (const core::ProtocolId& id : covered) {
          if (attacked_rounds.contains(id)) detected.insert(id);
        }
      }
    }
  }
  report.evidence_digest = crypto::digest_hex(evidence_hasher.finalize());
  report.attacked_rounds = attacked_rounds.size();
  report.detected_rounds = detected.size();
  report.detection_rate =
      attacked_rounds.empty()
          ? 1.0
          : static_cast<double>(detected.size()) /
                static_cast<double>(attacked_rounds.size());
}

void fill_byte_accounting(const net::SimStats& stats, ScenarioReport& report) {
  report.bytes_input = stats.channel_group(core::kInputChannel).bytes_sent;
  // kBundleChannel is a prefix of kBundleAggChannel, kGossipChannel of
  // kGossipRootChannel: each group covers both wire modes.
  report.bytes_bundle = stats.channel_group(core::kBundleChannel).bytes_sent;
  const net::ChannelStats gossip = stats.channel_group(core::kGossipChannel);
  report.bytes_gossip = gossip.bytes_sent;
  report.gossip_messages = gossip.messages_sent;
  report.bytes_reveal_export = stats.channel_group("pvr.reveal").bytes_sent +
                               stats.channel_group("pvr.export").bytes_sent;
  report.bytes_total = stats.channel_group("pvr.").bytes_sent;
}

}  // namespace pvr::scenario
