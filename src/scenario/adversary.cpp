#include "scenario/adversary.h"

#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "core/pvr_speaker.h"
#include "crypto/drbg.h"

namespace pvr::scenario {

namespace {

// Matches kGossipChannel and everything under it (kGossipRootChannel) by
// prefix, so a channel rename in pvr_speaker.h breaks this at the source
// instead of silently turning the wire chaos into a no-op.
[[nodiscard]] bool is_gossip_channel(const std::string& channel) {
  return channel.rfind(core::kGossipChannel, 0) == 0;
}

// Replayed copies of a captured root are re-injected at
// kReplayStepUs * (1 + i) after the capture (i-th replay of that message),
// so a strategy replaying up to R copies per message has a replay lag of
// exactly kReplayStepUs * R — the max_replay_lag() overrides below quote
// that product and must stay in sync with the schedule in
// make_chaos_interceptor.
constexpr net::SimTime kReplayStepUs = 10'000;

// Shared interceptor state. Strategies compose drop/delay/replay rules on
// top of it; kept in a shared_ptr because net::Interceptor is copyable.
struct WireChaosState {
  crypto::Drbg rng;
  // Verifier-pair gossip links eligible for dropping (never pairs that
  // involve a recipient, so the mesh provably stays connected through it).
  std::set<std::pair<bgp::AsNumber, bgp::AsNumber>> droppable;
  std::set<bgp::AsNumber> muted;  // colluders whose gossip is swallowed
  // Envelope bytes (hops byte stripped) already captured for replay: the
  // replayed copy passes through the interceptor again, and this set is
  // what keeps the replay fan-out finite.
  std::set<std::vector<std::uint8_t>> captured;
  std::size_t replay_budget = 0;  // total replays left to schedule
  std::size_t replays_per_message = 0;
  net::SimTime max_delay = 0;
  double drop_fraction = 0.0;

  explicit WireChaosState(std::uint64_t seed)
      : rng(seed, "scenario-wire-chaos") {}
};

// One interceptor serving every strategy: mute colluders, deterministically
// drop a fraction of provider-to-provider gossip, delay gossip, and replay
// captured gossip roots with the hop byte reset to zero (the strongest
// replay: the budget and first-seen dedup must stop it, not the hop count).
[[nodiscard]] net::Interceptor make_chaos_interceptor(
    std::shared_ptr<WireChaosState> state) {
  return [state](net::Transport& sim,
                 const net::Message& message) -> net::InterceptDecision {
    if (!is_gossip_channel(message.channel)) return {};
    if (state->muted.contains(message.from)) return {.drop = true};
    const auto pair = message.from < message.to
                          ? std::pair{message.from, message.to}
                          : std::pair{message.to, message.from};
    if (state->drop_fraction > 0.0 && state->droppable.contains(pair) &&
        state->rng.coin(state->drop_fraction)) {
      return {.drop = true};
    }
    if (state->replay_budget > 0 &&
        message.channel == core::kGossipRootChannel &&
        message.payload.size() > 1) {
      std::vector<std::uint8_t> envelope(message.payload.begin() + 1,
                                         message.payload.end());
      if (state->captured.insert(std::move(envelope)).second) {
        for (std::size_t i = 0;
             i < state->replays_per_message && state->replay_budget > 0; ++i) {
          state->replay_budget -= 1;
          net::Message replay = message;
          replay.payload[0] = 0;  // stale copy reinjected as if fresh
          const net::SimTime at =
              sim.now() + kReplayStepUs * (1 + static_cast<net::SimTime>(i));
          sim.schedule(at, [&sim, replay = std::move(replay)]() mutable {
            sim.send(std::move(replay));
          });
        }
      }
    }
    const net::SimTime delay =
        state->max_delay == 0 ? 0 : state->rng.uniform(state->max_delay);
    return {.extra_delay = delay};
  };
}

// Fills `droppable` with the provider-provider pairs of every hood.
void collect_droppable_pairs(WireChaosState& state,
                             const std::vector<Neighborhood>& hoods) {
  for (const Neighborhood& hood : hoods) {
    for (std::size_t i = 0; i < hood.providers.size(); ++i) {
      for (std::size_t j = i + 1; j < hood.providers.size(); ++j) {
        state.droppable.emplace(
            std::min(hood.providers[i], hood.providers[j]),
            std::max(hood.providers[i], hood.providers[j]));
      }
    }
  }
}

class HonestStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "honest"; }
  [[nodiscard]] bool expects_detection() const override { return false; }
  [[nodiscard]] std::vector<core::ViolationKind> expected_kinds()
      const override {
    return {};
  }
};

class EquivocatorStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "equivocator"; }
  [[nodiscard]] bool expects_detection() const override { return true; }
  [[nodiscard]] core::ProverMisbehavior prover_misbehavior() const override {
    return {.equivocate = true};
  }
};

class BatchSplitStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "batch_split"; }
  [[nodiscard]] bool expects_detection() const override { return true; }
  [[nodiscard]] core::ProverMisbehavior prover_misbehavior() const override {
    return {.equivocate = true, .batch_split = true};
  }
};

class SelectiveDropStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "selective_drop";
  }
  [[nodiscard]] bool expects_detection() const override { return true; }
  [[nodiscard]] core::ProverMisbehavior prover_misbehavior() const override {
    return {.equivocate = true};
  }
  void install(net::Transport& sim, const std::vector<Neighborhood>& hoods,
               const std::vector<bool>& attacked, std::uint64_t seed) override {
    (void)attacked;  // the hostile wire does not spare honest neighborhoods
    auto state = std::make_shared<WireChaosState>(seed);
    collect_droppable_pairs(*state, hoods);
    state->drop_fraction = 0.5;
    sim.set_interceptor(make_chaos_interceptor(std::move(state)));
  }
};

class DelayReplayStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "delay_replay";
  }
  [[nodiscard]] bool expects_detection() const override { return true; }
  [[nodiscard]] core::ProverMisbehavior prover_misbehavior() const override {
    return {.equivocate = true};
  }
  [[nodiscard]] net::SimTime max_extra_delay() const override {
    return 5'000;
  }
  [[nodiscard]] net::SimTime max_replay_lag() const override {
    return kReplayStepUs * 2;  // replays_per_message below
  }
  void install(net::Transport& sim, const std::vector<Neighborhood>& hoods,
               const std::vector<bool>& attacked, std::uint64_t seed) override {
    (void)attacked;  // the hostile wire does not spare honest neighborhoods
    auto state = std::make_shared<WireChaosState>(seed);
    collect_droppable_pairs(*state, hoods);
    state->drop_fraction = 0.3;
    state->max_delay = 5'000;
    state->replay_budget = 256;
    state->replays_per_message = 2;
    sim.set_interceptor(make_chaos_interceptor(std::move(state)));
  }
};

class ColludingPairStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "colluding_pair";
  }
  [[nodiscard]] bool expects_detection() const override { return true; }
  [[nodiscard]] core::ProverMisbehavior prover_misbehavior() const override {
    return {.equivocate = true};
  }
  [[nodiscard]] std::vector<bgp::AsNumber> colluders(
      const Neighborhood& hood) const override {
    // The accomplice is the first provider: it receives the conflicting
    // variant directly (first-half fan-out) and then stays silent.
    if (hood.providers.empty()) return {};
    return {hood.providers.front()};
  }
  void install(net::Transport& sim, const std::vector<Neighborhood>& hoods,
               const std::vector<bool>& attacked, std::uint64_t seed) override {
    auto state = std::make_shared<WireChaosState>(seed);
    // Only attacked neighborhoods HAVE an accomplice: muting a provider in
    // an honest neighborhood would contaminate the false-positive control
    // group the runner scores against an untouched wire.
    for (std::size_t h = 0; h < hoods.size(); ++h) {
      if (!attacked[h]) continue;
      for (const bgp::AsNumber colluder : colluders(hoods[h])) {
        state->muted.insert(colluder);
      }
    }
    sim.set_interceptor(make_chaos_interceptor(std::move(state)));
  }
};

// Honest provers + an aggressive replaying relay. The contract is the
// inverse of the attacks above: the hop budget and the first-seen slots
// must stop the storm, and NO evidence may appear against anyone.
class ReplayRelayStrategy final : public AdversaryStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "replay_relay";
  }
  [[nodiscard]] bool expects_detection() const override { return false; }
  [[nodiscard]] std::vector<core::ViolationKind> expected_kinds()
      const override {
    return {};
  }
  [[nodiscard]] net::SimTime max_replay_lag() const override {
    return kReplayStepUs * 3;  // replays_per_message below
  }
  void install(net::Transport& sim, const std::vector<Neighborhood>& hoods,
               const std::vector<bool>& attacked, std::uint64_t seed) override {
    (void)hoods;
    (void)attacked;
    auto state = std::make_shared<WireChaosState>(seed);
    state->replay_budget = 512;
    state->replays_per_message = 3;
    sim.set_interceptor(make_chaos_interceptor(std::move(state)));
  }
};

}  // namespace

std::unique_ptr<AdversaryStrategy> make_adversary(std::string_view name) {
  if (name == "honest") return std::make_unique<HonestStrategy>();
  if (name == "equivocator") return std::make_unique<EquivocatorStrategy>();
  if (name == "batch_split") return std::make_unique<BatchSplitStrategy>();
  if (name == "selective_drop") {
    return std::make_unique<SelectiveDropStrategy>();
  }
  if (name == "delay_replay") return std::make_unique<DelayReplayStrategy>();
  if (name == "colluding_pair") {
    return std::make_unique<ColludingPairStrategy>();
  }
  if (name == "replay_relay") return std::make_unique<ReplayRelayStrategy>();
  throw std::invalid_argument("make_adversary: unknown strategy '" +
                              std::string(name) + "'");
}

std::vector<std::string_view> adversary_names() {
  return {"honest",       "equivocator",  "batch_split", "selective_drop",
          "delay_replay", "colluding_pair", "replay_relay"};
}

}  // namespace pvr::scenario
