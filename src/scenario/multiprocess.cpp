#include "scenario/multiprocess.h"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "core/verify_context.h"
#include "crypto/encoding.h"
#include "engine/verification_engine.h"
#include "net/frame.h"
#include "net/simulator.h"
#include "obs/export.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace pvr::scenario {

namespace {

constexpr std::uint8_t kGrantApp = 0;
constexpr std::uint8_t kGrantTimer = 1;
constexpr std::uint8_t kGrantDeliver = 2;
constexpr std::uint8_t kActionSend = 0;
constexpr std::uint8_t kActionSchedule = 1;

[[nodiscard]] std::pair<net::NodeId, net::NodeId> norm_pair(net::NodeId a,
                                                            net::NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

// ---------------------------------------------------------------------------
// Child side: the lockstep transport and grant server.
// ---------------------------------------------------------------------------

struct SendAction {
  std::uint64_t cookie = 0;
  net::NodeId from = 0;
  net::NodeId to = 0;
  std::string channel;
  std::uint32_t payload_size = 0;
};

struct ScheduleAction {
  net::SimTime at = 0;
  std::uint64_t timer_id = 0;
};

struct Action {
  bool is_send = false;
  SendAction send;
  ScheduleAction schedule;
};

// The node-process message plane. Executes ONLY inside a conductor grant:
// now() is the granted event time, send() relays real bytes to the owning
// peer process (or buffers locally) and RECORDS the send so the conductor
// can mirror it as a placeholder, schedule() parks the closure until the
// conductor grants the timer.
class LockstepTransport final : public net::Transport {
 public:
  LockstepTransport(const WorldPlan& plan, std::size_t process_index,
                    std::size_t processes)
      : plan_(&plan), process_index_(process_index), processes_(processes) {
    for (const PlannedLink& link : plan.links) {
      links_.insert(norm_pair(link.a, link.b));
      adjacency_[link.a].push_back(link.b);
      adjacency_[link.b].push_back(link.a);
    }
  }

  // Peer relay hookup (owned by the grant server loop).
  std::function<void(std::size_t owner, std::uint64_t cookie,
                     const net::Message& message)>
      relay;

  void begin_grant(net::SimTime at) {
    now_ = at;
    actions_.clear();
  }
  [[nodiscard]] const std::vector<Action>& actions() const noexcept {
    return actions_;
  }
  [[nodiscard]] std::map<std::uint64_t, net::Message>& local_buffer() noexcept {
    return buffer_;
  }
  [[nodiscard]] std::function<void()> take_timer(std::uint64_t id) {
    const auto it = timers_.find(id);
    if (it == timers_.end()) {
      throw std::runtime_error("lockstep: grant for unknown timer");
    }
    std::function<void()> fn = std::move(it->second);
    timers_.erase(it);
    return fn;
  }

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "lockstep";
  }

  void send(net::Message message) override {
    if (!links_.contains(norm_pair(message.from, message.to))) {
      throw std::logic_error("LockstepTransport::send: no link between nodes");
    }
    const std::uint64_t cookie =
        (static_cast<std::uint64_t>(process_index_ + 1) << 40) |
        next_cookie_++;
    // Local byte accounting for live introspection (kFrameStats). The
    // CONDUCTOR's simulator keeps the authoritative books the report is
    // scored from; these per-process numbers feed the polled time series.
    stats_.messages_sent += 1;
    stats_.bytes_sent += message.wire_size();
    net::ChannelStats& channel_stats = stats_.per_channel[message.channel];
    channel_stats.messages_sent += 1;
    channel_stats.bytes_sent += message.wire_size();
    // The send half of the cross-process flow arrow: the cookie already
    // travels to the owning process (it keys the relay), so the delivery
    // end can emit the matching 'f' in its own trace shard.
    obs::TraceWriter& tracer = obs::TraceWriter::global();
    if (tracer.active()) {
      tracer.flow('s', "msg.flow", "flow", obs::Track::kSim, message.from,
                  now_, cookie);
    }
    actions_.push_back(Action{
        .is_send = true,
        .send = SendAction{
            .cookie = cookie,
            .from = message.from,
            .to = message.to,
            .channel = message.channel,
            .payload_size = static_cast<std::uint32_t>(message.payload.size())},
        .schedule = {}});
    const std::size_t owner = owner_of(*plan_, message.to, processes_);
    if (owner == process_index_) {
      buffer_.emplace(cookie, std::move(message));
    } else {
      relay(owner, cookie, message);
    }
  }

  // Called when a granted delivery lands on a local node, completing the
  // sent/delivered pairing in the polled stats.
  void note_delivered(const net::Message& message) {
    stats_.messages_delivered += 1;
    stats_.per_channel[message.channel].messages_delivered += 1;
  }

  [[nodiscard]] bool connected(net::NodeId a, net::NodeId b) const override {
    return links_.contains(norm_pair(a, b));
  }
  [[nodiscard]] std::vector<net::NodeId> neighbors_of(
      net::NodeId id) const override {
    const auto it = adjacency_.find(id);
    return it == adjacency_.end() ? std::vector<net::NodeId>{} : it->second;
  }
  void set_interceptor(net::Interceptor interceptor) override {
    if (interceptor) {
      throw std::logic_error(
          "LockstepTransport: interception runs on the conductor");
    }
  }
  [[nodiscard]] net::SimTime now() const override { return now_; }
  void schedule(net::SimTime at, std::function<void()> fn) override {
    const std::uint64_t id = next_timer_++;
    timers_.emplace(id, std::move(fn));
    actions_.push_back(Action{
        .is_send = false,
        .send = {},
        .schedule = ScheduleAction{.at = at, .timer_id = id}});
  }
  void schedule_periodic(net::SimTime interval,
                         std::function<void()> fn) override {
    (void)interval;
    (void)fn;
    throw std::logic_error("LockstepTransport: periodic tasks unsupported");
  }
  [[nodiscard]] const net::SimStats& stats() const override { return stats_; }
  void set_trace(net::MessageTrace* trace) override { (void)trace; }

 private:
  const WorldPlan* plan_;
  std::size_t process_index_;
  std::size_t processes_;
  std::set<std::pair<net::NodeId, net::NodeId>> links_;
  std::map<net::NodeId, std::vector<net::NodeId>> adjacency_;
  net::SimTime now_ = 0;
  std::vector<Action> actions_;
  std::map<std::uint64_t, std::function<void()>> timers_;
  std::uint64_t next_timer_ = 1;
  std::uint64_t next_cookie_ = 1;
  std::map<std::uint64_t, net::Message> buffer_;  // cookies owned locally
  // This process's shard of the traffic (kFrameStats polls report it); the
  // conductor's simulator keeps the authoritative report accounting.
  net::SimStats stats_;
};

struct LocalVerifier {
  std::size_t hood = 0;
  std::size_t verifier_index = 0;
  core::PvrNode* node = nullptr;
};

struct LocalProver {
  std::size_t hood = 0;
  core::PvrNode* node = nullptr;
};

}  // namespace

std::size_t owner_of(const WorldPlan& plan, bgp::AsNumber asn,
                     std::size_t processes) {
  const auto it = std::lower_bound(plan.participants.begin(),
                                   plan.participants.end(), asn);
  if (it == plan.participants.end() || *it != asn) {
    throw std::invalid_argument("owner_of: unknown participant");
  }
  return static_cast<std::size_t>(it - plan.participants.begin()) % processes;
}

int run_node_process(const std::string& scenario, std::uint64_t seed,
                     std::size_t rounds, std::size_t process_index,
                     std::size_t processes, std::uint16_t control_port,
                     const std::string& trace_base) {
  std::string trace_path;
  if (!trace_base.empty()) {
    trace_path = trace_base + "." + std::to_string(::getpid()) + ".json";
    if (!obs::TraceWriter::global().open(trace_path)) trace_path.clear();
  }
  const ScenarioSpec spec = named_scenario(scenario, seed, rounds);
  const WorldPlan plan = plan_world(spec);

  // Data plane: listen for higher-index peers, dial lower-index ones.
  std::uint16_t data_port = 0;
  const int data_listen = net::listen_loopback(data_port);

  net::FrameConn control(net::connect_loopback(control_port));
  {
    crypto::ByteWriter hello;
    hello.put_u32(static_cast<std::uint32_t>(process_index));
    hello.put_u16(data_port);
    control.append(net::kFrameHello, hello.data());
    if (!control.flush_all()) return 2;
  }

  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;
  if (!control.read_one_frame(type, body) || type != net::kFramePeers) {
    return 2;
  }
  std::map<std::size_t, std::uint16_t> peer_ports;
  {
    crypto::ByteReader reader(body);
    const std::uint32_t count = reader.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t index = reader.get_u32();
      peer_ports[index] = reader.get_u16();
    }
  }

  std::map<std::size_t, std::unique_ptr<net::FrameConn>> peers;
  for (const auto& [index, port] : peer_ports) {
    if (index >= process_index) continue;
    auto conn = std::make_unique<net::FrameConn>(net::connect_loopback(port));
    crypto::ByteWriter hello;
    hello.put_u32(static_cast<std::uint32_t>(process_index));
    conn->append(net::kFrameHello, hello.data());
    if (!conn->flush_all()) return 2;
    peers.emplace(index, std::move(conn));
  }
  while (peers.size() + 1 < processes) {
    pollfd pfd{.fd = data_listen, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, 10'000) < 0 && errno != EINTR) return 2;
    const int fd = net::accept_connection(data_listen);
    if (fd < 0) continue;
    auto conn = std::make_unique<net::FrameConn>(fd);
    std::uint8_t peer_type = 0;
    std::vector<std::uint8_t> peer_body;
    if (!conn->read_one_frame(peer_type, peer_body) ||
        peer_type != net::kFrameHello) {
      return 2;
    }
    crypto::ByteReader reader(peer_body);
    peers.emplace(reader.get_u32(), std::move(conn));
  }
  control.append(net::kFrameReady, {});
  if (!control.flush_all()) return 2;

  // Local shard of the world: every participant this process owns.
  LockstepTransport transport(plan, process_index, processes);
  // Shard-local world context (each process builds its own; the shared
  // precompute amortizes within the shard, verdicts are identical).
  const core::VerifyContext world_ctx(&plan.keys.directory,
                                      spec.world_sig_cache);
  std::vector<std::unique_ptr<core::PvrNode>> owned;
  std::map<net::NodeId, core::PvrNode*> local_nodes;
  std::vector<LocalVerifier> local_verifiers;
  std::vector<LocalProver> local_provers;
  for (std::size_t h = 0; h < plan.hoods.size(); ++h) {
    const Neighborhood& hood = plan.hoods[h];
    const auto adopt = [&](bgp::AsNumber asn,
                           core::PvrRole role) -> core::PvrNode* {
      if (owner_of(plan, asn, processes) != process_index) return nullptr;
      core::PvrConfig cfg = plan.node_config(spec, h, asn, role);
      cfg.verify_ctx = &world_ctx;
      owned.push_back(std::make_unique<core::PvrNode>(std::move(cfg)));
      core::PvrNode* raw = owned.back().get();
      local_nodes.emplace(asn, raw);
      return raw;
    };
    if (core::PvrNode* prover = adopt(hood.prover, core::PvrRole::kProver)) {
      local_provers.push_back(LocalProver{.hood = h, .node = prover});
    }
    const std::vector<bgp::AsNumber> verifier_asns = hood.verifiers();
    for (std::size_t v = 0; v < verifier_asns.size(); ++v) {
      const core::PvrRole role = v + 1 == verifier_asns.size()
                                     ? core::PvrRole::kRecipient
                                     : core::PvrRole::kProvider;
      if (core::PvrNode* node = adopt(verifier_asns[v], role)) {
        local_verifiers.push_back(
            LocalVerifier{.hood = h, .verifier_index = v, .node = node});
      }
    }
  }

  // Relayed real messages from peer processes, keyed by cookie. Entries are
  // kept after delivery so an interceptor-replayed placeholder can be
  // granted a second time.
  std::map<std::uint64_t, net::Message> relayed;
  const auto drain_peer = [&](net::FrameConn& conn) {
    const bool alive = conn.read_frames(
        [&](std::uint8_t frame_type, std::span<const std::uint8_t> data) {
          if (frame_type != net::kFrameMessage) {
            throw std::runtime_error("lockstep: unexpected peer frame");
          }
          crypto::ByteReader reader(data);
          const std::uint64_t cookie = reader.get_u64();
          net::Message message = net::decode_message_body(
              std::span<const std::uint8_t>(data).subspan(8));
          relayed.emplace(cookie, std::move(message));
        });
    if (!alive) throw std::runtime_error("lockstep: peer connection lost");
  };
  const auto drain_peers = [&] {
    for (auto& [index, conn] : peers) drain_peer(*conn);
  };

  transport.relay = [&](std::size_t owner, std::uint64_t cookie,
                        const net::Message& message) {
    crypto::ByteWriter writer;
    writer.put_u64(cookie);
    const std::vector<std::uint8_t> encoded =
        net::encode_message_body(message);
    writer.put_raw(encoded);
    peers.at(owner)->append(net::kFrameMessage, writer.data());
  };

  const auto await_message = [&](std::uint64_t cookie) -> net::Message {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        const auto local = transport.local_buffer().find(cookie);
        if (local != transport.local_buffer().end()) return local->second;
      }
      const auto remote = relayed.find(cookie);
      if (remote != relayed.end()) return remote->second;
      std::vector<pollfd> fds;
      for (const auto& [index, conn] : peers) {
        fds.push_back(pollfd{.fd = conn->fd(), .events = POLLIN,
                             .revents = 0});
      }
      if (!fds.empty()) (void)::poll(fds.data(), fds.size(), 100);
      drain_peers();
    }
    throw std::runtime_error("lockstep: granted message never arrived");
  };

  net::MessageTrace shard;

  // Observability: the metrics baseline isolates this process's RUN work
  // (grant handlers + shard verification) from startup noise — plan_world
  // keygen runs in every process and must not be multiply counted when the
  // conductor merges the shard deltas. The StatsServer answers the
  // conductor's kFrameStats polls with live gauges over the local nodes.
  const obs::MetricsSnapshot obs_baseline =
      obs::MetricsRegistry::global().snapshot();
  obs::StatsServer stats_server(static_cast<std::uint32_t>(process_index));
  stats_server.arm();
  stats_server.set_gauges([&local_nodes] {
    obs::StatsServer::Gauges gauges;
    for (const auto& [asn, node] : local_nodes) {
      gauges.open_rounds += static_cast<std::int64_t>(node->open_rounds());
      gauges.peak_open_rounds =
          std::max(gauges.peak_open_rounds,
                   static_cast<std::int64_t>(node->peak_open_rounds()));
    }
    return gauges;
  });

  // NOTE: peer connections are drained only inside await_message — a peer
  // drops its connections the moment it finishes, and a drain at the loop
  // top would misread that teardown race as a mid-run failure.
  while (true) {
    if (!control.read_one_frame(type, body)) return 2;
    if (type == net::kFrameStats) {
      crypto::ByteWriter reply;
      reply.put_raw(
          stats_server.sample(transport.now(), transport.stats()).encode());
      control.append(net::kFrameStats, reply.data());
      if (!control.flush_all()) return 2;
      continue;
    }
    if (type == net::kFrameGrant) {
      crypto::ByteReader reader(body);
      const std::uint8_t kind = reader.get_u8();
      const net::SimTime at = reader.get_u64();
      transport.begin_grant(at);
      if (kind == kGrantApp) {
        const AppEvent& event = plan.app_events.at(reader.get_u32());
        core::PvrNode* node = local_nodes.at(event.actor);
        if (event.is_input) {
          node->provide_input(
              transport, event.epoch, event.prefix,
              provider_route(event.prefix, event.actor, event.route_length));
        } else {
          node->start_round(transport, event.epoch, event.prefix);
        }
      } else if (kind == kGrantTimer) {
        transport.take_timer(reader.get_u64())();
      } else if (kind == kGrantDeliver) {
        const std::uint64_t cookie = reader.get_u64();
        const std::uint64_t trace_seq = reader.get_u64();
        const net::Message message = await_message(cookie);
        shard.append(net::TraceEntry{
            .sequence = trace_seq, .at = at, .message = message});
        transport.note_delivered(message);
        obs::TraceWriter& tracer = obs::TraceWriter::global();
        if (tracer.active()) {
          // Anchor slice + finish half of the flow arrow whose 's' lives in
          // the SENDING process's shard (same cookie).
          tracer.sim_span("msg.deliver", message.to, at, at);
          tracer.flow('f', "msg.flow", "flow", obs::Track::kSim, message.to,
                      at, cookie);
        }
        local_nodes.at(message.to)->on_message(transport, message);
      } else {
        return 2;
      }
      // Real bytes first (so a granted delivery can never outrun them),
      // then the ordered action list back to the conductor.
      for (auto& [index, conn] : peers) {
        if (conn->has_pending_out() && !conn->flush_all()) return 2;
      }
      crypto::ByteWriter done;
      done.put_u32(static_cast<std::uint32_t>(transport.actions().size()));
      for (const Action& action : transport.actions()) {
        if (action.is_send) {
          done.put_u8(kActionSend);
          done.put_u64(action.send.cookie);
          done.put_u32(action.send.from);
          done.put_u32(action.send.to);
          done.put_string(action.send.channel);
          done.put_u32(action.send.payload_size);
        } else {
          done.put_u8(kActionSchedule);
          done.put_u64(action.schedule.at);
          done.put_u64(action.schedule.timer_id);
        }
      }
      control.append(net::kFrameDone, done.data());
      if (!control.flush_all()) return 2;
      continue;
    }
    if (type == net::kFrameFinish) break;
    return 2;
  }

  // Offline verification of the local verifier shard, exactly the runner's
  // loop restricted to locally-owned nodes. Evidence is engine-order
  // deterministic, so shards concatenate into the monolithic logs.
  engine::VerificationEngine engine({.workers = spec.workers}, &world_ctx);
  engine::EngineReport drained;
  {
    const obs::TraceSpan verify_span("node.verify_shard", "scenario");
    for (const RoundArrival& arrival : plan.arrivals) {
      const core::ProtocolId id{
          .prover = plan.hoods[arrival.neighborhood].prover,
          .prefix = arrival.prefix,
          .epoch = arrival.epoch};
      for (const LocalVerifier& verifier : local_verifiers) {
        if (verifier.hood != arrival.neighborhood) continue;
        (void)engine.submit_node_round(*verifier.node, id);
      }
    }
    drained = engine.drain(/*rethrow_errors=*/false);
  }

  crypto::ByteWriter result;
  result.put_u64(drained.failed_rounds);
  result.put_u32(static_cast<std::uint32_t>(local_provers.size()));
  for (const LocalProver& prover : local_provers) {
    result.put_u32(plan.hoods[prover.hood].prover);
    result.put_u64(prover.node->rounds_started());
    result.put_u64(prover.node->windows_fired());
  }
  result.put_u32(static_cast<std::uint32_t>(local_verifiers.size()));
  for (const LocalVerifier& verifier : local_verifiers) {
    result.put_u32(static_cast<std::uint32_t>(verifier.hood));
    result.put_u32(static_cast<std::uint32_t>(verifier.verifier_index));
    const std::vector<core::Evidence>& log = verifier.node->evidence();
    result.put_u32(static_cast<std::uint32_t>(log.size()));
    for (const core::Evidence& item : log) result.put_bytes(item.encode());
  }
  result.put_u32(static_cast<std::uint32_t>(shard.entries.size()));
  for (const net::TraceEntry& entry : shard.entries) {
    result.put_u64(entry.sequence);
    result.put_u64(entry.at);
    result.put_bytes(net::encode_message_body(entry.message));
  }
  // Observability shard: the run's metrics delta (conductor merges all
  // shards) and this process's trace file, flushed before the result frame
  // so the conductor can stitch immediately after reaping.
  result.put_bytes(obs::MetricsSnapshot::delta(
                       obs::MetricsRegistry::global().snapshot(), obs_baseline)
                       .encode());
  if (!trace_path.empty() && !obs::TraceWriter::global().close()) {
    trace_path.clear();
  }
  result.put_string(trace_path);
  control.append(net::kFrameResult, result.data());
  if (!control.flush_all()) return 2;
  ::close(data_listen);
  return 0;
}

// ---------------------------------------------------------------------------
// Conductor side.
// ---------------------------------------------------------------------------

namespace {

class Conductor;

// Conductor-side stand-in for a remote node: a placeholder delivery means
// "the real message may now be delivered at its owner".
class ProxyNode final : public net::Node {
 public:
  explicit ProxyNode(Conductor* conductor) noexcept : conductor_(conductor) {}
  void on_message(net::Transport& transport,
                  const net::Message& message) override;

 private:
  Conductor* conductor_;
};

struct ChildProc {
  pid_t pid = -1;
  std::unique_ptr<net::FrameConn> control;
  std::uint16_t data_port = 0;
};

class Conductor {
 public:
  explicit Conductor(const MultiprocessOptions& options)
      : options_(options),
        spec_(named_scenario(options.scenario, options.seed, options.rounds)),
        plan_(plan_world(spec_)),
        sim_(spec_.seed) {
    if (options_.processes < 1) {
      throw std::invalid_argument("conductor: need at least one process");
    }
    if (plan_.adversary->max_replay_lag() > 0) {
      // Replay re-injects a captured placeholder; the cookie re-grant path
      // handles it, but it is not exercised by the gated demo — refuse
      // rather than silently claim parity for it.
      throw std::invalid_argument(
          "conductor: replaying adversaries are not supported multiprocess");
    }
  }

  MultiprocessResult run();

  void on_placeholder(const net::Message& message) {
    const std::size_t owner =
        owner_of(plan_, message.to, options_.processes);
    // The relay hop of the flow arrow: send ('s') and delivery ('f') live
    // in child shards; this step ('t') pins the conductor's grant moment
    // onto the same cookie chain in the merged timeline.
    obs::TraceWriter& tracer = obs::TraceWriter::global();
    if (tracer.active()) {
      tracer.flow('t', "msg.flow", "flow", obs::Track::kSim, message.to,
                  sim_.now(), message.cookie);
    }
    crypto::ByteWriter grant;
    grant.put_u8(kGrantDeliver);
    grant.put_u64(sim_.now());
    grant.put_u64(message.cookie);
    grant.put_u64(next_trace_sequence_++);
    grant_and_apply(owner, grant.data());
  }

 private:
  void spawn_children(std::uint16_t control_port);
  void handshake(int control_listen);
  void grant_and_apply(std::size_t child,
                       std::span<const std::uint8_t> grant_body);
  void poll_child_stats(std::size_t child);
  void collect_results(MultiprocessResult& out);
  void reap_children();

  MultiprocessOptions options_;
  ScenarioSpec spec_;
  WorldPlan plan_;
  net::Simulator sim_;
  std::vector<ChildProc> children_;
  std::uint64_t next_trace_sequence_ = 0;
  obs::MetricsSnapshot obs_baseline_;
  std::vector<MultiprocessResult::StatsPoint> stats_timeline_;
  std::vector<std::string> child_trace_paths_;
};

void ProxyNode::on_message(net::Transport& transport,
                           const net::Message& message) {
  (void)transport;
  conductor_->on_placeholder(message);
}

void Conductor::spawn_children(std::uint16_t control_port) {
  children_.resize(options_.processes);
  for (std::size_t i = 0; i < options_.processes; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("conductor: fork failed");
    if (pid == 0) {
      char seed[32], rounds[32], index[32], procs[32], port[32];
      std::snprintf(seed, sizeof(seed), "%llu",
                    static_cast<unsigned long long>(options_.seed));
      std::snprintf(rounds, sizeof(rounds), "%zu", options_.rounds);
      std::snprintf(index, sizeof(index), "%zu", i);
      std::snprintf(procs, sizeof(procs), "%zu", options_.processes);
      std::snprintf(port, sizeof(port), "%u", control_port);
      // "-" = no tracing: argv slots cannot be empty strings.
      const std::string trace_arg =
          options_.trace_base.empty() ? "-" : options_.trace_base;
      ::execl(options_.self_exe.c_str(), options_.self_exe.c_str(), "--node",
              options_.scenario.c_str(), seed, rounds, index, procs, port,
              trace_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    children_[i].pid = pid;
  }
}

void Conductor::handshake(int control_listen) {
  std::size_t connected = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (connected < options_.processes) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("conductor: children did not connect");
    }
    pollfd pfd{.fd = control_listen, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, 1000) < 0 && errno != EINTR) {
      throw std::runtime_error("conductor: poll failed");
    }
    const int fd = net::accept_connection(control_listen);
    if (fd < 0) continue;
    auto conn = std::make_unique<net::FrameConn>(fd);
    std::uint8_t type = 0;
    std::vector<std::uint8_t> body;
    if (!conn->read_one_frame(type, body) || type != net::kFrameHello) {
      throw std::runtime_error("conductor: bad child hello");
    }
    crypto::ByteReader reader(body);
    const std::size_t index = reader.get_u32();
    children_.at(index).control = std::move(conn);
    children_[index].data_port = reader.get_u16();
    connected += 1;
  }
  // Everyone is in: publish the peer table, await readiness.
  for (std::size_t i = 0; i < children_.size(); ++i) {
    crypto::ByteWriter peers;
    peers.put_u32(static_cast<std::uint32_t>(children_.size() - 1));
    for (std::size_t j = 0; j < children_.size(); ++j) {
      if (j == i) continue;
      peers.put_u32(static_cast<std::uint32_t>(j));
      peers.put_u16(children_[j].data_port);
    }
    children_[i].control->append(net::kFramePeers, peers.data());
    if (!children_[i].control->flush_all()) {
      throw std::runtime_error("conductor: child hung up");
    }
  }
  for (ChildProc& child : children_) {
    std::uint8_t type = 0;
    std::vector<std::uint8_t> body;
    if (!child.control->read_one_frame(type, body) ||
        type != net::kFrameReady) {
      throw std::runtime_error("conductor: child failed to become ready");
    }
  }
}

void Conductor::grant_and_apply(std::size_t child,
                                std::span<const std::uint8_t> grant_body) {
  net::FrameConn& control = *children_.at(child).control;
  control.append(net::kFrameGrant, grant_body);
  if (!control.flush_all()) {
    throw std::runtime_error("conductor: child hung up mid-grant");
  }
  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;
  if (!control.read_one_frame(type, body) || type != net::kFrameDone) {
    throw std::runtime_error("conductor: missing done reply");
  }
  // Mirror the child's actions into the deterministic queue, in execution
  // order — this is what pins sequence parity with the monolithic run.
  crypto::ByteReader reader(body);
  const std::uint32_t count = reader.get_u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t kind = reader.get_u8();
    if (kind == kActionSend) {
      net::Message placeholder;
      placeholder.cookie = reader.get_u64();
      placeholder.from = reader.get_u32();
      placeholder.to = reader.get_u32();
      placeholder.channel = reader.get_string();
      placeholder.payload.resize(reader.get_u32());  // size-true, zero-filled
      sim_.send(std::move(placeholder));
    } else if (kind == kActionSchedule) {
      const net::SimTime at = reader.get_u64();
      const std::uint64_t timer_id = reader.get_u64();
      sim_.schedule(at, [this, child, timer_id] {
        crypto::ByteWriter grant;
        grant.put_u8(kGrantTimer);
        grant.put_u64(sim_.now());
        grant.put_u64(timer_id);
        grant_and_apply(child, grant.data());
      });
    } else {
      throw std::runtime_error("conductor: malformed action");
    }
  }
  if (options_.poll_stats) poll_child_stats(child);
}

void Conductor::poll_child_stats(std::size_t child) {
  net::FrameConn& control = *children_.at(child).control;
  control.append(net::kFrameStats, {});
  if (!control.flush_all()) {
    throw std::runtime_error("conductor: child hung up at stats poll");
  }
  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;
  if (!control.read_one_frame(type, body) || type != net::kFrameStats) {
    throw std::runtime_error("conductor: missing stats reply");
  }
  const obs::StatsSample sample = obs::StatsSample::decode(body);
  MultiprocessResult::StatsPoint point;
  point.rank = sample.rank;
  point.at_us = sample.at_us;
  point.open_rounds = sample.open_rounds;
  point.peak_open_rounds = sample.peak_open_rounds;
  point.messages_sent = sample.messages_sent;
  for (const auto& entry : sample.metrics.scalars) {
    if (entry.name == "crypto.rsa_verifies") point.rsa_verifies = entry.value;
  }
  stats_timeline_.push_back(point);
}

void Conductor::collect_results(MultiprocessResult& out) {
  std::map<std::pair<std::size_t, std::size_t>, std::vector<core::Evidence>>
      evidence;
  for (std::size_t h = 0; h < plan_.hoods.size(); ++h) {
    const std::size_t verifiers = plan_.hoods[h].verifiers().size();
    for (std::size_t v = 0; v < verifiers; ++v) evidence[{h, v}];
  }
  std::map<net::NodeId, net::TraceProverMeta> provers;

  for (ChildProc& child : children_) {
    child.control->append(net::kFrameFinish, {});
    if (!child.control->flush_all()) {
      throw std::runtime_error("conductor: child hung up at finish");
    }
  }
  for (ChildProc& child : children_) {
    std::uint8_t type = 0;
    std::vector<std::uint8_t> body;
    if (!child.control->read_one_frame(type, body) ||
        type != net::kFrameResult) {
      throw std::runtime_error("conductor: missing result");
    }
    crypto::ByteReader reader(body);
    out.report.verify_failures += reader.get_u64();
    const std::uint32_t prover_count = reader.get_u32();
    for (std::uint32_t i = 0; i < prover_count; ++i) {
      net::TraceProverMeta meta;
      meta.node = reader.get_u32();
      meta.rounds_started = reader.get_u64();
      meta.windows_fired = reader.get_u64();
      provers.emplace(meta.node, meta);
    }
    const std::uint32_t verifier_count = reader.get_u32();
    for (std::uint32_t i = 0; i < verifier_count; ++i) {
      const std::size_t hood = reader.get_u32();
      const std::size_t index = reader.get_u32();
      const std::uint32_t items = reader.get_u32();
      std::vector<core::Evidence>& log = evidence.at({hood, index});
      for (std::uint32_t item = 0; item < items; ++item) {
        log.push_back(core::Evidence::decode(reader.get_bytes()));
      }
    }
    const std::uint32_t entry_count = reader.get_u32();
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      net::TraceEntry entry;
      entry.sequence = reader.get_u64();
      entry.at = reader.get_u64();
      entry.message = net::decode_message_body(reader.get_bytes());
      out.trace.append(std::move(entry));
    }
    out.child_obs.push_back(obs::MetricsSnapshot::decode(reader.get_bytes()));
    child_trace_paths_.push_back(reader.get_string());
  }
  out.trace.sort_by_sequence();
  out.trace.scenario = spec_.name;
  out.trace.seed = spec_.seed;
  out.trace.backend = "multiprocess";
  out.trace.stats = sim_.stats();
  for (const auto& [node, meta] : provers) out.trace.provers.push_back(meta);

  // Score and account exactly like the monolithic runner.
  out.report.scenario = spec_.name;
  out.report.adversary = spec_.adversary;
  out.report.seed = spec_.seed;
  out.report.workers = spec_.workers;
  out.report.online = false;
  out.report.as_count = plan_.topology.graph.as_count();
  out.report.neighborhoods = plan_.hoods.size();
  out.report.pvr_nodes = plan_.participants.size();
  for (const auto& [node, meta] : provers) {
    out.report.rounds_started += meta.rounds_started;
    out.report.windows_fired += meta.windows_fired;
  }
  out.report.coalesced = out.report.windows_fired < out.report.rounds_started;
  out.report.drain_batches = 1;
  out.report.hw_threads = std::thread::hardware_concurrency();
  score_evidence(plan_,
                 [&evidence](std::size_t h, std::size_t v)
                     -> const std::vector<core::Evidence>& {
                   return evidence.at({h, v});
                 },
                 out.report);
  fill_byte_accounting(sim_.stats(), out.report);

  // Cross-process aggregation: the conductor's own run delta (its
  // simulator drove the schedule and the scoring pass just ran) merged
  // with every child's shard delta. The kSim section of the merge must
  // equal the single-process run byte-for-byte — callers gate on it
  // against ScenarioReport::obs_sim_fingerprint.
  out.merged_obs = obs::MetricsSnapshot::delta(
      obs::MetricsRegistry::global().snapshot(), obs_baseline_);
  for (const obs::MetricsSnapshot& shard : out.child_obs) {
    out.merged_obs.merge(shard);
  }
  out.stats_timeline = std::move(stats_timeline_);
}

void Conductor::reap_children() {
  for (ChildProc& child : children_) {
    if (child.pid <= 0) continue;
    int status = 0;
    (void)::waitpid(child.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      throw std::runtime_error("conductor: node process failed");
    }
  }
}

MultiprocessResult Conductor::run() {
  std::uint16_t control_port = 0;
  const int control_listen = net::listen_loopback(control_port);
  spawn_children(control_port);
  try {
    if (!options_.trace_base.empty()) {
      (void)obs::TraceWriter::global().open(options_.trace_base +
                                            ".conductor.json");
    }
    handshake(control_listen);

    // The conductor's deterministic world: proxies, the planned links, the
    // adversary's wire hook, and the planned app schedule as grants.
    for (const bgp::AsNumber asn : plan_.participants) {
      sim_.add_node(asn, std::make_unique<ProxyNode>(this));
    }
    for (const PlannedLink& link : plan_.links) {
      sim_.connect(link.a, link.b, link.config);
    }
    plan_.adversary->install(sim_.transport(), plan_.hoods, plan_.attacked,
                             spec_.seed);
    for (std::size_t k = 0; k < plan_.app_events.size(); ++k) {
      const AppEvent& event = plan_.app_events[k];
      const std::size_t owner =
          owner_of(plan_, event.actor, options_.processes);
      sim_.schedule(event.at, [this, owner, k] {
        crypto::ByteWriter grant;
        grant.put_u8(kGrantApp);
        grant.put_u64(sim_.now());
        grant.put_u32(static_cast<std::uint32_t>(k));
        grant_and_apply(owner, grant.data());
      });
    }

    obs_baseline_ = obs::MetricsRegistry::global().snapshot();
    sim_.run();

    MultiprocessResult result;
    collect_results(result);
    reap_children();
    ::close(control_listen);

    if (!options_.trace_base.empty()) {
      std::vector<obs::TraceShard> shards;
      if (obs::TraceWriter::global().close()) {
        shards.push_back(obs::TraceShard{
            .path = options_.trace_base + ".conductor.json",
            .label = "conductor"});
      }
      for (std::size_t rank = 0; rank < child_trace_paths_.size(); ++rank) {
        if (child_trace_paths_[rank].empty()) continue;
        shards.push_back(
            obs::TraceShard{.path = child_trace_paths_[rank],
                            .label = "proc" + std::to_string(rank)});
      }
      if (!shards.empty()) {
        result.merged_trace_path = options_.trace_base + ".json";
        (void)obs::merge_traces(shards, result.merged_trace_path);
      }
    }
    return result;
  } catch (...) {
    for (ChildProc& child : children_) {
      if (child.pid > 0) {
        ::kill(child.pid, SIGKILL);
        int status = 0;
        (void)::waitpid(child.pid, &status, 0);
      }
    }
    ::close(control_listen);
    throw;
  }
}

}  // namespace

MultiprocessResult run_conductor(const MultiprocessOptions& options) {
  if (options.self_exe.empty()) {
    throw std::invalid_argument("run_conductor: self_exe required");
  }
  Conductor conductor(options);
  return conductor.run();
}

}  // namespace pvr::scenario
