// Seeded power-law AS topology generation for the scenario harness.
//
// generate_gao_rexford (src/bgp/topology.h) grows a hierarchy one provider
// pick at a time with an O(n) scan per pick; good enough for the BGP
// benches but quadratic in spirit and without tier labels. This generator
// is the scenario subsystem's replacement: preferential attachment over a
// repeated-endpoints vector (each AS appears once per adjacent link, so a
// uniform draw IS a degree-proportional draw — O(1) per pick), explicit
// tier labels, and customer/provider/peer edges that respect the
// Gao–Rexford structure. 10k+ ASes generate in well under a second, and a
// (params, seed) pair always yields the identical graph.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/topology.h"

namespace pvr::scenario {

enum class Tier : std::uint8_t {
  kTier1 = 0,  // settlement-free clique at the top
  kTransit = 1,  // regional transit: has both providers and customers
  kStub = 2,   // edge AS: providers only
};

struct TopologyParams {
  std::size_t as_count = 1000;
  std::size_t tier1_count = 8;       // fully meshed peer clique
  // Fraction of non-tier-1 ASes that are transit (the rest are stubs).
  double transit_fraction = 0.25;
  // Providers per new AS: 1 + Bernoulli(multihoming_probability) extras,
  // capped at max_providers. Preferential by degree.
  double multihoming_probability = 0.4;
  std::size_t max_providers = 3;
  // Lateral peering probability between a new transit AS and one earlier
  // transit AS of similar degree.
  double peer_probability = 0.1;
  bgp::AsNumber asn_base = 1;  // ASes are numbered asn_base..asn_base+n-1
};

struct GeneratedTopology {
  bgp::AsGraph graph;
  std::map<bgp::AsNumber, Tier> tiers;

  [[nodiscard]] Tier tier_of(bgp::AsNumber asn) const {
    return tiers.at(asn);
  }
  [[nodiscard]] std::size_t count_in_tier(Tier tier) const;
  [[nodiscard]] std::size_t max_degree() const;
};

// Deterministic in (params, seed). Throws std::invalid_argument when
// as_count < tier1_count + 1 or tier1_count == 0.
[[nodiscard]] GeneratedTopology generate_topology(const TopologyParams& params,
                                                  std::uint64_t seed);

// One PVR Figure-1 neighborhood carved out of a generated topology: a
// transit prover with its (route-providing) upstream neighbors and one
// customer as the recipient.
struct Neighborhood {
  bgp::AsNumber prover = 0;
  std::vector<bgp::AsNumber> providers;
  bgp::AsNumber recipient = 0;

  [[nodiscard]] std::vector<bgp::AsNumber> members() const;
  // The verifier set of this neighborhood: providers then the recipient —
  // the ONE ordering world construction, engine submission, and scoring
  // all share.
  [[nodiscard]] std::vector<bgp::AsNumber> verifiers() const;
};

// Greedily selects up to `count` pairwise-disjoint neighborhoods whose
// prover has >= min_providers upstream neighbors (capped at max_providers
// per neighborhood) and at least one customer. Deterministic: provers are
// considered in ascending ASN order. Disjointness keeps every AS in
// exactly one PvrNode role.
[[nodiscard]] std::vector<Neighborhood> select_neighborhoods(
    const GeneratedTopology& topology, std::size_t count,
    std::size_t min_providers, std::size_t max_providers);

}  // namespace pvr::scenario
