#include "scenario/topology_gen.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "crypto/drbg.h"

namespace pvr::scenario {

std::size_t GeneratedTopology::count_in_tier(Tier tier) const {
  std::size_t count = 0;
  for (const auto& [asn, t] : tiers) {
    if (t == tier) count += 1;
  }
  return count;
}

std::size_t GeneratedTopology::max_degree() const {
  std::size_t best = 0;
  for (const auto& [asn, tier] : tiers) {
    best = std::max(best, graph.neighbors(asn).size());
  }
  return best;
}

GeneratedTopology generate_topology(const TopologyParams& params,
                                    std::uint64_t seed) {
  if (params.tier1_count == 0 ||
      params.as_count < params.tier1_count + 1) {
    throw std::invalid_argument("generate_topology: bad tier sizes");
  }
  crypto::Drbg rng(seed, "scenario-topology");
  GeneratedTopology topology;

  // Every NON-STUB AS appears in `endpoints` once per adjacent link, so a
  // uniform index draw is a degree-proportional (preferential-attachment)
  // draw over the ASes that sell transit. Stubs never enter the pool: a
  // stub with customers would not be a stub.
  std::vector<bgp::AsNumber> endpoints;
  std::vector<bgp::AsNumber> transit_ases;  // earlier tier-1/transit ASes

  const auto asn_of = [&](std::size_t i) {
    return params.asn_base + static_cast<bgp::AsNumber>(i);
  };

  // Tier-1 clique: settlement-free peers of each other.
  for (std::size_t i = 0; i < params.tier1_count; ++i) {
    const bgp::AsNumber asn = asn_of(i);
    topology.graph.add_as(asn);
    topology.tiers.emplace(asn, Tier::kTier1);
    transit_ases.push_back(asn);
    for (std::size_t j = 0; j < i; ++j) {
      topology.graph.add_link(asn_of(j), asn, bgp::Relationship::kPeer);
      endpoints.push_back(asn_of(j));
      endpoints.push_back(asn);
    }
  }
  // A 1-AS clique has no links yet; seed the endpoint pool so the first
  // customer can still draw a provider.
  if (endpoints.empty()) endpoints.push_back(asn_of(0));

  for (std::size_t i = params.tier1_count; i < params.as_count; ++i) {
    const bgp::AsNumber asn = asn_of(i);
    const bool transit = rng.coin(params.transit_fraction);
    topology.graph.add_as(asn);
    topology.tiers.emplace(asn, transit ? Tier::kTransit : Tier::kStub);

    // 1 + extras providers, preferential by degree, no duplicates.
    std::size_t wanted = 1;
    while (wanted < params.max_providers &&
           rng.coin(params.multihoming_probability)) {
      wanted += 1;
    }
    std::set<bgp::AsNumber> providers;
    // Bounded retries: a duplicate draw is common around the clique early
    // on; 4x oversampling makes the miss probability negligible without
    // risking an unbounded loop.
    for (std::size_t attempt = 0;
         attempt < 4 * wanted && providers.size() < wanted; ++attempt) {
      providers.insert(endpoints[rng.uniform(endpoints.size())]);
    }
    for (const bgp::AsNumber provider : providers) {
      // From the provider's viewpoint the new AS is its customer.
      topology.graph.add_link(provider, asn, bgp::Relationship::kCustomer);
      endpoints.push_back(provider);
      if (transit) endpoints.push_back(asn);
    }

    if (transit) {
      if (!transit_ases.empty() && rng.coin(params.peer_probability)) {
        const bgp::AsNumber peer =
            transit_ases[rng.uniform(transit_ases.size())];
        if (!topology.graph.relationship(asn, peer).has_value()) {
          topology.graph.add_link(asn, peer, bgp::Relationship::kPeer);
          endpoints.push_back(asn);
          endpoints.push_back(peer);
        }
      }
      transit_ases.push_back(asn);
    }
  }
  return topology;
}

std::vector<bgp::AsNumber> Neighborhood::members() const {
  std::vector<bgp::AsNumber> all;
  all.reserve(providers.size() + 2);
  all.push_back(prover);
  all.insert(all.end(), providers.begin(), providers.end());
  all.push_back(recipient);
  return all;
}

std::vector<bgp::AsNumber> Neighborhood::verifiers() const {
  std::vector<bgp::AsNumber> all = providers;
  all.push_back(recipient);
  return all;
}

std::vector<Neighborhood> select_neighborhoods(
    const GeneratedTopology& topology, std::size_t count,
    std::size_t min_providers, std::size_t max_providers) {
  std::vector<Neighborhood> selected;
  std::set<bgp::AsNumber> used;
  for (const bgp::AsNumber prover : topology.graph.as_numbers()) {
    if (selected.size() >= count) break;
    if (used.contains(prover)) continue;

    Neighborhood hood;
    hood.prover = prover;
    // The recipient must be a customer (that is who the export promise is
    // to); the route-providing Ni can be ANY other neighbor — a transit AS
    // hears candidate routes from providers, peers, and customers alike.
    // Explicit found flag: with asn_base == 0, AS 0 is a real AS, so the
    // usual 0-as-none sentinel would misread it.
    bool recipient_found = false;
    for (const bgp::AsNumber customer : topology.graph.customers_of(prover)) {
      if (!used.contains(customer)) {
        hood.recipient = customer;
        recipient_found = true;
        break;
      }
    }
    if (!recipient_found) continue;
    for (const bgp::AsNumber neighbor : topology.graph.neighbors(prover)) {
      if (neighbor == hood.recipient || used.contains(neighbor)) continue;
      hood.providers.push_back(neighbor);
      if (hood.providers.size() >= max_providers) break;
    }
    if (hood.providers.size() < min_providers) continue;
    for (const bgp::AsNumber member : hood.members()) used.insert(member);
    selected.push_back(std::move(hood));
  }
  return selected;
}

}  // namespace pvr::scenario
