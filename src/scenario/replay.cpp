#include "scenario/replay.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/evidence.h"
#include "core/pvr_speaker.h"
#include "core/verify_context.h"
#include "engine/verification_engine.h"
#include "net/simulator.h"
#include "scenario/world.h"

namespace pvr::scenario {

namespace {

// The replay message plane: a clock and an event queue (borrowed from a
// node-less Simulator), with the send side sunk. Every message a replayed
// node emits was already recorded as a delivery in the trace, so re-sending
// would double-deliver; connected() == false and empty neighbors_of()
// additionally keep the gossip relays and escalation fan-outs quiet (their
// local state transitions — escalation flags, dedup — still happen exactly
// as in the recorded run, where the sends DID go out and were recorded).
class ReplayTransport final : public net::Transport {
 public:
  explicit ReplayTransport(net::Simulator& clock) noexcept : clock_(&clock) {}

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "replay";
  }
  void send(net::Message message) override { (void)message; }
  [[nodiscard]] bool connected(net::NodeId a, net::NodeId b) const override {
    (void)a;
    (void)b;
    return false;
  }
  [[nodiscard]] std::vector<net::NodeId> neighbors_of(
      net::NodeId id) const override {
    (void)id;
    return {};
  }
  void set_interceptor(net::Interceptor interceptor) override {
    (void)interceptor;  // no wire to intercept — trace deliveries are final
  }
  [[nodiscard]] net::SimTime now() const override { return clock_->now(); }
  void schedule(net::SimTime at, std::function<void()> fn) override {
    clock_->schedule(at, std::move(fn));
  }
  void schedule_periodic(net::SimTime interval,
                         std::function<void()> fn) override {
    clock_->schedule_periodic(interval, std::move(fn));
  }
  [[nodiscard]] const net::SimStats& stats() const override { return stats_; }
  void set_trace(net::MessageTrace* trace) override { (void)trace; }

 private:
  net::Simulator* clock_;  // not owned
  net::SimStats stats_;    // empty: the recorded run's stats travel in the trace
};

struct ReplayHood {
  std::vector<core::PvrNode*> providers;  // Neighborhood::providers order
  std::vector<core::PvrNode*> verifiers;  // Neighborhood::verifiers() order
};

}  // namespace

ScenarioReport replay_trace(const ScenarioSpec& spec,
                            const net::MessageTrace& trace,
                            std::size_t workers) {
  if (!trace.scenario.empty() &&
      (trace.scenario != spec.name || trace.seed != spec.seed)) {
    throw std::invalid_argument(
        "replay_trace: trace identity does not match the spec");
  }
  WorldPlan plan = plan_world(spec);

  ScenarioReport report;
  report.scenario = spec.name;
  report.adversary = spec.adversary;
  report.seed = spec.seed;
  report.workers = workers;
  report.online = false;
  report.as_count = plan.topology.graph.as_count();
  report.neighborhoods = plan.hoods.size();
  report.pvr_nodes = plan.participants.size();

  // The Simulator serves purely as clock + ordered event queue here: no
  // nodes are registered with it and nothing sends through it, so its rng
  // and stats stay untouched. Events are scheduled in the canonical order
  // (app inputs first, then trace deliveries in recorded global order), so
  // its FIFO tiebreak reproduces the recorded same-time ordering.
  net::Simulator clock(spec.seed);
  ReplayTransport transport(clock);

  std::vector<std::unique_ptr<core::PvrNode>> owned;
  std::map<net::NodeId, core::PvrNode*> by_id;
  std::vector<ReplayHood> hood_nodes(plan.hoods.size());
  // Same world-shared verification context as the live runner, so the
  // replay's verdicts (and fingerprint) come from the identical path.
  const core::VerifyContext world_ctx(&plan.keys.directory,
                                      spec.world_sig_cache);
  for (std::size_t h = 0; h < plan.hoods.size(); ++h) {
    const Neighborhood& hood = plan.hoods[h];
    const auto add_node = [&](bgp::AsNumber asn,
                              core::PvrRole role) -> core::PvrNode* {
      core::PvrConfig cfg = plan.node_config(spec, h, asn, role);
      cfg.verify_ctx = &world_ctx;
      owned.push_back(std::make_unique<core::PvrNode>(std::move(cfg)));
      core::PvrNode* raw = owned.back().get();
      by_id.emplace(asn, raw);
      return raw;
    };
    (void)add_node(hood.prover, core::PvrRole::kProver);
    core::PvrNode* recipient =
        add_node(hood.recipient, core::PvrRole::kRecipient);
    for (const bgp::AsNumber provider : hood.providers) {
      hood_nodes[h].providers.push_back(
          add_node(provider, core::PvrRole::kProvider));
    }
    hood_nodes[h].verifiers = hood_nodes[h].providers;
    hood_nodes[h].verifiers.push_back(recipient);
  }

  // Provider own-input state: verify-as-provider compares the revealed
  // input against what the provider itself supplied, so the plan's
  // provide_input events re-run (their sends are sunk — the prover learns
  // the input from the trace delivery, exactly like the recorded run).
  // start_round events deliberately do NOT re-run: the prover's window
  // machinery would schedule dynamic events that cannot reproduce the
  // recorded sequence interleaving, and every message it produced is in
  // the trace already.
  for (const AppEvent& event : plan.app_events) {
    if (!event.is_input) continue;
    core::PvrNode* provider_node =
        hood_nodes[event.hood].providers[event.provider_index];
    clock.schedule(event.at, [&transport, provider_node, event] {
      provider_node->provide_input(
          transport, event.epoch, event.prefix,
          provider_route(event.prefix, event.actor, event.route_length));
    });
  }

  std::vector<net::TraceEntry> entries = trace.entries;
  std::sort(entries.begin(), entries.end(),
            [](const net::TraceEntry& a, const net::TraceEntry& b) {
              return a.sequence < b.sequence;
            });
  for (net::TraceEntry& entry : entries) {
    if (entry.at < clock.now()) {
      throw std::invalid_argument("replay_trace: trace timestamps regress");
    }
    clock.schedule(entry.at,
                   [&transport, &by_id, entry = std::move(entry)] {
                     const auto it = by_id.find(entry.message.to);
                     if (it != by_id.end()) {
                       it->second->on_message(transport, entry.message);
                     }
                   });
  }

  clock.run();

  // Offline verification over the planned rounds at the requested worker
  // count — the engine's evidence is byte-identical at any (DESIGN.md §9).
  engine::VerificationEngine engine({.workers = workers}, &world_ctx);
  for (const RoundArrival& arrival : plan.arrivals) {
    const core::ProtocolId id{
        .prover = plan.hoods[arrival.neighborhood].prover,
        .prefix = arrival.prefix,
        .epoch = arrival.epoch};
    for (core::PvrNode* verifier : hood_nodes[arrival.neighborhood].verifiers) {
      (void)engine.submit_node_round(*verifier, id);
    }
  }
  const engine::EngineReport drained = engine.drain(/*rethrow_errors=*/false);
  report.verify_failures = drained.failed_rounds;
  report.drain_batches = 1;

  score_evidence(plan,
                 [&hood_nodes](std::size_t h, std::size_t v)
                     -> const std::vector<core::Evidence>& {
                   return hood_nodes[h].verifiers[v]->evidence();
                 },
                 report);

  // Prover counters and wire accounting come from the recorded run — the
  // replay neither runs prover windows nor re-sends bytes.
  for (const net::TraceProverMeta& prover : trace.provers) {
    report.rounds_started += prover.rounds_started;
    report.windows_fired += prover.windows_fired;
  }
  report.coalesced = report.windows_fired < report.rounds_started;
  fill_byte_accounting(trace.stats, report);

  report.hw_threads = std::thread::hardware_concurrency();
  return report;
}

}  // namespace pvr::scenario
