// The deterministic world plan shared by every scenario entry point.
//
// run_scenario (runner.cpp), the trace replayer (replay.h), and the
// multiprocess conductor/participants (multiprocess.h) must all construct
// the SAME world from a ScenarioSpec: same topology, same neighborhoods,
// same keys, same link latencies, same jittered arrival schedule — or the
// fingerprint parity the transport work is gated on would be vacuous.
// plan_world() is that single derivation: a pure function of the spec
// (every DRBG stream it consumes is seeded from spec.seed with a fixed
// personalization string), producing a value two processes can re-derive
// independently and agree on byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/pvr_speaker.h"
#include "scenario/runner.h"

namespace pvr::scenario {

// The runner's link latencies are drawn from [kMinScenarioLatency,
// kMaxScenarioLatency); collect_window must exceed the ceiling so a
// provider input sent at the prover's start instant still lands inside the
// collection window.
inline constexpr net::SimTime kMinScenarioLatency = 500;
inline constexpr net::SimTime kMaxScenarioLatency = 1500;

struct PlannedLink {
  bgp::AsNumber a = 0;
  bgp::AsNumber b = 0;
  net::LinkConfig config;
};

// One harness-driven protocol action: a provider's provide_input or the
// prover's start_round, with every jitter/length draw already materialized
// so two processes schedule identical closures at identical times. The
// vector order IS the runner's historical scheduling order (per arrival:
// each provider's input, then the prover start), which pins the simulator
// event-sequence tiebreak for same-time events.
struct AppEvent {
  net::SimTime at = 0;
  bool is_input = false;           // true: provide_input, false: start_round
  std::size_t hood = 0;
  std::size_t provider_index = 0;  // inputs: index into hoods[hood].providers
  bgp::AsNumber actor = 0;         // the provider or prover ASN
  std::uint64_t epoch = 1;
  bgp::Ipv4Prefix prefix;
  std::size_t route_length = 0;    // inputs only
};

struct WorldPlan {
  GeneratedTopology topology;
  std::vector<Neighborhood> hoods;
  std::unique_ptr<AdversaryStrategy> adversary;
  core::ProverMisbehavior misbehavior;  // applied to attacked provers
  std::vector<bool> attacked;           // per hood
  std::set<bgp::AsNumber> attacked_provers;
  std::set<bgp::AsNumber> colluders;
  std::vector<bgp::AsNumber> participants;  // sorted, every hood member
  core::AsKeyPairs keys;
  std::vector<PlannedLink> links;
  std::vector<RoundArrival> arrivals;
  std::vector<AppEvent> app_events;

  // The PvrConfig the canonical runner builds for `asn` playing `role` in
  // hoods[hood] — replay and the multiprocess participants construct nodes
  // from exactly this.
  [[nodiscard]] core::PvrConfig node_config(const ScenarioSpec& spec,
                                            std::size_t hood,
                                            bgp::AsNumber asn,
                                            core::PvrRole role) const;
};

// Derives the full plan. Throws like run_scenario: std::invalid_argument
// on unworkable timing, std::runtime_error when the topology yields no
// qualifying neighborhood.
[[nodiscard]] WorldPlan plan_world(const ScenarioSpec& spec);

// The synthetic provider route for a round (path length `length`).
[[nodiscard]] bgp::Route provider_route(const bgp::Ipv4Prefix& prefix,
                                        bgp::AsNumber provider,
                                        std::size_t length);

// Conservative settle-horizon bound (see the runner's derivation comment).
[[nodiscard]] net::SimTime settle_horizon_for(const ScenarioSpec& spec,
                                              const AdversaryStrategy& adversary,
                                              std::size_t max_verifiers);

// Evidence accessor: the log of hoods[hood].verifiers()[verifier_index],
// however the caller stores it (live node, replayed node, or evidence
// shipped back from a node process).
using EvidenceAccessor = std::function<const std::vector<core::Evidence>&(
    std::size_t hood, std::size_t verifier_index)>;

// The canonical scoring pass: walks every verifier's evidence log in
// (hood, verifier) order and fills evidence_total / false_evidence /
// audit_failures / attacked_rounds / detected_rounds / detection_rate /
// evidence_digest on `report`. Identical logs in identical order produce
// identical fields — which is how a replayed or distributed run proves it
// reproduced the canonical one.
void score_evidence(const WorldPlan& plan, const EvidenceAccessor& evidence_of,
                    ScenarioReport& report);

// Byte accounting from a stats snapshot — the live simulator's, or the
// recorded SimStats a MessageTrace carries.
void fill_byte_accounting(const net::SimStats& stats, ScenarioReport& report);

}  // namespace pvr::scenario
