// Pluggable adversary strategies for the scenario harness.
//
// Every strategy drives misbehavior through the SHIPPED machinery — the
// prover's ProverMisbehavior knobs and wire-level interference via the
// net::Transport interceptor hook — never through bespoke test code, so
// an attack a strategy mounts can only be caught by the evidence checks
// the production verifiers actually run. The strategy also states its
// contract: which ViolationKind(s) must catch the attack (the runner
// scores detection against exactly these), and which verifiers are
// colluding (their evidence must not count toward detection).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "core/evidence.h"
#include "core/min_protocol.h"
#include "net/transport.h"
#include "scenario/topology_gen.h"

namespace pvr::scenario {

class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // True when every attacked round must end with validatable evidence of
  // one of expected_kinds() against the attacked prover; false for
  // strategies whose whole point is that they must yield NOTHING (replay
  // against honest provers must not produce false evidence).
  [[nodiscard]] virtual bool expects_detection() const = 0;
  [[nodiscard]] virtual std::vector<core::ViolationKind> expected_kinds()
      const {
    return {core::ViolationKind::kEquivocation};
  }

  // Misbehavior knobs applied to every ATTACKED neighborhood's prover.
  [[nodiscard]] virtual core::ProverMisbehavior prover_misbehavior() const {
    return {};
  }

  // Verifiers of an attacked neighborhood that are in on the attack; the
  // runner ignores their evidence when scoring detection (a colluder
  // "detecting" its accomplice proves nothing about the honest verifiers).
  [[nodiscard]] virtual std::vector<bgp::AsNumber> colluders(
      const Neighborhood& hood) const {
    (void)hood;
    return {};
  }

  // Wire-interference bounds the ONLINE runner folds into its settle
  // horizon (how long after a window closes a round's messages can still
  // be in flight). max_extra_delay() bounds the extra µs the interceptor
  // can add to any single message; max_replay_lag() bounds how long after
  // capturing a message the strategy can re-inject a copy (the copy then
  // propagates under max_extra_delay again). A strategy that understates
  // these breaks the online==offline fingerprint parity gate, which is
  // exactly how an understatement is caught.
  [[nodiscard]] virtual net::SimTime max_extra_delay() const { return 0; }
  [[nodiscard]] virtual net::SimTime max_replay_lag() const { return 0; }

  // Installs wire-level interference (drop/delay/replay) once the world is
  // built. `attacked[h]` says whether hoods[h]'s prover mounts the attack:
  // pure wire chaos (drops, delays, replays) deliberately hits honest
  // neighborhoods too — they must stay evidence-silent under it — but
  // anything tied to the attack itself (e.g. muting a colluding verifier)
  // must be scoped to the attacked neighborhoods the runner scores
  // against. Default: none.
  virtual void install(net::Transport& sim,
                       const std::vector<Neighborhood>& hoods,
                       const std::vector<bool>& attacked, std::uint64_t seed) {
    (void)sim;
    (void)hoods;
    (void)attacked;
    (void)seed;
  }
};

// Factory over the strategy registry. Throws std::invalid_argument on an
// unknown name. Names: "honest", "equivocator", "batch_split",
// "selective_drop", "delay_replay", "colluding_pair", "replay_relay".
[[nodiscard]] std::unique_ptr<AdversaryStrategy> make_adversary(
    std::string_view name);
[[nodiscard]] std::vector<std::string_view> adversary_names();

}  // namespace pvr::scenario
