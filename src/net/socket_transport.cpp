#include "net/socket_transport.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "crypto/encoding.h"
#include "net/message_trace.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace pvr::net {

namespace {

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SocketTransport::SocketTransport() : start_ns_(steady_ns()) {}

SocketTransport::~SocketTransport() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::uint16_t SocketTransport::listen(std::uint16_t port) {
  if (listen_fd_ >= 0) {
    throw std::logic_error("SocketTransport::listen: already listening");
  }
  listen_fd_ = listen_loopback(port);
  return port;
}

void SocketTransport::add_node(NodeId id, Node* node) {
  if (node == nullptr) {
    throw std::invalid_argument("SocketTransport::add_node: null node");
  }
  if (!nodes_.emplace(id, node).second) {
    throw std::invalid_argument("SocketTransport::add_node: duplicate id");
  }
  if (started_nodes_) node->on_start(*this);
}

void SocketTransport::connect_to(std::uint16_t port) {
  auto conn = std::make_unique<Conn>();
  conn->frame = std::make_unique<FrameConn>(connect_loopback(port));
  send_hello(*conn);
  conns_.push_back(std::move(conn));
}

void SocketTransport::drop_peer(NodeId peer) {
  const auto it = routes_.find(peer);
  if (it == routes_.end()) return;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].get() == it->second) {
      teardown(i);
      return;
    }
  }
}

void SocketTransport::send_hello(Conn& conn) {
  crypto::ByteWriter writer;
  writer.put_u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& [id, node] : nodes_) writer.put_u32(id);
  conn.frame->append(kFrameHello, writer.data());
}

SocketTransport::Conn* SocketTransport::route(NodeId id) const {
  const auto it = routes_.find(id);
  return it == routes_.end() ? nullptr : it->second;
}

bool SocketTransport::connected(NodeId a, NodeId b) const {
  if (a == b) return false;
  const bool a_local = nodes_.contains(a);
  const bool b_local = nodes_.contains(b);
  if (a_local && b_local) return true;
  if (a_local) return route(b) != nullptr;
  if (b_local) return route(a) != nullptr;
  return false;
}

std::vector<NodeId> SocketTransport::neighbors_of(NodeId id) const {
  std::vector<NodeId> out;
  if (nodes_.contains(id)) {
    for (const auto& [local, node] : nodes_) {
      if (local != id) out.push_back(local);
    }
    for (const auto& [remote, conn] : routes_) out.push_back(remote);
  } else if (route(id) != nullptr) {
    for (const auto& [local, node] : nodes_) out.push_back(local);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SocketTransport::set_interceptor(Interceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

SimTime SocketTransport::now() const {
  return (steady_ns() - start_ns_) / 1000;
}

void SocketTransport::schedule(SimTime at, std::function<void()> fn) {
  timers_.push(Timer{.due = std::max(at, now()),
                     .sequence = timer_sequence_++,
                     .interval = 0,
                     .fn = std::move(fn)});
}

void SocketTransport::schedule_periodic(SimTime interval,
                                        std::function<void()> fn) {
  if (interval == 0) {
    throw std::invalid_argument(
        "SocketTransport::schedule_periodic: zero interval");
  }
  timers_.push(Timer{.due = now() + interval,
                     .sequence = timer_sequence_++,
                     .interval = interval,
                     .fn = std::move(fn)});
}

void SocketTransport::send(Message message) {
  const bool to_local = nodes_.contains(message.to);
  Conn* conn = to_local ? nullptr : route(message.to);
  if (!to_local && conn == nullptr) {
    throw std::logic_error("SocketTransport::send: no connection to peer");
  }
  ChannelStats& channel_stats = stats_.per_channel[message.channel];
  stats_.messages_sent += 1;
  stats_.bytes_sent += message.wire_size();
  channel_stats.messages_sent += 1;
  channel_stats.bytes_sent += message.wire_size();
  // Causal span: while tracing is armed, every logical message gets a
  // process-unique correlation cookie and a flow-start event; the cookie
  // rides a kFrameObs sidecar to the peer (never the message body, never
  // the byte accounting), so the delivery end of the arrow can carry the
  // same id in another process's trace shard.
  obs::TraceWriter& tracer = obs::TraceWriter::global();
  if (tracer.active()) {
    if (message.cookie == 0) {
      message.cookie = (static_cast<std::uint64_t>(::getpid()) << 32) |
                       ++next_flow_cookie_;
    }
    tracer.flow('s', "msg.flow", "flow", obs::Track::kWall, message.from,
                now(), message.cookie);
  }
  InterceptDecision intercept;
  if (interceptor_) intercept = interceptor_(*this, message);
  if (intercept.drop) {
    stats_.messages_dropped += 1;
    channel_stats.messages_dropped += 1;
    return;
  }
  const auto transmit = [this, to_local](Message msg) {
    if (to_local) {
      deliver_local(msg);
      return;
    }
    // Re-resolve the route: the connection may have died (or been replaced)
    // since an interceptor-delayed send was queued. A vanished peer at
    // transmit time is a silent loss, exactly like the wire losing it.
    Conn* target = route(msg.to);
    if (target == nullptr) return;
    if (msg.cookie != 0 && obs::TraceWriter::global().active()) {
      crypto::ByteWriter sidecar;
      sidecar.put_u64(msg.cookie);
      target->frame->append(kFrameObs, sidecar.data());
    }
    target->frame->append(kFrameMessage, encode_message_body(msg));
    if (!target->frame->flush()) {
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i].get() == target) {
          teardown(i);
          break;
        }
      }
    }
  };
  if (intercept.extra_delay > 0) {
    schedule(now() + intercept.extra_delay,
             [transmit, msg = std::move(message)]() mutable {
               transmit(std::move(msg));
             });
  } else {
    transmit(std::move(message));
  }
}

void SocketTransport::deliver_local(const Message& message) {
  const auto it = nodes_.find(message.to);
  if (it == nodes_.end()) return;
  stats_.messages_delivered += 1;
  stats_.per_channel[message.channel].messages_delivered += 1;
  if (trace_ != nullptr) trace_->record_delivery(now(), message);
  if (message.cookie != 0) {
    obs::TraceWriter& tracer = obs::TraceWriter::global();
    if (tracer.active()) {
      tracer.flow('f', "msg.flow", "flow", obs::Track::kWall, message.to,
                  now(), message.cookie);
    }
  }
  it->second->on_message(*this, message);
}

void SocketTransport::request_stats(NodeId peer) {
  Conn* conn = route(peer);
  if (conn == nullptr) {
    throw std::logic_error("SocketTransport::request_stats: no route");
  }
  const std::uint8_t kind = 0;  // request
  conn->frame->append(kFrameStats, std::span<const std::uint8_t>(&kind, 1));
  conn->frame->flush();
}

void SocketTransport::set_stats_handler(StatsHandler handler) {
  stats_handler_ = std::move(handler);
}

void SocketTransport::handle_frame(Conn& conn, std::uint8_t type,
                                   std::span<const std::uint8_t> body) {
  if (type == kFrameHello) {
    crypto::ByteReader reader(body);
    const std::uint32_t count = reader.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId id = reader.get_u32();
      conn.remote_nodes.push_back(id);
      routes_[id] = &conn;
    }
    conn.hello_received = true;
    return;
  }
  if (type == kFrameMessage) {
    Message message = decode_message_body(body);
    if (conn.pending_cookie != 0) {
      message.cookie = std::exchange(conn.pending_cookie, 0);
    }
    deliver_local(message);
    return;
  }
  if (type == kFrameObs) {
    crypto::ByteReader reader(body);
    conn.pending_cookie = reader.get_u64();
    return;
  }
  if (type == kFrameStats) {
    crypto::ByteReader reader(body);
    if (reader.get_u8() == 0) {  // request: answer with our sample
      if (stats_server_ == nullptr) return;  // no sampler armed: ignore
      crypto::ByteWriter reply;
      reply.put_u8(1);
      reply.put_raw(stats_server_->sample(now(), stats_).encode());
      conn.frame->append(kFrameStats, reply.data());
      return;
    }
    if (stats_handler_) {
      const std::vector<std::uint8_t> sample_bytes(body.begin() + 1,
                                                   body.end());
      stats_handler_(obs::StatsSample::decode(sample_bytes));
    }
    return;
  }
  throw std::invalid_argument("SocketTransport: unexpected frame type");
}

void SocketTransport::teardown(std::size_t conn_index) {
  Conn* conn = conns_[conn_index].get();
  for (const NodeId id : conn->remote_nodes) {
    const auto it = routes_.find(id);
    if (it != routes_.end() && it->second == conn) routes_.erase(it);
  }
  conn->frame->close();
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(conn_index));
}

void SocketTransport::fire_due_timers() {
  while (!timers_.empty() && timers_.top().due <= now()) {
    Timer timer = timers_.top();
    timers_.pop();
    timer.fn();
    if (timer.interval > 0 && !stopped_) {
      timers_.push(Timer{.due = now() + timer.interval,
                         .sequence = timer_sequence_++,
                         .interval = timer.interval,
                         .fn = std::move(timer.fn)});
    }
  }
}

void SocketTransport::poll_once(int timeout_ms) {
  if (!started_nodes_) {
    started_nodes_ = true;
    for (auto& [id, node] : nodes_) node->on_start(*this);
  }

  int timeout = timeout_ms;
  if (!timers_.empty()) {
    const SimTime current = now();
    const SimTime wait_us =
        timers_.top().due > current ? timers_.top().due - current : 0;
    const int wait_ms = static_cast<int>(wait_us / 1000);
    timeout = timeout < 0 ? wait_ms : std::min(timeout, wait_ms);
  }

  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0) {
    fds.push_back(pollfd{.fd = listen_fd_, .events = POLLIN, .revents = 0});
  }
  for (const auto& conn : conns_) {
    short events = POLLIN;
    if (conn->frame->has_pending_out()) events |= POLLOUT;
    fds.push_back(pollfd{.fd = conn->frame->fd(), .events = events,
                         .revents = 0});
  }
  if (!fds.empty()) {
    (void)::poll(fds.data(), fds.size(), timeout);
  }

  std::size_t index = 0;
  if (listen_fd_ >= 0) {
    if ((fds[0].revents & POLLIN) != 0) {
      int fd = -1;
      while ((fd = accept_connection(listen_fd_)) >= 0) {
        auto conn = std::make_unique<Conn>();
        conn->frame = std::make_unique<FrameConn>(fd);
        send_hello(*conn);
        conns_.push_back(std::move(conn));
      }
    }
    index = 1;
  }

  // Walk a snapshot of the connection list: handlers may add connections
  // (never remove — teardown is deferred to the sweep below).
  std::vector<Conn*> dead;
  const std::size_t existing = conns_.size();
  for (std::size_t c = 0; c < existing && index + c < fds.size(); ++c) {
    Conn* conn = conns_[c].get();
    const short revents = fds[index + c].revents;
    if (revents == 0) continue;
    bool alive = true;
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      alive = conn->frame->read_frames(
          [this, conn](std::uint8_t type, std::span<const std::uint8_t> body) {
            handle_frame(*conn, type, body);
          });
    }
    if (alive && (revents & POLLOUT) != 0) alive = conn->frame->flush();
    if (!alive) dead.push_back(conn);
  }
  for (Conn* conn : dead) {
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c].get() == conn) {
        teardown(c);
        break;
      }
    }
  }

  fire_due_timers();

  // Opportunistic flush of anything handlers queued this iteration.
  for (std::size_t c = 0; c < conns_.size();) {
    if (!conns_[c]->frame->flush()) {
      teardown(c);
    } else {
      ++c;
    }
  }
}

void SocketTransport::run_for(SimTime duration_us) {
  const SimTime deadline = now() + duration_us;
  while (!stopped_ && now() < deadline) {
    const SimTime left = deadline - now();
    poll_once(static_cast<int>(std::min<SimTime>(left / 1000 + 1, 50)));
  }
}

}  // namespace pvr::net
