#include "net/message_trace.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/encoding.h"

namespace pvr::net {

namespace {

constexpr std::uint32_t kTraceMagic = 0x50565254;  // "PVRT"
constexpr std::uint32_t kTraceVersion = 1;

void encode_channel_stats(crypto::ByteWriter& writer, const ChannelStats& stats) {
  writer.put_u64(stats.messages_sent);
  writer.put_u64(stats.messages_delivered);
  writer.put_u64(stats.messages_dropped);
  writer.put_u64(stats.bytes_sent);
}

[[nodiscard]] ChannelStats decode_channel_stats(crypto::ByteReader& reader) {
  ChannelStats stats;
  stats.messages_sent = reader.get_u64();
  stats.messages_delivered = reader.get_u64();
  stats.messages_dropped = reader.get_u64();
  stats.bytes_sent = reader.get_u64();
  return stats;
}

}  // namespace

void MessageTrace::record_delivery(SimTime at, const Message& message) {
  entries.push_back(TraceEntry{
      .sequence = next_sequence_++, .at = at, .message = message});
}

void MessageTrace::append(TraceEntry entry) {
  if (entry.sequence >= next_sequence_) next_sequence_ = entry.sequence + 1;
  entries.push_back(std::move(entry));
}

void MessageTrace::sort_by_sequence() {
  std::sort(entries.begin(), entries.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.sequence < b.sequence;
            });
}

std::vector<std::uint8_t> MessageTrace::encode() const {
  crypto::ByteWriter writer;
  writer.put_u32(kTraceMagic);
  writer.put_u32(kTraceVersion);
  writer.put_string(scenario);
  writer.put_u64(seed);
  writer.put_string(backend);
  writer.put_u64(entries.size());
  for (const TraceEntry& entry : entries) {
    writer.put_u64(entry.sequence);
    writer.put_u64(entry.at);
    writer.put_u32(entry.message.from);
    writer.put_u32(entry.message.to);
    writer.put_string(entry.message.channel);
    writer.put_bytes(entry.message.payload);
  }
  writer.put_u64(stats.messages_sent);
  writer.put_u64(stats.messages_delivered);
  writer.put_u64(stats.messages_dropped);
  writer.put_u64(stats.bytes_sent);
  writer.put_u64(stats.per_channel.size());
  for (const auto& [channel, channel_stats] : stats.per_channel) {
    writer.put_string(channel);
    encode_channel_stats(writer, channel_stats);
  }
  writer.put_u64(provers.size());
  for (const TraceProverMeta& meta : provers) {
    writer.put_u32(meta.node);
    writer.put_u64(meta.rounds_started);
    writer.put_u64(meta.windows_fired);
  }
  return writer.take();
}

MessageTrace MessageTrace::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_u32() != kTraceMagic) {
    throw std::invalid_argument("MessageTrace::decode: bad magic");
  }
  if (reader.get_u32() != kTraceVersion) {
    throw std::invalid_argument("MessageTrace::decode: unknown version");
  }
  MessageTrace trace;
  trace.scenario = reader.get_string();
  trace.seed = reader.get_u64();
  trace.backend = reader.get_string();
  const std::uint64_t entry_count = reader.get_u64();
  trace.entries.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    TraceEntry entry;
    entry.sequence = reader.get_u64();
    entry.at = reader.get_u64();
    entry.message.from = reader.get_u32();
    entry.message.to = reader.get_u32();
    entry.message.channel = reader.get_string();
    entry.message.payload = reader.get_bytes();
    trace.append(std::move(entry));
  }
  trace.stats.messages_sent = reader.get_u64();
  trace.stats.messages_delivered = reader.get_u64();
  trace.stats.messages_dropped = reader.get_u64();
  trace.stats.bytes_sent = reader.get_u64();
  const std::uint64_t channel_count = reader.get_u64();
  for (std::uint64_t i = 0; i < channel_count; ++i) {
    std::string channel = reader.get_string();
    trace.stats.per_channel[std::move(channel)] = decode_channel_stats(reader);
  }
  const std::uint64_t prover_count = reader.get_u64();
  trace.provers.reserve(prover_count);
  for (std::uint64_t i = 0; i < prover_count; ++i) {
    TraceProverMeta meta;
    meta.node = reader.get_u32();
    meta.rounds_started = reader.get_u64();
    meta.windows_fired = reader.get_u64();
    trace.provers.push_back(meta);
  }
  if (!reader.exhausted()) {
    throw std::invalid_argument("MessageTrace::decode: trailing bytes");
  }
  return trace;
}

}  // namespace pvr::net
