#include "net/simulator.h"

#include <stdexcept>

#include "net/message_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::net {

namespace {

[[nodiscard]] std::pair<NodeId, NodeId> link_key(NodeId a, NodeId b) noexcept {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed, "pvr-net-simulator") {}

void Simulator::add_node(NodeId id, std::unique_ptr<Node> node) {
  if (!node) throw std::invalid_argument("Simulator::add_node: null node");
  const auto [it, inserted] = nodes_.emplace(id, std::move(node));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("Simulator::add_node: duplicate node id");
  }
}

Node& Simulator::node(NodeId id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Simulator::node: unknown id");
  return *it->second;
}

bool Simulator::has_node(NodeId id) const noexcept { return nodes_.contains(id); }

std::vector<NodeId> Simulator::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

void Simulator::connect(NodeId a, NodeId b, LinkConfig config) {
  if (a == b) throw std::invalid_argument("Simulator::connect: self link");
  links_[link_key(a, b)] = config;
}

void Simulator::disconnect(NodeId a, NodeId b) { links_.erase(link_key(a, b)); }

bool Simulator::connected(NodeId a, NodeId b) const noexcept {
  return links_.contains(link_key(a, b));
}

std::vector<NodeId> Simulator::neighbors_of(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, config] : links_) {
    if (key.first == id) out.push_back(key.second);
    if (key.second == id) out.push_back(key.first);
  }
  return out;
}

const LinkConfig* Simulator::link_between(NodeId a, NodeId b) const noexcept {
  const auto it = links_.find(link_key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

void Simulator::send(Message message) {
  const LinkConfig* link = link_between(message.from, message.to);
  if (link == nullptr) {
    throw std::logic_error("Simulator::send: no link between nodes");
  }
  ChannelStats& channel_stats = stats_.per_channel[message.channel];
  PVR_OBS_COUNT(sim_messages, 1);
  stats_.messages_sent += 1;
  stats_.bytes_sent += message.wire_size();
  channel_stats.messages_sent += 1;
  channel_stats.bytes_sent += message.wire_size();
  InterceptDecision intercept;
  if (interceptor_) intercept = interceptor_(transport_, message);
  if (intercept.drop) {
    stats_.messages_dropped += 1;
    channel_stats.messages_dropped += 1;
    return;
  }
  if (link->drop_probability > 0.0 && rng_.coin(link->drop_probability)) {
    stats_.messages_dropped += 1;
    channel_stats.messages_dropped += 1;
    return;
  }
  const NodeId to = message.to;
  schedule(now_ + link->latency + intercept.extra_delay,
           [this, to, msg = std::move(message)]() mutable {
             const auto it = nodes_.find(to);
             if (it == nodes_.end()) return;  // node removed mid-flight
             stats_.messages_delivered += 1;
             stats_.per_channel[msg.channel].messages_delivered += 1;
             if (trace_ != nullptr) trace_->record_delivery(now_, msg);
             it->second->on_message(transport_, msg);
           });
}

void Simulator::set_interceptor(Interceptor interceptor) {
  interceptor_ = std::move(interceptor);
}

void Simulator::schedule(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("Simulator::schedule: time in the past");
  queue_.push(Event{.at = at, .sequence = next_sequence_++, .action = std::move(fn)});
}

void Simulator::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule(now_ + delay, std::move(fn));
}

void Simulator::schedule_periodic(SimTime interval, std::function<void()> fn) {
  if (interval == 0) {
    throw std::invalid_argument("Simulator::schedule_periodic: zero interval");
  }
  periodic_.push_back(PeriodicTask{.interval = interval, .fn = std::move(fn)});
  arm_periodic(periodic_.size() - 1, now_ + interval);
}

void Simulator::arm_periodic(std::size_t index, SimTime at) {
  armed_periodic_ += 1;
  schedule(at, [this, index] {
    armed_periodic_ -= 1;
    PVR_OBS_COUNT(sim_ticks, 1);
    if (obs::TraceWriter::global().active()) {
      obs::TraceWriter::global().sim_instant("sim.tick", index,
                                             static_cast<std::uint64_t>(now_));
    }
    periodic_[index].fn();
    // Re-arm only while real work remains. Counting armed periodic ticks out
    // of the queue keeps two periodic tasks from ticking forever on each
    // other's events once every message has been delivered.
    if (queue_.size() > armed_periodic_) {
      arm_periodic(index, now_ + periodic_[index].interval);
    }
  });
}

void Simulator::start_pending_nodes() {
  if (started_) return;
  started_ = true;
  for (auto& [id, node] : nodes_) node->on_start(transport_);
}

void Simulator::run() { run_until(~SimTime{0}); }

void Simulator::run_until(SimTime until) {
  start_pending_nodes();
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; the event is copied out so the action
    // can run after pop (handlers may schedule new events).
    Event event = queue_.top();
    queue_.pop();
    now_ = event.at;
    PVR_OBS_COUNT(sim_events, 1);
    event.action();
  }
  if (queue_.empty() && until != ~SimTime{0}) now_ = until;
}

}  // namespace pvr::net
