// Wire framing for the socket transport and the multiprocess control plane.
//
// Every frame on a PVR TCP connection is
//
//     [u32 BE total_length][u8 type][body: total_length - 1 bytes]
//
// For kMessage frames the body is the canonical message-body encoding whose
// length is EXACTLY Message::wire_size(): 4B from + 4B to (the 8B
// addressing), u16 channel length + channel bytes, u32 payload length, then
// the payload split into 64 KiB chunks — the first chunk bare, every
// further chunk prefixed by a 6-byte header (u32 offset + u16 length), the
// same chunking model the simulator's byte accounting has always charged
// (kWireChunkPayload/kWireChunkHeader). Byte totals are therefore
// fingerprint-comparable across the sim and socket backends by
// construction, not by convention.
//
// FrameConn owns the per-connection buffering: a nonblocking fd, an
// outgoing queue flushed as the socket accepts bytes, and an incoming
// reassembly buffer that yields complete frames in order. It is
// single-threaded — the owning event loop is the only caller.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/transport.h"

namespace pvr::net {

// Frame types. Transport data and the multiprocess conductor's control
// verbs share one numbering so a connection can carry both.
inline constexpr std::uint8_t kFrameHello = 1;    // body: u32 node id
inline constexpr std::uint8_t kFrameMessage = 2;  // body: message encoding
// Observability sidecar (DESIGN.md §14): a u64 trace-correlation cookie
// for the kFrameMessage that immediately follows on the same connection.
// Sent only while tracing is armed; never counted in SimStats byte
// accounting (only kFrameMessage bodies are wire_size() bytes), so its
// presence cannot perturb fingerprint parity.
inline constexpr std::uint8_t kFrameObs = 3;
// Live introspection: body [u8 kind: 0 request | 1 reply][reply: encoded
// obs::StatsSample]. Answered by the host's obs::StatsServer.
inline constexpr std::uint8_t kFrameStats = 4;
// Multiprocess lockstep control plane (scenario/multiprocess.cpp).
inline constexpr std::uint8_t kFramePeers = 16;
inline constexpr std::uint8_t kFrameReady = 17;
inline constexpr std::uint8_t kFrameGrant = 18;
inline constexpr std::uint8_t kFrameDone = 19;
inline constexpr std::uint8_t kFrameFinish = 20;
inline constexpr std::uint8_t kFrameResult = 21;

// Encodes `message` into exactly message.wire_size() bytes (the cookie is
// in-memory only and never serialized).
[[nodiscard]] std::vector<std::uint8_t> encode_message_body(
    const Message& message);

// Inverse of encode_message_body. Throws std::out_of_range on truncation
// and std::invalid_argument on malformed chunk headers.
[[nodiscard]] Message decode_message_body(std::span<const std::uint8_t> body);

// One nonblocking TCP connection with frame reassembly.
class FrameConn {
 public:
  // Takes ownership of `fd` (closed on destruction) and switches it to
  // nonblocking mode.
  explicit FrameConn(int fd);
  ~FrameConn();
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] bool has_pending_out() const noexcept {
    return out_pos_ < out_.size();
  }

  // Queues one frame for transmission (does not write to the socket).
  void append(std::uint8_t type, std::span<const std::uint8_t> body);

  // Writes as much queued output as the socket currently accepts.
  // Returns false when the connection is dead (peer reset / closed).
  bool flush();

  // Blocks (poll on POLLOUT) until every queued byte is written or the
  // connection dies. The multiprocess control plane uses this; the
  // SocketTransport event loop only ever calls flush().
  bool flush_all();

  // Reads every byte currently available and invokes `on_frame` for each
  // complete frame, in arrival order. Returns false once the peer has
  // closed or errored (a partial trailing frame is discarded — the
  // disconnect-mid-message contract).
  bool read_frames(
      const std::function<void(std::uint8_t, std::span<const std::uint8_t>)>&
          on_frame);

  // Blocks until one frame arrives (for the lockstep control plane).
  // Returns false on disconnect.
  bool read_one_frame(std::uint8_t& type, std::vector<std::uint8_t>& body);

  void close();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;
  std::vector<std::uint8_t> in_;
};

// Listening socket helpers (IPv4 loopback only — this is a single-host
// deployment/experiment plane, not an internet-facing daemon).
[[nodiscard]] int listen_loopback(std::uint16_t& port);  // 0 = ephemeral
[[nodiscard]] int connect_loopback(std::uint16_t port);  // blocking connect
[[nodiscard]] int accept_connection(int listen_fd);      // -1 when none ready

}  // namespace pvr::net
