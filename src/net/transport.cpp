#include "net/transport.h"

#include "net/simulator.h"

namespace pvr::net {

void Transport::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule(now() + delay, std::move(fn));
}

void SimTransport::send(Message message) { sim_->send(std::move(message)); }

bool SimTransport::connected(NodeId a, NodeId b) const {
  return sim_->connected(a, b);
}

std::vector<NodeId> SimTransport::neighbors_of(NodeId id) const {
  return sim_->neighbors_of(id);
}

void SimTransport::set_interceptor(Interceptor interceptor) {
  sim_->set_interceptor(std::move(interceptor));
}

SimTime SimTransport::now() const { return sim_->now(); }

void SimTransport::schedule(SimTime at, std::function<void()> fn) {
  sim_->schedule(at, std::move(fn));
}

void SimTransport::schedule_periodic(SimTime interval, std::function<void()> fn) {
  sim_->schedule_periodic(interval, std::move(fn));
}

const SimStats& SimTransport::stats() const { return sim_->stats(); }

void SimTransport::set_trace(MessageTrace* trace) { sim_->set_trace(trace); }

}  // namespace pvr::net
