// Anti-entropy gossip state with equivocation detection.
//
// Paper §3.2/§3.6: after an AS publishes a signed commitment (root hash),
// "the neighbors can gossip about the hash value to ensure that they all
// have the same view". A correct AS publishes exactly one value per topic;
// two distinct signed values for the same topic *are* the evidence of
// equivocation. This class tracks observed values per topic and surfaces
// conflicts; the PVR verifier nodes relay observations to each other over
// whatever net::Transport backend the world runs on (simulated, socket,
// or lockstep-multiprocess — the relay logic never sees the difference).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace pvr::net {

class GossipState {
 public:
  struct Conflict {
    std::string topic;
    std::vector<std::vector<std::uint8_t>> values;  // all distinct values seen
  };

  // Records that `value` was observed for `topic`. Returns true when the
  // value is new (and therefore worth relaying to other neighbors).
  bool observe(const std::string& topic, std::vector<std::uint8_t> value);

  [[nodiscard]] const std::set<std::vector<std::uint8_t>>& values(
      const std::string& topic) const;

  // Nonempty when two or more distinct values exist for `topic`.
  [[nodiscard]] std::optional<Conflict> conflict_for(const std::string& topic) const;
  [[nodiscard]] std::vector<Conflict> all_conflicts() const;

  [[nodiscard]] std::size_t topic_count() const noexcept { return by_topic_.size(); }

 private:
  std::map<std::string, std::set<std::vector<std::uint8_t>>> by_topic_;
};

// Wire format helpers for gossip announcements.
[[nodiscard]] std::vector<std::uint8_t> encode_gossip(const std::string& topic,
                                                      const std::vector<std::uint8_t>& value);
struct GossipAnnouncement {
  std::string topic;
  std::vector<std::uint8_t> value;
};
[[nodiscard]] GossipAnnouncement decode_gossip(const std::vector<std::uint8_t>& payload);

}  // namespace pvr::net
