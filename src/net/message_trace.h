// Ordered delivery trace of one transport run — the determinism bridge
// between the wall-clock socket backend and the deterministic simulator.
//
// A trace records every DELIVERED message (dropped messages never appear),
// in a single global delivery order, plus the run's wire accounting and the
// per-prover round/window counters a ScenarioReport needs. Replaying the
// trace through a SimTransport (scenario::replay_trace) re-delivers each
// message to its destination node at its recorded time and order; because
// every verifier-side state transition happens on DELIVERY, the replayed
// run reproduces the original evidence byte for byte and its
// ScenarioReport::fingerprint() matches the recorded run (DESIGN.md §13).
//
// The format is a versioned canonical byte encoding (crypto::ByteWriter),
// so traces round-trip across processes — the multiprocess conductor merges
// the per-process traces its node processes ship back.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/transport.h"

namespace pvr::net {

struct TraceEntry {
  // Global delivery order. Assigned by the recording transport (one
  // counter across all destinations); merged multiprocess traces keep the
  // conductor-issued sequence, so sorting by it reconstructs the global
  // order from per-process shards.
  std::uint64_t sequence = 0;
  SimTime at = 0;  // delivery time on the recording transport's clock
  Message message;
};

// Per-prover counters the report aggregates (rounds_started/windows_fired
// are prover-side state the replay's verifier nodes never recompute).
struct TraceProverMeta {
  NodeId node = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t windows_fired = 0;
};

class MessageTrace {
 public:
  // Appends a delivery with the next global sequence number.
  void record_delivery(SimTime at, const Message& message);

  // Appends a pre-sequenced entry (multiprocess shards carry
  // conductor-issued sequences). Keeps next_sequence() ahead of it.
  void append(TraceEntry entry);

  // Sorts entries into global sequence order (after merging shards).
  void sort_by_sequence();

  [[nodiscard]] std::uint64_t next_sequence() const noexcept {
    return next_sequence_;
  }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static MessageTrace decode(std::span<const std::uint8_t> data);

  // Run identity (informational; replay takes the authoritative spec).
  std::string scenario;
  std::uint64_t seed = 0;
  std::string backend;

  std::vector<TraceEntry> entries;
  // Wire accounting of the RECORDED run. Replay does not re-send, so these
  // are the byte counters the replayed report carries.
  SimStats stats;
  std::vector<TraceProverMeta> provers;

 private:
  std::uint64_t next_sequence_ = 0;
};

}  // namespace pvr::net
