// The real-socket Transport backend: TCP over IPv4 loopback, length-framed
// with the canonical message encoding (net/frame.h), driven by a
// single-threaded nonblocking poll(2) event loop.
//
// One SocketTransport instance is one PROCESS'S message plane: it hosts the
// local nodes (add_node), accepts inbound connections (listen), and dials
// outbound ones (connect_to). Peer identity is learned from the hello
// frame each side sends on connect — a connection becomes a usable link
// (connected() true, sends routed) only after the peer's hello arrives, so
// callers pump the loop until the topology is up. A connection loss tears
// down every route through it: connected() turns false, queued partial
// frames are discarded (disconnect-mid-message), and further send()s to
// that peer throw std::logic_error — exactly the no-link contract the
// simulator backend enforces.
//
// Determinism: none. The loop is wall-clock driven and delivery interleaving
// across peers is whatever the kernel gives us. Reproducibility comes from
// recording a MessageTrace (set_trace) and replaying it through the
// deterministic simulator path (DESIGN.md §13).
//
// Threading: single-threaded by design — every method including send() and
// the node callbacks runs on the thread calling poll_once()/run_for().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"

namespace pvr::obs {
class StatsServer;
struct StatsSample;
}  // namespace pvr::obs

namespace pvr::net {

class SocketTransport final : public Transport {
 public:
  SocketTransport();
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- world construction (backend-specific, like Simulator's) ---

  // Starts accepting loopback connections; port 0 picks an ephemeral port.
  // Returns the bound port.
  std::uint16_t listen(std::uint16_t port = 0);

  // Registers a local protocol endpoint (borrowed; must outlive the
  // transport). Its on_start runs at the first loop iteration.
  void add_node(NodeId id, Node* node);

  // Dials a loopback peer. The link becomes usable once hellos cross —
  // poll until connected() reports the pair.
  void connect_to(std::uint16_t port);

  // Abruptly closes the connection carrying `peer` (if any): routes drop,
  // unread partial frames are lost — the disconnect-mid-message case.
  void drop_peer(NodeId peer);

  // --- event loop ---

  // One iteration: accept, read (delivering complete frames), flush, fire
  // due timers. Blocks at most `timeout_ms` (clamped down to the next
  // timer deadline).
  void poll_once(int timeout_ms);

  // Pumps poll_once until `duration_us` of wall time passes or stop() is
  // called.
  void run_for(SimTime duration_us);

  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  // --- live introspection (kFrameStats, DESIGN.md §14) ---

  // Installs the sampler answering inbound kFrameStats requests (borrowed;
  // nullptr disables). The reply carries the sampler's metrics delta plus
  // this transport's stats() section.
  void serve_stats(const obs::StatsServer* server) noexcept {
    stats_server_ = server;
  }
  // Sends a one-frame stats request to `peer` (throws std::logic_error
  // without a route, like send()). The reply arrives asynchronously via
  // the handler below.
  void request_stats(NodeId peer);
  using StatsHandler = std::function<void(const obs::StatsSample&)>;
  void set_stats_handler(StatsHandler handler);

  // --- Transport interface ---

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "socket";
  }
  void send(Message message) override;
  [[nodiscard]] bool connected(NodeId a, NodeId b) const override;
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const override;
  void set_interceptor(Interceptor interceptor) override;
  [[nodiscard]] SimTime now() const override;  // wall µs since construction
  void schedule(SimTime at, std::function<void()> fn) override;
  void schedule_periodic(SimTime interval, std::function<void()> fn) override;
  [[nodiscard]] const SimStats& stats() const override { return stats_; }
  void set_trace(MessageTrace* trace) override { trace_ = trace; }

 private:
  struct Conn {
    std::unique_ptr<FrameConn> frame;
    std::vector<NodeId> remote_nodes;  // learned from the peer's hello
    bool hello_received = false;
    // Cookie from a kFrameObs sidecar, consumed by the next kFrameMessage.
    std::uint64_t pending_cookie = 0;
  };

  struct Timer {
    SimTime due = 0;
    std::uint64_t sequence = 0;   // FIFO tiebreak at equal due times
    SimTime interval = 0;         // 0 = one-shot
    std::function<void()> fn;
  };
  struct TimerOrder {
    bool operator()(const Timer& a, const Timer& b) const noexcept {
      return a.due != b.due ? a.due > b.due : a.sequence > b.sequence;
    }
  };

  void send_hello(Conn& conn);
  void handle_frame(Conn& conn, std::uint8_t type,
                    std::span<const std::uint8_t> body);
  void deliver_local(const Message& message);
  void teardown(std::size_t conn_index);
  void fire_due_timers();
  [[nodiscard]] Conn* route(NodeId id) const;

  std::uint64_t start_ns_ = 0;
  bool started_nodes_ = false;
  bool stopped_ = false;
  int listen_fd_ = -1;

  std::map<NodeId, Node*> nodes_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<NodeId, Conn*> routes_;

  std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
  std::uint64_t timer_sequence_ = 0;

  Interceptor interceptor_;
  SimStats stats_;
  MessageTrace* trace_ = nullptr;

  const obs::StatsServer* stats_server_ = nullptr;
  StatsHandler stats_handler_;
  std::uint64_t next_flow_cookie_ = 0;  // low half of allocated cookies
};

}  // namespace pvr::net
