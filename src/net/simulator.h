// Deterministic discrete-event network simulator.
//
// This is the substrate on which the BGP speakers and the PVR protocol run
// (DESIGN.md §2.2). Nodes exchange messages over point-to-point links with
// configurable latency and drop probability; all randomness is drawn from a
// seeded DRBG, so a (seed, topology, workload) triple always replays the
// exact same execution.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/drbg.h"

namespace pvr::net {

using NodeId = std::uint32_t;
using SimTime = std::uint64_t;  // microseconds

// Payloads larger than one chunk (aggregated commitment bundles routinely
// exceed 64 KiB) are carried in multiple chunks, each with its own header.
inline constexpr std::size_t kWireChunkPayload = 64 * 1024;
inline constexpr std::size_t kWireChunkHeader = 6;  // 4B offset + 2B length

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string channel;  // protocol multiplexing key, e.g. "bgp.update"
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t wire_size() const noexcept {
    // 8B addressing + 2B channel length + channel + 4B payload length
    // (a 2B field could not frame an aggregated bundle) + payload, plus one
    // chunk header per 64 KiB chunk beyond the first.
    const std::size_t base = 8 + 2 + channel.size() + 4 + payload.size();
    const std::size_t extra_chunks =
        payload.empty() ? 0 : (payload.size() - 1) / kWireChunkPayload;
    return base + extra_chunks * kWireChunkHeader;
  }
};

class Simulator;

// Verdict of a wire interceptor for one message (scenario adversaries:
// selective droppers, delayers). Replay is built on top of this — the hook
// may capture the message and call Simulator::send again later.
struct InterceptDecision {
  bool drop = false;       // swallow the message (counted as dropped)
  SimTime extra_delay = 0; // added on top of the link latency
};

// Runs inside Simulator::send for every message on an existing link,
// BEFORE the link's random drop draw, so adversarial interference is
// deterministic and independent of link loss. The hook may itself call
// send()/schedule() on the simulator (e.g. to replay a captured message);
// such re-sends pass through the interceptor again, so replay loops must
// be bounded by the hook's own state.
using Interceptor = std::function<InterceptDecision(Simulator&, const Message&)>;

// Base class for protocol endpoints. Handlers run inside Simulator::run().
class Node {
 public:
  virtual ~Node() = default;
  // Called once before the first event is dispatched.
  virtual void on_start(Simulator& sim) { (void)sim; }
  virtual void on_message(Simulator& sim, const Message& message) = 0;
};

struct LinkConfig {
  SimTime latency = 1000;  // one-way, microseconds
  double drop_probability = 0.0;
};

struct ChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  // Per-channel breakdown so experiments can attribute bytes to BGP vs.
  // PVR vs. gossip traffic (keys are Message::channel values).
  std::map<std::string, ChannelStats> per_channel;

  // Sums the stats of every channel whose name starts with `prefix`
  // (e.g. "pvr." covers input/bundle/reveal/export/gossip).
  [[nodiscard]] ChannelStats channel_group(std::string_view prefix) const {
    ChannelStats total;
    for (const auto& [channel, stats] : per_channel) {
      if (channel.rfind(prefix, 0) != 0) continue;
      total.messages_sent += stats.messages_sent;
      total.messages_delivered += stats.messages_delivered;
      total.messages_dropped += stats.messages_dropped;
      total.bytes_sent += stats.bytes_sent;
    }
    return total;
  }
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  // Registers a node. Throws std::invalid_argument on duplicate id.
  void add_node(NodeId id, std::unique_ptr<Node> node);
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] bool has_node(NodeId id) const noexcept;
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  // Creates a bidirectional link. Replaces the config if already linked.
  void connect(NodeId a, NodeId b, LinkConfig config = {});
  void disconnect(NodeId a, NodeId b);
  [[nodiscard]] bool connected(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const;

  // Sends over an existing link; throws std::logic_error if none exists.
  // Delivery happens at now + latency unless the link drops the message.
  void send(Message message);

  // Installs (or clears, with nullptr) the wire interceptor. At most one is
  // active; scenario adversaries compose their behaviors inside one hook.
  void set_interceptor(Interceptor interceptor);

  // Runs `fn` at absolute simulated time `at` (>= now).
  void schedule(SimTime at, std::function<void()> fn);
  void schedule_after(SimTime delay, std::function<void()> fn);

  // Runs `fn` every `interval` µs of simulated time, first at now + interval.
  // The tick re-arms itself only while OTHER events remain queued (periodic
  // ticks don't count each other as work), so an armed periodic task never
  // keeps run() from terminating: the tick after the last real event is the
  // final one. Callbacks run interleaved with message delivery in the
  // deterministic event order and may submit external work (e.g. an engine
  // drain), but anything they schedule back into the simulator counts as
  // real work and extends the ticking. Throws std::invalid_argument on a
  // zero interval.
  void schedule_periodic(SimTime interval, std::function<void()> fn);

  // Dispatches events until the queue is empty or `until` is reached.
  void run();
  void run_until(SimTime until);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] crypto::Drbg& rng() noexcept { return rng_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t sequence;  // FIFO tiebreak for same-time events
    std::function<void()> action;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  struct PeriodicTask {
    SimTime interval;
    std::function<void()> fn;
  };

  void start_pending_nodes();
  void arm_periodic(std::size_t index, SimTime at);
  [[nodiscard]] const LinkConfig* link_between(NodeId a, NodeId b) const noexcept;

  crypto::Drbg rng_;
  Interceptor interceptor_;
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool started_ = false;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;  // key: minmax order
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // deque: a periodic callback may itself call schedule_periodic, and the
  // push_back must not relocate the PeriodicTask whose fn is mid-execution.
  std::deque<PeriodicTask> periodic_;
  std::size_t armed_periodic_ = 0;  // periodic tick events now in queue_
  SimStats stats_;
};

}  // namespace pvr::net
