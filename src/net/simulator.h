// Deterministic discrete-event network simulator.
//
// This is the substrate on which the BGP speakers and the PVR protocol run
// (DESIGN.md §2.2). Nodes exchange messages over point-to-point links with
// configurable latency and drop probability; all randomness is drawn from a
// seeded DRBG, so a (seed, topology, workload) triple always replays the
// exact same execution.
//
// The message-plane surface (Message, Node, Interceptor, stats) lives in
// net/transport.h; the simulator is one BACKEND of that interface, exposed
// through the `SimTransport` returned by transport(). World construction —
// add_node, connect, run — remains concrete simulator API.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "crypto/drbg.h"
#include "net/transport.h"

namespace pvr::net {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed);

  // The canonical Transport view of this simulator — what delivery
  // callbacks receive and what Transport-typed APIs should be handed
  // (`node.provide_input(sim.transport(), ...)`).
  [[nodiscard]] SimTransport& transport() noexcept { return transport_; }

  // Registers a node. Throws std::invalid_argument on duplicate id.
  void add_node(NodeId id, std::unique_ptr<Node> node);
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] bool has_node(NodeId id) const noexcept;
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  // Creates a bidirectional link. Replaces the config if already linked.
  void connect(NodeId a, NodeId b, LinkConfig config = {});
  void disconnect(NodeId a, NodeId b);
  [[nodiscard]] bool connected(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const;

  // Sends over an existing link; throws std::logic_error if none exists.
  // Delivery happens at now + latency unless the link drops the message.
  // The active interceptor (a Transport-level concept, see
  // Transport::set_interceptor) runs first: its drop/extra_delay verdict is
  // applied BEFORE the link's random drop draw, so adversarial interference
  // never perturbs the link-loss RNG stream.
  void send(Message message);

  // Installs (or clears, with nullptr) the wire interceptor. Interception
  // is part of the Transport interface — adversaries should install hooks
  // through `transport().set_interceptor()` so they work on any backend;
  // this method is the simulator-backend implementation of it. The hook
  // receives the canonical SimTransport, never the Simulator itself.
  void set_interceptor(Interceptor interceptor);

  // Attaches a delivery trace recorder (Transport::set_trace's backend
  // implementation). Every delivered message is appended in delivery
  // order. nullptr detaches.
  void set_trace(MessageTrace* trace) noexcept { trace_ = trace; }

  // Runs `fn` at absolute simulated time `at` (>= now).
  void schedule(SimTime at, std::function<void()> fn);
  void schedule_after(SimTime delay, std::function<void()> fn);

  // Runs `fn` every `interval` µs of simulated time, first at now + interval.
  // The tick re-arms itself only while OTHER events remain queued (periodic
  // ticks don't count each other as work), so an armed periodic task never
  // keeps run() from terminating: the tick after the last real event is the
  // final one. Callbacks run interleaved with message delivery in the
  // deterministic event order and may submit external work (e.g. an engine
  // drain), but anything they schedule back into the simulator counts as
  // real work and extends the ticking. Throws std::invalid_argument on a
  // zero interval.
  void schedule_periodic(SimTime interval, std::function<void()> fn);

  // Dispatches events until the queue is empty or `until` is reached.
  void run();
  void run_until(SimTime until);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] crypto::Drbg& rng() noexcept { return rng_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t sequence;  // FIFO tiebreak for same-time events
    std::function<void()> action;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  struct PeriodicTask {
    SimTime interval;
    std::function<void()> fn;
  };

  void start_pending_nodes();
  void arm_periodic(std::size_t index, SimTime at);
  [[nodiscard]] const LinkConfig* link_between(NodeId a, NodeId b) const noexcept;

  crypto::Drbg rng_;
  SimTransport transport_{*this};
  Interceptor interceptor_;
  MessageTrace* trace_ = nullptr;  // not owned
  SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  bool started_ = false;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;  // key: minmax order
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // deque: a periodic callback may itself call schedule_periodic, and the
  // push_back must not relocate the PeriodicTask whose fn is mid-execution.
  std::deque<PeriodicTask> periodic_;
  std::size_t armed_periodic_ = 0;  // periodic tick events now in queue_
  SimStats stats_;
};

}  // namespace pvr::net
