#include "net/gossip.h"

#include "crypto/encoding.h"

namespace pvr::net {

bool GossipState::observe(const std::string& topic, std::vector<std::uint8_t> value) {
  return by_topic_[topic].insert(std::move(value)).second;
}

const std::set<std::vector<std::uint8_t>>& GossipState::values(
    const std::string& topic) const {
  static const std::set<std::vector<std::uint8_t>> kEmpty;
  const auto it = by_topic_.find(topic);
  return it == by_topic_.end() ? kEmpty : it->second;
}

std::optional<GossipState::Conflict> GossipState::conflict_for(
    const std::string& topic) const {
  const auto it = by_topic_.find(topic);
  if (it == by_topic_.end() || it->second.size() < 2) return std::nullopt;
  Conflict conflict{.topic = topic, .values = {}};
  conflict.values.assign(it->second.begin(), it->second.end());
  return conflict;
}

std::vector<GossipState::Conflict> GossipState::all_conflicts() const {
  std::vector<Conflict> out;
  for (const auto& [topic, values] : by_topic_) {
    if (values.size() >= 2) {
      out.push_back({.topic = topic,
                     .values = {values.begin(), values.end()}});
    }
  }
  return out;
}

std::vector<std::uint8_t> encode_gossip(const std::string& topic,
                                        const std::vector<std::uint8_t>& value) {
  crypto::ByteWriter writer;
  writer.put_string(topic);
  writer.put_bytes(value);
  return writer.take();
}

GossipAnnouncement decode_gossip(const std::vector<std::uint8_t>& payload) {
  crypto::ByteReader reader(payload);
  GossipAnnouncement out;
  out.topic = reader.get_string();
  out.value = reader.get_bytes();
  return out;
}

}  // namespace pvr::net
