// The message-plane abstraction every protocol endpoint programs against.
//
// Historically PvrNode, the BGP speakers, and the scenario adversaries were
// written directly against the concrete discrete-event `net::Simulator`.
// `net::Transport` lifts the surface they actually used — send(), link
// queries, the clock, one-shot/periodic scheduling, the wire interceptor,
// and byte accounting — into a virtual interface with two backends:
//
//   * `net::SimTransport` — a thin adapter over a `Simulator`. Zero behavior
//     change: `Simulator::transport()` returns the canonical instance and
//     every delivery callback now receives it, so the whole existing test
//     suite runs through this backend.
//   * `net::SocketTransport` (net/socket_transport.h) — real TCP loopback
//     sockets, length-framed with the same `Message::wire_size()` model.
//
// What callers may assume, on ANY backend (the conformance suite in
// tests/net/transport_conformance_test.cpp holds both backends to this):
//
//   * Per peer-pair FIFO: two messages sent A→B on the same transport are
//     delivered in send order (absent interceptor delays and drops).
//   * send() to a pair without a link/connection throws std::logic_error.
//   * The interceptor runs once per send, before any loss, and its drop
//     decision is counted in stats().messages_dropped.
//   * now() is monotone and handlers observe the time their event fired.
//
// What callers may NOT assume: cross-pair ordering, global determinism
// (only the simulator backend is deterministic; the socket backend is
// wall-clock driven and makes runs reproducible by RECORDING a
// `net::MessageTrace` that replays through a SimTransport — DESIGN.md §13).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pvr::net {

using NodeId = std::uint32_t;
using SimTime = std::uint64_t;  // microseconds

// Payloads larger than one chunk (aggregated commitment bundles routinely
// exceed 64 KiB) are carried in multiple chunks, each with its own header.
inline constexpr std::size_t kWireChunkPayload = 64 * 1024;
inline constexpr std::size_t kWireChunkHeader = 6;  // 4B offset + 2B length

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string channel;  // protocol multiplexing key, e.g. "bgp.update"
  std::vector<std::uint8_t> payload;
  // In-memory correlation tag for transport internals (the multiprocess
  // conductor keys its placeholder events by it). Never serialized, never
  // part of wire_size(); 0 everywhere else.
  std::uint64_t cookie = 0;

  [[nodiscard]] std::size_t wire_size() const noexcept {
    // 8B addressing + 2B channel length + channel + 4B payload length
    // (a 2B field could not frame an aggregated bundle) + payload, plus one
    // chunk header per 64 KiB chunk beyond the first.
    const std::size_t base = 8 + 2 + channel.size() + 4 + payload.size();
    const std::size_t extra_chunks =
        payload.empty() ? 0 : (payload.size() - 1) / kWireChunkPayload;
    return base + extra_chunks * kWireChunkHeader;
  }
};

class Transport;

// Verdict of a wire interceptor for one message (scenario adversaries:
// selective droppers, delayers). Replay is built on top of this — the hook
// may capture the message and call Transport::send again later.
struct InterceptDecision {
  bool drop = false;        // swallow the message (counted as dropped)
  SimTime extra_delay = 0;  // added on top of the link latency
};

// Runs inside Transport::send for every message on an existing link,
// BEFORE any backend loss (the simulator's random drop draw), so
// adversarial interference is deterministic and independent of link loss.
// The hook may itself call send()/schedule() on the transport (e.g. to
// replay a captured message); such re-sends pass through the interceptor
// again, so replay loops must be bounded by the hook's own state.
using Interceptor = std::function<InterceptDecision(Transport&, const Message&)>;

// Base class for protocol endpoints. Handlers run inside the backend's
// event loop (Simulator::run or SocketTransport::poll).
class Node {
 public:
  virtual ~Node() = default;
  // Called once before the first event is dispatched.
  virtual void on_start(Transport& transport) { (void)transport; }
  virtual void on_message(Transport& transport, const Message& message) = 0;
};

struct LinkConfig {
  SimTime latency = 1000;  // one-way, microseconds
  double drop_probability = 0.0;
};

struct ChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

struct SimStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  // Per-channel breakdown so experiments can attribute bytes to BGP vs.
  // PVR vs. gossip traffic (keys are Message::channel values).
  std::map<std::string, ChannelStats> per_channel;

  // Sums the stats of every channel whose name starts with `prefix`
  // (e.g. "pvr." covers input/bundle/reveal/export/gossip).
  [[nodiscard]] ChannelStats channel_group(std::string_view prefix) const {
    ChannelStats total;
    for (const auto& [channel, stats] : per_channel) {
      if (channel.rfind(prefix, 0) != 0) continue;
      total.messages_sent += stats.messages_sent;
      total.messages_delivered += stats.messages_delivered;
      total.messages_dropped += stats.messages_dropped;
      total.bytes_sent += stats.bytes_sent;
    }
    return total;
  }
};

class MessageTrace;  // net/message_trace.h

// The abstract message plane. One instance serves every node the backend
// hosts; Message::from/to address endpoints. World construction (node
// registration, link wiring) stays backend-specific — this interface is
// the surface PROTOCOL code runs on once the world exists.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::string_view backend_name() const noexcept = 0;

  // Sends over an existing link; throws std::logic_error if none exists.
  virtual void send(Message message) = 0;

  // Link queries (the gossip relays consult connected() before each hop).
  [[nodiscard]] virtual bool connected(NodeId a, NodeId b) const = 0;
  [[nodiscard]] virtual std::vector<NodeId> neighbors_of(NodeId id) const = 0;

  // Installs (or clears, with nullptr) the wire interceptor. At most one is
  // active; scenario adversaries compose their behaviors inside one hook.
  virtual void set_interceptor(Interceptor interceptor) = 0;

  // The clock: simulated µs on the simulator backend, wall µs since start
  // on the socket backend.
  [[nodiscard]] virtual SimTime now() const = 0;

  // Runs `fn` at absolute transport time `at` (>= now()).
  virtual void schedule(SimTime at, std::function<void()> fn) = 0;
  virtual void schedule_after(SimTime delay, std::function<void()> fn);

  // Runs `fn` every `interval` µs, first at now + interval. Termination
  // semantics are backend-specific (the simulator stops re-arming once no
  // real work remains; the socket backend ticks until stop()).
  virtual void schedule_periodic(SimTime interval, std::function<void()> fn) = 0;

  // Wire accounting, same counting rules on every backend: bytes are
  // Message::wire_size() regardless of physical overhead, so byte totals
  // are comparable (and fingerprint-identical) across backends.
  [[nodiscard]] virtual const SimStats& stats() const = 0;

  // Attaches (or detaches, with nullptr) a delivery trace recorder: every
  // delivered message is appended in delivery order. The pointer is
  // borrowed and must outlive the attachment.
  virtual void set_trace(MessageTrace* trace) = 0;
};

class Simulator;  // net/simulator.h

// The simulator-backed Transport. A pure forwarder: every call lands on
// the identical Simulator method the pre-Transport code called directly,
// so behavior (event order, stats, rng consumption) is bit-for-bit
// unchanged. `Simulator::transport()` owns the canonical instance.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Simulator& sim) noexcept : sim_(&sim) {}

  [[nodiscard]] std::string_view backend_name() const noexcept override {
    return "sim";
  }
  void send(Message message) override;
  [[nodiscard]] bool connected(NodeId a, NodeId b) const override;
  [[nodiscard]] std::vector<NodeId> neighbors_of(NodeId id) const override;
  void set_interceptor(Interceptor interceptor) override;
  [[nodiscard]] SimTime now() const override;
  void schedule(SimTime at, std::function<void()> fn) override;
  void schedule_periodic(SimTime interval, std::function<void()> fn) override;
  [[nodiscard]] const SimStats& stats() const override;
  void set_trace(MessageTrace* trace) override;

  [[nodiscard]] Simulator& simulator() noexcept { return *sim_; }

 private:
  Simulator* sim_;  // not owned
};

}  // namespace pvr::net
