#include "net/frame.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "crypto/encoding.h"

namespace pvr::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("frame: fcntl(O_NONBLOCK) failed");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_message_body(const Message& message) {
  crypto::ByteWriter writer;
  writer.put_u32(message.from);
  writer.put_u32(message.to);
  writer.put_u16(static_cast<std::uint16_t>(message.channel.size()));
  writer.put_raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.channel.data()),
      message.channel.size()));
  writer.put_u32(static_cast<std::uint32_t>(message.payload.size()));
  const std::span<const std::uint8_t> payload(message.payload);
  const std::size_t first = std::min(payload.size(), kWireChunkPayload);
  writer.put_raw(payload.subspan(0, first));
  for (std::size_t offset = first; offset < payload.size();
       offset += kWireChunkPayload) {
    const std::size_t len =
        std::min(payload.size() - offset, kWireChunkPayload);
    writer.put_u32(static_cast<std::uint32_t>(offset));
    writer.put_u16(static_cast<std::uint16_t>(len % kWireChunkPayload));
    writer.put_raw(payload.subspan(offset, len));
  }
  std::vector<std::uint8_t> body = writer.take();
  if (body.size() != message.wire_size()) {
    throw std::logic_error("frame: body size disagrees with wire_size()");
  }
  return body;
}

Message decode_message_body(std::span<const std::uint8_t> body) {
  crypto::ByteReader reader(body);
  Message message;
  message.from = reader.get_u32();
  message.to = reader.get_u32();
  const std::uint16_t channel_len = reader.get_u16();
  const std::vector<std::uint8_t> channel = reader.get_raw(channel_len);
  message.channel.assign(channel.begin(), channel.end());
  const std::uint32_t payload_len = reader.get_u32();
  message.payload.reserve(payload_len);
  const std::size_t first =
      std::min<std::size_t>(payload_len, kWireChunkPayload);
  const std::vector<std::uint8_t> head = reader.get_raw(first);
  message.payload.insert(message.payload.end(), head.begin(), head.end());
  while (message.payload.size() < payload_len) {
    const std::uint32_t offset = reader.get_u32();
    if (offset != message.payload.size()) {
      throw std::invalid_argument("frame: chunk offset out of order");
    }
    std::size_t len = reader.get_u16();
    if (len == 0) len = kWireChunkPayload;  // u16 wraps at exactly 64 KiB
    if (message.payload.size() + len > payload_len) {
      throw std::invalid_argument("frame: chunk overruns payload length");
    }
    const std::vector<std::uint8_t> chunk = reader.get_raw(len);
    message.payload.insert(message.payload.end(), chunk.begin(), chunk.end());
  }
  if (!reader.exhausted()) {
    throw std::invalid_argument("frame: trailing bytes after payload");
  }
  return message;
}

FrameConn::FrameConn(int fd) : fd_(fd) {
  if (fd_ < 0) throw std::invalid_argument("FrameConn: bad fd");
  set_nonblocking(fd_);
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

FrameConn::~FrameConn() { close(); }

void FrameConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameConn::append(std::uint8_t type, std::span<const std::uint8_t> body) {
  // Compact the already-written prefix occasionally so the buffer does not
  // grow without bound on a long-lived connection.
  if (out_pos_ > 0 && out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  } else if (out_pos_ > 64 * 1024) {
    out_.erase(out_.begin(),
               out_.begin() + static_cast<std::ptrdiff_t>(out_pos_));
    out_pos_ = 0;
  }
  const std::uint32_t total = static_cast<std::uint32_t>(1 + body.size());
  out_.push_back(static_cast<std::uint8_t>(total >> 24));
  out_.push_back(static_cast<std::uint8_t>(total >> 16));
  out_.push_back(static_cast<std::uint8_t>(total >> 8));
  out_.push_back(static_cast<std::uint8_t>(total));
  out_.push_back(type);
  out_.insert(out_.end(), body.begin(), body.end());
}

bool FrameConn::flush() {
  while (out_pos_ < out_.size()) {
    const ssize_t wrote =
        ::send(fd_, out_.data() + out_pos_, out_.size() - out_pos_,
               MSG_NOSIGNAL);
    if (wrote > 0) {
      out_pos_ += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (wrote < 0 && errno == EINTR) continue;
    return false;  // peer reset
  }
  return true;
}

bool FrameConn::flush_all() {
  while (has_pending_out()) {
    if (!flush()) return false;
    if (!has_pending_out()) break;
    pollfd pfd{.fd = fd_, .events = POLLOUT, .revents = 0};
    if (::poll(&pfd, 1, 1000) < 0 && errno != EINTR) return false;
    if ((pfd.revents & (POLLERR | POLLHUP)) != 0) return false;
  }
  return true;
}

bool FrameConn::read_frames(
    const std::function<void(std::uint8_t, std::span<const std::uint8_t>)>&
        on_frame) {
  bool alive = true;
  std::uint8_t chunk[16 * 1024];
  while (true) {
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      in_.insert(in_.end(), chunk, chunk + got);
      continue;
    }
    if (got == 0) {
      alive = false;  // orderly shutdown; a partial frame below is discarded
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    alive = false;
    break;
  }
  std::size_t pos = 0;
  while (in_.size() - pos >= 4) {
    const std::uint32_t total = (std::uint32_t(in_[pos]) << 24) |
                                (std::uint32_t(in_[pos + 1]) << 16) |
                                (std::uint32_t(in_[pos + 2]) << 8) |
                                std::uint32_t(in_[pos + 3]);
    if (total == 0) throw std::invalid_argument("frame: zero-length frame");
    if (in_.size() - pos - 4 < total) break;
    const std::uint8_t type = in_[pos + 4];
    on_frame(type, std::span<const std::uint8_t>(in_.data() + pos + 5,
                                                 total - 1));
    pos += 4 + total;
  }
  in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(pos));
  return alive;
}

bool FrameConn::read_one_frame(std::uint8_t& type,
                               std::vector<std::uint8_t>& body) {
  bool got_frame = false;
  while (!got_frame) {
    bool alive = true;
    // Drain whatever is buffered/readable first.
    alive = read_frames([&](std::uint8_t t, std::span<const std::uint8_t> b) {
      if (got_frame) {
        throw std::logic_error(
            "FrameConn::read_one_frame: multiple frames in flight on a "
            "lockstep control connection");
      }
      type = t;
      body.assign(b.begin(), b.end());
      got_frame = true;
    });
    if (got_frame) return true;
    if (!alive) return false;
    pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
    if (::poll(&pfd, 1, 10'000) < 0 && errno != EINTR) return false;
  }
  return true;
}

int listen_loopback(std::uint16_t& port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("frame: socket() failed");
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw std::runtime_error("frame: bind/listen on loopback failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw std::runtime_error("frame: getsockname failed");
  }
  port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("frame: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    ::close(fd);
    throw std::runtime_error("frame: connect to loopback failed");
  }
  return fd;
}

int accept_connection(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw std::runtime_error("frame: accept failed");
  }
}

}  // namespace pvr::net
