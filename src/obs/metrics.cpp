#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace pvr::obs {

namespace detail {

std::uint64_t steady_now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t cell_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return index;
}

}  // namespace detail

namespace {

// Upper edge of bucket b: 0 for bucket 0, else 2^b - 1 (the largest value
// the bucket holds; saturates at the top bucket).
[[nodiscard]] std::uint64_t bucket_upper_edge(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

std::uint64_t snapshot_quantile(const HistogramSnapshot& hist,
                                double q) noexcept {
  if (hist.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceiling): the smallest bucket
  // whose cumulative count reaches it covers the quantile.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(q * static_cast<double>(hist.count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < hist.counts.size(); ++b) {
    seen += hist.counts[b];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  // counts were trimmed of trailing zeros, so the last non-empty bucket
  // always absorbs the tail rank.
  return bucket_upper_edge(hist.counts.empty() ? 0 : hist.counts.size() - 1);
}

std::uint64_t Histogram::quantile(double q) const {
  return snapshot_quantile(snapshot(), q);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count();
  out.sum = sum();
  // Trailing empty buckets are trimmed so the snapshot (and its
  // fingerprint) stays compact and layout-stable.
  std::size_t last = 0;
  std::array<std::uint64_t, kBuckets> counts{};
  for (std::size_t b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].value.load(std::memory_order_relaxed);
    if (counts[b] != 0) last = b + 1;
  }
  out.counts.assign(counts.begin(), counts.begin() + last);
  return out;
}

void Histogram::reset() noexcept {
  for (detail::Cell& bucket : buckets_) {
    bucket.value.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

// The canonical names of the HotMetrics members, in registry order.
struct HotScalar {
  const char* name;
  Domain domain;
  Counter HotMetrics::* member;
};
struct HotHist {
  const char* name;
  Domain domain;
  Histogram HotMetrics::* member;
};

constexpr HotScalar kHotScalars[] = {
    {"crypto.bytes_hashed", Domain::kSim, &HotMetrics::crypto_bytes_hashed},
    // kSched: Montgomery ladders run wherever the verify landed, and the
    // world verdict cache (core/verify_context.h) elides whole
    // exponentiations depending on which thread or process verified a
    // digest first — so exponentiation COUNTS are schedule-shaped even
    // though every verdict is deterministic.
    {"crypto.mont_powmods", Domain::kSched, &HotMetrics::crypto_mont_powmods},
    {"crypto.mulmod_calls", Domain::kSim, &HotMetrics::crypto_mulmod_calls},
    {"crypto.rsa_batched", Domain::kSim, &HotMetrics::crypto_rsa_batched},
    {"crypto.rsa_signs", Domain::kSim, &HotMetrics::crypto_rsa_signs},
    // kSched since the world verdict cache: a cache hit skips the RSA
    // exponentiation entirely, and WHICH lookup hits depends on the
    // execution schedule (the verdicts do not).
    {"crypto.rsa_verifies", Domain::kSched, &HotMetrics::crypto_rsa_verifies},
    {"crypto.sig_cache_hits", Domain::kSim, &HotMetrics::crypto_sig_cache_hits},
    {"crypto.world_cache_hits", Domain::kSched,
     &HotMetrics::crypto_world_cache_hits},
    // kSched: one drain per offline run, but one per child process in a
    // multiprocess deployment — schedule-shaped, so fingerprint-exempt.
    {"engine.drains", Domain::kSched, &HotMetrics::engine_drains},
    {"engine.rounds_folded", Domain::kSim, &HotMetrics::engine_rounds_folded},
    {"engine.tasks", Domain::kSim, &HotMetrics::engine_tasks},
    {"node.root_epochs_gced", Domain::kSim, &HotMetrics::node_root_epochs_gced},
    {"node.rounds_gced", Domain::kSim, &HotMetrics::node_rounds_gced},
    {"node.windows_closed", Domain::kSim, &HotMetrics::node_windows_closed},
    {"sim.events", Domain::kSim, &HotMetrics::sim_events},
    {"sim.messages", Domain::kSim, &HotMetrics::sim_messages},
    {"sim.ticks", Domain::kSim, &HotMetrics::sim_ticks},
};

constexpr HotHist kHotHists[] = {
    {"crypto.mulmod_us", Domain::kWall, &HotMetrics::crypto_mulmod_us},
    {"crypto.rsa_verify_us", Domain::kWall, &HotMetrics::crypto_rsa_verify_us},
    {"engine.overlap_us", Domain::kWall, &HotMetrics::engine_overlap_us},
    {"engine.task_us", Domain::kWall, &HotMetrics::engine_task_us},
    // kSched: batch sizes depend on how rounds were sharded over processes.
    {"scenario.drain_rounds", Domain::kSched,
     &HotMetrics::scenario_drain_rounds},
    {"scenario.settle_us", Domain::kSim, &HotMetrics::scenario_settle_us},
};

[[nodiscard]] std::string json_key(const std::string& name, Domain domain) {
  // Dots become underscores so every key is a plain JSON identifier, and
  // wall metrics are prefixed so consumers can split sections mechanically.
  std::string key = domain == Domain::kWall ? "wall_" : "";
  key += name;
  std::replace(key.begin(), key.end(), '.', '_');
  return key;
}

}  // namespace

std::string MetricsSnapshot::sim_fingerprint() const {
  std::string out;
  for (const Entry& entry : scalars) {
    if (entry.domain != Domain::kSim) continue;
    out += entry.name;
    out += '=';
    out += std::to_string(entry.value);
    out += '|';
  }
  for (const HistEntry& entry : histograms) {
    if (entry.domain != Domain::kSim) continue;
    out += entry.name;
    out += "=[";
    for (std::size_t b = 0; b < entry.hist.counts.size(); ++b) {
      if (entry.hist.counts[b] == 0) continue;
      out += std::to_string(b);
      out += ':';
      out += std::to_string(entry.hist.counts[b]);
      out += ',';
    }
    out += "]n=";
    out += std::to_string(entry.hist.count);
    out += ",sum=";
    out += std::to_string(entry.hist.sum);
    out += '|';
  }
  return out;
}

std::string MetricsSnapshot::to_json_fields() const {
  std::string out;
  const auto append = [&out](const std::string& key, std::uint64_t value) {
    if (!out.empty()) out += ',';
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  for (const Entry& entry : scalars) {
    append(json_key(entry.name, entry.domain), entry.value);
  }
  for (const HistEntry& entry : histograms) {
    const std::string key = json_key(entry.name, entry.domain);
    append(key + "_count", entry.hist.count);
    append(key + "_sum", entry.hist.sum);
    append(key + "_p50", snapshot_quantile(entry.hist, 0.5));
    append(key + "_p99", snapshot_quantile(entry.hist, 0.99));
  }
  return out;
}

MetricsRegistry::MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Named& slot = named_[std::string(name)];
  if (!slot.counter) {
    slot.counter = std::make_unique<Counter>();
    slot.domain = domain;
  }
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Named& slot = named_[std::string(name)];
  if (!slot.gauge) {
    slot.gauge = std::make_unique<Gauge>();
    slot.domain = domain;
  }
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Named& slot = named_[std::string(name)];
  if (!slot.histogram) {
    slot.histogram = std::make_unique<Histogram>();
    slot.domain = domain;
  }
  return *slot.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const HotScalar& scalar : kHotScalars) {
    out.scalars.push_back(MetricsSnapshot::Entry{
        .name = scalar.name,
        .domain = scalar.domain,
        .value = (hot.*scalar.member).value()});
  }
  for (const HotHist& hist : kHotHists) {
    out.histograms.push_back(MetricsSnapshot::HistEntry{
        .name = hist.name,
        .domain = hist.domain,
        .hist = (hot.*hist.member).snapshot()});
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, slot] : named_) {
      if (slot.counter) {
        out.scalars.push_back(MetricsSnapshot::Entry{
            .name = name, .domain = slot.domain, .value = slot.counter->value()});
      }
      if (slot.gauge) {
        out.scalars.push_back(MetricsSnapshot::Entry{
            .name = name,
            .domain = slot.domain,
            .value = static_cast<std::uint64_t>(slot.gauge->value())});
      }
      if (slot.histogram) {
        out.histograms.push_back(MetricsSnapshot::HistEntry{
            .name = name,
            .domain = slot.domain,
            .hist = slot.histogram->snapshot()});
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.scalars.begin(), out.scalars.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsRegistry::reset() {
  for (const HotScalar& scalar : kHotScalars) (hot.*scalar.member).reset();
  for (const HotHist& hist : kHotHists) (hot.*hist.member).reset();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, slot] : named_) {
    if (slot.counter) slot.counter->reset();
    if (slot.gauge) slot.gauge->reset();
    if (slot.histogram) slot.histogram->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented code (worker pools, static
  // destructors) may record until the very end of the process.
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

}  // namespace pvr::obs
