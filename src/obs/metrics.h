// Deterministic metrics: counters, gauges, and fixed-log-bucket histograms.
//
// This is the measurement layer the throughput ROADMAP items regress
// against (overlap proof for item 1, the crypto profile item 3 demands,
// the p99 settle latency item 4 gates on). Two hard requirements shape it:
//
//  1. Determinism. Metrics in the SIM domain are pure functions of the
//     scenario spec: identical at any engine worker count, because every
//     mutation is a commutative add and the recorded multiset of values is
//     fixed by the simulated schedule. `MetricsSnapshot::sim_fingerprint()`
//     canonicalizes exactly that section; the obs tests gate it across
//     workers {1,2,8}. WALL-domain metrics (task durations) depend on the
//     host and are exported in a separate, gate-exempt section.
//
//  2. Zero perturbation. Instrumentation must never touch a DRBG, reorder
//     a simulator event, or change a wire byte — report fingerprints are
//     byte-identical with obs compiled in or out (-DPVR_OBS=OFF), which CI
//     enforces via the golden-fingerprint test both build flavors run.
//
// Thread safety: counters and histogram buckets are sharded over
// cache-line-padded relaxed atomics (engine workers bump them from the
// pool), so hot-path cost is one relaxed add with no sharing. Sums are
// exact on read after the pool quiesces (drain() is the natural read
// point); reads DURING concurrent writes are racy-accurate like any
// statistical counter.
//
// Hot call sites use the PVR_OBS_* macros below, which compile to nothing
// under -DPVR_OBS=OFF. The data structures themselves stay available in
// both build flavors (the scenario runner aggregates settle latencies
// through a local Histogram, and tests exercise them directly); only the
// global-registry instrumentation hooks vanish.
//
// Naming scheme (DESIGN.md §11): `<layer>.<what>[_<unit>]`, layers
// crypto | engine | sim | node | scenario. Units suffix the name only for
// non-count metrics (`_us`, `_bytes`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef PVR_OBS_ENABLED
#define PVR_OBS_ENABLED 1
#endif

namespace pvr::obs {

// True when instrumentation call sites are compiled in (-DPVR_OBS=ON, the
// default). The classes below work either way; this only gates the hooks.
inline constexpr bool kCompiledIn = PVR_OBS_ENABLED != 0;

namespace detail {
// One cache line per shard so concurrent workers never false-share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

inline constexpr std::size_t kCells = 8;

// Stable small index for the calling thread, spreading threads over the
// cells. Thread-local so the hot path is an array index, not a hash.
[[nodiscard]] std::size_t cell_index() noexcept;
}  // namespace detail

// Monotonic event counter. add() is one relaxed atomic add on a
// thread-sharded cell; value() sums the cells.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    cells_[detail::cell_index()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const detail::Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (detail::Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::Cell, detail::kCells> cells_;
};

// Last-write-wins signed level (open rounds, queue depths).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Deterministic view of one histogram: the state two runs must agree on.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  // counts[i] covers [2^(i-1), 2^i) for i >= 1; counts[0] is value 0.
  std::vector<std::uint64_t> counts;

  [[nodiscard]] bool operator==(const HistogramSnapshot&) const = default;
};

// Fixed-log-bucket histogram over uint64 values. Bucket b holds values in
// [2^(b-1), 2^b) (bucket 0 holds exactly 0), so the layout needs no
// configuration and two histograms fed the same multiset of values — in
// ANY order, from ANY number of threads — reach identical bucket counts
// and sum. Quantiles report the upper edge of the covering bucket, i.e.
// an at-most-2x overestimate; good enough to gate p99 regressions, and
// deterministic, which an exact-but-sampled sketch would not be.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // 0 plus one per bit

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_of(value)].value.fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  // Upper edge of the bucket containing the q-quantile (q in [0,1]) of the
  // recorded values; 0 when empty. quantile(0.5) -> p50, (0.99) -> p99.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  // Index of the bucket holding `value` (exposed for tests asserting the
  // layout): 0 for 0, else 1 + floor(log2(value)).
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept {
    return value == 0
               ? 0
               : 64 - static_cast<std::size_t>(__builtin_clzll(value));
  }

 private:
  std::array<detail::Cell, kBuckets> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// Quantile over a captured snapshot — same semantics (bucket upper edge)
// as Histogram::quantile, usable after the live histogram moved on.
[[nodiscard]] std::uint64_t snapshot_quantile(const HistogramSnapshot& hist,
                                              double q) noexcept;
// (snapshot_quantile never allocates; Histogram::quantile snapshots first.)

namespace detail {
[[nodiscard]] std::uint64_t steady_now_us() noexcept;
}  // namespace detail

// Steady-clock µs for WALL-domain timings (arbitrary epoch — subtract two
// readings). Constant 0 under -DPVR_OBS=OFF so timing code folds away with
// the PVR_OBS_RECORD that consumes it.
[[nodiscard]] inline std::uint64_t wall_clock_us() noexcept {
  if constexpr (!kCompiledIn) return 0;
  return detail::steady_now_us();
}

// Which export section a metric belongs to (DESIGN.md §11, §14): kSim
// metrics are deterministic functions of the spec and join
// sim_fingerprint(); kWall metrics are host timings and are exported but
// never gated on determinism. kSched metrics are deterministic for a FIXED
// execution schedule but depend on how the run was partitioned (drain
// cadence, process count) — e.g. engine.drains is 1 for a single offline
// drain but N when N child processes each drain their shard — so they are
// exported unprefixed like kSim yet excluded from the fingerprint that the
// distributed-aggregation parity gate compares.
enum class Domain : std::uint8_t { kSim, kWall, kSched };

// The well-known hot-path metrics, addressable as direct members so the
// crypto and engine hot paths never pay a name lookup. All are kSim unless
// the comment says wall. Registered (with their canonical names) in every
// MetricsRegistry.
struct HotMetrics {
  // Crypto profile (ROADMAP item 3's "profile first").
  Counter crypto_rsa_verifies;    // RSA verify exponentiations performed
  Counter crypto_rsa_signs;       // RSA signatures produced
  Counter crypto_rsa_batched;     // verify members screened via a batch call
  Counter crypto_sig_cache_hits;  // verified-root dedup hits (RSA skipped)
  Counter crypto_world_cache_hits;  // world verdict-cache hits (RSA skipped)
  Counter crypto_mulmod_calls;    // Bignum::mulmod invocations
  Counter crypto_mont_powmods;    // Montgomery-ladder exponentiations
  Counter crypto_bytes_hashed;    // bytes fed through SHA-256 update()
  Histogram crypto_rsa_verify_us;  // WALL: per-verify exponentiation time
  Histogram crypto_mulmod_us;      // WALL: per-mulmod time (item 3 profile)
  // Engine.
  Counter engine_tasks;           // scheduler tasks executed
  Counter engine_drains;          // batches sealed (begin_drain / drain)
  Counter engine_rounds_folded;   // task groups folded back into rounds
  Histogram engine_task_us;       // WALL: per-task execution time
  Histogram engine_overlap_us;    // WALL: per-batch verification overlapped
                                  // with the submitting thread being away
  // Simulator.
  Counter sim_events;             // events dispatched by run_until
  Counter sim_messages;           // Simulator::send calls
  Counter sim_ticks;              // periodic tick firings
  // Node / round lifecycle.
  Counter node_windows_closed;    // prover collection windows fired
  Counter node_rounds_gced;       // rounds released by gc_finalized
  Counter node_root_epochs_gced;  // root-dedup epochs retired by gc_epoch_roots
  // Scenario pipeline.
  Histogram scenario_settle_us;   // sim-time window-close -> settled
  Histogram scenario_drain_rounds;  // rounds submitted per drain batch
};

struct MetricsSnapshot {
  struct Entry {
    std::string name;
    Domain domain = Domain::kSim;
    std::uint64_t value = 0;  // counters/gauges (gauges cast)
  };
  struct HistEntry {
    std::string name;
    Domain domain = Domain::kSim;
    HistogramSnapshot hist;
  };
  std::vector<Entry> scalars;      // sorted by name
  std::vector<HistEntry> histograms;  // sorted by name

  // Canonical string over the kSim section only: the byte-identity the
  // worker-count determinism tests compare.
  [[nodiscard]] std::string sim_fingerprint() const;
  // One flat JSON object body (no braces): "k":v pairs for every scalar,
  // plus count/sum/p50/p99 per histogram. Wall metrics get a "wall_"
  // prefix so consumers can split the sections mechanically.
  [[nodiscard]] std::string to_json_fields() const;

  // Cross-process export (src/obs/export.cpp, DESIGN.md §14). The wire
  // format is versioned; decode() rejects an unknown version with
  // std::invalid_argument rather than misparse.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static MetricsSnapshot decode(const std::uint8_t* data,
                                              std::size_t size);
  [[nodiscard]] static MetricsSnapshot decode(
      const std::vector<std::uint8_t>& bytes) {
    return decode(bytes.data(), bytes.size());
  }

  // Commutative, associative shard union: entries with the same name add
  // (scalars by value, histograms bucketwise); entries unique to either
  // side carry over. A name carrying different domains on the two sides is
  // a schema bug and throws std::invalid_argument.
  void merge(const MetricsSnapshot& other);

  // Counter-style difference `later - earlier` (missing-in-earlier reads
  // as 0; subtraction saturates at 0): the per-run delta that isolates a
  // child's grant-loop work from process-lifetime noise like keygen.
  [[nodiscard]] static MetricsSnapshot delta(const MetricsSnapshot& later,
                                             const MetricsSnapshot& earlier);
};

// Registry: the fixed HotMetrics plus dynamically named metrics. Named
// lookups mutex a map and return stable references (hold the reference,
// not the name, on hot paths). reset() zeroes values but never invalidates
// references.
class MetricsRegistry {
 public:
  MetricsRegistry();

  HotMetrics hot;

  [[nodiscard]] Counter& counter(std::string_view name,
                                 Domain domain = Domain::kSim);
  [[nodiscard]] Gauge& gauge(std::string_view name,
                             Domain domain = Domain::kSim);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     Domain domain = Domain::kSim);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void reset();

  // The process-wide registry every PVR_OBS_* macro records into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Named {
    Domain domain = Domain::kSim;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Named, std::less<>> named_;
};

}  // namespace pvr::obs

// Hot-path hooks. `member` is a HotMetrics field name. Under
// -DPVR_OBS=OFF these expand to nothing: no atomic, no global access, no
// clock read.
#if PVR_OBS_ENABLED
#define PVR_OBS_COUNT(member, delta) \
  (::pvr::obs::MetricsRegistry::global().hot.member.add(delta))
#define PVR_OBS_RECORD(member, value) \
  (::pvr::obs::MetricsRegistry::global().hot.member.record(value))
#else
#define PVR_OBS_COUNT(member, delta) ((void)0)
#define PVR_OBS_RECORD(member, value) ((void)0)
#endif
