#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "crypto/encoding.h"

namespace pvr::obs {

namespace {

[[nodiscard]] Domain domain_from_wire(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(Domain::kSched)) {
    throw std::invalid_argument("MetricsSnapshot::decode: bad domain byte " +
                                std::to_string(raw));
  }
  return static_cast<Domain>(raw);
}

[[nodiscard]] std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

void hist_add(HistogramSnapshot& into, const HistogramSnapshot& from) {
  into.count += from.count;
  into.sum += from.sum;
  if (into.counts.size() < from.counts.size()) {
    into.counts.resize(from.counts.size(), 0);
  }
  for (std::size_t b = 0; b < from.counts.size(); ++b) {
    into.counts[b] += from.counts[b];
  }
}

[[nodiscard]] HistogramSnapshot hist_sub(const HistogramSnapshot& later,
                                         const HistogramSnapshot& earlier) {
  HistogramSnapshot out;
  out.count = sat_sub(later.count, earlier.count);
  out.sum = sat_sub(later.sum, earlier.sum);
  out.counts = later.counts;
  for (std::size_t b = 0;
       b < out.counts.size() && b < earlier.counts.size(); ++b) {
    out.counts[b] = sat_sub(out.counts[b], earlier.counts[b]);
  }
  while (!out.counts.empty() && out.counts.back() == 0) out.counts.pop_back();
  return out;
}

void check_domains(const char* what, const std::string& name, Domain a,
                   Domain b) {
  if (a != b) {
    throw std::invalid_argument(std::string("MetricsSnapshot::") + what +
                                ": domain mismatch for '" + name + "'");
  }
}

}  // namespace

std::vector<std::uint8_t> MetricsSnapshot::encode() const {
  crypto::ByteWriter writer;
  writer.put_u16(kSnapshotWireVersion);
  writer.put_u32(static_cast<std::uint32_t>(scalars.size()));
  for (const Entry& entry : scalars) {
    writer.put_string(entry.name);
    writer.put_u8(static_cast<std::uint8_t>(entry.domain));
    writer.put_u64(entry.value);
  }
  writer.put_u32(static_cast<std::uint32_t>(histograms.size()));
  for (const HistEntry& entry : histograms) {
    writer.put_string(entry.name);
    writer.put_u8(static_cast<std::uint8_t>(entry.domain));
    writer.put_u64(entry.hist.count);
    writer.put_u64(entry.hist.sum);
    writer.put_u32(static_cast<std::uint32_t>(entry.hist.counts.size()));
    for (const std::uint64_t bucket : entry.hist.counts) {
      writer.put_u64(bucket);
    }
  }
  return writer.take();
}

MetricsSnapshot MetricsSnapshot::decode(const std::uint8_t* data,
                                        std::size_t size) {
  crypto::ByteReader reader(std::span<const std::uint8_t>(data, size));
  const std::uint16_t version = reader.get_u16();
  if (version != kSnapshotWireVersion) {
    throw std::invalid_argument(
        "MetricsSnapshot::decode: wire version " + std::to_string(version) +
        " != " + std::to_string(kSnapshotWireVersion));
  }
  MetricsSnapshot out;
  const std::uint32_t n_scalars = reader.get_u32();
  out.scalars.reserve(n_scalars);
  for (std::uint32_t i = 0; i < n_scalars; ++i) {
    Entry entry;
    entry.name = reader.get_string();
    entry.domain = domain_from_wire(reader.get_u8());
    entry.value = reader.get_u64();
    out.scalars.push_back(std::move(entry));
  }
  const std::uint32_t n_hists = reader.get_u32();
  out.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    HistEntry entry;
    entry.name = reader.get_string();
    entry.domain = domain_from_wire(reader.get_u8());
    entry.hist.count = reader.get_u64();
    entry.hist.sum = reader.get_u64();
    const std::uint32_t buckets = reader.get_u32();
    if (buckets > Histogram::kBuckets) {
      throw std::invalid_argument(
          "MetricsSnapshot::decode: histogram bucket count out of range");
    }
    entry.hist.counts.reserve(buckets);
    for (std::uint32_t b = 0; b < buckets; ++b) {
      entry.hist.counts.push_back(reader.get_u64());
    }
    out.histograms.push_back(std::move(entry));
  }
  // Snapshots are sorted by construction; re-sort defensively so fingerprint
  // comparisons never depend on a peer's ordering discipline.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.scalars.begin(), out.scalars.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  // Sorted-union in one pass; equal names add (the commutative shard sum),
  // one-sided names carry over unchanged.
  std::vector<Entry> merged_scalars;
  merged_scalars.reserve(scalars.size() + other.scalars.size());
  std::size_t i = 0, j = 0;
  while (i < scalars.size() || j < other.scalars.size()) {
    if (j >= other.scalars.size() ||
        (i < scalars.size() && scalars[i].name < other.scalars[j].name)) {
      merged_scalars.push_back(std::move(scalars[i++]));
    } else if (i >= scalars.size() ||
               other.scalars[j].name < scalars[i].name) {
      merged_scalars.push_back(other.scalars[j++]);
    } else {
      check_domains("merge", scalars[i].name, scalars[i].domain,
                    other.scalars[j].domain);
      scalars[i].value += other.scalars[j].value;
      merged_scalars.push_back(std::move(scalars[i]));
      ++i;
      ++j;
    }
  }
  scalars = std::move(merged_scalars);

  std::vector<HistEntry> merged_hists;
  merged_hists.reserve(histograms.size() + other.histograms.size());
  i = 0;
  j = 0;
  while (i < histograms.size() || j < other.histograms.size()) {
    if (j >= other.histograms.size() ||
        (i < histograms.size() &&
         histograms[i].name < other.histograms[j].name)) {
      merged_hists.push_back(std::move(histograms[i++]));
    } else if (i >= histograms.size() ||
               other.histograms[j].name < histograms[i].name) {
      merged_hists.push_back(other.histograms[j++]);
    } else {
      check_domains("merge", histograms[i].name, histograms[i].domain,
                    other.histograms[j].domain);
      hist_add(histograms[i].hist, other.histograms[j].hist);
      merged_hists.push_back(std::move(histograms[i]));
      ++i;
      ++j;
    }
  }
  histograms = std::move(merged_hists);
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& later,
                                       const MetricsSnapshot& earlier) {
  MetricsSnapshot out;
  out.scalars.reserve(later.scalars.size());
  std::size_t j = 0;
  for (const Entry& entry : later.scalars) {
    while (j < earlier.scalars.size() &&
           earlier.scalars[j].name < entry.name) {
      ++j;
    }
    Entry diff = entry;
    if (j < earlier.scalars.size() && earlier.scalars[j].name == entry.name) {
      check_domains("delta", entry.name, entry.domain,
                    earlier.scalars[j].domain);
      diff.value = sat_sub(entry.value, earlier.scalars[j].value);
    }
    out.scalars.push_back(std::move(diff));
  }
  out.histograms.reserve(later.histograms.size());
  j = 0;
  for (const HistEntry& entry : later.histograms) {
    while (j < earlier.histograms.size() &&
           earlier.histograms[j].name < entry.name) {
      ++j;
    }
    HistEntry diff;
    diff.name = entry.name;
    diff.domain = entry.domain;
    if (j < earlier.histograms.size() &&
        earlier.histograms[j].name == entry.name) {
      check_domains("delta", entry.name, entry.domain,
                    earlier.histograms[j].domain);
      diff.hist = hist_sub(entry.hist, earlier.histograms[j].hist);
    } else {
      diff.hist = entry.hist;
    }
    out.histograms.push_back(std::move(diff));
  }
  return out;
}

namespace {

// Reads a whole file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("merge_traces: cannot open " + path);
  }
  std::string out;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out.append(buf, n);
  }
  std::fclose(file);
  return out;
}

// Splits the `traceEvents` array of one TraceWriter file into per-event
// JSON object strings (string-aware brace scan; no general JSON parser
// needed for our own writer's output).
[[nodiscard]] std::vector<std::string> split_events(const std::string& text,
                                                    const std::string& path) {
  const std::size_t array_at = text.find("\"traceEvents\":[");
  if (array_at == std::string::npos) {
    throw std::runtime_error("merge_traces: no traceEvents array in " + path);
  }
  std::vector<std::string> events;
  std::size_t pos = array_at + std::string("\"traceEvents\":[").size();
  while (pos < text.size()) {
    while (pos < text.size() &&
           (text[pos] == ',' || text[pos] == '\n' || text[pos] == ' ')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] == ']') break;
    if (text[pos] != '{') {
      throw std::runtime_error("merge_traces: malformed event in " + path);
    }
    const std::size_t start = pos;
    int depth = 0;
    bool in_string = false;
    for (; pos < text.size(); ++pos) {
      const char c = text[pos];
      if (in_string) {
        if (c == '\\') {
          ++pos;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++pos;
          break;
        }
      }
    }
    if (depth != 0) {
      throw std::runtime_error("merge_traces: truncated event in " + path);
    }
    events.push_back(text.substr(start, pos - start));
  }
  return events;
}

// Rewrites the event's "pid" field through `remap(old_pid)`; returns the
// old pid (0 when the event carries none).
[[nodiscard]] unsigned remap_pid(std::string& event,
                                 unsigned (*remap)(unsigned, unsigned),
                                 unsigned shard) {
  const std::size_t key_at = event.find("\"pid\":");
  if (key_at == std::string::npos) return 0;
  std::size_t digits = key_at + 6;
  std::size_t end = digits;
  while (end < event.size() && event[end] >= '0' && event[end] <= '9') ++end;
  const unsigned old_pid = static_cast<unsigned>(
      std::strtoul(event.substr(digits, end - digits).c_str(), nullptr, 10));
  event.replace(digits, end - digits, std::to_string(remap(shard, old_pid)));
  return old_pid;
}

[[nodiscard]] bool is_metadata(const std::string& event) {
  return event.find("\"ph\":\"M\"") != std::string::npos;
}

[[nodiscard]] unsigned merged_pid(unsigned shard, unsigned old_pid) {
  // Shard k's wall/sim tracks land on pids 10k+1 / 10k+2: stable, disjoint,
  // and still ordered by shard in the viewer's process list.
  return shard * 10 + old_pid;
}

[[nodiscard]] std::uint64_t dropped_of(const std::string& text) {
  const std::size_t at = text.find("\"droppedEvents\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + 16, nullptr, 10);
}

}  // namespace

std::size_t merge_traces(const std::vector<TraceShard>& shards,
                         const std::string& out_path) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  std::string body;
  std::uint64_t dropped_total = 0;
  std::size_t merged = 0;
  for (std::size_t shard = 0; shard < shards.size(); ++shard) {
    const std::string text = read_file(shards[shard].path);
    dropped_total += dropped_of(text);
    std::vector<bool> track_seen(3, false);
    for (std::string& event : split_events(text, shards[shard].path)) {
      if (is_metadata(event)) continue;  // re-emitted per shard below
      const unsigned old_pid =
          remap_pid(event, &merged_pid, static_cast<unsigned>(shard));
      if (old_pid < track_seen.size()) track_seen[old_pid] = true;
      if (!body.empty()) body += ",\n";
      body += event;
      ++merged;
    }
    for (unsigned old_pid = 1; old_pid < track_seen.size(); ++old_pid) {
      if (!track_seen[old_pid]) continue;
      out += "{\"ph\":\"M\",\"pid\":";
      out += std::to_string(merged_pid(static_cast<unsigned>(shard), old_pid));
      out += ",\"name\":\"process_name\",\"args\":{\"name\":\"";
      out += shards[shard].label;
      out += old_pid == 1 ? "/wall-clock" : "/sim-time";
      out += "\"}},\n";
    }
  }
  out += body;
  out += "\n]";
  if (dropped_total != 0) {
    out += ",\"droppedEvents\":";
    out += std::to_string(dropped_total);
  }
  out += "}\n";

  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    throw std::runtime_error("merge_traces: cannot write " + out_path);
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  if (std::fclose(file) != 0 || !ok) {
    throw std::runtime_error("merge_traces: short write to " + out_path);
  }
  return merged;
}

}  // namespace pvr::obs
