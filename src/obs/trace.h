// RAII trace spans emitting Chrome trace-event JSON.
//
// `TraceWriter::global().open("trace.json")` arms capture (the scenario
// harness wires `--trace-out=FILE` to exactly this); `close()` writes one
// JSON object loadable in chrome://tracing or https://ui.perfetto.dev.
// While capture is off — the default — every record call is one relaxed
// atomic load and an early return, and under -DPVR_OBS=OFF the entire
// class body compiles away (see the `if constexpr (kCompiledIn)` guards).
//
// Two processes partition the timeline (DESIGN.md §11):
//   pid 1 "wall-clock"  — RAII TraceSpans: engine worker occupancy (one
//                         lane per worker thread), drains, sim.run, the
//                         scenario phases. Timestamps are steady-clock µs
//                         since open().
//   pid 2 "sim-time"    — explicit sim_span/sim_instant events: the round
//                         lifecycle (window close -> settle), drain ticks.
//                         Timestamps are simulated µs; lanes (tid) are
//                         caller-chosen (the runner uses the neighborhood
//                         index so each hood's rounds stack together).
//
// Both sections share one x-axis in the viewer; the pid split keeps the
// two clock domains from visually interleaving.
//
// Thread safety: record calls append under a mutex (tracing is a
// diagnostic path; the hot no-trace case never takes it). The buffer is
// capped — past kMaxEvents further events are counted and dropped, so a
// million-round trace degrades instead of eating the heap.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"  // for PVR_OBS_ENABLED / kCompiledIn

namespace pvr::obs {

// The two clock domains, used as the trace-event pid.
enum class Track : std::uint8_t { kWall = 1, kSim = 2 };

class TraceWriter {
 public:
  static constexpr std::size_t kMaxEvents = 1u << 19;  // ~524k

  // Starts capture into `path` (written on close()). Returns false — and
  // stays inactive — when tracing is compiled out. Re-opening while active
  // first closes the previous capture.
  bool open(std::string path);

  // Writes the buffered events as Chrome trace JSON and disarms capture.
  // No-op when inactive. Returns false when the file could not be written.
  bool close();

  [[nodiscard]] bool active() const noexcept {
    if constexpr (!kCompiledIn) return false;
    return active_.load(std::memory_order_relaxed);
  }

  // Wall timestamp in µs since open() (0 when inactive).
  [[nodiscard]] std::uint64_t wall_now_us() const noexcept;

  // A completed span. `args_json` is either empty or a full JSON object
  // ("{\"k\":1}") placed verbatim into the event's "args".
  void complete(const char* name, const char* category, Track track,
                std::uint64_t tid, std::uint64_t ts_us, std::uint64_t dur_us,
                std::string args_json = {});

  // A zero-duration marker.
  void instant(const char* name, const char* category, Track track,
               std::uint64_t tid, std::uint64_t ts_us,
               std::string args_json = {});

  // A flow event (DESIGN.md §14): phase 's' (start), 't' (step), or 'f'
  // (finish). Every flow event carrying the same id joins one arrow chain
  // in the viewer — across files, and therefore across processes once
  // merge_traces() stitches the shards. The multiprocess plane uses the
  // per-message 64-bit trace cookie as the id, so one logical message's
  // send, conductor relay, and delivery become one arrow.
  void flow(char phase, const char* name, const char* category, Track track,
            std::uint64_t tid, std::uint64_t ts_us, std::uint64_t flow_id);

  // Sim-time helpers: timestamps are simulated µs, lane is caller-chosen.
  void sim_span(const char* name, std::uint64_t lane, std::uint64_t start_us,
                std::uint64_t end_us, std::string args_json = {}) {
    if (!active()) return;
    complete(name, "sim", Track::kSim, lane, start_us,
             end_us >= start_us ? end_us - start_us : 0,
             std::move(args_json));
  }
  void sim_instant(const char* name, std::uint64_t lane, std::uint64_t ts_us,
                   std::string args_json = {}) {
    if (!active()) return;
    instant(name, "sim", Track::kSim, lane, ts_us, std::move(args_json));
  }

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Stable small lane id for the calling thread (wall spans from engine
  // workers each get their own lane).
  [[nodiscard]] static std::uint64_t thread_lane() noexcept;

  [[nodiscard]] static TraceWriter& global();

 private:
  struct Event {
    const char* name;      // static-storage strings only
    const char* category;  // static-storage strings only
    char phase;            // 'X' complete, 'i' instant, 's'/'t'/'f' flow
    Track track;
    std::uint64_t tid;
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint64_t flow_id = 0;  // flow phases only
    std::string args_json;
  };

  void push(Event event);
  // Fork safety: a child inherits the parent's armed writer and buffered
  // events. On the first record (or close) in a new pid, drop the
  // inherited buffer and retarget the file to `<base>.<pid>.json`, so a
  // child never rewrites its parent's trace and every process lands in its
  // own shard for merge_traces(). Caller holds mutex_.
  void maybe_refresh_owner_locked();

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> open_wall_ns_{0};  // steady_clock at open()
  mutable std::mutex mutex_;
  std::string path_;
  int owner_pid_ = 0;  // pid that open()ed (or last adopted) the capture
  std::vector<Event> events_;
};

// RAII wall-clock span: captures the start on construction, emits one
// complete event on destruction. Inactive tracing costs one atomic load
// at each end; -DPVR_OBS=OFF compiles the whole object away.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pvr",
                     std::string args_json = {}) {
    if constexpr (kCompiledIn) {
      TraceWriter& writer = TraceWriter::global();
      if (writer.active()) {
        name_ = name;
        category_ = category;
        args_json_ = std::move(args_json);
        start_us_ = writer.wall_now_us();
        armed_ = true;
      }
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if constexpr (kCompiledIn) {
      if (!armed_) return;
      TraceWriter& writer = TraceWriter::global();
      // A capture closed mid-span just drops the span.
      if (!writer.active()) return;
      const std::uint64_t end_us = writer.wall_now_us();
      writer.complete(name_, category_, Track::kWall,
                      TraceWriter::thread_lane(), start_us_,
                      end_us >= start_us_ ? end_us - start_us_ : 0,
                      std::move(args_json_));
    }
  }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::string args_json_;
  std::uint64_t start_us_ = 0;
  bool armed_ = false;
};

}  // namespace pvr::obs
