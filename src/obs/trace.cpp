#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <utility>

namespace pvr::obs {

namespace {

[[nodiscard]] std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal JSON string escape for the (static, ASCII) names we emit plus
// any caller-provided args passthrough keys. Control chars become \u00XX.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool TraceWriter::open(std::string path) {
  if constexpr (!kCompiledIn) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (active_.load(std::memory_order_relaxed)) {
    // Previous capture is abandoned, not flushed: re-open mid-run means the
    // caller wants a fresh file, and a partial flush would need the lock we
    // already hold. Keep it simple; callers close() between captures.
    events_.clear();
  }
  path_ = std::move(path);
  events_.clear();
  events_.reserve(4096);
  dropped_.store(0, std::memory_order_relaxed);
  open_wall_ns_.store(steady_ns(), std::memory_order_relaxed);
  owner_pid_ = static_cast<int>(::getpid());
  active_.store(true, std::memory_order_relaxed);
  return true;
}

void TraceWriter::maybe_refresh_owner_locked() {
  const int pid = static_cast<int>(::getpid());
  if (pid == owner_pid_) return;
  // Forked child: the buffered events (and the output path) belong to the
  // parent. Start this process's own shard; the steady-clock epoch from
  // open() is kept so parent and child timestamps share one x-axis in the
  // merged timeline.
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  std::string base = path_;
  const std::string_view suffix = ".json";
  if (base.size() >= suffix.size() &&
      base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
    base.resize(base.size() - suffix.size());
  }
  path_ = base + "." + std::to_string(pid) + ".json";
  owner_pid_ = pid;
}

bool TraceWriter::close() {
  if constexpr (!kCompiledIn) return false;
  std::vector<Event> events;
  std::string path;
  std::uint64_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!active_.load(std::memory_order_relaxed)) return true;
    maybe_refresh_owner_locked();
    active_.store(false, std::memory_order_relaxed);
    events.swap(events_);
    path.swap(path_);
    dropped = dropped_.load(std::memory_order_relaxed);
  }

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;

  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process-name metadata so the viewer labels the two clock domains.
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"wall-clock\"}},\n";
  out +=
      "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
      "\"args\":{\"name\":\"sim-time\"}},\n";
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":";
    out += std::to_string(static_cast<unsigned>(event.track));
    out += ",\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(event.dur_us);
    }
    if (event.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    if (event.phase == 's' || event.phase == 't' || event.phase == 'f') {
      out += ",\"id\":";
      out += std::to_string(event.flow_id);
      // bp:"e" binds the finish to the enclosing slice, which the viewers
      // need to draw the arrow into the delivery span.
      if (event.phase == 'f') out += ",\"bp\":\"e\"";
    }
    out += ",\"cat\":\"";
    append_escaped(out, event.category);
    out += "\",\"name\":\"";
    append_escaped(out, event.name);
    out += '"';
    if (!event.args_json.empty()) {
      out += ",\"args\":";
      out += event.args_json;  // caller supplies a complete JSON object
    }
    out += '}';
  }
  out += "\n]";
  if (dropped != 0) {
    out += ",\"droppedEvents\":";
    out += std::to_string(dropped);
  }
  out += "}\n";

  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  return std::fclose(file) == 0 && ok;
}

std::uint64_t TraceWriter::wall_now_us() const noexcept {
  if constexpr (!kCompiledIn) return 0;
  if (!active()) return 0;
  const std::uint64_t base = open_wall_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = steady_ns();
  return now >= base ? (now - base) / 1000 : 0;
}

void TraceWriter::complete(const char* name, const char* category,
                           Track track, std::uint64_t tid, std::uint64_t ts_us,
                           std::uint64_t dur_us, std::string args_json) {
  if (!active()) return;
  push(Event{.name = name,
             .category = category,
             .phase = 'X',
             .track = track,
             .tid = tid,
             .ts_us = ts_us,
             .dur_us = dur_us,
             .args_json = std::move(args_json)});
}

void TraceWriter::instant(const char* name, const char* category, Track track,
                          std::uint64_t tid, std::uint64_t ts_us,
                          std::string args_json) {
  if (!active()) return;
  push(Event{.name = name,
             .category = category,
             .phase = 'i',
             .track = track,
             .tid = tid,
             .ts_us = ts_us,
             .dur_us = 0,
             .args_json = std::move(args_json)});
}

void TraceWriter::flow(char phase, const char* name, const char* category,
                       Track track, std::uint64_t tid, std::uint64_t ts_us,
                       std::uint64_t flow_id) {
  if (!active()) return;
  push(Event{.name = name,
             .category = category,
             .phase = phase,
             .track = track,
             .tid = tid,
             .ts_us = ts_us,
             .dur_us = 0,
             .flow_id = flow_id});
}

void TraceWriter::push(Event event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!active_.load(std::memory_order_relaxed)) return;
  maybe_refresh_owner_locked();
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::size_t TraceWriter::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceWriter::thread_lane() noexcept {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t lane =
      next.fetch_add(1, std::memory_order_relaxed);
  return lane;
}

TraceWriter& TraceWriter::global() {
  // Leaked like the metrics registry: spans may close during static
  // destruction of instrumented objects.
  static TraceWriter* const instance = new TraceWriter();
  return *instance;
}

}  // namespace pvr::obs
