#include "obs/stats_server.h"

#include <stdexcept>

#include "crypto/encoding.h"
#include "net/transport.h"
#include "obs/export.h"

namespace pvr::obs {

namespace {
// Bumped with kSnapshotWireVersion-style discipline: a sample embeds an
// encoded MetricsSnapshot, so both versions gate decode.
constexpr std::uint16_t kStatsWireVersion = 1;
}  // namespace

std::vector<std::uint8_t> StatsSample::encode() const {
  crypto::ByteWriter writer;
  writer.put_u16(kStatsWireVersion);
  writer.put_u32(rank);
  writer.put_u64(at_us);
  writer.put_u64(static_cast<std::uint64_t>(open_rounds));
  writer.put_u64(static_cast<std::uint64_t>(peak_open_rounds));
  writer.put_u64(messages_sent);
  writer.put_u64(messages_delivered);
  writer.put_u64(messages_dropped);
  writer.put_u64(bytes_sent);
  writer.put_bytes(metrics.encode());
  return writer.take();
}

StatsSample StatsSample::decode(const std::uint8_t* data, std::size_t size) {
  crypto::ByteReader reader(std::span<const std::uint8_t>(data, size));
  const std::uint16_t version = reader.get_u16();
  if (version != kStatsWireVersion) {
    throw std::invalid_argument("StatsSample::decode: wire version " +
                                std::to_string(version) +
                                " != " + std::to_string(kStatsWireVersion));
  }
  StatsSample out;
  out.rank = reader.get_u32();
  out.at_us = reader.get_u64();
  out.open_rounds = static_cast<std::int64_t>(reader.get_u64());
  out.peak_open_rounds = static_cast<std::int64_t>(reader.get_u64());
  out.messages_sent = reader.get_u64();
  out.messages_delivered = reader.get_u64();
  out.messages_dropped = reader.get_u64();
  out.bytes_sent = reader.get_u64();
  const std::vector<std::uint8_t> snapshot_bytes = reader.get_bytes();
  out.metrics = MetricsSnapshot::decode(snapshot_bytes);
  return out;
}

StatsSample StatsServer::sample(std::uint64_t at_us,
                                const net::SimStats& stats) const {
  StatsSample out;
  out.rank = rank_;
  out.at_us = at_us;
  if (gauges_) {
    const Gauges gauges = gauges_();
    out.open_rounds = gauges.open_rounds;
    out.peak_open_rounds = gauges.peak_open_rounds;
  }
  out.messages_sent = stats.messages_sent;
  out.messages_delivered = stats.messages_delivered;
  out.messages_dropped = stats.messages_dropped;
  out.bytes_sent = stats.bytes_sent;
  out.metrics =
      MetricsSnapshot::delta(MetricsRegistry::global().snapshot(), baseline_);
  return out;
}

}  // namespace pvr::obs
