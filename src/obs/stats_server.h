// Live introspection for distributed deployments (DESIGN.md §14).
//
// A StatsServer is a passive sampler a transport host installs: when a
// one-frame `kFrameStats` request arrives (SocketTransport control plane,
// or the conductor's per-grant poll in the lockstep deployment), the host
// calls sample() and ships the encoded StatsSample back. The sample is a
// point-in-time view — the process's metrics delta since the server was
// armed, its transport byte accounting, and the protocol gauges (open
// rounds / peak) — so a conductor polling every grant cycle accumulates a
// per-process time series without the children ever pushing.
//
// Nothing here touches a hot path: sampling happens only on request, on
// the single transport/event-loop thread of the sampled process.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"

namespace pvr::net {
struct SimStats;
}  // namespace pvr::net

namespace pvr::obs {

// One polled observation of one process.
struct StatsSample {
  std::uint32_t rank = 0;      // process rank (conductor-assigned index)
  std::uint64_t at_us = 0;     // sampled-at transport time
  std::int64_t open_rounds = 0;
  std::int64_t peak_open_rounds = 0;
  // Transport byte accounting at sample time (SimStats totals).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  // Metrics since the server armed (delta, so process startup noise like
  // keygen never pollutes the time series).
  MetricsSnapshot metrics;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static StatsSample decode(const std::uint8_t* data,
                                          std::size_t size);
  [[nodiscard]] static StatsSample decode(
      const std::vector<std::uint8_t>& bytes) {
    return decode(bytes.data(), bytes.size());
  }
};

// The sampler. Gauges (open rounds, peak) are host-protocol state the
// server cannot see, so the host provides them through a callback.
class StatsServer {
 public:
  struct Gauges {
    std::int64_t open_rounds = 0;
    std::int64_t peak_open_rounds = 0;
  };
  using GaugeFn = std::function<Gauges()>;

  // `rank` stamps every sample; arm() captures the metrics baseline that
  // sample() deltas against.
  explicit StatsServer(std::uint32_t rank) : rank_(rank) {}

  void arm() { baseline_ = MetricsRegistry::global().snapshot(); }
  void set_gauges(GaugeFn fn) { gauges_ = std::move(fn); }

  // Builds one sample at transport time `at_us` with `stats` as the
  // transport accounting section.
  [[nodiscard]] StatsSample sample(std::uint64_t at_us,
                                   const net::SimStats& stats) const;

 private:
  std::uint32_t rank_;
  MetricsSnapshot baseline_;
  GaugeFn gauges_;
};

}  // namespace pvr::obs
