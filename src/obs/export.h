// Cross-process observability export (DESIGN.md §14).
//
// Two pieces live here, both pure plumbing with no hot-path cost:
//
//  * The MetricsSnapshot wire codec + shard algebra (encode/decode/merge/
//    delta, declared on the struct in metrics.h). Multiprocess children
//    append their per-run snapshot delta to the kFrameResult control frame
//    and the conductor merges all shards; because every kSim metric is a
//    commutative sum over work items and the lockstep deployment executes
//    exactly the monolithic simulator's work partitioned over processes,
//    the merged kSim section is byte-identical to the single-process run —
//    the parity CI gates at 3 and 5 processes.
//
//  * merge_traces(): stitches the per-process Chrome trace files (each
//    child re-opens its own `trace.<pid>.json` after fork) into one
//    timeline with a named process track per input, preserving the flow
//    event ids that arrow send -> deliver -> verify across pids.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pvr::obs {

// Version byte leading every encoded snapshot; bumped on any layout change
// so a mixed-version deployment fails loudly instead of merging garbage.
inline constexpr std::uint16_t kSnapshotWireVersion = 1;

// One per-process trace shard to stitch: the file TraceWriter wrote plus
// the track label ("conductor", "proc0", ...) shown in the merged timeline.
struct TraceShard {
  std::string path;
  std::string label;
};

// Merge N Chrome trace-event files (as written by TraceWriter) into one.
// Each shard's events are re-homed onto per-shard pid lanes and labeled
// with process_name metadata; flow-event ids pass through untouched, so
// cross-process arrows survive. Returns the number of events merged.
// Throws std::runtime_error when a shard file cannot be read.
std::size_t merge_traces(const std::vector<TraceShard>& shards,
                         const std::string& out_path);

}  // namespace pvr::obs
