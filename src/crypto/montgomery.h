// Montgomery-form modular arithmetic for a fixed odd modulus.
//
// This is the fast kernel behind Bignum::powmod and the per-public-key
// verification contexts (rsa.h RsaVerifyKey, core/verify_context.h): all
// per-modulus work — n' = -n^{-1} mod 2^64, R^2 mod n, the fixed limb
// width — is done once in the constructor, after which every modular
// multiplication is one CIOS pass (Koç–Acar–Kaliski) with no division at
// all. A full exponentiation converts into Montgomery domain once, runs
// its whole ladder on CIOS multiplies, and converts out once.
//
// The schoolbook path (Bignum::mulmod / Bignum::powmod_reference) is kept
// as the differential-test reference; tests/crypto/montgomery_test.cpp
// fuzzes the two against each other over random operands and edge moduli.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bignum.h"

namespace pvr::crypto {

// Widest modulus the stack-buffer CIOS kernel accepts: 64 limbs = 4096
// bits, comfortably past any RSA modulus this repo generates. Callers
// (Bignum::powmod) fall back to the schoolbook ladder beyond it.
inline constexpr std::size_t kMaxMontgomeryLimbs = 64;

class MontgomeryCtx {
 public:
  // Precomputes n', R^2 mod m, and the fixed limb width. Throws
  // std::invalid_argument unless m is odd, > 1, and at most
  // kMaxMontgomeryLimbs limbs wide.
  explicit MontgomeryCtx(const Bignum& m);

  [[nodiscard]] const Bignum& modulus() const noexcept { return m_; }
  [[nodiscard]] std::size_t width() const noexcept { return n_.size(); }

  // (a * b) mod m via to-Montgomery / CIOS / from-Montgomery. Exposed for
  // the differential tests; powmod() stays in Montgomery domain throughout
  // and does NOT route through this.
  [[nodiscard]] Bignum mulmod(const Bignum& a, const Bignum& b) const;

  // (base ^ exponent) mod m. One conversion in, one conversion out, every
  // ladder step a CIOS multiply. Small exponents (e.g. the RSA verify
  // e = 65537) take a plain square-and-multiply ladder; larger ones a
  // 4-bit fixed window. Matches Bignum::powmod_reference bit for bit.
  [[nodiscard]] Bignum powmod(const Bignum& base, const Bignum& exponent) const;

 private:
  // CIOS Montgomery multiplication: out = a * b * R^{-1} mod m, where a, b,
  // out are `width()` limbs little-endian, a/b < m. out may alias a or b.
  void mont_mul(const std::uint64_t* a, const std::uint64_t* b,
                std::uint64_t* out) const;

  // Widens `x` (which must be < m) to width() limbs.
  [[nodiscard]] std::vector<std::uint64_t> to_limbs(const Bignum& x) const;
  [[nodiscard]] static Bignum from_limbs_trimmed(
      const std::vector<std::uint64_t>& limbs);

  Bignum m_;
  std::vector<std::uint64_t> n_;   // modulus limbs, fixed width
  std::vector<std::uint64_t> rr_;  // R^2 mod m, R = 2^(64*width)
  std::uint64_t n0inv_ = 0;        // -m^{-1} mod 2^64
};

}  // namespace pvr::crypto
