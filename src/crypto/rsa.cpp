#include "crypto/rsa.h"

#include <array>
#include <stdexcept>

#include "crypto/encoding.h"
#include "obs/metrics.h"

namespace pvr::crypto {

namespace {

// Small primes for fast trial division before Miller–Rabin.
constexpr std::array<std::uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// ASN.1 DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
constexpr std::array<std::uint8_t, 19> kSha256DigestInfo = {
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
    0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};

// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 PS(0xff...) 0x00 DigestInfo || H.
[[nodiscard]] std::vector<std::uint8_t> emsa_pkcs1_v15(
    std::span<const std::uint8_t> message, std::size_t em_len) {
  const Digest digest = sha256(message);
  const std::size_t t_len = kSha256DigestInfo.size() + digest.size();
  if (em_len < t_len + 11) {
    throw std::length_error("rsa: modulus too small for EMSA-PKCS1-v1_5");
  }
  std::vector<std::uint8_t> em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t_len - 1] = 0x00;
  std::copy(kSha256DigestInfo.begin(), kSha256DigestInfo.end(),
            em.end() - static_cast<std::ptrdiff_t>(t_len));
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return em;
}

}  // namespace

std::vector<std::uint8_t> RsaPublicKey::encode() const {
  ByteWriter writer;
  const auto n_bytes = n.to_bytes_be();
  const auto e_bytes = e.to_bytes_be();
  writer.put_bytes(n_bytes);
  writer.put_bytes(e_bytes);
  return writer.take();
}

RsaPublicKey RsaPublicKey::decode(std::span<const std::uint8_t> data) {
  ByteReader reader(data);
  const auto n_bytes = reader.get_bytes();
  const auto e_bytes = reader.get_bytes();
  return {.n = Bignum::from_bytes_be(n_bytes), .e = Bignum::from_bytes_be(e_bytes)};
}

bool is_probable_prime(const Bignum& n, Drbg& rng, int rounds) {
  if (n < Bignum(2)) return false;
  for (const std::uint64_t p : kSmallPrimes) {
    const Bignum bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const Bignum n_minus_1 = n - Bignum(1);
  Bignum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  const Bignum two(2);
  for (int round = 0; round < rounds; ++round) {
    // a uniform in [2, n-2].
    const Bignum a = rng.random_below(n - Bignum(3)) + two;
    Bignum x = a.powmod(d, n);
    if (x.is_one() || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mulmod(x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

Bignum generate_prime(std::size_t bits, Drbg& rng) {
  if (bits < 16) throw std::invalid_argument("generate_prime: need >= 16 bits");
  while (true) {
    Bignum candidate = rng.random_bits(bits);
    candidate.set_bit(0);         // odd
    candidate.set_bit(bits - 2);  // top two bits set -> full-width products
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, Drbg& rng) {
  if (modulus_bits < 512 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_rsa_keypair: bad modulus size");
  }
  const Bignum e(65537);
  while (true) {
    const Bignum p = generate_prime(modulus_bits / 2, rng);
    const Bignum q = generate_prime(modulus_bits / 2, rng);
    if (p == q) continue;
    const Bignum n = p * q;
    if (n.bit_length() != modulus_bits) continue;
    const Bignum p1 = p - Bignum(1);
    const Bignum q1 = q - Bignum(1);
    const Bignum phi = p1 * q1;
    if (!Bignum::gcd(e, phi).is_one()) continue;
    const Bignum d = e.invmod(phi);
    RsaPrivateKey priv{
        .n = n,
        .e = e,
        .d = d,
        .p = p,
        .q = q,
        .d_p = d % p1,
        .d_q = d % q1,
        .q_inv = q.invmod(p),
    };
    return {.pub = priv.public_key(), .priv = std::move(priv)};
  }
}

Bignum rsa_public_apply(const RsaPublicKey& key, const Bignum& x) {
  return x.powmod(key.e, key.n);
}

Bignum rsa_private_apply(const RsaPrivateKey& key, const Bignum& y) {
  // CRT: m1 = y^dP mod p, m2 = y^dQ mod q, h = qInv(m1-m2) mod p.
  const Bignum m1 = (y % key.p).powmod(key.d_p, key.p);
  const Bignum m2 = (y % key.q).powmod(key.d_q, key.q);
  // (m1 - m2) mod p without negative numbers: add p*? — m2 < q, reduce first.
  const Bignum m2_mod_p = m2 % key.p;
  const Bignum diff = m1 >= m2_mod_p ? m1 - m2_mod_p : (m1 + key.p) - m2_mod_p;
  const Bignum h = key.q_inv.mulmod(diff, key.p);
  return m2 + h * key.q;
}

std::vector<std::uint8_t> rsa_sign(const RsaPrivateKey& key,
                                   std::span<const std::uint8_t> message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  const std::vector<std::uint8_t> em = emsa_pkcs1_v15(message, k);
  const Bignum m = Bignum::from_bytes_be(em);
  const Bignum s = rsa_private_apply(key, m);
  PVR_OBS_COUNT(crypto_rsa_signs, 1);
  return s.to_bytes_be(k);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bignum s = Bignum::from_bytes_be(signature);
  if (s >= key.n) return false;
  PVR_OBS_COUNT(crypto_rsa_verifies, 1);
  const std::uint64_t t0 = obs::wall_clock_us();
  const Bignum m = rsa_public_apply(key, s);
  PVR_OBS_RECORD(crypto_rsa_verify_us, obs::wall_clock_us() - t0);
  std::vector<std::uint8_t> em;
  try {
    em = emsa_pkcs1_v15(message, k);
  } catch (const std::length_error&) {
    return false;
  }
  return m == Bignum::from_bytes_be(em);
}

std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                   std::span<const RsaBatchItem> items) {
  // One RsaVerifyKey for the whole batch: the Montgomery precompute (R^2
  // division, n') is paid once instead of once per member.
  return RsaVerifyKey(key).verify_batch(items);
}

RsaVerifyKey::RsaVerifyKey(RsaPublicKey key) : key_(std::move(key)) {
  if (key_.n.is_odd() && key_.n.limbs().size() <= kMaxMontgomeryLimbs &&
      !key_.n.is_one()) {
    mont_.emplace(key_.n);
  }
}

std::optional<RsaVerifyKey::Prepared> RsaVerifyKey::prepare(
    std::span<const std::uint8_t> message,
    std::span<const std::uint8_t> signature) const {
  const std::size_t k = key_.modulus_bytes();
  if (signature.size() != k) return std::nullopt;
  Bignum s = Bignum::from_bytes_be(signature);
  if (s >= key_.n) return std::nullopt;
  try {
    return Prepared{.s = std::move(s),
                    .encoded = Bignum::from_bytes_be(emsa_pkcs1_v15(message, k))};
  } catch (const std::length_error&) {
    return std::nullopt;
  }
}

bool RsaVerifyKey::finish(const Prepared& prepared) const {
  PVR_OBS_COUNT(crypto_rsa_verifies, 1);
  const std::uint64_t t0 = obs::wall_clock_us();
  const bool ok = public_apply(prepared.s) == prepared.encoded;
  PVR_OBS_RECORD(crypto_rsa_verify_us, obs::wall_clock_us() - t0);
  return ok;
}

bool RsaVerifyKey::verify(std::span<const std::uint8_t> message,
                          std::span<const std::uint8_t> signature) const {
  const std::optional<Prepared> prepared = prepare(message, signature);
  return prepared.has_value() && finish(*prepared);
}

std::vector<bool> RsaVerifyKey::verify_batch(
    std::span<const RsaBatchItem> items) const {
  std::vector<bool> out(items.size(), false);
  PVR_OBS_COUNT(crypto_rsa_batched, items.size());
  // Structural screening first; members failing it cannot verify and need
  // no exponentiation at all.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const std::optional<Prepared> prepared =
        prepare(items[i].message, items[i].signature);
    if (prepared.has_value()) out[i] = finish(*prepared);
  }
  return out;
}

Bignum RsaVerifyKey::public_apply(const Bignum& x) const {
  if (mont_.has_value()) return mont_->powmod(x, key_.e);
  return x.powmod(key_.e, key_.n);
}

}  // namespace pvr::crypto
