#include "crypto/sparse_merkle.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/encoding.h"
#include "crypto/hmac.h"

namespace pvr::crypto {

SparseMerkleTree::SparseMerkleTree(std::vector<std::uint8_t> blinding_key)
    : blinding_key_(std::move(blinding_key)) {}

Digest SparseMerkleTree::key_for_label(std::string_view label) {
  return sha256(label);
}

bool SparseMerkleTree::key_bit(const Digest& key, std::size_t depth) noexcept {
  // Bit 0 is the most significant bit of key[0]: the tree descends MSB-first.
  return (key[depth / 8] >> (7 - depth % 8)) & 1u;
}

void SparseMerkleTree::insert(const Digest& key, const Digest& value_hash) {
  leaves_[key] = value_hash;
}

void SparseMerkleTree::erase(const Digest& key) { leaves_.erase(key); }

bool SparseMerkleTree::contains(const Digest& key) const {
  return leaves_.contains(key);
}

Digest SparseMerkleTree::hash_leaf(const Digest& key, const Digest& value_hash) {
  Sha256 hasher;
  const std::uint8_t tag = 0x02;
  hasher.update(std::span(&tag, 1));
  hasher.update(std::span(key.data(), key.size()));
  hasher.update(std::span(value_hash.data(), value_hash.size()));
  return hasher.finalize();
}

Digest SparseMerkleTree::hash_interior(const Digest& left, const Digest& right) {
  Sha256 hasher;
  const std::uint8_t tag = 0x03;
  hasher.update(std::span(&tag, 1));
  hasher.update(std::span(left.data(), left.size()));
  hasher.update(std::span(right.data(), right.size()));
  return hasher.finalize();
}

Digest SparseMerkleTree::empty_hash(std::size_t depth,
                                    const Digest& path_prefix) const {
  // HMAC over (depth, packed path bits). Without blinding_key_ this value is
  // indistinguishable from a genuine subtree hash.
  ByteWriter writer;
  writer.put_string("pvr-smt-empty");
  writer.put_u32(static_cast<std::uint32_t>(depth));
  writer.put_raw(std::span(path_prefix.data(), path_prefix.size()));
  const Digest mac = hmac_sha256(blinding_key_, writer.data());
  return mac;
}

std::vector<SparseMerkleTree::Entry> SparseMerkleTree::sorted_entries() const {
  std::vector<Entry> entries;
  entries.reserve(leaves_.size());
  for (const auto& [key, value] : leaves_) {
    Digest key_digest;
    std::copy(key.begin(), key.end(), key_digest.begin());
    entries.push_back({.key = key_digest, .value = value});
  }
  // std::map iterates keys in lexicographic byte order, which equals the
  // MSB-first path order the recursion expects.
  return entries;
}

Digest SparseMerkleTree::subtree_hash(std::span<const Entry> entries,
                                      std::size_t depth,
                                      Digest path_prefix) const {
  if (entries.empty()) return empty_hash(depth, path_prefix);
  if (depth == kSparseTreeDepth) {
    // Keys are unique, so exactly one entry can remain at full depth.
    return hash_leaf(entries.front().key, entries.front().value);
  }
  const auto split = std::partition_point(
      entries.begin(), entries.end(),
      [depth](const Entry& e) { return !key_bit(e.key, depth); });
  const std::span<const Entry> left(entries.begin(), split);
  const std::span<const Entry> right(split, entries.end());

  Digest right_prefix = path_prefix;
  right_prefix[depth / 8] |= static_cast<std::uint8_t>(1u << (7 - depth % 8));

  return hash_interior(subtree_hash(left, depth + 1, path_prefix),
                       subtree_hash(right, depth + 1, right_prefix));
}

Digest SparseMerkleTree::root() const {
  const std::vector<Entry> entries = sorted_entries();
  return subtree_hash(entries, 0, Digest{});
}

SparseDisclosureProof SparseMerkleTree::prove(const Digest& key) const {
  if (!leaves_.contains(key)) {
    throw std::out_of_range("SparseMerkleTree::prove: key not present");
  }
  SparseDisclosureProof proof{.key = key, .siblings = {}};
  proof.siblings.reserve(kSparseTreeDepth);

  std::vector<Entry> entries = sorted_entries();
  std::span<const Entry> current(entries);
  Digest path_prefix{};

  for (std::size_t depth = 0; depth < kSparseTreeDepth; ++depth) {
    const auto split = std::partition_point(
        current.begin(), current.end(),
        [depth](const Entry& e) { return !key_bit(e.key, depth); });
    const std::span<const Entry> left(current.begin(), split);
    const std::span<const Entry> right(split, current.end());

    Digest right_prefix = path_prefix;
    right_prefix[depth / 8] |= static_cast<std::uint8_t>(1u << (7 - depth % 8));

    if (key_bit(key, depth)) {
      proof.siblings.push_back(subtree_hash(left, depth + 1, path_prefix));
      current = right;
      path_prefix = right_prefix;
    } else {
      proof.siblings.push_back(subtree_hash(right, depth + 1, right_prefix));
      current = left;
    }
  }
  return proof;
}

bool SparseMerkleTree::verify(const Digest& root, const Digest& value_hash,
                              const SparseDisclosureProof& proof) {
  if (proof.siblings.size() != kSparseTreeDepth) return false;
  Digest current = hash_leaf(proof.key, value_hash);
  for (std::size_t depth = kSparseTreeDepth; depth-- > 0;) {
    const Digest& sibling = proof.siblings[depth];
    current = key_bit(proof.key, depth) ? hash_interior(sibling, current)
                                        : hash_interior(current, sibling);
  }
  return current == root;
}

}  // namespace pvr::crypto
