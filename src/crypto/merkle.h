// Flat Merkle hash trees (Merkle 1980; paper §3.6, §3.8).
//
// Used for batched route signing during BGP bursts: the speaker signs one
// root per batch and reveals routes individually with log-size inclusion
// proofs. Leaf and interior hashes are domain-separated (0x00 / 0x01
// prefixes) so a leaf can never be reinterpreted as an interior node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/encoding.h"
#include "crypto/sha256.h"

namespace pvr::crypto {

struct MerkleProof {
  std::size_t leaf_index = 0;
  std::size_t leaf_count = 0;
  std::vector<Digest> siblings;  // bottom-up

  [[nodiscard]] bool operator==(const MerkleProof&) const = default;

  // Canonical wire form (proofs travel inside aggregated-bundle reveals).
  void encode(ByteWriter& writer) const;
  [[nodiscard]] static MerkleProof decode(ByteReader& reader);
};

class MerkleTree {
 public:
  // Builds a tree over the given leaf payloads. Throws std::invalid_argument
  // if `leaves` is empty.
  static MerkleTree build(std::span<const std::vector<std::uint8_t>> leaves);

  [[nodiscard]] const Digest& root() const noexcept { return levels_.back()[0]; }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaf_count_; }

  // Inclusion proof for leaf `index`. Throws std::out_of_range.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  // Verifies that `leaf_payload` is the leaf at proof.leaf_index under `root`.
  [[nodiscard]] static bool verify(const Digest& root,
                                   std::span<const std::uint8_t> leaf_payload,
                                   const MerkleProof& proof);

  [[nodiscard]] static Digest hash_leaf(std::span<const std::uint8_t> payload);
  [[nodiscard]] static Digest hash_interior(const Digest& left, const Digest& right);

 private:
  std::size_t leaf_count_ = 0;
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = padded leaves
};

}  // namespace pvr::crypto
