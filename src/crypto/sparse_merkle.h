// Sparse Merkle hash tree over prefix-free bitstring keys (paper §3.6).
//
// The paper keys each route-flow-graph vertex by a prefix-free bitstring and
// builds a conceptual MHT with one leaf per possible bitstring, only
// materializing instantiated leaves, their root paths, and the immediate
// children of on-path inner nodes. We realize the prefix-free keyspace by
// hashing each vertex label to a fixed 256-bit path (fixed-length strings
// are trivially prefix-free; the paper notes "more efficient representations"
// than literal label encoding exist — this is one).
//
// Privacy property (paper: "Since the neighbor does not know whether the
// hash values are random bitstrings or hashes of 'real' interior nodes,
// this does not reveal the presence or absence of any vertices other than
// x"): empty subtrees hash to HMAC(blinding_key, position), which is
// indistinguishable from a real subtree hash without the tree owner's
// blinding key. A conventional sparse MHT with public all-zero empty hashes
// would leak absence; this one does not.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace pvr::crypto {

inline constexpr std::size_t kSparseTreeDepth = 256;

struct SparseDisclosureProof {
  Digest key{};
  // siblings[d] is the sibling hash of the on-path node at depth d+1
  // (i.e. the hash combined at depth d), ordered root-to-leaf.
  std::vector<Digest> siblings;

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return key.size() + siblings.size() * kSha256DigestSize;
  }
};

class SparseMerkleTree {
 public:
  // The blinding key is secret to the tree owner; it randomizes the hashes
  // of empty subtrees so disclosure proofs do not reveal tree occupancy.
  explicit SparseMerkleTree(std::vector<std::uint8_t> blinding_key);

  // Maps a vertex label to its 256-bit tree path.
  [[nodiscard]] static Digest key_for_label(std::string_view label);

  // Inserts or overwrites the value hash stored at `key`.
  void insert(const Digest& key, const Digest& value_hash);
  void erase(const Digest& key);
  [[nodiscard]] bool contains(const Digest& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return leaves_.size(); }

  // Root hash over the (conceptual) full tree. O(n log n) in leaves.
  [[nodiscard]] Digest root() const;

  // Disclosure proof for `key`. Throws std::out_of_range if absent.
  [[nodiscard]] SparseDisclosureProof prove(const Digest& key) const;

  // Verifies that `value_hash` is stored at proof.key under `root`.
  [[nodiscard]] static bool verify(const Digest& root, const Digest& value_hash,
                                   const SparseDisclosureProof& proof);

  [[nodiscard]] static Digest hash_leaf(const Digest& key, const Digest& value_hash);
  [[nodiscard]] static Digest hash_interior(const Digest& left, const Digest& right);

 private:
  struct Entry {
    Digest key;
    Digest value;
  };

  [[nodiscard]] static bool key_bit(const Digest& key, std::size_t depth) noexcept;
  [[nodiscard]] Digest empty_hash(std::size_t depth,
                                  const Digest& path_prefix) const;
  [[nodiscard]] Digest subtree_hash(std::span<const Entry> entries,
                                    std::size_t depth, Digest path_prefix) const;
  [[nodiscard]] std::vector<Entry> sorted_entries() const;

  std::vector<std::uint8_t> blinding_key_;
  std::map<std::array<std::uint8_t, kSha256DigestSize>, Digest> leaves_;
};

}  // namespace pvr::crypto
