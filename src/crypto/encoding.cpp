#include "crypto/encoding.h"

#include <stdexcept>

namespace pvr::crypto {

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t byte : bytes) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw std::invalid_argument("from_hex: invalid hex digit");
  };
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                       nibble(hex[2 * i + 1]));
  }
  return out;
}

void ByteWriter::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::put_bool(bool v) { put_u8(v ? 1 : 0); }

void ByteWriter::put_raw(std::span<const std::uint8_t> bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_raw(bytes);
}

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t count) const {
  if (data_.size() - offset_ < count) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[offset_]) << 8) | data_[offset_ + 1]);
  offset_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[offset_ + i];
  offset_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[offset_ + i];
  offset_ += 8;
  return v;
}

bool ByteReader::get_bool() {
  const std::uint8_t v = get_u8();
  if (v > 1) throw std::out_of_range("ByteReader: invalid bool");
  return v == 1;
}

std::vector<std::uint8_t> ByteReader::get_raw(std::size_t count) {
  require(count);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                                data_.begin() + static_cast<std::ptrdiff_t>(offset_ + count));
  offset_ += count;
  return out;
}

std::vector<std::uint8_t> ByteReader::get_bytes() {
  const std::uint32_t len = get_u32();
  return get_raw(len);
}

std::string ByteReader::get_string() {
  const std::uint32_t len = get_u32();
  require(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), len);
  offset_ += len;
  return out;
}

}  // namespace pvr::crypto
