// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used to key the gossip-layer message authenticators between neighbors and
// to derive per-session nonces in the PVR protocol runner.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.h"

namespace pvr::crypto {

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

}  // namespace pvr::crypto
