#include "crypto/drbg.h"

#include <array>
#include <cmath>

#include "crypto/sha256.h"

namespace pvr::crypto {

namespace {

[[nodiscard]] ChaCha20 make_stream(std::uint64_t seed, std::string_view label) {
  Sha256 hasher;
  hasher.update(label);
  std::array<std::uint8_t, 8> seed_bytes;
  for (int i = 0; i < 8; ++i) {
    seed_bytes[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  hasher.update(std::span(seed_bytes.data(), seed_bytes.size()));
  const Digest key = hasher.finalize();

  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
  return ChaCha20(std::span<const std::uint8_t, ChaCha20::kKeySize>(key),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(nonce));
}

}  // namespace

Drbg::Drbg(std::uint64_t seed, std::string_view label)
    : stream_(make_stream(seed, label)) {}

void Drbg::fill(std::span<std::uint8_t> out) noexcept { stream_.keystream(out); }

std::vector<std::uint8_t> Drbg::bytes(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  fill(out);
  return out;
}

std::uint64_t Drbg::next_u64() noexcept {
  std::array<std::uint8_t, 8> buf;
  fill(buf);
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return out;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound == 0 ? 0 : (~std::uint64_t{0}) - (~std::uint64_t{0}) % bound;
  std::uint64_t value;
  do {
    value = next_u64();
  } while (bound != 0 && value >= limit);
  return bound == 0 ? value : value % bound;
}

double Drbg::uniform_unit() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Drbg::coin(double probability_true) noexcept {
  return uniform_unit() < probability_true;
}

Bignum Drbg::random_bits(std::size_t bits) {
  if (bits == 0) return {};
  std::vector<std::uint8_t> buf((bits + 7) / 8);
  fill(buf);
  // Clear excess high bits, then force the top bit so the width is exact.
  const std::size_t excess = buf.size() * 8 - bits;
  buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return Bignum::from_bytes_be(buf);
}

Bignum Drbg::random_below(const Bignum& bound) {
  if (bound.is_zero()) return {};
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  while (true) {
    std::vector<std::uint8_t> buf(nbytes);
    fill(buf);
    buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    Bignum candidate = Bignum::from_bytes_be(buf);
    if (candidate < bound) return candidate;
  }
}

Drbg Drbg::fork(std::string_view label) {
  const std::uint64_t child_seed = next_u64();
  std::string child_label = "fork:";
  child_label.append(label);
  return Drbg(child_seed, child_label);
}

}  // namespace pvr::crypto
