#include "crypto/bignum.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "crypto/montgomery.h"
#include "obs/metrics.h"

namespace pvr::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("Bignum::from_hex: invalid hex digit");
}

}  // namespace

Bignum::Bignum(u64 value) {
  if (value != 0) limbs_.push_back(value);
}

void Bignum::trim() noexcept {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Bignum Bignum::from_limbs(std::vector<u64> limbs) {
  Bignum out;
  out.limbs_ = std::move(limbs);
  out.trim();
  return out;
}

Bignum Bignum::from_hex(std::string_view hex) {
  Bignum out;
  for (char c : hex) {
    if (c == '_' || c == ' ') continue;
    const int d = hex_digit(c);
    out = (out << 4) + Bignum(static_cast<u64>(d));
  }
  return out;
}

Bignum Bignum::from_bytes_be(std::span<const std::uint8_t> bytes) {
  std::vector<u64> limbs((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[0] is most significant.
    const std::size_t bit_pos = (bytes.size() - 1 - i) * 8;
    limbs[bit_pos / 64] |= static_cast<u64>(bytes[i]) << (bit_pos % 64);
  }
  return from_limbs(std::move(limbs));
}

std::vector<std::uint8_t> Bignum::to_bytes_be(std::size_t length) const {
  if (bit_length() > length * 8) {
    throw std::length_error("Bignum::to_bytes_be: value does not fit");
  }
  std::vector<std::uint8_t> out(length, 0);
  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t bit_pos = (length - 1 - i) * 8;
    const std::size_t limb = bit_pos / 64;
    if (limb < limbs_.size()) {
      out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (bit_pos % 64));
    }
  }
  return out;
}

std::vector<std::uint8_t> Bignum::to_bytes_be() const {
  return to_bytes_be((bit_length() + 7) / 8);
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int d = static_cast<int>((limbs_[i] >> shift) & 0xf);
      if (leading && d == 0) continue;
      leading = false;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::size_t Bignum::bit_length() const noexcept {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool Bignum::bit(std::size_t i) const noexcept {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1u;
}

void Bignum::set_bit(std::size_t i) {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) limbs_.resize(limb + 1, 0);
  limbs_[limb] |= (u64{1} << (i % 64));
}

std::strong_ordering Bignum::operator<=>(const Bignum& other) const noexcept {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

Bignum Bignum::operator+(const Bignum& rhs) const {
  std::vector<u64> out(std::max(limbs_.size(), rhs.limbs_.size()) + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    u128 sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  assert(carry == 0);
  return from_limbs(std::move(out));
}

Bignum Bignum::operator-(const Bignum& rhs) const {
  if (*this < rhs) throw std::underflow_error("Bignum::operator-: negative result");
  std::vector<u64> out(limbs_.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 lhs_val = limbs_[i];
    const u128 sub = static_cast<u128>(r) + borrow;
    if (lhs_val >= sub) {
      out[i] = static_cast<u64>(lhs_val - sub);
      borrow = 0;
    } else {
      out[i] = static_cast<u64>((u128{1} << 64) + lhs_val - sub);
      borrow = 1;
    }
  }
  assert(borrow == 0);
  return from_limbs(std::move(out));
}

Bignum Bignum::operator*(const Bignum& rhs) const {
  if (is_zero() || rhs.is_zero()) return {};
  std::vector<u64> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u128 acc = static_cast<u128>(limbs_[i]) * rhs.limbs_[j];
      acc += out[i + j];
      acc += carry;
      out[i + j] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    out[i + rhs.limbs_.size()] += carry;
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    if (bits == 0) return *this;
    return {};
  }
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  return from_limbs(std::move(out));
}

Bignum Bignum::operator>>(std::size_t bits) const {
  if (bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return {};
  std::vector<u64> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return from_limbs(std::move(out));
}

Bignum::DivMod Bignum::divmod(const Bignum& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("Bignum::divmod: division by zero");
  if (*this < divisor) return {.quotient = {}, .remainder = *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const u64 d = divisor.limbs_[0];
    std::vector<u64> q(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | limbs_[i];
      q[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    return {.quotient = from_limbs(std::move(q)),
            .remainder = Bignum(static_cast<u64>(rem))};
  }

  // Knuth TAOCP vol. 2, Algorithm 4.3.1-D. Normalize so the divisor's top
  // limb has its high bit set, then estimate each quotient limb from the
  // top three dividend limbs / top two divisor limbs.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clzll(divisor.limbs_.back()));
  const Bignum u = *this << shift;
  const Bignum v = divisor << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<u64> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 limbs during the loop
  const std::vector<u64>& vn = v.limbs_;
  std::vector<u64> q(m + 1, 0);

  const u64 v_top = vn[n - 1];
  const u64 v_second = vn[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const u128 numerator = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = numerator / v_top;
    u128 rhat = numerator % v_top;
    while (qhat >= (u128{1} << 64) ||
           qhat * v_second > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= (u128{1} << 64)) break;
    }

    // Multiply-and-subtract: un[j..j+n] -= qhat * vn.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 product = qhat * vn[i] + carry;
      carry = product >> 64;
      const u64 sub = static_cast<u64>(product);
      const u128 diff = static_cast<u128>(un[i + j]) - sub - borrow;
      un[i + j] = static_cast<u64>(diff);
      borrow = (diff >> 64) & 1;  // 1 if the subtraction wrapped
    }
    const u128 diff = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(diff);

    if ((diff >> 64) & 1) {
      // qhat was one too large: add the divisor back.
      --qhat;
      u128 add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(un[i + j]) + vn[i] + add_carry;
        un[i + j] = static_cast<u64>(sum);
        add_carry = sum >> 64;
      }
      un[j + n] += static_cast<u64>(add_carry);
    }
    q[j] = static_cast<u64>(qhat);
  }

  un.resize(n);
  return {.quotient = from_limbs(std::move(q)),
          .remainder = from_limbs(std::move(un)) >> shift};
}

Bignum Bignum::mulmod(const Bignum& rhs, const Bignum& m) const {
  // Counting covers the schoolbook ladder (powmod_reference) and the
  // remaining direct callers (Miller–Rabin, CRT signing). Two
  // wall_clock_us() reads per ~1 µs multiply is measurable overhead, so
  // the timing pair samples 1 in 64 calls; the count stays exact. Both
  // fold away under -DPVR_OBS=OFF (wall_clock_us is constexpr-0).
  PVR_OBS_COUNT(crypto_mulmod_calls, 1);
#if PVR_OBS_ENABLED
  thread_local std::uint64_t sample_tick = 0;
  if ((sample_tick++ & 63u) == 0) {
    const std::uint64_t t0 = obs::wall_clock_us();
    Bignum out = (*this * rhs) % m;
    PVR_OBS_RECORD(crypto_mulmod_us, obs::wall_clock_us() - t0);
    return out;
  }
#endif
  return (*this * rhs) % m;
}

Bignum Bignum::powmod(const Bignum& exponent, const Bignum& m) const {
  if (m.is_zero()) throw std::domain_error("Bignum::powmod: zero modulus");
  if (m.is_one()) return {};
  if (m.is_odd() && m.limbs_.size() <= kMaxMontgomeryLimbs) {
    return MontgomeryCtx(m).powmod(*this, exponent);
  }
  return powmod_reference(exponent, m);
}

Bignum Bignum::powmod_reference(const Bignum& exponent, const Bignum& m) const {
  if (m.is_zero()) throw std::domain_error("Bignum::powmod: zero modulus");
  if (m.is_one()) return {};
  if (exponent.is_zero()) return Bignum(1);

  const Bignum base = *this % m;

  // 4-bit fixed window: precompute base^0..base^15 mod m.
  std::array<Bignum, 16> table;
  table[0] = Bignum(1);
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = table[i - 1].mulmod(base, m);
  }

  Bignum result(1);
  const std::size_t nbits = exponent.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) result = result.mulmod(result, m);
    unsigned window = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      window = (window << 1) | (exponent.bit(w * 4 + 3 - b) ? 1u : 0u);
    }
    if (window != 0) result = result.mulmod(table[window], m);
  }
  return result;
}

Bignum Bignum::gcd(Bignum a, Bignum b) {
  while (!b.is_zero()) {
    Bignum r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Bignum Bignum::invmod(const Bignum& m) const {
  // Extended Euclid on (m, *this mod m), tracking only the coefficient of
  // *this. Signs are handled by keeping coefficients reduced mod m.
  if (m.is_zero() || m.is_one()) return {};
  Bignum r0 = m;
  Bignum r1 = *this % m;
  Bignum t0;            // coefficient of r0
  Bignum t1 = Bignum(1);  // coefficient of r1
  bool t0_neg = false;
  bool t1_neg = false;

  while (!r1.is_zero()) {
    const DivMod dm = r0.divmod(r1);
    // t2 = t0 - q*t1 (with explicit sign bookkeeping).
    Bignum qt1 = dm.quotient * t1;
    Bignum t2;
    bool t2_neg = false;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = dm.remainder;
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (!r0.is_one()) return {};  // not coprime: no inverse
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

}  // namespace pvr::crypto
