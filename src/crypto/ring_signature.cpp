#include "crypto/ring_signature.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/chacha20.h"
#include "crypto/encoding.h"
#include "crypto/sha256.h"

namespace pvr::crypto {

namespace {

// Extended trapdoor permutation g_i over {0,1}^b (RST §3.1): write
// x = q*n + r; if (q+1)*n fits in the domain, apply f to r, else identity.
[[nodiscard]] Bignum extend_forward(const RsaPublicKey& key, const Bignum& x,
                                    std::size_t domain_bits) {
  const Bignum::DivMod qr = x.divmod(key.n);
  const Bignum limit = (qr.quotient + Bignum(1)) * key.n;
  if (limit.bit_length() <= domain_bits) {
    return qr.quotient * key.n + rsa_public_apply(key, qr.remainder);
  }
  return x;
}

[[nodiscard]] Bignum extend_backward(const RsaPrivateKey& key, const Bignum& y,
                                     std::size_t domain_bits) {
  const Bignum::DivMod qr = y.divmod(key.n);
  const Bignum limit = (qr.quotient + Bignum(1)) * key.n;
  if (limit.bit_length() <= domain_bits) {
    return qr.quotient * key.n + rsa_private_apply(key, qr.remainder);
  }
  return y;
}

// Keyed pseudorandom function for the Feistel rounds: expands
// (k, round, half) to `bits` pseudorandom bits.
[[nodiscard]] Bignum feistel_round_function(const Digest& k, int round,
                                            const Bignum& half,
                                            std::size_t bits) {
  ByteWriter writer;
  writer.put_string("pvr-ring-feistel");
  writer.put_raw(std::span(k.data(), k.size()));
  writer.put_u8(static_cast<std::uint8_t>(round));
  const auto half_bytes = half.to_bytes_be();
  writer.put_bytes(half_bytes);
  const Digest round_key = sha256(writer.data());

  const std::size_t nbytes = (bits + 7) / 8;
  std::vector<std::uint8_t> pad(nbytes);
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};
  ChaCha20 stream{std::span<const std::uint8_t, ChaCha20::kKeySize>(round_key),
                  std::span<const std::uint8_t, ChaCha20::kNonceSize>(nonce)};
  stream.keystream(pad);
  if (nbytes > 0) {
    pad[0] &= static_cast<std::uint8_t>(0xff >> (nbytes * 8 - bits));
  }
  return Bignum::from_bytes_be(pad);
}

[[nodiscard]] Bignum bits_xor(const Bignum& lhs, const Bignum& rhs,
                              std::size_t bits) {
  const std::size_t nbytes = (bits + 7) / 8;
  std::vector<std::uint8_t> lb = lhs.to_bytes_be(nbytes);
  const std::vector<std::uint8_t> rb = rhs.to_bytes_be(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) lb[i] ^= rb[i];
  return Bignum::from_bytes_be(lb);
}

constexpr int kFeistelRounds = 4;  // Luby–Rackoff: 4 rounds give a strong PRP

// E_k: a keyed permutation of {0,1}^b realized as a balanced Feistel
// network (b is always even, see domain_bits_for). A plain XOR pad would
// be linear — pads cancel around even-size rings and verification would
// become message-independent — so a genuinely nonlinear PRP is required.
[[nodiscard]] Bignum feistel_encrypt(const Digest& k, const Bignum& value,
                                     std::size_t domain_bits) {
  const std::size_t half_bits = domain_bits / 2;
  const Bignum mask_mod = Bignum(1) << half_bits;
  Bignum left = value >> half_bits;
  Bignum right = value % mask_mod;
  for (int round = 0; round < kFeistelRounds; ++round) {
    Bignum next_right =
        bits_xor(left, feistel_round_function(k, round, right, half_bits), half_bits);
    left = std::move(right);
    right = std::move(next_right);
  }
  return (left << half_bits) + right;
}

[[nodiscard]] Bignum feistel_decrypt(const Digest& k, const Bignum& value,
                                     std::size_t domain_bits) {
  const std::size_t half_bits = domain_bits / 2;
  const Bignum mask_mod = Bignum(1) << half_bits;
  Bignum left = value >> half_bits;
  Bignum right = value % mask_mod;
  for (int round = kFeistelRounds - 1; round >= 0; --round) {
    Bignum prev_left =
        bits_xor(right, feistel_round_function(k, round, left, half_bits), half_bits);
    right = std::move(left);
    left = std::move(prev_left);
  }
  return (left << half_bits) + right;
}

[[nodiscard]] std::size_t domain_bits_for(std::span<const RsaPublicKey> ring) {
  std::size_t max_bits = 0;
  for (const RsaPublicKey& key : ring) {
    max_bits = std::max(max_bits, key.n.bit_length());
  }
  std::size_t b = max_bits + 64;
  if (b % 2 != 0) ++b;  // the Feistel halves must be equal width
  return b;
}

}  // namespace

std::size_t RingSignature::byte_size() const {
  const std::size_t per_value = (domain_bits + 7) / 8;
  return per_value * (x.size() + 1);
}

RingSignature ring_sign(std::span<const RsaPublicKey> ring,
                        std::size_t signer_index,
                        const RsaPrivateKey& signer_key,
                        std::span<const std::uint8_t> message, Drbg& rng) {
  if (ring.empty()) throw std::invalid_argument("ring_sign: empty ring");
  if (signer_index >= ring.size()) {
    throw std::invalid_argument("ring_sign: signer index out of range");
  }
  if (!(ring[signer_index] == signer_key.public_key())) {
    throw std::invalid_argument("ring_sign: key mismatch at signer index");
  }

  const std::size_t b = domain_bits_for(ring);
  const Digest k = sha256(message);
  const Bignum domain_bound = Bignum(1) << b;

  // Random x_i (and thus y_i = g_i(x_i)) for all non-signers.
  const std::size_t r = ring.size();
  std::vector<Bignum> x(r);
  std::vector<Bignum> y(r);
  for (std::size_t i = 0; i < r; ++i) {
    if (i == signer_index) continue;
    x[i] = rng.random_below(domain_bound);
    y[i] = extend_forward(ring[i], x[i], b);
  }

  const Bignum v = rng.random_below(domain_bound);

  // Ring equation with state_0 = v and state_{i+1} = E_k(state_i XOR y_i);
  // a valid signature satisfies state_r = v.
  // Forward pass up to the signer's slot:
  Bignum state = v;
  for (std::size_t i = 0; i < signer_index; ++i) {
    state = feistel_encrypt(k, bits_xor(state, y[i], b), b);
  }
  const Bignum state_before_signer = state;

  // Backward pass from state_r = v down to state_{signer+1}:
  Bignum after = v;
  for (std::size_t i = r; i-- > signer_index + 1;) {
    after = bits_xor(feistel_decrypt(k, after, b), y[i], b);
  }

  // Solve state_{s+1} = E_k(state_s XOR y_s) for y_s, then invert g_s.
  y[signer_index] = bits_xor(feistel_decrypt(k, after, b), state_before_signer, b);
  x[signer_index] = extend_backward(signer_key, y[signer_index], b);

  return {.glue = v, .x = std::move(x), .domain_bits = b};
}

bool ring_verify(std::span<const RsaPublicKey> ring,
                 std::span<const std::uint8_t> message,
                 const RingSignature& signature) {
  if (ring.empty() || signature.x.size() != ring.size()) return false;
  const std::size_t b = domain_bits_for(ring);
  if (signature.domain_bits != b) return false;
  const Bignum domain_bound = Bignum(1) << b;
  if (signature.glue >= domain_bound) return false;

  const Digest k = sha256(message);

  Bignum state = signature.glue;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (signature.x[i] >= domain_bound) return false;
    const Bignum y = extend_forward(ring[i], signature.x[i], b);
    state = feistel_encrypt(k, bits_xor(state, y, b), b);
  }
  return state == signature.glue;
}

}  // namespace pvr::crypto
