// Deterministic random bit generator (ChaCha20-based).
//
// All nondeterminism in the repository — key generation, commitment nonces,
// topology generation, Byzantine strategy sampling — is drawn from seeded
// Drbg instances so every experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/bignum.h"
#include "crypto/chacha20.h"

namespace pvr::crypto {

class Drbg {
 public:
  // Domain-separated seeding: two Drbgs with different labels never share a
  // keystream even under the same numeric seed.
  explicit Drbg(std::uint64_t seed, std::string_view label = "pvr-drbg");

  void fill(std::span<std::uint8_t> out) noexcept;
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t count);

  [[nodiscard]] std::uint64_t next_u64() noexcept;
  // Uniform in [0, bound); bound must be nonzero.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;
  // Uniform double in [0, 1).
  [[nodiscard]] double uniform_unit() noexcept;
  [[nodiscard]] bool coin(double probability_true) noexcept;

  // Uniform Bignum with exactly `bits` significant bits (top bit set).
  [[nodiscard]] Bignum random_bits(std::size_t bits);
  // Uniform Bignum in [0, bound).
  [[nodiscard]] Bignum random_below(const Bignum& bound);

  // Spawns an independent child generator (for per-node streams).
  [[nodiscard]] Drbg fork(std::string_view label);

 private:
  ChaCha20 stream_;
};

}  // namespace pvr::crypto
