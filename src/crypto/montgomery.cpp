#include "crypto/montgomery.h"

#include <array>
#include <stdexcept>

#include "obs/metrics.h"

namespace pvr::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// -n^{-1} mod 2^64 by Newton iteration: inv *= 2 - n0*inv doubles the
// number of correct low bits each step, and n0 odd makes inv = n0 a
// 3-bits-correct seed (n0 * n0 ≡ 1 mod 8).
[[nodiscard]] u64 neg_inverse_64(u64 n0) {
  u64 inv = n0;
  for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;
  return ~inv + 1;
}

}  // namespace

MontgomeryCtx::MontgomeryCtx(const Bignum& m) : m_(m) {
  if (!m.is_odd() || m.is_one()) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  }
  const auto limbs = m.limbs();
  if (limbs.size() > kMaxMontgomeryLimbs) {
    throw std::invalid_argument("MontgomeryCtx: modulus too wide");
  }
  n_.assign(limbs.begin(), limbs.end());
  n0inv_ = neg_inverse_64(n_[0]);
  // R^2 mod m via one wide division — the only division this context ever
  // performs. Deliberately NOT Bignum::mulmod so the kSim-deterministic
  // crypto.mulmod_calls counter keeps meaning "schoolbook ladder steps".
  rr_ = to_limbs((Bignum(1) << (128 * n_.size())) % m_);
}

std::vector<u64> MontgomeryCtx::to_limbs(const Bignum& x) const {
  std::vector<u64> out(n_.size(), 0);
  const auto limbs = x.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) out[i] = limbs[i];
  return out;
}

Bignum MontgomeryCtx::from_limbs_trimmed(const std::vector<u64>& limbs) {
  std::vector<std::uint8_t> bytes(limbs.size() * 8);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    const u64 limb = limbs[limbs.size() - 1 - i];
    for (std::size_t b = 0; b < 8; ++b) {
      bytes[i * 8 + b] = static_cast<std::uint8_t>(limb >> (56 - 8 * b));
    }
  }
  return Bignum::from_bytes_be(bytes);
}

void MontgomeryCtx::mont_mul(const u64* a, const u64* b, u64* out) const {
  const std::size_t w = n_.size();
  // CIOS accumulator: w + 2 limbs, t[w+1] never exceeds 1.
  std::array<u64, kMaxMontgomeryLimbs + 2> t{};
  for (std::size_t i = 0; i < w; ++i) {
    // t += a[i] * b
    u128 carry = 0;
    const u128 ai = a[i];
    for (std::size_t j = 0; j < w; ++j) {
      const u128 cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = cur >> 64;
    }
    u128 cur = t[w] + carry;
    t[w] = static_cast<u64>(cur);
    t[w + 1] += static_cast<u64>(cur >> 64);

    // t = (t + m_factor * n) / 2^64
    const u64 m_factor = t[0] * n0inv_;
    const u128 mf = m_factor;
    carry = (t[0] + mf * n_[0]) >> 64;  // low limb becomes exactly 0
    for (std::size_t j = 1; j < w; ++j) {
      const u128 sum = t[j] + mf * n_[j] + carry;
      t[j - 1] = static_cast<u64>(sum);
      carry = sum >> 64;
    }
    cur = t[w] + carry;
    t[w - 1] = static_cast<u64>(cur);
    t[w] = t[w + 1] + static_cast<u64>(cur >> 64);
    t[w + 1] = 0;
  }

  // Conditional final subtraction: t (w+1 limbs) is < 2m.
  bool ge = t[w] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = w; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  if (ge) {
    u128 borrow = 0;
    for (std::size_t i = 0; i < w; ++i) {
      const u128 diff = static_cast<u128>(t[i]) - n_[i] - borrow;
      out[i] = static_cast<u64>(diff);
      borrow = (diff >> 64) & 1;
    }
  } else {
    for (std::size_t i = 0; i < w; ++i) out[i] = t[i];
  }
}

Bignum MontgomeryCtx::mulmod(const Bignum& a, const Bignum& b) const {
  const std::vector<u64> am = to_limbs(a >= m_ ? a % m_ : a);
  const std::vector<u64> bm = to_limbs(b >= m_ ? b % m_ : b);
  std::vector<u64> t(n_.size());
  mont_mul(am.data(), rr_.data(), t.data());  // a*R mod m
  mont_mul(t.data(), bm.data(), t.data());    // a*b mod m
  return from_limbs_trimmed(t);
}

Bignum MontgomeryCtx::powmod(const Bignum& base, const Bignum& exponent) const {
  PVR_OBS_COUNT(crypto_mont_powmods, 1);
  const std::size_t w = n_.size();
  if (exponent.is_zero()) return Bignum(1);  // m > 1, so 1 mod m == 1

  const std::vector<u64> x = to_limbs(base >= m_ ? base % m_ : base);
  std::vector<u64> xm(w);
  mont_mul(x.data(), rr_.data(), xm.data());  // base in Montgomery form

  const std::size_t nbits = exponent.bit_length();
  std::vector<u64> acc(w);
  if (nbits <= 32) {
    // Plain left-to-right binary ladder: for e = 65537 this is 16 squares
    // + 1 multiply, cheaper than any window's table build.
    acc = xm;
    for (std::size_t i = nbits - 1; i-- > 0;) {
      mont_mul(acc.data(), acc.data(), acc.data());
      if (exponent.bit(i)) mont_mul(acc.data(), xm.data(), acc.data());
    }
  } else {
    // 4-bit fixed window, the same schedule as powmod_reference.
    // table[0] is 1 in Montgomery form: mont_mul(R^2, 1) = R mod m.
    std::array<std::vector<u64>, 16> table;
    std::vector<u64> one(w, 0);
    one[0] = 1;
    table[0].resize(w);
    mont_mul(rr_.data(), one.data(), table[0].data());
    table[1] = xm;
    for (std::size_t i = 2; i < table.size(); ++i) {
      table[i].resize(w);
      mont_mul(table[i - 1].data(), xm.data(), table[i].data());
    }
    acc = table[0];
    const std::size_t nwindows = (nbits + 3) / 4;
    for (std::size_t wi = nwindows; wi-- > 0;) {
      for (int s = 0; s < 4; ++s) mont_mul(acc.data(), acc.data(), acc.data());
      unsigned window = 0;
      for (std::size_t b = 0; b < 4; ++b) {
        window = (window << 1) | (exponent.bit(wi * 4 + 3 - b) ? 1u : 0u);
      }
      if (window != 0) mont_mul(acc.data(), table[window].data(), acc.data());
    }
  }

  // Convert out: mont_mul(acc, 1) = acc * R^{-1} mod m.
  std::vector<u64> one(w, 0);
  one[0] = 1;
  mont_mul(acc.data(), one.data(), acc.data());
  return from_limbs_trimmed(acc);
}

}  // namespace pvr::crypto
