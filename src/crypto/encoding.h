// Canonical byte-level encoding helpers.
//
// Every PVR message, commitment payload, and signed blob in this repository
// is serialized through ByteWriter/ByteReader so that hashes and signatures
// are computed over a single well-defined canonical form (big-endian fixed
// ints, length-prefixed byte strings).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pvr::crypto {

[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);
// Throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v);
  // Raw bytes, no length prefix (fixed-size fields such as digests).
  void put_raw(std::span<const std::uint8_t> bytes);
  // u32 length prefix + bytes (variable-size fields).
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// Reader over a borrowed buffer. All getters throw std::out_of_range on
// truncated input — malformed messages from Byzantine peers must never be
// silently misparsed.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] bool get_bool();
  [[nodiscard]] std::vector<std::uint8_t> get_raw(std::size_t count);
  [[nodiscard]] std::vector<std::uint8_t> get_bytes();
  [[nodiscard]] std::string get_string();

  [[nodiscard]] bool exhausted() const noexcept { return offset_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }

 private:
  void require(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace pvr::crypto
