#include "crypto/merkle.h"

#include <algorithm>
#include <stdexcept>

namespace pvr::crypto {

void MerkleProof::encode(ByteWriter& writer) const {
  writer.put_u64(leaf_index);
  writer.put_u64(leaf_count);
  writer.put_u32(static_cast<std::uint32_t>(siblings.size()));
  for (const Digest& sibling : siblings) {
    writer.put_raw(std::span(sibling.data(), sibling.size()));
  }
}

MerkleProof MerkleProof::decode(ByteReader& reader) {
  MerkleProof proof;
  proof.leaf_index = reader.get_u64();
  proof.leaf_count = reader.get_u64();
  const std::uint32_t count = reader.get_u32();
  // A proof is one sibling per tree level; 64 levels covers any leaf count
  // and keeps a hostile length field from forcing a huge allocation.
  if (count > 64) throw std::out_of_range("MerkleProof::decode: too many siblings");
  proof.siblings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::vector<std::uint8_t> raw = reader.get_raw(kSha256DigestSize);
    Digest digest;
    std::copy(raw.begin(), raw.end(), digest.begin());
    proof.siblings.push_back(digest);
  }
  return proof;
}

Digest MerkleTree::hash_leaf(std::span<const std::uint8_t> payload) {
  Sha256 hasher;
  const std::uint8_t tag = 0x00;
  hasher.update(std::span(&tag, 1));
  hasher.update(payload);
  return hasher.finalize();
}

Digest MerkleTree::hash_interior(const Digest& left, const Digest& right) {
  Sha256 hasher;
  const std::uint8_t tag = 0x01;
  hasher.update(std::span(&tag, 1));
  hasher.update(std::span(left.data(), left.size()));
  hasher.update(std::span(right.data(), right.size()));
  return hasher.finalize();
}

MerkleTree MerkleTree::build(std::span<const std::vector<std::uint8_t>> leaves) {
  if (leaves.empty()) {
    throw std::invalid_argument("MerkleTree::build: no leaves");
  }
  MerkleTree tree;
  tree.leaf_count_ = leaves.size();

  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& payload : leaves) level.push_back(hash_leaf(payload));

  // Pad to a power of two with a distinguished padding digest. Duplicating
  // the last leaf (the naive approach) would let a forged proof re-point a
  // real payload at a padding index; the 0xff domain tag can never collide
  // with a real leaf (tag 0x00) or interior node (tag 0x01).
  const Digest padding = [] {
    const std::uint8_t tag = 0xff;
    return sha256(std::span(&tag, 1));
  }();
  while ((level.size() & (level.size() - 1)) != 0) level.push_back(padding);

  tree.levels_.push_back(std::move(level));
  while (tree.levels_.back().size() > 1) {
    const std::vector<Digest>& below = tree.levels_.back();
    std::vector<Digest> above(below.size() / 2);
    for (std::size_t i = 0; i < above.size(); ++i) {
      above[i] = hash_interior(below[2 * i], below[2 * i + 1]);
    }
    tree.levels_.push_back(std::move(above));
  }
  return tree;
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) {
    throw std::out_of_range("MerkleTree::prove: leaf index out of range");
  }
  MerkleProof proof{.leaf_index = index, .leaf_count = leaf_count_, .siblings = {}};
  std::size_t pos = index;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    proof.siblings.push_back(levels_[level][pos ^ 1]);
    pos >>= 1;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root,
                        std::span<const std::uint8_t> leaf_payload,
                        const MerkleProof& proof) {
  if (proof.leaf_index >= proof.leaf_count) return false;
  Digest current = hash_leaf(leaf_payload);
  std::size_t pos = proof.leaf_index;
  for (const Digest& sibling : proof.siblings) {
    current = (pos & 1) ? hash_interior(sibling, current)
                        : hash_interior(current, sibling);
    pos >>= 1;
  }
  return pos == 0 && current == root;
}

}  // namespace pvr::crypto
