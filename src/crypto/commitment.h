// Hash commitments c = H(value || nonce) (paper §3.2).
//
// The nonce is essential: footnote 2 of the paper notes that without it a
// neighbor could test c against H(0) and H(1) and learn the committed bit.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace pvr::crypto {

inline constexpr std::size_t kCommitNonceSize = 32;

struct CommitmentOpening {
  std::vector<std::uint8_t> value;
  std::vector<std::uint8_t> nonce;  // kCommitNonceSize bytes
};

struct Commitment {
  Digest digest{};

  [[nodiscard]] bool operator==(const Commitment&) const = default;
};

// Computes H(len(value) || value || nonce). The length prefix makes the
// (value, nonce) split unambiguous.
[[nodiscard]] Commitment compute_commitment(std::span<const std::uint8_t> value,
                                            std::span<const std::uint8_t> nonce);

// Commits to `value` with a fresh random nonce from `rng`.
[[nodiscard]] std::pair<Commitment, CommitmentOpening> commit(
    std::span<const std::uint8_t> value, Drbg& rng);

// Convenience overload for single-bit commitments (the b / b_i bits of
// §3.2–3.3).
[[nodiscard]] std::pair<Commitment, CommitmentOpening> commit_bit(bool bit,
                                                                  Drbg& rng);

[[nodiscard]] bool verify_commitment(const Commitment& commitment,
                                     const CommitmentOpening& opening);

}  // namespace pvr::crypto
