#include "crypto/commitment.h"

#include "crypto/encoding.h"

namespace pvr::crypto {

Commitment compute_commitment(std::span<const std::uint8_t> value,
                              std::span<const std::uint8_t> nonce) {
  ByteWriter writer;
  writer.put_bytes(value);
  writer.put_raw(nonce);
  return {.digest = sha256(writer.data())};
}

std::pair<Commitment, CommitmentOpening> commit(
    std::span<const std::uint8_t> value, Drbg& rng) {
  CommitmentOpening opening{
      .value = {value.begin(), value.end()},
      .nonce = rng.bytes(kCommitNonceSize),
  };
  Commitment commitment = compute_commitment(opening.value, opening.nonce);
  return {commitment, std::move(opening)};
}

std::pair<Commitment, CommitmentOpening> commit_bit(bool bit, Drbg& rng) {
  const std::uint8_t byte = bit ? 1 : 0;
  return commit(std::span(&byte, 1), rng);
}

bool verify_commitment(const Commitment& commitment,
                       const CommitmentOpening& opening) {
  if (opening.nonce.size() != kCommitNonceSize) return false;
  return compute_commitment(opening.value, opening.nonce) == commitment;
}

}  // namespace pvr::crypto
