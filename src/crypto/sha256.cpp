#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "obs/metrics.h"

namespace pvr::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

[[nodiscard]] constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return std::rotr(x, n);
}

}  // namespace

Sha256::Sha256() noexcept
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      buffer_{} {}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  if (counted_) PVR_OBS_COUNT(crypto_bytes_hashed, data.size());
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha256::update(std::string_view data) noexcept {
  update(std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                   data.size()));
}

Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) {
    update(std::span(&zero, 1));
  }
  std::array<std::uint8_t, 8> len_be;
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_be.data(), len_be.size()));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(std::span<const std::uint8_t> data) noexcept {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finalize();
}

Digest sha256(std::string_view data) noexcept {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finalize();
}

Digest sha256_uncounted(std::span<const std::uint8_t> data) noexcept {
  Sha256 hasher;
  hasher.counted_ = false;
  hasher.update(data);
  return hasher.finalize();
}

std::string digest_hex(const Digest& digest) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> digest_bytes(const Digest& digest) {
  return {digest.begin(), digest.end()};
}

}  // namespace pvr::crypto
