// RSA key generation and PKCS#1 v1.5 signatures (RFC 8017) over SHA-256.
//
// The paper's overhead analysis (§3.8) is phrased in terms of RSA-1024
// signatures (~2 ms on 2011 hardware); route announcements, commitments,
// and evidence objects in this repo are all signed with this module.
// Signing uses the CRT; verification uses the public exponent directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/montgomery.h"
#include "crypto/sha256.h"

namespace pvr::crypto {

struct RsaPublicKey {
  Bignum n;  // modulus
  Bignum e;  // public exponent

  [[nodiscard]] std::size_t modulus_bytes() const {
    return (n.bit_length() + 7) / 8;
  }
  [[nodiscard]] bool operator==(const RsaPublicKey&) const = default;

  // Canonical encoding (for hashing into node identities and gossip).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static RsaPublicKey decode(std::span<const std::uint8_t> data);
};

struct RsaPrivateKey {
  Bignum n;
  Bignum e;
  Bignum d;
  // CRT components.
  Bignum p;
  Bignum q;
  Bignum d_p;    // d mod (p-1)
  Bignum d_q;    // d mod (q-1)
  Bignum q_inv;  // q^{-1} mod p

  [[nodiscard]] RsaPublicKey public_key() const { return {.n = n, .e = e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

// Miller–Rabin with `rounds` random bases (error < 4^-rounds).
[[nodiscard]] bool is_probable_prime(const Bignum& n, Drbg& rng, int rounds = 24);

// Generates a random prime with exactly `bits` bits (top two bits set, so
// products of two such primes have exactly 2*bits bits).
[[nodiscard]] Bignum generate_prime(std::size_t bits, Drbg& rng);

// Generates an RSA key pair with a modulus of `modulus_bits` bits, e = 65537.
[[nodiscard]] RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, Drbg& rng);

// PKCS#1 v1.5 signature over SHA-256(message). The result has exactly
// modulus_bytes() bytes.
[[nodiscard]] std::vector<std::uint8_t> rsa_sign(
    const RsaPrivateKey& key, std::span<const std::uint8_t> message);

[[nodiscard]] bool rsa_verify(const RsaPublicKey& key,
                              std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature);

// Verification of many signatures under ONE public key in a single call,
// amortizing the structural screening and message encoding across the
// batch. The result vector is EXACTLY what per-member rsa_verify returns.
//
// Deliberately NOT a product-test batch accept: the small-exponents test
// (Bellare–Garay–Rabin) is only sound in prime-order groups, and Z_n* is
// not one — Boyd–Pavlovski-style forgeries (e.g. s' = n - s, or factors
// of small odd order dividing lambda(n)) pass the product equation with
// non-negligible probability, which would make the batched verdict
// diverge from rsa_verify under adversarial input. Each member is
// therefore checked with its own e-exponentiation; for the e = 65537 keys
// used throughout this repo that is also the cheapest option.
struct RsaBatchItem {
  std::span<const std::uint8_t> message;
  std::span<const std::uint8_t> signature;
};
[[nodiscard]] std::vector<bool> rsa_verify_batch(const RsaPublicKey& key,
                                                 std::span<const RsaBatchItem> items);

// Raw RSA trapdoor permutation (used by the ring-signature scheme).
[[nodiscard]] Bignum rsa_public_apply(const RsaPublicKey& key, const Bignum& x);
[[nodiscard]] Bignum rsa_private_apply(const RsaPrivateKey& key, const Bignum& y);

// A public key with its Montgomery context built once and reused across
// every verification — the per-key precompute that rsa_verify otherwise
// redoes per call (one R^2 division each time). Thread-safe after
// construction: all members are immutable and verify() is const with no
// internal state. core::VerifyContext owns one of these per directory key.
//
// verify() returns EXACTLY what rsa_verify returns for every input; the
// two-step prepare()/finish() split exists so a verdict cache can sit
// between the cheap structural/encoding work and the expensive
// exponentiation without changing any verdict.
class RsaVerifyKey {
 public:
  explicit RsaVerifyKey(RsaPublicKey key);

  [[nodiscard]] const RsaPublicKey& key() const noexcept { return key_; }

  // Structural screening + EMSA-PKCS1-v1_5 encoding. nullopt means the
  // signature cannot possibly verify (wrong length, s >= n, modulus too
  // small) — the exact inputs rsa_verify rejects before exponentiating.
  struct Prepared {
    Bignum s;        // the signature as an integer, < n
    Bignum encoded;  // the expected EMSA-PKCS1-v1_5 encoding of message
  };
  [[nodiscard]] std::optional<Prepared> prepare(
      std::span<const std::uint8_t> message,
      std::span<const std::uint8_t> signature) const;

  // The e-exponentiation and comparison (counts crypto.rsa_verifies).
  [[nodiscard]] bool finish(const Prepared& prepared) const;

  [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                            std::span<const std::uint8_t> signature) const;

  // Same contract as rsa_verify_batch, with the per-key precompute shared
  // across the whole batch.
  [[nodiscard]] std::vector<bool> verify_batch(
      std::span<const RsaBatchItem> items) const;

  // s^e mod n through the shared Montgomery context.
  [[nodiscard]] Bignum public_apply(const Bignum& x) const;

 private:
  RsaPublicKey key_;
  std::optional<MontgomeryCtx> mont_;  // absent for even/oversized moduli
};

}  // namespace pvr::crypto
