#include "crypto/chacha20.h"

#include <bit>

namespace pvr::crypto {

namespace {

[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) noexcept {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t, kKeySize> key,
                   std::span<const std::uint8_t, kNonceSize> nonce,
                   std::uint32_t initial_counter) noexcept
    : block_{} {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + i * 4);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + i * 4);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = x[i] + state_[i];
    block_[i * 4] = static_cast<std::uint8_t>(word);
    block_[i * 4 + 1] = static_cast<std::uint8_t>(word >> 8);
    block_[i * 4 + 2] = static_cast<std::uint8_t>(word >> 16);
    block_[i * 4 + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  state_[12] += 1;  // 32-bit counter; 256 GiB per nonce is ample here
  block_pos_ = 0;
}

void ChaCha20::keystream(std::span<std::uint8_t> out) noexcept {
  for (std::uint8_t& byte : out) {
    if (block_pos_ == kBlockSize) refill();
    byte = block_[block_pos_++];
  }
}

void ChaCha20::xor_inplace(std::span<std::uint8_t> data) noexcept {
  for (std::uint8_t& byte : data) {
    if (block_pos_ == kBlockSize) refill();
    byte ^= block_[block_pos_++];
  }
}

}  // namespace pvr::crypto
