// FIPS 180-4 SHA-256.
//
// PVR's commitment and Merkle-tree layers (paper §3.2, §3.6) are built on a
// cryptographic hash; the paper names SHA-256 explicitly in §3.8.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pvr::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;

using Digest = std::array<std::uint8_t, kSha256DigestSize>;

// Incremental SHA-256. Usage: update(...) any number of times, then
// finalize() exactly once. Reuse requires a fresh object.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  [[nodiscard]] Digest finalize() noexcept;

 private:
  friend Digest sha256_uncounted(std::span<const std::uint8_t> data) noexcept;

  void process_block(const std::uint8_t* block) noexcept;

  bool counted_ = true;  // false = exempt from crypto.bytes_hashed
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

// One-shot helpers.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] Digest sha256(std::string_view data) noexcept;

// One-shot digest EXEMPT from the crypto.bytes_hashed counter — for
// internal bookkeeping hashes (the verify-context verdict-cache key) that
// are an implementation detail of a cache, not protocol hash work. Using
// it keeps the kSim metrics fingerprint byte-identical whether the cache
// is on or off.
[[nodiscard]] Digest sha256_uncounted(std::span<const std::uint8_t> data) noexcept;

// Lowercase hex of a digest (for logs and test vectors).
[[nodiscard]] std::string digest_hex(const Digest& digest);

// Convenience: digest as a byte vector.
[[nodiscard]] std::vector<std::uint8_t> digest_bytes(const Digest& digest);

}  // namespace pvr::crypto
