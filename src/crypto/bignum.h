// Arbitrary-precision unsigned integer arithmetic.
//
// This is the numeric substrate for the RSA signatures and Rivest–Shamir–
// Tauman ring signatures used by PVR (paper §3.2, §3.8). Little-endian
// 64-bit limbs, value semantics, no hidden global state. Not constant-time:
// the simulator threat model is about protocol misbehavior, not local
// side channels (see DESIGN.md §3).
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pvr::crypto {

class Bignum {
 public:
  Bignum() = default;
  explicit Bignum(std::uint64_t value);

  // Parses a hexadecimal string (no "0x" prefix, case-insensitive).
  // Returns zero for an empty string. Throws std::invalid_argument on
  // non-hex characters.
  [[nodiscard]] static Bignum from_hex(std::string_view hex);

  // Parses a big-endian byte string (as used by RFC 8017 OS2IP).
  [[nodiscard]] static Bignum from_bytes_be(std::span<const std::uint8_t> bytes);

  // Serializes to a big-endian byte string of exactly `length` bytes
  // (RFC 8017 I2OSP). Throws std::length_error if the value does not fit.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t length) const;

  // Serializes to the minimal big-endian byte string (empty for zero).
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be() const;

  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1u) != 0;
  }
  [[nodiscard]] bool is_one() const noexcept {
    return limbs_.size() == 1 && limbs_[0] == 1;
  }

  // Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;

  // Value of bit `i` (0 = least significant); bits past the end read as 0.
  [[nodiscard]] bool bit(std::size_t i) const noexcept;
  void set_bit(std::size_t i);

  [[nodiscard]] std::strong_ordering operator<=>(const Bignum& other) const noexcept;
  [[nodiscard]] bool operator==(const Bignum& other) const noexcept = default;

  [[nodiscard]] Bignum operator+(const Bignum& rhs) const;
  // Throws std::underflow_error if rhs > *this.
  [[nodiscard]] Bignum operator-(const Bignum& rhs) const;
  [[nodiscard]] Bignum operator*(const Bignum& rhs) const;
  [[nodiscard]] Bignum operator<<(std::size_t bits) const;
  [[nodiscard]] Bignum operator>>(std::size_t bits) const;

  struct DivMod;
  // Knuth Algorithm D. Throws std::domain_error on division by zero.
  [[nodiscard]] DivMod divmod(const Bignum& divisor) const;
  [[nodiscard]] Bignum operator/(const Bignum& rhs) const;
  [[nodiscard]] Bignum operator%(const Bignum& rhs) const;

  // (*this * rhs) mod m.
  [[nodiscard]] Bignum mulmod(const Bignum& rhs, const Bignum& m) const;
  // (*this ^ exponent) mod m. Odd moduli (every RSA modulus) run the whole
  // ladder in Montgomery domain (crypto/montgomery.h): one conversion in,
  // one out, no per-step division. Even or extreme moduli fall back to
  // powmod_reference. Throws std::domain_error if m is zero.
  [[nodiscard]] Bignum powmod(const Bignum& exponent, const Bignum& m) const;
  // The schoolbook 4-bit fixed-window ladder (every step a mulmod, i.e. a
  // full multiply + Knuth division). Kept as the differential-test
  // reference for the Montgomery path and as the even-modulus fallback —
  // bit-identical results to powmod by construction.
  [[nodiscard]] Bignum powmod_reference(const Bignum& exponent,
                                        const Bignum& m) const;

  [[nodiscard]] static Bignum gcd(Bignum a, Bignum b);
  // Modular inverse of *this mod m; returns zero when no inverse exists.
  [[nodiscard]] Bignum invmod(const Bignum& m) const;

  // Direct limb access for tests and hashing (little-endian).
  [[nodiscard]] std::span<const std::uint64_t> limbs() const noexcept { return limbs_; }

 private:
  void trim() noexcept;
  static Bignum from_limbs(std::vector<std::uint64_t> limbs);

  std::vector<std::uint64_t> limbs_;  // little-endian; no trailing zero limbs
};

struct Bignum::DivMod {
  Bignum quotient;
  Bignum remainder;
};

inline Bignum Bignum::operator/(const Bignum& rhs) const {
  return divmod(rhs).quotient;
}
inline Bignum Bignum::operator%(const Bignum& rhs) const {
  return divmod(rhs).remainder;
}

}  // namespace pvr::crypto
