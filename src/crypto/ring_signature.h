// Rivest–Shamir–Tauman ring signatures ("How to leak a secret", ASIACRYPT
// 2001) over this repository's RSA.
//
// Paper §3.2: when PVR is applied to a link-state-style protocol that only
// exports "a route exists", the providing neighbors N_i sign that statement
// with a ring signature, so the verifier B learns that *some* N_i provided
// a route without learning which one.
//
// Construction: each ring member i has an RSA trapdoor permutation f_i over
// Z_{n_i}, extended to a common domain {0,1}^b (b >= max modulus bits + 64)
// by applying f_i blockwise below the largest multiple of n_i. The ring
// equation C_{k,v}(y_1..y_r) = v is glued with a keyed XOR-pad permutation
// E_k derived from ChaCha20 with k = SHA-256(message). The XOR pad keeps
// the combining function a bijection, which is what the proof of anonymity
// requires; a production deployment would use a full block cipher here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bignum.h"
#include "crypto/drbg.h"
#include "crypto/rsa.h"

namespace pvr::crypto {

struct RingSignature {
  Bignum glue;                // v
  std::vector<Bignum> x;      // one per ring member, in ring order
  std::size_t domain_bits = 0;  // b

  [[nodiscard]] std::size_t byte_size() const;
};

// Signs `message` as ring member `signer_index` (an index into `ring`).
// Throws std::invalid_argument if the ring is empty, the index is out of
// range, or the signer's public key does not match `signer_key`.
[[nodiscard]] RingSignature ring_sign(std::span<const RsaPublicKey> ring,
                                      std::size_t signer_index,
                                      const RsaPrivateKey& signer_key,
                                      std::span<const std::uint8_t> message,
                                      Drbg& rng);

[[nodiscard]] bool ring_verify(std::span<const RsaPublicKey> ring,
                               std::span<const std::uint8_t> message,
                               const RingSignature& signature);

}  // namespace pvr::crypto
