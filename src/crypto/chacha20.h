// ChaCha20 block function and stream (RFC 8439).
//
// Used purely as the keystream generator inside the deterministic random
// bit generator (drbg.h); PVR experiments must be reproducible, so all
// randomness flows from seeded ChaCha20 streams.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace pvr::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(std::span<const std::uint8_t, kKeySize> key,
           std::span<const std::uint8_t, kNonceSize> nonce,
           std::uint32_t initial_counter = 0) noexcept;

  // Fills `out` with keystream bytes, advancing the block counter.
  void keystream(std::span<std::uint8_t> out) noexcept;

  // XORs `data` in place with the keystream (encrypt == decrypt).
  void xor_inplace(std::span<std::uint8_t> data) noexcept;

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> block_;
  std::size_t block_pos_ = kBlockSize;  // forces refill on first use
};

}  // namespace pvr::crypto
