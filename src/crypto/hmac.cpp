#include "crypto/hmac.h"

#include <array>

namespace pvr::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlockSize = 64;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(std::span(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(std::span(opad.data(), opad.size()));
  outer.update(std::span(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

}  // namespace pvr::crypto
