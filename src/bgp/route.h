// BGP routes and their standard attributes.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "bgp/as_path.h"
#include "bgp/prefix.h"
#include "crypto/encoding.h"
#include "crypto/sha256.h"

namespace pvr::bgp {

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

// BGP community value (RFC 1997): conventionally "ASN:tag" packed in 32 bits.
using Community = std::uint32_t;

[[nodiscard]] constexpr Community make_community(std::uint16_t asn,
                                                 std::uint16_t tag) noexcept {
  return (static_cast<Community>(asn) << 16) | tag;
}

struct Route {
  Ipv4Prefix prefix;
  AsPath path;
  AsNumber next_hop = 0;  // the neighbor AS the route was learned from
  std::uint32_t local_pref = 100;
  std::uint32_t med = 0;
  Origin origin = Origin::kIgp;
  std::vector<Community> communities;

  [[nodiscard]] bool has_community(Community c) const noexcept;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const Route&) const = default;

  void encode(crypto::ByteWriter& writer) const;
  [[nodiscard]] static Route decode(crypto::ByteReader& reader);

  // Canonical bytes / digest (what gets signed and committed to).
  [[nodiscard]] std::vector<std::uint8_t> canonical_bytes() const;
  [[nodiscard]] crypto::Digest digest() const;
};

}  // namespace pvr::bgp
