#include "bgp/prefix.h"

#include <charconv>
#include <stdexcept>

namespace pvr::bgp {

namespace {

[[nodiscard]] std::uint32_t mask_for(std::uint8_t length) noexcept {
  return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
}

[[nodiscard]] std::uint32_t parse_octet(std::string_view text) {
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > 255) {
    throw std::invalid_argument("Ipv4Prefix: bad octet '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

Ipv4Prefix::Ipv4Prefix(std::uint32_t address, std::uint8_t length)
    : address_(address & mask_for(length)), length_(length) {
  if (length > 32) throw std::invalid_argument("Ipv4Prefix: length > 32");
}

Ipv4Prefix Ipv4Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("Ipv4Prefix: missing '/'");
  }
  std::string_view addr_part = text.substr(0, slash);
  std::string_view len_part = text.substr(slash + 1);

  std::uint32_t address = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t dot = addr_part.find('.');
    const bool last = i == 3;
    if (last != (dot == std::string_view::npos)) {
      throw std::invalid_argument("Ipv4Prefix: malformed address");
    }
    const std::string_view octet = last ? addr_part : addr_part.substr(0, dot);
    address = (address << 8) | parse_octet(octet);
    if (!last) addr_part.remove_prefix(dot + 1);
  }

  const std::uint32_t length = parse_octet(len_part);
  if (length > 32) throw std::invalid_argument("Ipv4Prefix: length > 32");
  return Ipv4Prefix(address, static_cast<std::uint8_t>(length));
}

bool Ipv4Prefix::covers(const Ipv4Prefix& other) const noexcept {
  return other.length_ >= length_ &&
         (other.address_ & mask_for(length_)) == address_;
}

bool Ipv4Prefix::contains_address(std::uint32_t address) const noexcept {
  return (address & mask_for(length_)) == address_;
}

std::string Ipv4Prefix::to_string() const {
  std::string out;
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((address_ >> shift) & 0xff);
    if (shift != 0) out.push_back('.');
  }
  out.push_back('/');
  out += std::to_string(length_);
  return out;
}

void Ipv4Prefix::encode(crypto::ByteWriter& writer) const {
  writer.put_u32(address_);
  writer.put_u8(length_);
}

Ipv4Prefix Ipv4Prefix::decode(crypto::ByteReader& reader) {
  const std::uint32_t address = reader.get_u32();
  const std::uint8_t length = reader.get_u8();
  if (length > 32) throw std::out_of_range("Ipv4Prefix::decode: bad length");
  return Ipv4Prefix(address, length);
}

}  // namespace pvr::bgp
