#include "bgp/topology.h"

#include <algorithm>
#include <stdexcept>

namespace pvr::bgp {

void AsGraph::add_as(AsNumber asn) { adjacency_.try_emplace(asn); }

void AsGraph::add_link(AsNumber a, AsNumber b, Relationship relationship) {
  if (a == b) throw std::invalid_argument("AsGraph::add_link: self link");
  if (!has_as(a) || !has_as(b)) {
    throw std::invalid_argument("AsGraph::add_link: unknown AS");
  }
  adjacency_[a][b] = relationship;
  adjacency_[b][a] = reverse(relationship);
}

bool AsGraph::has_as(AsNumber asn) const noexcept {
  return adjacency_.contains(asn);
}

std::size_t AsGraph::link_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [asn, neighbors] : adjacency_) total += neighbors.size();
  return total / 2;
}

std::vector<AsNumber> AsGraph::as_numbers() const {
  std::vector<AsNumber> out;
  out.reserve(adjacency_.size());
  for (const auto& [asn, neighbors] : adjacency_) out.push_back(asn);
  return out;
}

std::vector<AsNumber> AsGraph::neighbors(AsNumber asn) const {
  std::vector<AsNumber> out;
  const auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [neighbor, rel] : it->second) out.push_back(neighbor);
  return out;
}

std::optional<Relationship> AsGraph::relationship(AsNumber asn,
                                                  AsNumber neighbor) const {
  const auto it = adjacency_.find(asn);
  if (it == adjacency_.end()) return std::nullopt;
  const auto jt = it->second.find(neighbor);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

namespace {

[[nodiscard]] std::vector<AsNumber> neighbors_with(const AsGraph& graph,
                                                   AsNumber asn,
                                                   Relationship wanted) {
  std::vector<AsNumber> out;
  for (const AsNumber neighbor : graph.neighbors(asn)) {
    if (graph.relationship(asn, neighbor) == wanted) out.push_back(neighbor);
  }
  return out;
}

}  // namespace

std::vector<AsNumber> AsGraph::customers_of(AsNumber asn) const {
  return neighbors_with(*this, asn, Relationship::kCustomer);
}

std::vector<AsNumber> AsGraph::providers_of(AsNumber asn) const {
  return neighbors_with(*this, asn, Relationship::kProvider);
}

std::vector<AsNumber> AsGraph::peers_of(AsNumber asn) const {
  return neighbors_with(*this, asn, Relationship::kPeer);
}

AsGraph generate_gao_rexford(const GaoRexfordParams& params, crypto::Drbg& rng) {
  if (params.tier1_count == 0 || params.as_count < params.tier1_count) {
    throw std::invalid_argument("generate_gao_rexford: bad tier sizes");
  }
  AsGraph graph;
  std::vector<AsNumber> order;         // insertion order: AS 1..n
  std::vector<std::size_t> degree;     // degree per index, for pref. attachment

  for (std::size_t i = 0; i < params.as_count; ++i) {
    const AsNumber asn = static_cast<AsNumber>(i + 1);
    graph.add_as(asn);
    order.push_back(asn);
    degree.push_back(0);
  }

  // Tier-1 clique: mutual peering.
  for (std::size_t i = 0; i < params.tier1_count; ++i) {
    for (std::size_t j = i + 1; j < params.tier1_count; ++j) {
      graph.add_link(order[i], order[j], Relationship::kPeer);
      ++degree[i];
      ++degree[j];
    }
  }

  // Every later AS picks providers among earlier ASes, weighted by degree
  // (rich get richer, like the real AS graph's heavy tail).
  auto pick_earlier = [&](std::size_t upto) -> std::size_t {
    std::size_t total = 0;
    for (std::size_t i = 0; i < upto; ++i) total += degree[i] + 1;
    std::uint64_t ball = rng.uniform(total);
    for (std::size_t i = 0; i < upto; ++i) {
      const std::size_t weight = degree[i] + 1;
      if (ball < weight) return i;
      ball -= weight;
    }
    return upto - 1;
  };

  for (std::size_t i = params.tier1_count; i < params.as_count; ++i) {
    // First provider is mandatory: keeps the graph connected.
    std::size_t provider = pick_earlier(i);
    graph.add_link(order[i], order[provider], Relationship::kProvider);
    ++degree[i];
    ++degree[provider];

    while (rng.coin(params.extra_provider_probability)) {
      const std::size_t extra = pick_earlier(i);
      if (extra == provider ||
          graph.relationship(order[i], order[extra]).has_value()) {
        break;
      }
      graph.add_link(order[i], order[extra], Relationship::kProvider);
      ++degree[i];
      ++degree[extra];
    }

    // Lateral peering with a random earlier non-neighbor.
    if (i > params.tier1_count && rng.coin(params.peer_probability)) {
      const std::size_t peer = params.tier1_count +
          rng.uniform(i - params.tier1_count);
      if (peer != i && !graph.relationship(order[i], order[peer]).has_value()) {
        graph.add_link(order[i], order[peer], Relationship::kPeer);
        ++degree[i];
        ++degree[peer];
      }
    }
  }
  return graph;
}

AsGraph make_star_topology(AsNumber center, AsNumber b, AsNumber n_base,
                           std::size_t k) {
  AsGraph graph;
  graph.add_as(center);
  graph.add_as(b);
  // B is center's customer: center must export its best route to B.
  graph.add_link(center, b, Relationship::kCustomer);
  for (std::size_t i = 0; i < k; ++i) {
    const AsNumber ni = n_base + static_cast<AsNumber>(i);
    graph.add_as(ni);
    graph.add_link(center, ni, Relationship::kProvider);
  }
  return graph;
}

}  // namespace pvr::bgp
