#include "bgp/messages.h"

#include <stdexcept>

namespace pvr::bgp {

std::vector<std::uint8_t> BgpUpdate::encode() const {
  if (!withdraw && !route) {
    throw std::logic_error("BgpUpdate::encode: announcement without route");
  }
  crypto::ByteWriter writer;
  writer.put_bool(withdraw);
  prefix.encode(writer);
  if (!withdraw) route->encode(writer);
  return writer.take();
}

BgpUpdate BgpUpdate::decode(std::span<const std::uint8_t> payload) {
  crypto::ByteReader reader(payload);
  BgpUpdate update;
  update.withdraw = reader.get_bool();
  update.prefix = Ipv4Prefix::decode(reader);
  if (!update.withdraw) update.route = Route::decode(reader);
  return update;
}

}  // namespace pvr::bgp
