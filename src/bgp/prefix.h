// IPv4 prefixes (the destinations that BGP routes and PVR promises are
// about).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/encoding.h"

namespace pvr::bgp {

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  // Throws std::invalid_argument if length > 32; host bits below the mask
  // are cleared so equal prefixes always compare equal.
  Ipv4Prefix(std::uint32_t address, std::uint8_t length);

  // Parses dotted-quad/len, e.g. "10.1.0.0/16". Throws std::invalid_argument.
  [[nodiscard]] static Ipv4Prefix parse(std::string_view text);

  [[nodiscard]] std::uint32_t address() const noexcept { return address_; }
  [[nodiscard]] std::uint8_t length() const noexcept { return length_; }

  // True if `other` is equal to or more specific than *this.
  [[nodiscard]] bool covers(const Ipv4Prefix& other) const noexcept;
  [[nodiscard]] bool contains_address(std::uint32_t address) const noexcept;

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] auto operator<=>(const Ipv4Prefix&) const noexcept = default;

  void encode(crypto::ByteWriter& writer) const;
  [[nodiscard]] static Ipv4Prefix decode(crypto::ByteReader& reader);

 private:
  std::uint32_t address_ = 0;
  std::uint8_t length_ = 0;
};

}  // namespace pvr::bgp
