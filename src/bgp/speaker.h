// A BGP speaker: one per AS, running on the simulated network.
//
// Implements the path-vector protocol with per-neighbor Adj-RIB-In, the
// standard decision process, Gao–Rexford local-pref assignment by business
// relationship, valley-free export filtering, and import/export policies.
// Subclasses (the PVR speaker) hook `after_decision` / `transform_export`
// to piggyback commitments and evidence on the routing protocol.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "bgp/decision.h"
#include "bgp/messages.h"
#include "bgp/policy.h"
#include "bgp/topology.h"
#include "net/simulator.h"

namespace pvr::bgp {

struct SpeakerConfig {
  AsNumber asn = 0;
  const AsGraph* graph = nullptr;  // not owned; must outlive the speaker
  RoutePolicy import_policy;
  RoutePolicy export_policy;
  std::vector<Ipv4Prefix> originated;
  // Gao–Rexford import preferences by relationship.
  std::uint32_t customer_local_pref = 200;
  std::uint32_t peer_local_pref = 150;
  std::uint32_t provider_local_pref = 100;
};

class BgpSpeaker : public net::Node {
 public:
  explicit BgpSpeaker(SpeakerConfig config);

  void on_start(net::Transport& sim) override;
  void on_message(net::Transport& sim, const net::Message& message) override;

  [[nodiscard]] AsNumber asn() const noexcept { return config_.asn; }
  // Current best route for a prefix, if any.
  [[nodiscard]] std::optional<Route> best(const Ipv4Prefix& prefix) const;
  // All candidate routes currently in Adj-RIB-In for a prefix.
  [[nodiscard]] std::vector<Route> candidates(const Ipv4Prefix& prefix) const;
  [[nodiscard]] std::vector<Ipv4Prefix> known_prefixes() const;
  [[nodiscard]] std::uint64_t updates_received() const noexcept {
    return updates_received_;
  }
  [[nodiscard]] std::uint64_t updates_sent() const noexcept {
    return updates_sent_;
  }

 protected:
  // Hook: called after the decision process ran for `prefix`.
  virtual void after_decision(net::Transport& sim, const Ipv4Prefix& prefix,
                              const std::vector<Route>& candidates,
                              const std::optional<Route>& chosen) {
    (void)sim; (void)prefix; (void)candidates; (void)chosen;
  }
  // Hook: last-chance rewrite of an outgoing route (Byzantine subclasses
  // use this to violate promises). Returning nullopt suppresses the export.
  virtual std::optional<Route> transform_export(AsNumber to, Route route) {
    (void)to;
    return route;
  }

  [[nodiscard]] const SpeakerConfig& config() const noexcept { return config_; }

 private:
  void handle_update(net::Transport& sim, AsNumber from, const BgpUpdate& update);
  void run_decision(net::Transport& sim, const Ipv4Prefix& prefix);
  void export_route(net::Transport& sim, const Ipv4Prefix& prefix,
                    const std::optional<Route>& chosen, AsNumber learned_from);
  void send_update(net::Transport& sim, AsNumber to, const BgpUpdate& update);
  [[nodiscard]] std::uint32_t local_pref_for(AsNumber neighbor) const;

  SpeakerConfig config_;
  // Adj-RIB-In: prefix -> (neighbor -> route as imported).
  std::map<Ipv4Prefix, std::map<AsNumber, Route>> rib_in_;
  // Loc-RIB: chosen route per prefix (absent = no route).
  std::map<Ipv4Prefix, Route> loc_rib_;
  // What we last advertised to each neighbor, to suppress duplicate updates.
  std::map<std::pair<AsNumber, Ipv4Prefix>, std::optional<Route>> adj_rib_out_;
  std::uint64_t updates_received_ = 0;
  std::uint64_t updates_sent_ = 0;
};

}  // namespace pvr::bgp
