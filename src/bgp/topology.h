// AS-level topologies with business relationships.
//
// PVR promises ("partial transit", "shortest route from these peers") only
// make sense against the customer/provider/peer structure of the Internet;
// we generate synthetic Gao–Rexford topologies (DESIGN.md §5) plus the star
// topology of the paper's Figure 1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bgp/as_path.h"
#include "crypto/drbg.h"

namespace pvr::bgp {

// Relationship of an AS to a specific neighbor, from the AS's viewpoint.
enum class Relationship : std::uint8_t {
  kCustomer = 0,  // the neighbor pays us
  kProvider = 1,  // we pay the neighbor
  kPeer = 2,      // settlement-free
};

[[nodiscard]] constexpr Relationship reverse(Relationship r) noexcept {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

// Gao–Rexford export rule: a route learned from `learned_from` may be
// exported to `to` iff at least one of the two is a customer. (Routes from
// providers/peers go only to customers; customer routes go to everyone.)
[[nodiscard]] constexpr bool valley_free_exportable(Relationship learned_from,
                                                    Relationship to) noexcept {
  return learned_from == Relationship::kCustomer || to == Relationship::kCustomer;
}

class AsGraph {
 public:
  void add_as(AsNumber asn);
  // Adds a link; `relationship` is from a's viewpoint (e.g. kCustomer means
  // b is a's customer). Throws std::invalid_argument on self-links or
  // unknown ASes.
  void add_link(AsNumber a, AsNumber b, Relationship relationship);

  [[nodiscard]] bool has_as(AsNumber asn) const noexcept;
  [[nodiscard]] std::size_t as_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept;
  [[nodiscard]] std::vector<AsNumber> as_numbers() const;
  [[nodiscard]] std::vector<AsNumber> neighbors(AsNumber asn) const;
  // Relationship of `asn` to `neighbor` (from asn's viewpoint).
  [[nodiscard]] std::optional<Relationship> relationship(AsNumber asn,
                                                         AsNumber neighbor) const;
  [[nodiscard]] std::vector<AsNumber> customers_of(AsNumber asn) const;
  [[nodiscard]] std::vector<AsNumber> providers_of(AsNumber asn) const;
  [[nodiscard]] std::vector<AsNumber> peers_of(AsNumber asn) const;

 private:
  std::map<AsNumber, std::map<AsNumber, Relationship>> adjacency_;
};

struct GaoRexfordParams {
  std::size_t as_count = 100;
  std::size_t tier1_count = 5;          // fully-meshed clique of peers
  double extra_provider_probability = 0.3;  // multihoming knob
  double peer_probability = 0.05;       // lateral peering between same tier
};

// Generates a connected hierarchy: tier-1 clique, then each subsequent AS
// attaches to 1+ providers chosen among earlier ASes (preferential by
// degree), with optional lateral peering. Deterministic in (params, rng).
[[nodiscard]] AsGraph generate_gao_rexford(const GaoRexfordParams& params,
                                           crypto::Drbg& rng);

// The paper's Figure 1: AS `center` with provider-of-record neighbors
// N1..Nk (customers of center in the transit sense) and customer B.
// Returned graph: center has k neighbors n_base..n_base+k-1 (center's
// providers) and one customer b.
[[nodiscard]] AsGraph make_star_topology(AsNumber center, AsNumber b,
                                         AsNumber n_base, std::size_t k);

}  // namespace pvr::bgp
