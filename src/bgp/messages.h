// BGP wire messages exchanged over the simulated network.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.h"
#include "crypto/encoding.h"

namespace pvr::bgp {

inline constexpr const char* kUpdateChannel = "bgp.update";

// A single-prefix UPDATE: either an announcement carrying a route or a
// withdrawal of a previously announced prefix.
struct BgpUpdate {
  bool withdraw = false;
  Ipv4Prefix prefix;            // always set
  std::optional<Route> route;   // set iff !withdraw

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static BgpUpdate decode(std::span<const std::uint8_t> payload);
};

}  // namespace pvr::bgp
