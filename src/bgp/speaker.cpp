#include "bgp/speaker.h"

#include <stdexcept>

namespace pvr::bgp {

BgpSpeaker::BgpSpeaker(SpeakerConfig config) : config_(std::move(config)) {
  if (config_.graph == nullptr) {
    throw std::invalid_argument("BgpSpeaker: null topology");
  }
  if (!config_.graph->has_as(config_.asn)) {
    throw std::invalid_argument("BgpSpeaker: ASN not in topology");
  }
}

std::uint32_t BgpSpeaker::local_pref_for(AsNumber neighbor) const {
  const auto rel = config_.graph->relationship(config_.asn, neighbor);
  if (!rel) return config_.provider_local_pref;
  switch (*rel) {
    case Relationship::kCustomer: return config_.customer_local_pref;
    case Relationship::kPeer: return config_.peer_local_pref;
    case Relationship::kProvider: return config_.provider_local_pref;
  }
  return config_.provider_local_pref;
}

void BgpSpeaker::on_start(net::Transport& sim) {
  for (const Ipv4Prefix& prefix : config_.originated) {
    Route route{
        .prefix = prefix,
        .path = AsPath{},  // empty at origin; prepended on export
        .next_hop = config_.asn,
        .local_pref = 0,
        .med = 0,
        .origin = Origin::kIgp,
        .communities = {},
    };
    loc_rib_[prefix] = route;
    export_route(sim, prefix, route, /*learned_from=*/config_.asn);
  }
}

void BgpSpeaker::on_message(net::Transport& sim, const net::Message& message) {
  if (message.channel != kUpdateChannel) return;  // not ours (PVR channels)
  ++updates_received_;
  const BgpUpdate update = BgpUpdate::decode(message.payload);
  handle_update(sim, message.from, update);
}

void BgpSpeaker::handle_update(net::Transport& sim, AsNumber from,
                               const BgpUpdate& update) {
  if (update.withdraw) {
    auto it = rib_in_.find(update.prefix);
    if (it == rib_in_.end() || it->second.erase(from) == 0) return;
    run_decision(sim, update.prefix);
    return;
  }

  Route route = *update.route;
  // Loop prevention: discard routes that already carry our ASN.
  if (route.path.contains(config_.asn)) return;
  // Sanity: the first hop must be the sending neighbor.
  if (route.path.empty() || route.path.first() != from) return;

  route.next_hop = from;
  route.local_pref = local_pref_for(from);

  const auto imported = config_.import_policy.evaluate(route, from);
  if (!imported) {
    // Rejected by policy: an implicit withdraw of any previous route.
    auto it = rib_in_.find(update.prefix);
    if (it != rib_in_.end() && it->second.erase(from) > 0) {
      run_decision(sim, update.prefix);
    }
    return;
  }

  rib_in_[update.prefix][from] = *imported;
  run_decision(sim, update.prefix);
}

void BgpSpeaker::run_decision(net::Transport& sim, const Ipv4Prefix& prefix) {
  // Originated prefixes never change their loc-RIB entry.
  for (const Ipv4Prefix& originated : config_.originated) {
    if (originated == prefix) return;
  }

  const std::vector<Route> candidate_routes = candidates(prefix);
  const std::optional<Route> chosen = best_route(candidate_routes);

  const auto current = loc_rib_.find(prefix);
  const bool unchanged =
      (chosen.has_value() && current != loc_rib_.end() &&
       current->second == *chosen) ||
      (!chosen.has_value() && current == loc_rib_.end());

  after_decision(sim, prefix, candidate_routes, chosen);

  if (unchanged) return;
  AsNumber learned_from = config_.asn;
  if (chosen) {
    loc_rib_[prefix] = *chosen;
    learned_from = chosen->next_hop;
  } else {
    loc_rib_.erase(prefix);
  }
  export_route(sim, prefix, chosen, learned_from);
}

void BgpSpeaker::export_route(net::Transport& sim, const Ipv4Prefix& prefix,
                              const std::optional<Route>& chosen,
                              AsNumber learned_from) {
  const bool originated_here = learned_from == config_.asn;
  const auto rel_learned = originated_here
                               ? Relationship::kCustomer  // own prefix: export to all
                               : config_.graph->relationship(config_.asn, learned_from)
                                     .value_or(Relationship::kProvider);

  for (const AsNumber neighbor : config_.graph->neighbors(config_.asn)) {
    if (neighbor == learned_from) continue;  // split horizon
    const auto rel_to =
        config_.graph->relationship(config_.asn, neighbor).value();

    std::optional<Route> to_send;
    if (chosen && valley_free_exportable(rel_learned, rel_to)) {
      Route exported = *chosen;
      exported.path = exported.path.prepended(config_.asn);
      exported.next_hop = config_.asn;
      exported.local_pref = 0;  // local-pref is not carried across eBGP
      const auto filtered = config_.export_policy.evaluate(exported, neighbor);
      if (filtered) to_send = transform_export(neighbor, *filtered);
    }

    const auto key = std::pair{neighbor, prefix};
    const auto previous = adj_rib_out_.find(key);
    const bool had_previous =
        previous != adj_rib_out_.end() && previous->second.has_value();

    if (to_send) {
      if (had_previous && *previous->second == *to_send) continue;
      adj_rib_out_[key] = to_send;
      send_update(sim, neighbor,
                  BgpUpdate{.withdraw = false, .prefix = prefix, .route = to_send});
    } else if (had_previous) {
      adj_rib_out_[key] = std::nullopt;
      send_update(sim, neighbor,
                  BgpUpdate{.withdraw = true, .prefix = prefix, .route = {}});
    }
  }
}

void BgpSpeaker::send_update(net::Transport& sim, AsNumber to,
                             const BgpUpdate& update) {
  ++updates_sent_;
  sim.send({.from = config_.asn,
            .to = to,
            .channel = kUpdateChannel,
            .payload = update.encode()});
}

std::optional<Route> BgpSpeaker::best(const Ipv4Prefix& prefix) const {
  const auto it = loc_rib_.find(prefix);
  if (it == loc_rib_.end()) return std::nullopt;
  return it->second;
}

std::vector<Route> BgpSpeaker::candidates(const Ipv4Prefix& prefix) const {
  std::vector<Route> out;
  const auto it = rib_in_.find(prefix);
  if (it == rib_in_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [neighbor, route] : it->second) out.push_back(route);
  return out;
}

std::vector<Ipv4Prefix> BgpSpeaker::known_prefixes() const {
  std::vector<Ipv4Prefix> out;
  for (const auto& [prefix, route] : loc_rib_) out.push_back(prefix);
  return out;
}

}  // namespace pvr::bgp
