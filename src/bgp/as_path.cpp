#include "bgp/as_path.h"

#include <algorithm>
#include <stdexcept>

namespace pvr::bgp {

AsPath AsPath::prepended(AsNumber asn) const {
  std::vector<AsNumber> hops;
  hops.reserve(hops_.size() + 1);
  hops.push_back(asn);
  hops.insert(hops.end(), hops_.begin(), hops_.end());
  return AsPath(std::move(hops));
}

bool AsPath::contains(AsNumber asn) const noexcept {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

AsNumber AsPath::first() const {
  if (hops_.empty()) throw std::logic_error("AsPath::first: empty path");
  return hops_.front();
}

AsNumber AsPath::origin() const {
  if (hops_.empty()) throw std::logic_error("AsPath::origin: empty path");
  return hops_.back();
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += std::to_string(hops_[i]);
  }
  return out;
}

void AsPath::encode(crypto::ByteWriter& writer) const {
  writer.put_u16(static_cast<std::uint16_t>(hops_.size()));
  for (const AsNumber hop : hops_) writer.put_u32(hop);
}

AsPath AsPath::decode(crypto::ByteReader& reader) {
  const std::uint16_t count = reader.get_u16();
  std::vector<AsNumber> hops;
  hops.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) hops.push_back(reader.get_u32());
  return AsPath(std::move(hops));
}

}  // namespace pvr::bgp
