// AS paths: the sequence of autonomous systems a route announcement has
// traversed. Path length drives both the BGP decision process and the
// "shortest route" promises PVR verifies (paper §2, §3.3).
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "crypto/encoding.h"

namespace pvr::bgp {

using AsNumber = std::uint32_t;

class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<AsNumber> hops) : hops_(hops) {}
  explicit AsPath(std::vector<AsNumber> hops) : hops_(std::move(hops)) {}

  // Returns a copy with `asn` prepended (the BGP export operation).
  [[nodiscard]] AsPath prepended(AsNumber asn) const;

  [[nodiscard]] std::size_t length() const noexcept { return hops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] bool contains(AsNumber asn) const noexcept;
  // First hop = the neighbor that sent the announcement.
  [[nodiscard]] AsNumber first() const;
  // Last hop = the origin AS.
  [[nodiscard]] AsNumber origin() const;
  [[nodiscard]] const std::vector<AsNumber>& hops() const noexcept { return hops_; }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] auto operator<=>(const AsPath&) const noexcept = default;

  void encode(crypto::ByteWriter& writer) const;
  [[nodiscard]] static AsPath decode(crypto::ByteReader& reader);

 private:
  std::vector<AsNumber> hops_;
};

}  // namespace pvr::bgp
