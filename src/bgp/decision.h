// The standard BGP decision process.
//
// Paper §2.1 models route selection as a pipeline of operators, "one for
// each attribute"; this module is the reference (unverified) pipeline that
// a speaker actually runs, and the thing PVR promises are judged against.
#pragma once

#include <optional>
#include <span>

#include "bgp/route.h"

namespace pvr::bgp {

// Total preference order used to pick the best route:
//   1. highest local_pref
//   2. shortest AS path
//   3. lowest origin (IGP < EGP < INCOMPLETE)
//   4. lowest MED (compared across all candidates here; the simulator has
//      no IGP metric, so always-compare-MED is the deterministic choice)
//   5. lowest next_hop AS number (final deterministic tiebreak)
// Returns true if `a` is strictly preferred over `b`.
[[nodiscard]] bool better_route(const Route& a, const Route& b) noexcept;

// Applies the decision process to a candidate set. Empty input -> nullopt.
[[nodiscard]] std::optional<Route> best_route(std::span<const Route> candidates);

// The index of the winner (for verification code that needs provenance).
[[nodiscard]] std::optional<std::size_t> best_route_index(
    std::span<const Route> candidates);

}  // namespace pvr::bgp
