#include "bgp/policy.h"

#include <algorithm>

namespace pvr::bgp {

bool PolicyMatch::matches(const Route& route, AsNumber session_peer) const {
  if (prefix && !prefix->covers(route.prefix)) return false;
  if (neighbor && *neighbor != session_peer) return false;
  if (as_in_path && !route.path.contains(*as_in_path)) return false;
  if (community && !route.has_community(*community)) return false;
  if (max_path_length && route.path.length() > *max_path_length) return false;
  return true;
}

Route PolicyAction::apply(Route route) const {
  if (set_local_pref) route.local_pref = *set_local_pref;
  if (set_med) route.med = *set_med;
  for (const Community c : add_communities) {
    if (!route.has_community(c)) route.communities.push_back(c);
  }
  for (const Community c : strip_communities) {
    route.communities.erase(
        std::remove(route.communities.begin(), route.communities.end(), c),
        route.communities.end());
  }
  return route;
}

std::optional<Route> RoutePolicy::evaluate(const Route& route,
                                           AsNumber session_peer) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.match.matches(route, session_peer)) {
      if (rule.action.verdict == PolicyVerdict::kReject) return std::nullopt;
      return rule.action.apply(route);
    }
  }
  if (default_verdict_ == PolicyVerdict::kReject) return std::nullopt;
  return route;
}

}  // namespace pvr::bgp
