// Router configuration policy: match/action rules applied on import and
// export. This is the concrete "language of router configurations" the
// paper contrasts with promises (§2): an AS has a single configuration but
// may make different (over-approximating) promises about it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route.h"

namespace pvr::bgp {

// Which routes a rule applies to. All set fields must match (conjunction).
struct PolicyMatch {
  std::optional<Ipv4Prefix> prefix;          // exact-or-covered match
  std::optional<AsNumber> neighbor;          // session peer the route crosses
  std::optional<AsNumber> as_in_path;        // AS appears anywhere in path
  std::optional<Community> community;        // community present
  std::optional<std::size_t> max_path_length;

  [[nodiscard]] bool matches(const Route& route, AsNumber session_peer) const;
};

enum class PolicyVerdict : std::uint8_t { kAccept, kReject };

struct PolicyAction {
  PolicyVerdict verdict = PolicyVerdict::kAccept;
  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  std::vector<Community> add_communities;
  std::vector<Community> strip_communities;

  // Applies attribute rewrites (only meaningful for kAccept).
  [[nodiscard]] Route apply(Route route) const;
};

struct PolicyRule {
  std::string name;  // for diagnostics and route-flow-graph labels
  PolicyMatch match;
  PolicyAction action;
};

// An ordered rule list with first-match semantics and a default verdict.
class RoutePolicy {
 public:
  RoutePolicy() = default;
  explicit RoutePolicy(std::vector<PolicyRule> rules,
                       PolicyVerdict default_verdict = PolicyVerdict::kAccept)
      : rules_(std::move(rules)), default_verdict_(default_verdict) {}

  // Returns the transformed route, or nullopt if rejected.
  [[nodiscard]] std::optional<Route> evaluate(const Route& route,
                                              AsNumber session_peer) const;

  [[nodiscard]] const std::vector<PolicyRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] PolicyVerdict default_verdict() const noexcept {
    return default_verdict_;
  }

 private:
  std::vector<PolicyRule> rules_;
  PolicyVerdict default_verdict_ = PolicyVerdict::kAccept;
};

}  // namespace pvr::bgp
