#include "bgp/decision.h"

namespace pvr::bgp {

bool better_route(const Route& a, const Route& b) noexcept {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  if (a.path.length() != b.path.length()) return a.path.length() < b.path.length();
  if (a.origin != b.origin) return a.origin < b.origin;
  if (a.med != b.med) return a.med < b.med;
  return a.next_hop < b.next_hop;
}

std::optional<std::size_t> best_route_index(std::span<const Route> candidates) {
  if (candidates.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (better_route(candidates[i], candidates[best])) best = i;
  }
  return best;
}

std::optional<Route> best_route(std::span<const Route> candidates) {
  const auto index = best_route_index(candidates);
  if (!index) return std::nullopt;
  return candidates[*index];
}

}  // namespace pvr::bgp
