#include "bgp/route.h"

#include <algorithm>
#include <stdexcept>

namespace pvr::bgp {

bool Route::has_community(Community c) const noexcept {
  return std::find(communities.begin(), communities.end(), c) !=
         communities.end();
}

std::string Route::to_string() const {
  std::string out = prefix.to_string();
  out += " via [";
  out += path.to_string();
  out += "] lp=";
  out += std::to_string(local_pref);
  return out;
}

void Route::encode(crypto::ByteWriter& writer) const {
  prefix.encode(writer);
  path.encode(writer);
  writer.put_u32(next_hop);
  writer.put_u32(local_pref);
  writer.put_u32(med);
  writer.put_u8(static_cast<std::uint8_t>(origin));
  writer.put_u16(static_cast<std::uint16_t>(communities.size()));
  for (const Community c : communities) writer.put_u32(c);
}

Route Route::decode(crypto::ByteReader& reader) {
  Route route;
  route.prefix = Ipv4Prefix::decode(reader);
  route.path = AsPath::decode(reader);
  route.next_hop = reader.get_u32();
  route.local_pref = reader.get_u32();
  route.med = reader.get_u32();
  const std::uint8_t origin = reader.get_u8();
  if (origin > 2) throw std::out_of_range("Route::decode: bad origin");
  route.origin = static_cast<Origin>(origin);
  const std::uint16_t n_communities = reader.get_u16();
  route.communities.reserve(n_communities);
  for (std::uint16_t i = 0; i < n_communities; ++i) {
    route.communities.push_back(reader.get_u32());
  }
  return route;
}

std::vector<std::uint8_t> Route::canonical_bytes() const {
  crypto::ByteWriter writer;
  encode(writer);
  return writer.take();
}

crypto::Digest Route::digest() const {
  return crypto::sha256(canonical_bytes());
}

}  // namespace pvr::bgp
