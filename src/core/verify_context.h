// Shared signature-verification context: per-key Montgomery precompute
// plus an optional world-level verified-signature cache.
//
// PR 5 deduplicated re-VERIFIED roots per node (PvrNode::seen_roots_, one
// node skipping its own repeat work). This hoists the idea to a
// world-level service: ONE VerifyContext shared by every node, the engine,
// and the batch verifier, so
//
//   - each public key's MontgomeryCtx (crypto/montgomery.h) is built once
//     for the whole world instead of once per rsa_verify call, and
//   - with the verdict cache enabled, a signed root or bundle relayed
//     through k peers costs ONE RSA exponentiation total — every later
//     node's verify is a digest lookup returning the identical verdict.
//
// Determinism (DESIGN.md §15): a cache hit returns exactly the verdict the
// skipped exponentiation would have computed (verification is a pure
// function of the message bytes), so evidence, fingerprints, and report
// bytes are identical with the cache on or off, at any worker count.
// Only the COUNT of exponentiations becomes schedule-shaped — which is why
// crypto.rsa_verifies and crypto.world_cache_hits live in obs Domain::
// kSched, outside the SIM fingerprint. Hash work stays deterministic: the
// structural screen + EMSA encoding and the cache digest are computed on
// every call, hit or miss; only the exponentiation is elided.
//
// Threading: verify() and verify_key() are const and fully synchronized
// (shared_mutex around each map); engine workers, the simulation thread,
// and the scenario scoring pass may all use one context concurrently.
#pragma once

#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "core/keys.h"
#include "crypto/sha256.h"

namespace pvr::core {

class VerifyContext {
 public:
  // Borrows `directory` (which must outlive the context). Keys added to
  // the directory later are still found — per-key state is built lazily —
  // but replacing an existing key after its first use is not supported.
  explicit VerifyContext(const KeyDirectory* directory,
                         bool cache_verdicts = false);

  [[nodiscard]] const KeyDirectory& directory() const noexcept {
    return *directory_;
  }
  [[nodiscard]] bool caches_verdicts() const noexcept {
    return cache_verdicts_;
  }

  // Returns EXACTLY what core::verify_message(directory, message) returns.
  [[nodiscard]] bool verify(const SignedMessage& message) const;

  // The shared per-key verifier for `signer` (built on first use), or
  // nullptr when the directory has no key for it. The pointer stays valid
  // for the context's lifetime.
  [[nodiscard]] const crypto::RsaVerifyKey* verify_key(
      bgp::AsNumber signer) const;

  // Verdict-cache size (0 when caching is off) — exposed for tests and the
  // scenario report's memory accounting.
  [[nodiscard]] std::size_t cached_verdicts() const;

 private:
  struct DigestHash {
    [[nodiscard]] std::size_t operator()(const crypto::Digest& d) const {
      // SHA-256 output is uniform; the first 8 bytes are a perfect hash.
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(h); ++i) {
        h = (h << 8) | d[i];
      }
      return h;
    }
  };

  const KeyDirectory* directory_;  // not owned
  bool cache_verdicts_;

  mutable std::shared_mutex keys_mu_;
  mutable std::unordered_map<bgp::AsNumber,
                             std::unique_ptr<crypto::RsaVerifyKey>>
      keys_;

  mutable std::shared_mutex verdicts_mu_;
  mutable std::unordered_map<crypto::Digest, bool, DigestHash> verdicts_;
};

}  // namespace pvr::core
