// Promises (paper §2): contracts about the route decision process.
//
// "These promises can be understood as specifying, for each set of input
// routes the AS might receive, some set of permissible routes that its
// output must be drawn from. A violation occurs whenever an AS emits a
// route that was not in its permitted set, given the inputs it had
// received."
//
// This module gives promises a semantic definition (`holds`, the ground
// truth used by tests and by the detection-rate experiment E7) and a static
// structural check against a route-flow graph (§2.2: "a network may be able
// to tell, given the rules to which it has access, whether particular
// promises made to it will be kept").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "bgp/route.h"
#include "rfg/access_control.h"
#include "rfg/graph.h"

namespace pvr::core {

enum class PromiseType : std::uint8_t {
  // §2 promise 1: "I will give you the shortest route I receive."
  kShortestOfAll = 0,
  // §2 promise 2: "...out of those received from a specific subset."
  kShortestOfSubset = 1,
  // §2 promise 3: "a route no more than k hops longer than my best route."
  kWithinSlackOfBest = 2,
  // §2 promise 4: "The route you get is no longer than what I tell
  // anybody else."
  kNoLongerThanOthers = 3,
  // §3.2: "I will export a route whenever at least one of the Ni provides
  // one" (the existential promise).
  kExistentialFromSubset = 4,
  // §3.5 / Fig. 2: "I will export some route via N2..Nk unless N1 provides
  // a shorter route."
  kFallbackUnlessPrimaryShorter = 5,
};

struct Promise {
  PromiseType type = PromiseType::kShortestOfAll;
  // Providers the promise ranges over (all promises except kShortestOfAll).
  std::set<bgp::AsNumber> subset;
  // kFallbackUnlessPrimaryShorter: the preferred neighbor (N1 in Fig. 2).
  bgp::AsNumber primary = 0;
  // kWithinSlackOfBest: the allowed extra hops.
  std::size_t slack = 0;

  // Inputs an AS received, keyed by providing neighbor (absent optional =
  // the neighbor provided nothing this epoch).
  using Inputs = std::map<bgp::AsNumber, std::optional<bgp::Route>>;

  // Semantic ground truth: does exporting `output` honor this promise given
  // `inputs`? For kNoLongerThanOthers, `other_outputs` carries what was
  // exported to every other neighbor.
  [[nodiscard]] bool holds(
      const Inputs& inputs, const std::optional<bgp::Route>& output,
      const std::map<bgp::AsNumber, std::optional<bgp::Route>>& other_outputs = {})
      const;

  [[nodiscard]] std::string to_string() const;
};

// §2.2 static inspection: would this route-flow graph, if evaluated
// faithfully, satisfy the promise? Conservative: returns true only for
// graph shapes it can positively recognize.
[[nodiscard]] bool graph_implements_promise(const rfg::RouteFlowGraph& graph,
                                            const Promise& promise);

// §4 "Minimum access": are the access rights granted to the verifying
// neighbors sufficient to verify the promise? For the protocols in this
// repo that means: every provider in the promise's range can see its own
// input variable, the output recipient can see the output variable, and
// all of them can see the deciding operator.
[[nodiscard]] bool access_sufficient_for(const rfg::RouteFlowGraph& graph,
                                         const rfg::AccessPolicy& policy,
                                         const Promise& promise,
                                         bgp::AsNumber recipient);

}  // namespace pvr::core
