#include "core/graph_commitment.h"

#include <stdexcept>

#include "crypto/encoding.h"

namespace pvr::core {

crypto::Digest VertexRecord::leaf_value() const {
  crypto::Sha256 hasher;
  const std::uint8_t tag = 0x10;
  hasher.update(std::span(&tag, 1));
  hasher.update(std::span(predecessors.digest.data(), predecessors.digest.size()));
  hasher.update(std::span(successors.digest.data(), successors.digest.size()));
  hasher.update(std::span(payload.digest.data(), payload.digest.size()));
  return hasher.finalize();
}

std::vector<std::uint8_t> encode_variable_payload(const rfg::Value& value) {
  crypto::ByteWriter writer;
  writer.put_string("payload.var");
  writer.put_bool(value.has_value());
  if (value.has_value()) value->encode(writer);
  return writer.take();
}

std::optional<rfg::Value> decode_variable_payload(
    std::span<const std::uint8_t> data) {
  try {
    crypto::ByteReader reader(data);
    if (reader.get_string() != "payload.var") return std::nullopt;
    if (!reader.get_bool()) return rfg::Value{};
    return rfg::Value{bgp::Route::decode(reader)};
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_operator_payload(const rfg::Operator& op) {
  crypto::ByteWriter writer;
  writer.put_string("payload.op");
  writer.put_string(op.descriptor());
  return writer.take();
}

std::optional<std::string> decode_operator_payload(
    std::span<const std::uint8_t> data) {
  try {
    crypto::ByteReader reader(data);
    if (reader.get_string() != "payload.op") return std::nullopt;
    return reader.get_string();
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_id_list(const std::vector<rfg::VertexId>& ids) {
  crypto::ByteWriter writer;
  writer.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const rfg::VertexId& id : ids) writer.put_string(id);
  return writer.take();
}

std::optional<std::vector<rfg::VertexId>> decode_id_list(
    std::span<const std::uint8_t> data) {
  try {
    crypto::ByteReader reader(data);
    const std::uint32_t count = reader.get_u32();
    if (count > 65536) return std::nullopt;
    std::vector<rfg::VertexId> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(reader.get_string());
    return out;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

GraphCommitment::GraphCommitment(
    const rfg::RouteFlowGraph& graph,
    const std::map<rfg::VertexId, rfg::Value>& values, crypto::Drbg& rng)
    : tree_(rng.bytes(32)) {
  auto commit_vertex = [&](const rfg::VertexId& id,
                           std::vector<std::uint8_t> payload_bytes) {
    const auto pred_bytes = encode_id_list(graph.predecessors(id));
    const auto succ_bytes = encode_id_list(graph.successors(id));
    auto [pred_c, pred_o] = crypto::commit(pred_bytes, rng);
    auto [succ_c, succ_o] = crypto::commit(succ_bytes, rng);
    auto [payload_c, payload_o] = crypto::commit(payload_bytes, rng);
    VertexSecrets secrets{
        .record = {.predecessors = pred_c, .successors = succ_c, .payload = payload_c},
        .predecessors = std::move(pred_o),
        .successors = std::move(succ_o),
        .payload = std::move(payload_o),
    };
    tree_.insert(crypto::SparseMerkleTree::key_for_label(id),
                 secrets.record.leaf_value());
    secrets_.emplace(id, std::move(secrets));
  };

  for (const rfg::VertexId& id : graph.variable_ids()) {
    const auto it = values.find(id);
    commit_vertex(id, encode_variable_payload(
                          it == values.end() ? rfg::Value{} : it->second));
  }
  for (const rfg::VertexId& id : graph.operator_ids()) {
    commit_vertex(id, encode_operator_payload(*graph.operator_vertex(id).op));
  }
  root_ = tree_.root();
}

VertexDisclosure GraphCommitment::disclose(const rfg::VertexId& id,
                                           bgp::AsNumber viewer,
                                           const rfg::AccessPolicy& policy) const {
  const auto it = secrets_.find(id);
  if (it == secrets_.end()) {
    throw std::out_of_range("GraphCommitment::disclose: unknown vertex " + id);
  }
  VertexDisclosure out{
      .vertex = id,
      .record = it->second.record,
      .proof = tree_.prove(crypto::SparseMerkleTree::key_for_label(id)),
      .predecessors_opening = {},
      .successors_opening = {},
      .payload_opening = {},
  };
  if (policy.allowed(viewer, id, rfg::Component::kPredecessors)) {
    out.predecessors_opening = it->second.predecessors;
  }
  if (policy.allowed(viewer, id, rfg::Component::kSuccessors)) {
    out.successors_opening = it->second.successors;
  }
  if (policy.allowed(viewer, id, rfg::Component::kPayload)) {
    out.payload_opening = it->second.payload;
  }
  return out;
}

VertexDisclosure GraphCommitment::disclose_full(const rfg::VertexId& id) const {
  const auto it = secrets_.find(id);
  if (it == secrets_.end()) {
    throw std::out_of_range("GraphCommitment::disclose_full: unknown vertex " + id);
  }
  return VertexDisclosure{
      .vertex = id,
      .record = it->second.record,
      .proof = tree_.prove(crypto::SparseMerkleTree::key_for_label(id)),
      .predecessors_opening = it->second.predecessors,
      .successors_opening = it->second.successors,
      .payload_opening = it->second.payload,
  };
}

bool verify_vertex_disclosure(const crypto::Digest& root,
                              const VertexDisclosure& disclosure) {
  // The proof's key must be the hash of the claimed vertex label.
  if (disclosure.proof.key !=
      crypto::SparseMerkleTree::key_for_label(disclosure.vertex)) {
    return false;
  }
  if (!crypto::SparseMerkleTree::verify(root, disclosure.record.leaf_value(),
                                        disclosure.proof)) {
    return false;
  }
  if (disclosure.predecessors_opening &&
      !crypto::verify_commitment(disclosure.record.predecessors,
                                 *disclosure.predecessors_opening)) {
    return false;
  }
  if (disclosure.successors_opening &&
      !crypto::verify_commitment(disclosure.record.successors,
                                 *disclosure.successors_opening)) {
    return false;
  }
  if (disclosure.payload_opening &&
      !crypto::verify_commitment(disclosure.record.payload,
                                 *disclosure.payload_opening)) {
    return false;
  }
  return true;
}

bool DisclosedGraph::add(const crypto::Digest& root,
                         const VertexDisclosure& disclosure) {
  if (!verify_vertex_disclosure(root, disclosure)) return false;
  vertices_[disclosure.vertex] = Disclosed{.disclosure = disclosure};
  return true;
}

bool DisclosedGraph::has(const rfg::VertexId& id) const {
  return vertices_.contains(id);
}

std::optional<rfg::Value> DisclosedGraph::variable_value(
    const rfg::VertexId& id) const {
  const auto it = vertices_.find(id);
  if (it == vertices_.end() || !it->second.disclosure.payload_opening) {
    return std::nullopt;
  }
  return decode_variable_payload(it->second.disclosure.payload_opening->value);
}

std::optional<std::string> DisclosedGraph::operator_descriptor(
    const rfg::VertexId& id) const {
  const auto it = vertices_.find(id);
  if (it == vertices_.end() || !it->second.disclosure.payload_opening) {
    return std::nullopt;
  }
  return decode_operator_payload(it->second.disclosure.payload_opening->value);
}

std::optional<std::vector<rfg::VertexId>> DisclosedGraph::predecessors(
    const rfg::VertexId& id) const {
  const auto it = vertices_.find(id);
  if (it == vertices_.end() || !it->second.disclosure.predecessors_opening) {
    return std::nullopt;
  }
  return decode_id_list(it->second.disclosure.predecessors_opening->value);
}

namespace {

// Reconstructs a variable vertex from the canonical label conventions.
[[nodiscard]] std::optional<rfg::VariableVertex> variable_from_label(
    const rfg::VertexId& id) {
  if (id == rfg::kOutputVariableId) {
    return rfg::VariableVertex{
        .id = id, .role = rfg::VariableRole::kOutput, .neighbor = 0};
  }
  constexpr std::string_view kInputPrefix = "var:r";
  if (id.starts_with(kInputPrefix) && id.size() > kInputPrefix.size()) {
    bgp::AsNumber neighbor = 0;
    for (std::size_t i = kInputPrefix.size(); i < id.size(); ++i) {
      if (id[i] < '0' || id[i] > '9') {
        return rfg::VariableVertex{.id = id, .role = rfg::VariableRole::kInternal};
      }
      neighbor = neighbor * 10 + static_cast<bgp::AsNumber>(id[i] - '0');
    }
    return rfg::VariableVertex{
        .id = id, .role = rfg::VariableRole::kInput, .neighbor = neighbor};
  }
  if (id.starts_with("var:")) {
    return rfg::VariableVertex{.id = id, .role = rfg::VariableRole::kInternal};
  }
  return std::nullopt;
}

}  // namespace

bool DisclosedGraph::implements_promise(const Promise& promise,
                                        bgp::AsNumber recipient) const {
  (void)recipient;
  // Rebuild the visible structure as an rfg graph. Everything referenced
  // must have been disclosed with at least structure + operator payloads.
  rfg::RouteFlowGraph rebuilt;
  std::vector<std::pair<rfg::VertexId, rfg::OperatorVertex>> pending_ops;

  for (const auto& [id, entry] : vertices_) {
    const auto& disclosure = entry.disclosure;
    if (const auto variable = variable_from_label(id)) {
      rebuilt.add_variable(*variable);
      continue;
    }
    // Operator vertex: needs payload (descriptor) + predecessor/successor
    // structure to rebuild the wiring.
    if (!disclosure.payload_opening || !disclosure.predecessors_opening ||
        !disclosure.successors_opening) {
      return false;
    }
    const auto descriptor =
        decode_operator_payload(disclosure.payload_opening->value);
    const auto operands = decode_id_list(disclosure.predecessors_opening->value);
    const auto results = decode_id_list(disclosure.successors_opening->value);
    if (!descriptor || !operands || !results || results->size() != 1) {
      return false;
    }
    auto op = rfg::operator_from_descriptor(*descriptor);
    if (op == nullptr) return false;  // opaque rule: unverifiable (§4)
    pending_ops.emplace_back(
        id, rfg::OperatorVertex{.id = id,
                                .op = std::shared_ptr<const rfg::Operator>(std::move(op)),
                                .operands = *operands,
                                .result = results->front()});
  }
  for (auto& [id, op] : pending_ops) {
    for (const rfg::VertexId& operand : op.operands) {
      if (!rebuilt.has_variable(operand)) return false;
    }
    if (!rebuilt.has_variable(op.result)) return false;
    rebuilt.add_operator(std::move(op));
  }
  try {
    rebuilt.validate();
  } catch (const std::logic_error&) {
    return false;
  }
  return graph_implements_promise(rebuilt, promise);
}

std::vector<std::uint8_t> GraphRootAnnouncement::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.graph-root");
  id.encode(writer);
  writer.put_raw(std::span(root.data(), root.size()));
  return writer.take();
}

GraphRootAnnouncement GraphRootAnnouncement::decode(
    std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.graph-root") {
    throw std::out_of_range("GraphRootAnnouncement: bad tag");
  }
  GraphRootAnnouncement out;
  out.id = ProtocolId::decode(reader);
  const auto raw = reader.get_raw(crypto::kSha256DigestSize);
  std::copy(raw.begin(), raw.end(), out.root.begin());
  return out;
}

}  // namespace pvr::core
