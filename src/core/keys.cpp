#include "core/keys.h"

#include "core/verify_context.h"
#include "crypto/encoding.h"

namespace pvr::core {

KeyDirectory::KeyDirectory() = default;
KeyDirectory::~KeyDirectory() = default;

KeyDirectory::KeyDirectory(const KeyDirectory& other) : keys_(other.keys_) {}

KeyDirectory::KeyDirectory(KeyDirectory&& other) noexcept
    : keys_(std::move(other.keys_)) {}

KeyDirectory& KeyDirectory::operator=(const KeyDirectory& other) {
  if (this != &other) {
    keys_ = other.keys_;
    ctx_ptr_.store(nullptr, std::memory_order_release);
    ctx_.reset();
  }
  return *this;
}

KeyDirectory& KeyDirectory::operator=(KeyDirectory&& other) noexcept {
  if (this != &other) {
    keys_ = std::move(other.keys_);
    ctx_ptr_.store(nullptr, std::memory_order_release);
    ctx_.reset();
  }
  return *this;
}

const VerifyContext& KeyDirectory::verify_context() const {
  const VerifyContext* ctx = ctx_ptr_.load(std::memory_order_acquire);
  if (ctx != nullptr) return *ctx;
  std::lock_guard lock(ctx_mu_);
  if (ctx_ == nullptr) {
    ctx_ = std::make_unique<VerifyContext>(this, /*cache_verdicts=*/false);
    ctx_ptr_.store(ctx_.get(), std::memory_order_release);
  }
  return *ctx_;
}

void KeyDirectory::add(bgp::AsNumber asn, crypto::RsaPublicKey key) {
  keys_[asn] = std::move(key);
}

const crypto::RsaPublicKey* KeyDirectory::find(bgp::AsNumber asn) const {
  const auto it = keys_.find(asn);
  return it == keys_.end() ? nullptr : &it->second;
}

bool KeyDirectory::contains(bgp::AsNumber asn) const {
  return keys_.contains(asn);
}

std::vector<bgp::AsNumber> KeyDirectory::members() const {
  std::vector<bgp::AsNumber> out;
  out.reserve(keys_.size());
  for (const auto& [asn, key] : keys_) out.push_back(asn);
  return out;
}

std::vector<std::uint8_t> message_signing_input(
    bgp::AsNumber signer, std::span<const std::uint8_t> payload) {
  crypto::ByteWriter writer;
  writer.put_string("pvr-signed-message");
  writer.put_u32(signer);
  writer.put_bytes(payload);
  return writer.take();
}


std::vector<std::uint8_t> SignedMessage::encode() const {
  crypto::ByteWriter writer;
  writer.put_u32(signer);
  writer.put_bytes(payload);
  writer.put_bytes(signature);
  return writer.take();
}

SignedMessage SignedMessage::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  SignedMessage out;
  out.signer = reader.get_u32();
  out.payload = reader.get_bytes();
  out.signature = reader.get_bytes();
  return out;
}

SignedMessage sign_message(bgp::AsNumber signer,
                           const crypto::RsaPrivateKey& key,
                           std::vector<std::uint8_t> payload) {
  SignedMessage message{.signer = signer, .payload = std::move(payload), .signature = {}};
  message.signature = crypto::rsa_sign(key, message_signing_input(signer, message.payload));
  return message;
}

bool verify_message(const KeyDirectory& directory, const SignedMessage& message) {
  // Routed through the directory's shared context so every legacy call
  // site reuses the per-key Montgomery precompute. Verdicts are identical
  // to a stateless crypto::rsa_verify over the signing input.
  return directory.verify_context().verify(message);
}

AsKeyPairs generate_keys(const std::vector<bgp::AsNumber>& asns,
                         crypto::Drbg& rng, std::size_t modulus_bits) {
  AsKeyPairs out;
  for (const bgp::AsNumber asn : asns) {
    crypto::RsaKeyPair pair = crypto::generate_rsa_keypair(modulus_bits, rng);
    out.directory.add(asn, pair.pub);
    out.private_keys.emplace(asn, std::move(pair));
  }
  return out;
}

}  // namespace pvr::core
