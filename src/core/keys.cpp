#include "core/keys.h"

#include "crypto/encoding.h"

namespace pvr::core {

void KeyDirectory::add(bgp::AsNumber asn, crypto::RsaPublicKey key) {
  keys_[asn] = std::move(key);
}

const crypto::RsaPublicKey* KeyDirectory::find(bgp::AsNumber asn) const {
  const auto it = keys_.find(asn);
  return it == keys_.end() ? nullptr : &it->second;
}

bool KeyDirectory::contains(bgp::AsNumber asn) const {
  return keys_.contains(asn);
}

std::vector<bgp::AsNumber> KeyDirectory::members() const {
  std::vector<bgp::AsNumber> out;
  out.reserve(keys_.size());
  for (const auto& [asn, key] : keys_) out.push_back(asn);
  return out;
}

std::vector<std::uint8_t> message_signing_input(
    bgp::AsNumber signer, std::span<const std::uint8_t> payload) {
  crypto::ByteWriter writer;
  writer.put_string("pvr-signed-message");
  writer.put_u32(signer);
  writer.put_bytes(payload);
  return writer.take();
}


std::vector<std::uint8_t> SignedMessage::encode() const {
  crypto::ByteWriter writer;
  writer.put_u32(signer);
  writer.put_bytes(payload);
  writer.put_bytes(signature);
  return writer.take();
}

SignedMessage SignedMessage::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  SignedMessage out;
  out.signer = reader.get_u32();
  out.payload = reader.get_bytes();
  out.signature = reader.get_bytes();
  return out;
}

SignedMessage sign_message(bgp::AsNumber signer,
                           const crypto::RsaPrivateKey& key,
                           std::vector<std::uint8_t> payload) {
  SignedMessage message{.signer = signer, .payload = std::move(payload), .signature = {}};
  message.signature = crypto::rsa_sign(key, message_signing_input(signer, message.payload));
  return message;
}

bool verify_message(const KeyDirectory& directory, const SignedMessage& message) {
  const crypto::RsaPublicKey* key = directory.find(message.signer);
  if (key == nullptr) return false;
  return crypto::rsa_verify(*key, message_signing_input(message.signer, message.payload),
                            message.signature);
}

AsKeyPairs generate_keys(const std::vector<bgp::AsNumber>& asns,
                         crypto::Drbg& rng, std::size_t modulus_bits) {
  AsKeyPairs out;
  for (const bgp::AsNumber asn : asns) {
    crypto::RsaKeyPair pair = crypto::generate_rsa_keypair(modulus_bits, rng);
    out.directory.add(asn, pair.pub);
    out.private_keys.emplace(asn, std::move(pair));
  }
  return out;
}

}  // namespace pvr::core
