// The existential and minimum operator protocols (paper §3.2–3.3).
//
// Scenario (Fig. 1): prover AS A has providers N1..Nk and recipient B, and
// has promised B the shortest (resp. some) route received from the Ni.
//
// Per protocol round (prefix, epoch):
//   1. Each providing Ni sends A a signed InputAnnouncement.
//   2. A computes bits b_1..b_L (b_i = 1 iff an input of length <= i
//      exists; L = 1 with b_1 = "any input" for the existential operator),
//      commits to each bit, and publishes a signed CommitmentBundle to all
//      neighbors, who gossip it to detect equivocation.
//   3. A reveals to each providing Ni the opening of b_{|r_i|}
//      (RevealToProvider, signed — the signature doubles as A's
//      acknowledgment that Ni provided a length-|r_i| route, which is what
//      makes kBitNotSet third-party provable).
//   4. A reveals all openings to B (RevealToRecipient, signed) and sends a
//      signed ExportStatement carrying either the exported route plus its
//      provenance (the winning Ni's own signed announcement) or the claim
//      "no route", which makes suppression provable.
//   5. Verifiers run verify_as_provider / verify_as_recipient; any
//      violation yields Evidence validatable by core::Auditor.
//
// Confidentiality: Ni learns only the single bit b_{|r_i|} (which must be 1
// if A is honest — it already knows that); B learns the chosen route and
// the bit vector, i.e. exactly "no shorter route existed", which standard
// BGP already implies under the promise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bgp/route.h"
#include "core/evidence.h"
#include "core/keys.h"
#include "crypto/commitment.h"
#include "crypto/drbg.h"

namespace pvr::core {

enum class OperatorKind : std::uint8_t { kExistential = 0, kMinimum = 1 };

// Identifies one protocol round. Totally ordered (prover, prefix, epoch)
// and hashable so node and engine state can be keyed by the full round
// identity — keying by epoch alone collides concurrent rounds for
// different prefixes or provers.
struct ProtocolId {
  bgp::AsNumber prover = 0;
  bgp::Ipv4Prefix prefix;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool operator==(const ProtocolId&) const = default;
  [[nodiscard]] auto operator<=>(const ProtocolId&) const = default;
  [[nodiscard]] std::string gossip_topic() const;
  void encode(crypto::ByteWriter& writer) const;
  [[nodiscard]] static ProtocolId decode(crypto::ByteReader& reader);
};

// Hash for unordered containers keyed by ProtocolId (and the engine's
// shard assignment, which hashes the (prover, prefix) projection).
struct ProtocolIdHash {
  [[nodiscard]] std::size_t operator()(const ProtocolId& id) const noexcept;
};

// ---- Wire payloads (each travels inside a SignedMessage) ----

struct InputAnnouncement {
  ProtocolId id;               // the round this input feeds
  bgp::AsNumber provider = 0;  // who provides the route
  bgp::Route route;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static InputAnnouncement decode(std::span<const std::uint8_t> data);
};

struct CommitmentBundle {
  ProtocolId id;
  OperatorKind op = OperatorKind::kMinimum;
  std::uint32_t max_len = 0;                   // L; 1 for existential
  std::vector<crypto::Commitment> bits;        // size L, index i-1 = b_i

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static CommitmentBundle decode(std::span<const std::uint8_t> data);
};

struct RevealToProvider {
  ProtocolId id;
  bgp::AsNumber provider = 0;
  std::uint32_t bit_index = 0;  // 1-based; == min(|r_i|, L)
  crypto::CommitmentOpening opening;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static RevealToProvider decode(std::span<const std::uint8_t> data);
};

struct RevealToRecipient {
  ProtocolId id;
  std::vector<crypto::CommitmentOpening> openings;  // all of b_1..b_L

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static RevealToRecipient decode(std::span<const std::uint8_t> data);
};

struct ExportStatement {
  ProtocolId id;
  bool has_route = false;
  bgp::Route route;  // as exported (provider path prepended with prover)
  // Provenance: the winning provider's signed InputAnnouncement (§3.2
  // condition 1 — B verifies the route "was provided to A by some Ni").
  std::optional<SignedMessage> provenance;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ExportStatement decode(std::span<const std::uint8_t> data);
};

// ---- Prover ----

// Byzantine strategy knobs for the prover (all false = honest).
struct ProverMisbehavior {
  bool export_nonminimal = false;   // export the longest input, honest bits
  bool bits_match_lie = false;      // with export_nonminimal: forge the bits
                                    // to match the lie instead
  bool suppress_export = false;     // claim "no route" despite inputs
  bool fabricate_route = false;     // export a route nobody provided
  bool nonmonotone_bits = false;    // clear a bit above the minimum
  std::optional<bgp::AsNumber> wrong_opening_for;  // corrupt Ni's opening
  std::optional<bgp::AsNumber> skip_reveal_for;    // never reveal to Ni
  bool equivocate = false;          // second bundle for a subset of peers
  // With equivocate, in aggregated wire mode: put the conflicting bundles
  // under a SECOND window (fresh batch number) instead of signing the same
  // window twice, so no two roots share a batch — the batch-split evasion.
  // Both windows still claim the same prefixes, which is exactly what
  // roots_conflict's common-round rule catches.
  bool batch_split = false;

  [[nodiscard]] bool honest() const {
    return !export_nonminimal && !bits_match_lie && !suppress_export &&
           !fabricate_route && !nonmonotone_bits && !wrong_opening_for &&
           !skip_reveal_for && !equivocate && !batch_split;
  }
};

struct ProverResult {
  SignedMessage signed_bundle;                       // CommitmentBundle
  std::optional<SignedMessage> equivocating_bundle;  // if equivocating
  std::map<bgp::AsNumber, SignedMessage> provider_reveals;  // RevealToProvider
  SignedMessage recipient_reveal;                    // RevealToRecipient
  SignedMessage export_statement;                    // ExportStatement
  // The honest decision (for experiment bookkeeping).
  std::optional<bgp::Route> honest_output;
};

// Runs the prover side over the signed inputs (one optional entry per
// provider; absent = that neighbor provided nothing). `max_len` is L.
// Inputs longer than L are ignored (out of the promise's domain).
[[nodiscard]] ProverResult run_prover(
    const ProtocolId& id, OperatorKind op,
    const std::map<bgp::AsNumber, std::optional<SignedMessage>>& inputs,
    std::uint32_t max_len, const crypto::RsaPrivateKey& prover_key,
    crypto::Drbg& rng, const ProverMisbehavior& misbehavior = {});

// ---- Verifiers (each returns the violations it detected) ----
//
// Each check exists in two flavors: the VerifyContext one (the engine /
// world-shared path, amortized per-key precompute plus the optional
// verdict cache) and a KeyDirectory convenience wrapper that forwards to
// directory.verify_context(). Verdicts are identical by construction.

// Ni-side checks (§3.2 condition 2 / §3.3 condition 3). `own_input` is what
// the provider actually sent this round; `reveal` is the signed
// RevealToProvider received from the prover (nullptr if none arrived).
[[nodiscard]] std::vector<Evidence> verify_as_provider(
    const VerifyContext& ctx, bgp::AsNumber self,
    const std::optional<InputAnnouncement>& own_input,
    const SignedMessage& signed_bundle, const SignedMessage* reveal);
[[nodiscard]] std::vector<Evidence> verify_as_provider(
    const KeyDirectory& directory, bgp::AsNumber self,
    const std::optional<InputAnnouncement>& own_input,
    const SignedMessage& signed_bundle, const SignedMessage* reveal);

// B-side checks (§3.2 condition 1 plus the §3.3 bit-vector checks).
[[nodiscard]] std::vector<Evidence> verify_as_recipient(
    const VerifyContext& ctx, bgp::AsNumber self,
    const SignedMessage& signed_bundle, const SignedMessage* recipient_reveal,
    const SignedMessage* export_statement);
[[nodiscard]] std::vector<Evidence> verify_as_recipient(
    const KeyDirectory& directory, bgp::AsNumber self,
    const SignedMessage& signed_bundle, const SignedMessage* recipient_reveal,
    const SignedMessage* export_statement);

// Gossip-side check: two signed bundles for the same round with different
// contents prove equivocation.
[[nodiscard]] std::optional<Evidence> check_equivocation(
    const VerifyContext& ctx, bgp::AsNumber reporter,
    const SignedMessage& first, const SignedMessage& second);
[[nodiscard]] std::optional<Evidence> check_equivocation(
    const KeyDirectory& directory, bgp::AsNumber reporter,
    const SignedMessage& first, const SignedMessage& second);

// Honest-bit computation (exposed for tests and benches): bits_of returns
// b_1..b_L for the given input routes.
[[nodiscard]] std::vector<bool> compute_bits(
    OperatorKind op, const std::vector<bgp::Route>& inputs, std::uint32_t max_len);

}  // namespace pvr::core
