#include "core/pvr_speaker.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "core/verify_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::core {

namespace {

// Gossip payloads carry a 1-byte relay hop count ahead of the signed
// envelope so the flood is bounded by PvrConfig::gossip_hop_budget.
[[nodiscard]] std::vector<std::uint8_t> wrap_hops(
    std::uint8_t hops, const std::vector<std::uint8_t>& envelope) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + envelope.size());
  payload.push_back(hops);
  payload.insert(payload.end(), envelope.begin(), envelope.end());
  return payload;
}

struct UnwrappedGossip {
  std::uint8_t hops = 0;
  SignedMessage envelope;
};

[[nodiscard]] std::optional<UnwrappedGossip> unwrap_hops(
    const std::vector<std::uint8_t>& payload) {
  if (payload.empty()) return std::nullopt;
  try {
    return UnwrappedGossip{
        .hops = payload.front(),
        .envelope = SignedMessage::decode(
            std::span(payload).subspan(1))};
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

// Appends `envelope` to `store` unless an identical payload is already
// present. Returns true when the envelope is new.
[[nodiscard]] bool remember_distinct(std::vector<SignedMessage>& store,
                                     const SignedMessage& envelope) {
  const bool is_new =
      std::none_of(store.begin(), store.end(), [&](const SignedMessage& seen) {
        return seen.payload == envelope.payload;
      });
  if (is_new) store.push_back(envelope);
  return is_new;
}

}  // namespace

PvrNode::PvrNode(PvrConfig config)
    : config_(std::move(config)),
      rng_(config_.rng_seed ^ config_.asn, "pvr-node") {
  if (config_.directory == nullptr || config_.private_key == nullptr) {
    throw std::invalid_argument("PvrNode: missing keys");
  }
}

PvrNode::RoundState& PvrNode::round_state(const ProtocolId& id) {
  const auto [it, inserted] = rounds_.try_emplace(id);
  if (inserted) {
    round_index_.emplace(id, &it->second);
    peak_open_rounds_ = std::max(peak_open_rounds_, rounds_.size());
  }
  return it->second;
}

PvrNode::RoundState* PvrNode::find_round(const ProtocolId& id) {
  const auto it = round_index_.find(id);
  return it == round_index_.end() ? nullptr : it->second;
}

void PvrNode::send(net::Transport& sim, bgp::AsNumber to, const char* channel,
                   std::vector<std::uint8_t> payload) {
  net::Message message{.from = config_.asn,
                       .to = to,
                       .channel = channel,
                       .payload = std::move(payload)};
  bytes_sent_ += message.wire_size();
  sim.send(std::move(message));
}

std::vector<bgp::AsNumber> PvrNode::gossip_peers() const {
  std::vector<bgp::AsNumber> peers;
  for (const bgp::AsNumber provider : config_.providers) {
    if (provider != config_.asn) peers.push_back(provider);
  }
  if (config_.recipient != 0 && config_.recipient != config_.asn) {
    peers.push_back(config_.recipient);
  }
  return peers;
}

void PvrNode::provide_input(net::Transport& sim, std::uint64_t epoch,
                            const bgp::Ipv4Prefix& prefix,
                            const std::optional<bgp::Route>& route) {
  if (config_.role != PvrRole::kProvider) {
    throw std::logic_error("provide_input: not a provider");
  }
  const ProtocolId id{.prover = config_.prover, .prefix = prefix, .epoch = epoch};
  if (!route.has_value()) {
    round_state(id).own_input = std::nullopt;
    return;
  }
  const InputAnnouncement announcement{
      .id = id,
      .provider = config_.asn,
      .route = *route,
  };
  round_state(id).own_input = announcement;
  const SignedMessage signed_input =
      sign_message(config_.asn, *config_.private_key, announcement.encode());
  send(sim, config_.prover, kInputChannel, signed_input.encode());
}

void PvrNode::start_round(net::Transport& sim, std::uint64_t epoch,
                          const bgp::Ipv4Prefix& prefix) {
  if (config_.role != PvrRole::kProver) {
    throw std::logic_error("start_round: not the prover");
  }
  const ProtocolId id{.prover = config_.asn, .prefix = prefix, .epoch = epoch};
  // A round already run must never be re-committed: a second window
  // claiming the same prefix would be self-equivocation.
  if (rounds_run_.contains(id)) return;
  collected_inputs_.try_emplace(id);

  auto& windows = open_windows_[epoch];
  for (const auto& window : windows) {
    if (std::find(window->prefixes.begin(), window->prefixes.end(), prefix) !=
        window->prefixes.end()) {
      return;  // already pending in an open window
    }
  }
  // Per-prefix collection: this prefix needs collect_window µs of input
  // collection measured from ITS OWN start, so it may only join a window
  // that can wait that long without blowing the window's batching
  // deadline. (The pre-deadline design shared one epoch-wide window, so a
  // prefix started late in the window got an arbitrarily truncated
  // collection phase.)
  const net::SimTime now = sim.now();
  const net::SimTime ready_at = now + config_.collect_window;
  rounds_started_ += 1;
  for (auto& window : windows) {
    if (ready_at <= window->deadline) {
      window->prefixes.push_back(prefix);
      window->fire_at = std::max(window->fire_at, ready_at);
      return;
    }
  }
  const net::SimTime deadline_span =
      std::max(config_.batch_deadline, config_.collect_window);
  auto window = std::make_shared<CollectionWindow>();
  window->deadline = now + deadline_span;
  window->fire_at = ready_at;
  window->prefixes.push_back(prefix);
  windows.push_back(window);
  schedule_window_fire(sim, epoch, std::move(window));
}

void PvrNode::schedule_window_fire(net::Transport& sim, std::uint64_t epoch,
                                   std::shared_ptr<CollectionWindow> window) {
  sim.schedule(window->fire_at, [this, &sim, epoch, window] {
    if (sim.now() < window->fire_at) {
      // A later joiner pushed fire_at out (still within the deadline);
      // re-arm for the new time.
      schedule_window_fire(sim, epoch, window);
      return;
    }
    const auto epoch_it = open_windows_.find(epoch);
    if (epoch_it != open_windows_.end()) {
      auto& windows = epoch_it->second;
      windows.erase(std::remove(windows.begin(), windows.end(), window),
                    windows.end());
      if (windows.empty()) open_windows_.erase(epoch_it);
    }
    run_prover_batch(sim, epoch, window->prefixes);
  });
}

void PvrNode::run_prover_batch(net::Transport& sim, std::uint64_t epoch,
                               const std::vector<bgp::Ipv4Prefix>& prefixes) {
  struct PrefixRound {
    ProtocolId id;
    ProverResult result;
  };
  std::vector<PrefixRound> batch;
  batch.reserve(prefixes.size());
  for (const bgp::Ipv4Prefix& prefix : prefixes) {
    const ProtocolId id{.prover = config_.asn, .prefix = prefix, .epoch = epoch};

    // Normalize the collected inputs: one entry per configured provider.
    std::map<bgp::AsNumber, std::optional<SignedMessage>> inputs;
    const auto& collected = collected_inputs_[id];
    for (const bgp::AsNumber provider : config_.providers) {
      const auto it = collected.find(provider);
      inputs[provider] = it == collected.end() ? std::nullopt : it->second;
    }

    rounds_run_.insert(id);
    batch.push_back(PrefixRound{
        .id = id,
        .result = run_prover(id, config_.op, inputs, config_.max_len,
                             *config_.private_key, rng_, config_.misbehavior)});
  }
  if (batch.empty()) return;
  windows_fired_ += 1;
  PVR_OBS_COUNT(node_windows_closed, 1);
  if (obs::TraceWriter::global().active()) {
    obs::TraceWriter::global().sim_instant(
        "window.close", config_.asn, static_cast<std::uint64_t>(sim.now()),
        "{\"epoch\":" + std::to_string(epoch) +
            ",\"prefixes\":" + std::to_string(batch.size()) + "}");
  }

  // Publish the bundles. When equivocating, the first half of the providers
  // get the conflicting variant.
  const std::size_t half = config_.providers.size() / 2;
  if (config_.aggregate_wire_bundles) {
    const std::uint32_t window = next_batch_[epoch]++;
    std::vector<SignedMessage> honest;
    std::vector<SignedMessage> variant;
    bool equivocating = false;
    for (const PrefixRound& round : batch) {
      honest.push_back(round.result.signed_bundle);
      variant.push_back(round.result.equivocating_bundle.has_value()
                            ? *round.result.equivocating_bundle
                            : round.result.signed_bundle);
      equivocating |= round.result.equivocating_bundle.has_value();
    }
    // Batch-split evasion: the variant gets its OWN window number, so no
    // two signed roots share a batch — only the common prefixes they both
    // claim betray the equivocation (roots_conflict's second rule).
    const std::uint32_t variant_window =
        equivocating && config_.misbehavior.batch_split ? next_batch_[epoch]++
                                                        : window;
    const AggregatedBundleMessage agg_honest = aggregate_signed_bundles(
        config_.asn, epoch, window, honest, *config_.private_key);
    std::optional<AggregatedBundleMessage> agg_variant;
    if (equivocating) {
      agg_variant = aggregate_signed_bundles(
          config_.asn, epoch, variant_window, variant, *config_.private_key);
    }
    for (std::size_t i = 0; i < config_.providers.size(); ++i) {
      const AggregatedBundleMessage& message =
          (agg_variant.has_value() && i < half) ? *agg_variant : agg_honest;
      send(sim, config_.providers[i], kBundleAggChannel, message.encode());
    }
    send(sim, config_.recipient, kBundleAggChannel, agg_honest.encode());
  } else {
    for (const PrefixRound& round : batch) {
      for (std::size_t i = 0; i < config_.providers.size(); ++i) {
        const SignedMessage& bundle =
            (round.result.equivocating_bundle.has_value() && i < half)
                ? *round.result.equivocating_bundle
                : round.result.signed_bundle;
        send(sim, config_.providers[i], kBundleChannel, bundle.encode());
      }
      send(sim, config_.recipient, kBundleChannel,
           round.result.signed_bundle.encode());
    }
  }

  // Reveals and exports, per prefix round.
  for (const PrefixRound& round : batch) {
    for (const auto& [provider, reveal] : round.result.provider_reveals) {
      send(sim, provider, kRevealProviderChannel, reveal.encode());
    }
    send(sim, config_.recipient, kRevealRecipientChannel,
         round.result.recipient_reveal.encode());
    send(sim, config_.recipient, kExportChannel,
         round.result.export_statement.encode());
  }

  // Window-closed event, after every message of the batch is on the wire:
  // subscribers (the online scenario pipeline) learn exactly which rounds
  // this window committed, in deterministic simulated-time order.
  if (on_window_closed_) on_window_closed_(epoch, prefixes);
}

void PvrNode::observe_bundle(net::Transport& sim, const SignedMessage& bundle,
                             bgp::AsNumber origin, std::uint8_t hops) {
  CommitmentBundle decoded;
  try {
    decoded = CommitmentBundle::decode(bundle.payload);
  } catch (const std::out_of_range&) {
    return;  // malformed; the round verifier will flag it if it was for us
  }
  // Only this neighborhood's prover's rounds concern us; storing or
  // relaying foreign-prover bundles would let any peer grow round state
  // and multiply mesh traffic without bound.
  if (decoded.id.prover != config_.prover) return;
  if (const RoundState* existing = find_round(decoded.id)) {
    const auto& seen = existing->observed_bundles;
    if (std::any_of(seen.begin(), seen.end(), [&](const SignedMessage& s) {
          return s.payload == bundle.payload;
        })) {
      return;
    }
  }
  // A forged bundle (claimed signer, garbage signature) must never claim
  // the first-seen slot — that would unaccountably poison verification of
  // the honest bundle arriving later — nor be relayed onward.
  if (!config_.verify_context().verify(bundle)) return;
  RoundState& round = round_state(decoded.id);
  round.observed_bundles.push_back(bundle);
  if (!round.bundle.has_value()) round.bundle = bundle;
  // A round that already witnessed a root conflict but had no bundles to
  // spread can escalate now that one exists.
  escalate_round(sim, origin, round);
  // Gossip the (signed) bundle to the other verifiers so everyone converges
  // on the same view (§3.2: "A's neighbors can gossip about c") — but never
  // back to whoever just sent it to us, and only within the hop budget.
  if (hops >= config_.gossip_hop_budget) return;
  for (const bgp::AsNumber peer : gossip_peers()) {
    if (peer == origin) continue;
    if (sim.connected(config_.asn, peer)) {
      send(sim, peer, kGossipChannel,
           wrap_hops(static_cast<std::uint8_t>(hops + 1), bundle.encode()));
    }
  }
}

void PvrNode::observe_root(net::Transport& sim, const SignedMessage& signed_root,
                           bgp::AsNumber origin, std::uint8_t hops) {
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(signed_root.payload);
  } catch (const std::out_of_range&) {
    return;
  }
  if (root.prover != config_.prover || signed_root.signer != config_.prover) {
    return;
  }
  // Dedup BEFORE the signature check: every relayed/replayed copy of an
  // already-seen root costs one digest lookup instead of an RSA verify (a
  // mesh of V verifiers delivers each root O(V) times). The first copy of
  // a payload still has to prove itself — a forged root (claimed signer,
  // garbage signature) is dropped before it can enter the dedup set,
  // pollute round state, trigger escalation, or get relayed onward. The
  // lookup must not create the per-epoch map entry either (seen_roots_ is
  // never pruned, so default-constructing on an attacker-chosen epoch
  // would grow memory on unverified traffic).
  const RootKey key{root.prover, root.epoch};
  const crypto::Digest digest = crypto::sha256(std::span(signed_root.payload));
  const auto seen_it = seen_roots_.find(key);
  if (seen_it != seen_roots_.end() && seen_it->second.contains(digest)) {
    PVR_OBS_COUNT(crypto_sig_cache_hits, 1);
    return;
  }
  if (!config_.verify_context().verify(signed_root)) return;
  if (seen_roots_[key].insert(digest).second) {
    seen_root_digests_ += 1;
    peak_seen_root_digests_ =
        std::max(peak_seen_root_digests_, seen_root_digests_);
  }
  attach_root(sim, signed_root, root, origin);
  if (hops < config_.gossip_hop_budget) {
    for (const bgp::AsNumber peer : gossip_peers()) {
      if (peer == origin) continue;
      if (sim.connected(config_.asn, peer)) {
        send(sim, peer, kGossipRootChannel,
             wrap_hops(static_cast<std::uint8_t>(hops + 1),
                       signed_root.encode()));
      }
    }
  }
}

void PvrNode::attach_root(net::Transport& sim, const SignedMessage& signed_root,
                          const AggregatedBundle& root, bgp::AsNumber origin) {
  // Attach to the round of every prefix this window claims. The signed
  // prefix list names those rounds exactly, so each is one map lookup —
  // with thousands of simultaneously open rounds per node this must never
  // scan them all (tests/core/root_attachment_test.cpp is the regression).
  // State is CREATED for claimed rounds this node has not heard of yet
  // (e.g. its direct agg message is still in flight or was lost), so a
  // witnessed root conflict is provable at finalize without any deferred
  // scan — the old finalize-time walk over every root the epoch ever saw
  // was O(windows) per round and unusable on long traces.
  for (const bgp::Ipv4Prefix& prefix : root.prefixes) {
    const ProtocolId id{
        .prover = root.prover, .prefix = prefix, .epoch = root.epoch};
    RoundState& round = round_state(id);
    if (remember_distinct(round.observed_roots, signed_root)) {
      escalate_round(sim, origin, round);
    }
  }
}

void PvrNode::escalate_round(net::Transport& sim, bgp::AsNumber origin,
                             RoundState& round) {
  if (round.escalated || round.observed_roots.size() < 2 ||
      round.observed_bundles.empty()) {
    return;
  }
  round.escalated = true;
  for (const SignedMessage& bundle : round.observed_bundles) {
    for (const bgp::AsNumber peer : gossip_peers()) {
      if (peer == origin) continue;
      if (sim.connected(config_.asn, peer)) {
        send(sim, peer, kGossipChannel, wrap_hops(0, bundle.encode()));
      }
    }
  }
}

void PvrNode::open_aggregated(net::Transport& sim,
                              const AggregatedBundleMessage& message,
                              bgp::AsNumber origin) {
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(message.signed_root.payload);
  } catch (const std::out_of_range&) {
    return;
  }
  if (root.prover != config_.prover) return;
  if (!config_.verify_context().verify(message.signed_root)) return;
  for (const SignedBundleOpening& opening : message.openings) {
    // Only proofs that bind the bundle to the signed root are usable — an
    // unprovable bundle could not support evidence later.
    if (!verify_signed_opening(root, opening)) continue;
    CommitmentBundle decoded;
    try {
      decoded = CommitmentBundle::decode(opening.bundle.payload);
    } catch (const std::out_of_range&) {
      continue;
    }
    if (decoded.id.prover != config_.prover || decoded.id.epoch != root.epoch) {
      continue;
    }
    RoundState& round = round_state(decoded.id);
    if (remember_distinct(round.observed_bundles, opening.bundle) &&
        !round.bundle.has_value()) {
      round.bundle = opening.bundle;
    }
    // Roots gossiped before this message arrived were already attached on
    // arrival (attach_root creates round state), and observe_root below
    // escalates only on a NEW root — so if the conflict was already known,
    // the round just opened still needs its bundles spread.
    escalate_round(sim, origin, round);
  }
  observe_root(sim, message.signed_root, origin, 0);
}

void PvrNode::on_message(net::Transport& sim, const net::Message& message) {
  if (message.channel == kInputChannel && config_.role == PvrRole::kProver) {
    SignedMessage envelope;
    try {
      envelope = SignedMessage::decode(message.payload);
    } catch (const std::out_of_range&) {
      return;
    }
    if (!config_.verify_context().verify(envelope) ||
        envelope.signer != message.from) {
      return;  // unauthenticated input: ignored
    }
    try {
      const InputAnnouncement announcement =
          InputAnnouncement::decode(envelope.payload);
      if (announcement.provider != message.from) return;
      if (announcement.id.prover != config_.asn) return;
      collected_inputs_[announcement.id][message.from] = envelope;
    } catch (const std::out_of_range&) {
    }
    return;
  }

  if (message.channel == kBundleChannel) {
    try {
      observe_bundle(sim, SignedMessage::decode(message.payload), message.from,
                     0);
    } catch (const std::out_of_range&) {
    }
    return;
  }
  if (message.channel == kGossipChannel) {
    if (const auto gossip = unwrap_hops(message.payload)) {
      observe_bundle(sim, gossip->envelope, message.from, gossip->hops);
    }
    return;
  }

  if (message.channel == kBundleAggChannel) {
    // Aggregated bundles come straight from the prover; anything else could
    // overwrite round state with attacker-chosen batches.
    if (message.from != config_.prover) return;
    try {
      const AggregatedBundleMessage decoded =
          AggregatedBundleMessage::decode(message.payload);
      if (decoded.signed_root.signer != config_.prover) return;
      open_aggregated(sim, decoded, message.from);
    } catch (const std::out_of_range&) {
    }
    return;
  }
  if (message.channel == kGossipRootChannel) {
    if (const auto gossip = unwrap_hops(message.payload)) {
      observe_root(sim, gossip->envelope, message.from, gossip->hops);
    }
    return;
  }

  // Reveal / export envelopes are only ever sent by the prover itself;
  // accepting them from anyone else would let any peer overwrite the
  // stashed slot last-write-wins and manufacture false kMissingReveal /
  // bad-reveal evidence against an honest prover.
  auto stash = [&](std::optional<SignedMessage> RoundState::*slot,
                   auto decode_id) {
    try {
      SignedMessage envelope = SignedMessage::decode(message.payload);
      if (envelope.signer != message.from ||
          envelope.signer != config_.prover) {
        return;
      }
      const ProtocolId id = decode_id(envelope);
      if (id.prover != config_.prover) return;
      round_state(id).*slot = std::move(envelope);
    } catch (const std::out_of_range&) {
    }
  };

  if (message.channel == kRevealProviderChannel) {
    stash(&RoundState::provider_reveal, [](const SignedMessage& envelope) {
      return RevealToProvider::decode(envelope.payload).id;
    });
  } else if (message.channel == kRevealRecipientChannel) {
    stash(&RoundState::recipient_reveal, [](const SignedMessage& envelope) {
      return RevealToRecipient::decode(envelope.payload).id;
    });
  } else if (message.channel == kExportChannel) {
    stash(&RoundState::export_statement, [](const SignedMessage& envelope) {
      return ExportStatement::decode(envelope.payload).id;
    });
  }
}

void fold_round_findings(RoundFindings& into, RoundFindings part) {
  into.evidence.insert(into.evidence.end(),
                       std::make_move_iterator(part.evidence.begin()),
                       std::make_move_iterator(part.evidence.end()));
  into.signatures_verified += part.signatures_verified;
  if (part.accepted.has_value()) into.accepted = std::move(part.accepted);
}

std::vector<PvrNode::RoundCheckPart> PvrNode::enumerate_round_checks(
    const RoundState& round) {
  std::vector<RoundCheckPart> parts;
  for (std::size_t i = 0; i + 1 < round.observed_bundles.size(); ++i) {
    for (std::size_t j = i + 1; j < round.observed_bundles.size(); ++j) {
      parts.push_back({.kind = RoundCheckPart::Kind::kBundlePair, .i = i, .j = j});
    }
  }
  for (std::size_t i = 0; i + 1 < round.observed_roots.size(); ++i) {
    for (std::size_t j = i + 1; j < round.observed_roots.size(); ++j) {
      parts.push_back({.kind = RoundCheckPart::Kind::kRootPair, .i = i, .j = j});
    }
  }
  parts.push_back({.kind = RoundCheckPart::Kind::kRole});
  return parts;
}

RoundFindings PvrNode::run_round_check(const PvrConfig& config,
                                       const RoundState& round,
                                       const RoundCheckPart& part) {
  RoundFindings findings;

  if (part.kind == RoundCheckPart::Kind::kBundlePair) {
    // Equivocation check over one pair of gossip-delivered bundles.
    findings.signatures_verified += 2;
    if (auto conflict = check_equivocation(config.verify_context(), config.asn,
                                           round.observed_bundles[part.i],
                                           round.observed_bundles[part.j])) {
      findings.evidence.push_back(std::move(*conflict));
    }
    return findings;
  }
  if (part.kind == RoundCheckPart::Kind::kRootPair) {
    // Aggregated wire mode: conflicting signed roots for this round's
    // aggregation window are equivocation too (root gossip carries no
    // bundles, so this is how the conflict surfaces).
    findings.signatures_verified += 2;
    if (auto conflict = check_root_equivocation(config.verify_context(), config.asn,
                                                round.observed_roots[part.i],
                                                round.observed_roots[part.j])) {
      findings.evidence.push_back(std::move(*conflict));
    }
    return findings;
  }

  if (!round.bundle.has_value()) {
    // Nothing to verify: with an honest prover this only happens when the
    // node neither provided input nor expected output.
    if (round.own_input.has_value()) {
      findings.evidence.push_back(
          Evidence{.kind = ViolationKind::kMissingReveal,
                   .accused = config.prover,
                   .reporter = config.asn,
                   .index = 0,
                   .messages = {},
                   .detail = "no commitment bundle received"});
    }
    return findings;
  }

  if (config.role == PvrRole::kProvider) {
    findings.signatures_verified += round.provider_reveal.has_value() ? 2 : 1;
    auto found = verify_as_provider(
        config.verify_context(), config.asn, round.own_input, *round.bundle,
        round.provider_reveal.has_value() ? &*round.provider_reveal : nullptr);
    findings.evidence.insert(findings.evidence.end(), found.begin(), found.end());
  } else if (config.role == PvrRole::kRecipient) {
    findings.signatures_verified +=
        1 + (round.recipient_reveal.has_value() ? 1 : 0) +
        (round.export_statement.has_value() ? 1 : 0);
    auto found = verify_as_recipient(
        config.verify_context(), config.asn, *round.bundle,
        round.recipient_reveal.has_value() ? &*round.recipient_reveal : nullptr,
        round.export_statement.has_value() ? &*round.export_statement : nullptr);
    findings.evidence.insert(findings.evidence.end(), found.begin(), found.end());
    // Accept the exported route only when every check passed.
    if (found.empty() && round.export_statement.has_value()) {
      try {
        const ExportStatement statement =
            ExportStatement::decode(round.export_statement->payload);
        if (statement.has_route) findings.accepted = statement.route;
      } catch (const std::out_of_range&) {
      }
    }
  }
  return findings;
}

RoundFindings PvrNode::check_round(const PvrConfig& config,
                                   const RoundState& round) {
  // The sequential path IS the split path folded in enumeration order —
  // identical code on both sides is what makes the engine's intra-round
  // reduction byte-identical to this by construction.
  RoundFindings findings;
  for (const RoundCheckPart& part : enumerate_round_checks(round)) {
    fold_round_findings(findings, run_round_check(config, round, part));
  }
  return findings;
}

void PvrNode::finalize_round(const ProtocolId& id) {
  RoundState& round = round_state(id);
  if (round.finalized) return;
  round.finalized = true;
  apply_round_findings(id, check_round(config_, round));
}

std::optional<DeferredRound> PvrNode::defer_finalize(const ProtocolId& id) {
  RoundState& round = round_state(id);
  if (round.finalized) return std::nullopt;
  round.finalized = true;

  // Snapshot by value: the closure must stay valid and thread-safe even if
  // the node keeps receiving messages for other rounds meanwhile.
  return DeferredRound{
      .id = id,
      .work = [config = &config_, snapshot = round]() {
        return check_round(*config, snapshot);
      }};
}

std::optional<DeferredRoundChecks> PvrNode::defer_finalize_checks(
    const ProtocolId& id) {
  RoundState& round = round_state(id);
  if (round.finalized) return std::nullopt;
  round.finalized = true;

  // One immutable snapshot shared by every check closure: the parts only
  // ever read it, so they can run on any workers concurrently. Pair checks
  // are grouped into chunks of at most finalize_chunk_pairs (never mixing
  // kinds, so enumeration order survives): a round with B observed bundles
  // has B(B-1)/2 pair checks, and one task per pair would explode the
  // engine task count. Each chunk folds its parts in enumeration order, so
  // the engine's per-round reduction is byte-identical at any chunk size.
  const auto snapshot = std::make_shared<const RoundState>(round);
  const std::vector<RoundCheckPart> parts = enumerate_round_checks(*snapshot);
  const std::size_t chunk = std::max<std::size_t>(1, config_.finalize_chunk_pairs);
  DeferredRoundChecks deferred{.id = id, .checks = {}};
  std::size_t begin = 0;
  while (begin < parts.size()) {
    std::size_t end = begin + 1;
    if (parts[begin].kind != RoundCheckPart::Kind::kRole) {
      while (end < parts.size() && parts[end].kind == parts[begin].kind &&
             end - begin < chunk) {
        ++end;
      }
    }
    std::vector<RoundCheckPart> slice(parts.begin() + begin, parts.begin() + end);
    deferred.checks.push_back(
        [config = &config_, snapshot, slice = std::move(slice)]() {
          RoundFindings findings;
          for (const RoundCheckPart& part : slice) {
            fold_round_findings(findings, run_round_check(*config, *snapshot, part));
          }
          return findings;
        });
    begin = end;
  }
  return deferred;
}

void PvrNode::apply_round_findings(const ProtocolId& id, RoundFindings findings) {
  evidence_.insert(evidence_.end(),
                   std::make_move_iterator(findings.evidence.begin()),
                   std::make_move_iterator(findings.evidence.end()));
  if (findings.accepted.has_value()) accepted_[id] = *findings.accepted;
}

bool PvrNode::gc_finalized(const ProtocolId& id) {
  // The prover holds no RoundState for its own rounds — its per-round
  // weight is the collected-inputs table, released unconditionally once a
  // settled round is collected (rounds_run_ keeps re-commit protection).
  collected_inputs_.erase(id);
  const auto it = rounds_.find(id);
  if (it == rounds_.end()) return false;
  const RoundState& round = it->second;
  // Retention: unfinalized rounds still owe their checks, and a witnessed
  // root conflict that has not yet escalated keeps its proof material — a
  // bundle arriving later must still find the conflicting roots so the
  // full-bundle spread can go out. Both states are transient in practice
  // (conflicted rounds escalate as soon as they hold any bundle).
  if (!round.finalized) return false;
  if (round.observed_roots.size() >= 2 && !round.escalated) return false;
  round_index_.erase(id);
  rounds_.erase(it);
  PVR_OBS_COUNT(node_rounds_gced, 1);
  return true;
}

bool PvrNode::gc_epoch_roots(bgp::AsNumber prover, std::uint64_t epoch) {
  const auto it = seen_roots_.find(RootKey{prover, epoch});
  if (it == seen_roots_.end()) return false;
  seen_root_digests_ -= it->second.size();
  seen_roots_.erase(it);
  PVR_OBS_COUNT(node_root_epochs_gced, 1);
  return true;
}

std::optional<bgp::Route> PvrNode::accepted_route(const ProtocolId& id) const {
  const auto it = accepted_.find(id);
  if (it == accepted_.end()) return std::nullopt;
  return it->second;
}

Figure1Handles make_figure1_world(const Figure1Setup& setup) {
  Figure1Handles handles;
  handles.world = std::make_unique<Figure1World>(setup.seed);
  handles.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

  Figure1World& world = *handles.world;
  world.prover = setup.asn_base + 100;
  world.recipient = setup.asn_base + 200;
  for (std::size_t i = 0; i < setup.provider_count; ++i) {
    world.providers.push_back(setup.asn_base + 300 +
                              static_cast<bgp::AsNumber>(i));
  }

  std::vector<bgp::AsNumber> all = {world.prover, world.recipient};
  all.insert(all.end(), world.providers.begin(), world.providers.end());
  crypto::Drbg key_rng(setup.seed, "fig1-keys");
  handles.keys =
      std::make_unique<AsKeyPairs>(generate_keys(all, key_rng, setup.key_bits));

  auto make_node = [&](bgp::AsNumber asn, PvrRole role) {
    PvrConfig config{
        .asn = asn,
        .role = role,
        .directory = &handles.keys->directory,
        .private_key = &handles.keys->private_keys.at(asn).priv,
        .op = setup.op,
        .max_len = setup.max_len,
        .prover = world.prover,
        .providers = world.providers,
        .recipient = world.recipient,
        .collect_window = 10'000,
        .misbehavior = role == PvrRole::kProver ? setup.misbehavior
                                                : ProverMisbehavior{},
        .rng_seed = setup.seed,
        .aggregate_wire_bundles = setup.aggregate_wire_bundles,
        .finalize_chunk_pairs = setup.finalize_chunk_pairs,
    };
    world.sim.add_node(asn, std::make_unique<PvrNode>(std::move(config)));
  };

  make_node(world.prover, PvrRole::kProver);
  make_node(world.recipient, PvrRole::kRecipient);
  for (const bgp::AsNumber provider : world.providers) {
    make_node(provider, PvrRole::kProvider);
  }

  // Star links to the prover plus a verifier mesh for gossip.
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.sim.connect(world.prover, verifier, {.latency = 1000});
  }
  for (std::size_t i = 0; i < verifiers.size(); ++i) {
    for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
      world.sim.connect(verifiers[i], verifiers[j], {.latency = 1000});
    }
  }
  return handles;
}

}  // namespace pvr::core
