#include "core/pvr_speaker.h"

#include <algorithm>
#include <iterator>
#include <stdexcept>

namespace pvr::core {

PvrNode::PvrNode(PvrConfig config)
    : config_(std::move(config)),
      rng_(config_.rng_seed ^ config_.asn, "pvr-node") {
  if (config_.directory == nullptr || config_.private_key == nullptr) {
    throw std::invalid_argument("PvrNode: missing keys");
  }
}

void PvrNode::send(net::Simulator& sim, bgp::AsNumber to, const char* channel,
                   std::vector<std::uint8_t> payload) {
  net::Message message{.from = config_.asn,
                       .to = to,
                       .channel = channel,
                       .payload = std::move(payload)};
  bytes_sent_ += message.wire_size();
  sim.send(std::move(message));
}

std::vector<bgp::AsNumber> PvrNode::gossip_peers() const {
  std::vector<bgp::AsNumber> peers;
  for (const bgp::AsNumber provider : config_.providers) {
    if (provider != config_.asn) peers.push_back(provider);
  }
  if (config_.recipient != 0 && config_.recipient != config_.asn) {
    peers.push_back(config_.recipient);
  }
  return peers;
}

void PvrNode::provide_input(net::Simulator& sim, std::uint64_t epoch,
                            const bgp::Ipv4Prefix& prefix,
                            const std::optional<bgp::Route>& route) {
  if (config_.role != PvrRole::kProvider) {
    throw std::logic_error("provide_input: not a provider");
  }
  if (!route.has_value()) {
    rounds_[epoch].own_input = std::nullopt;
    return;
  }
  const InputAnnouncement announcement{
      .id = {.prover = config_.prover, .prefix = prefix, .epoch = epoch},
      .provider = config_.asn,
      .route = *route,
  };
  rounds_[epoch].own_input = announcement;
  const SignedMessage signed_input =
      sign_message(config_.asn, *config_.private_key, announcement.encode());
  send(sim, config_.prover, kInputChannel, signed_input.encode());
}

void PvrNode::start_round(net::Simulator& sim, std::uint64_t epoch,
                          const bgp::Ipv4Prefix& prefix) {
  if (config_.role != PvrRole::kProver) {
    throw std::logic_error("start_round: not the prover");
  }
  collected_inputs_.try_emplace(epoch);
  sim.schedule_after(config_.collect_window, [this, &sim, epoch, prefix] {
    run_prover_now(sim, epoch, prefix);
  });
}

void PvrNode::run_prover_now(net::Simulator& sim, std::uint64_t epoch,
                             const bgp::Ipv4Prefix& prefix) {
  const ProtocolId id{.prover = config_.asn, .prefix = prefix, .epoch = epoch};

  // Normalize the collected inputs: one entry per configured provider.
  std::map<bgp::AsNumber, std::optional<SignedMessage>> inputs;
  const auto& collected = collected_inputs_[epoch];
  for (const bgp::AsNumber provider : config_.providers) {
    const auto it = collected.find(provider);
    inputs[provider] =
        it == collected.end() ? std::nullopt : it->second;
  }

  const ProverResult result =
      run_prover(id, config_.op, inputs, config_.max_len, *config_.private_key,
                 rng_, config_.misbehavior);

  // Publish the bundle. When equivocating, the first half of the providers
  // get the conflicting bundle.
  const std::size_t half = config_.providers.size() / 2;
  for (std::size_t i = 0; i < config_.providers.size(); ++i) {
    const SignedMessage& bundle =
        (result.equivocating_bundle.has_value() && i < half)
            ? *result.equivocating_bundle
            : result.signed_bundle;
    send(sim, config_.providers[i], kBundleChannel, bundle.encode());
  }
  send(sim, config_.recipient, kBundleChannel, result.signed_bundle.encode());

  // Reveals.
  for (const auto& [provider, reveal] : result.provider_reveals) {
    send(sim, provider, kRevealProviderChannel, reveal.encode());
  }
  send(sim, config_.recipient, kRevealRecipientChannel,
       result.recipient_reveal.encode());
  send(sim, config_.recipient, kExportChannel, result.export_statement.encode());
}

void PvrNode::observe_bundle(net::Simulator& sim, const SignedMessage& bundle) {
  CommitmentBundle decoded;
  try {
    decoded = CommitmentBundle::decode(bundle.payload);
  } catch (const std::out_of_range&) {
    return;  // malformed; the round verifier will flag it if it was for us
  }
  RoundState& round = rounds_[decoded.id.epoch];
  const bool is_new =
      std::none_of(round.observed_bundles.begin(), round.observed_bundles.end(),
                   [&](const SignedMessage& seen) {
                     return seen.payload == bundle.payload;
                   });
  if (!is_new) return;
  round.observed_bundles.push_back(bundle);
  if (!round.bundle.has_value()) round.bundle = bundle;
  // Gossip the (signed) bundle to the other verifiers so everyone converges
  // on the same view (§3.2: "A's neighbors can gossip about c").
  for (const bgp::AsNumber peer : gossip_peers()) {
    if (sim.connected(config_.asn, peer)) {
      send(sim, peer, kGossipChannel, bundle.encode());
    }
  }
}

void PvrNode::on_message(net::Simulator& sim, const net::Message& message) {
  if (message.channel == kInputChannel && config_.role == PvrRole::kProver) {
    SignedMessage envelope;
    try {
      envelope = SignedMessage::decode(message.payload);
    } catch (const std::out_of_range&) {
      return;
    }
    if (!verify_message(*config_.directory, envelope) ||
        envelope.signer != message.from) {
      return;  // unauthenticated input: ignored
    }
    try {
      const InputAnnouncement announcement =
          InputAnnouncement::decode(envelope.payload);
      if (announcement.provider != message.from) return;
      collected_inputs_[announcement.id.epoch][message.from] = envelope;
    } catch (const std::out_of_range&) {
    }
    return;
  }

  if (message.channel == kBundleChannel || message.channel == kGossipChannel) {
    try {
      observe_bundle(sim, SignedMessage::decode(message.payload));
    } catch (const std::out_of_range&) {
    }
    return;
  }

  auto stash = [&](std::optional<SignedMessage> RoundState::*slot,
                   auto decode_id) {
    try {
      SignedMessage envelope = SignedMessage::decode(message.payload);
      const std::uint64_t epoch = decode_id(envelope);
      rounds_[epoch].*slot = std::move(envelope);
    } catch (const std::out_of_range&) {
    }
  };

  if (message.channel == kRevealProviderChannel) {
    stash(&RoundState::provider_reveal, [](const SignedMessage& envelope) {
      return RevealToProvider::decode(envelope.payload).id.epoch;
    });
  } else if (message.channel == kRevealRecipientChannel) {
    stash(&RoundState::recipient_reveal, [](const SignedMessage& envelope) {
      return RevealToRecipient::decode(envelope.payload).id.epoch;
    });
  } else if (message.channel == kExportChannel) {
    stash(&RoundState::export_statement, [](const SignedMessage& envelope) {
      return ExportStatement::decode(envelope.payload).id.epoch;
    });
  }
}

RoundFindings PvrNode::check_round(const PvrConfig& config,
                                   const RoundState& round) {
  RoundFindings findings;

  // Equivocation check over everything gossip delivered.
  for (std::size_t i = 0; i + 1 < round.observed_bundles.size(); ++i) {
    for (std::size_t j = i + 1; j < round.observed_bundles.size(); ++j) {
      findings.signatures_verified += 2;
      if (auto conflict = check_equivocation(*config.directory, config.asn,
                                             round.observed_bundles[i],
                                             round.observed_bundles[j])) {
        findings.evidence.push_back(std::move(*conflict));
      }
    }
  }

  if (!round.bundle.has_value()) {
    // Nothing to verify: with an honest prover this only happens when the
    // node neither provided input nor expected output.
    if (round.own_input.has_value()) {
      findings.evidence.push_back(
          Evidence{.kind = ViolationKind::kMissingReveal,
                   .accused = config.prover,
                   .reporter = config.asn,
                   .index = 0,
                   .messages = {},
                   .detail = "no commitment bundle received"});
    }
    return findings;
  }

  if (config.role == PvrRole::kProvider) {
    findings.signatures_verified += round.provider_reveal.has_value() ? 2 : 1;
    auto found = verify_as_provider(
        *config.directory, config.asn, round.own_input, *round.bundle,
        round.provider_reveal.has_value() ? &*round.provider_reveal : nullptr);
    findings.evidence.insert(findings.evidence.end(), found.begin(), found.end());
  } else if (config.role == PvrRole::kRecipient) {
    findings.signatures_verified +=
        1 + (round.recipient_reveal.has_value() ? 1 : 0) +
        (round.export_statement.has_value() ? 1 : 0);
    auto found = verify_as_recipient(
        *config.directory, config.asn, *round.bundle,
        round.recipient_reveal.has_value() ? &*round.recipient_reveal : nullptr,
        round.export_statement.has_value() ? &*round.export_statement : nullptr);
    findings.evidence.insert(findings.evidence.end(), found.begin(), found.end());
    // Accept the exported route only when every check passed.
    if (found.empty() && round.export_statement.has_value()) {
      try {
        const ExportStatement statement =
            ExportStatement::decode(round.export_statement->payload);
        if (statement.has_route) findings.accepted = statement.route;
      } catch (const std::out_of_range&) {
      }
    }
  }
  return findings;
}

void PvrNode::finalize_round(std::uint64_t epoch) {
  RoundState& round = rounds_[epoch];
  if (round.finalized) return;
  round.finalized = true;
  apply_round_findings(epoch, check_round(config_, round));
}

std::optional<DeferredRound> PvrNode::defer_finalize(std::uint64_t epoch) {
  RoundState& round = rounds_[epoch];
  if (round.finalized) return std::nullopt;
  round.finalized = true;

  ProtocolId id{.prover = config_.prover, .prefix = {}, .epoch = epoch};
  if (round.bundle.has_value()) {
    try {
      id = CommitmentBundle::decode(round.bundle->payload).id;
    } catch (const std::out_of_range&) {
    }
  }
  // Snapshot by value: the closure must stay valid and thread-safe even if
  // the node keeps receiving messages for other epochs meanwhile.
  return DeferredRound{
      .id = id,
      .work = [config = &config_, snapshot = round]() {
        return check_round(*config, snapshot);
      }};
}

void PvrNode::apply_round_findings(std::uint64_t epoch, RoundFindings findings) {
  evidence_.insert(evidence_.end(),
                   std::make_move_iterator(findings.evidence.begin()),
                   std::make_move_iterator(findings.evidence.end()));
  if (findings.accepted.has_value()) accepted_[epoch] = *findings.accepted;
}

std::optional<bgp::Route> PvrNode::accepted_route(std::uint64_t epoch) const {
  const auto it = accepted_.find(epoch);
  if (it == accepted_.end()) return std::nullopt;
  return it->second;
}

Figure1Handles make_figure1_world(const Figure1Setup& setup) {
  Figure1Handles handles;
  handles.world = std::make_unique<Figure1World>(setup.seed);
  handles.prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24");

  Figure1World& world = *handles.world;
  world.prover = 100;
  world.recipient = 200;
  for (std::size_t i = 0; i < setup.provider_count; ++i) {
    world.providers.push_back(300 + static_cast<bgp::AsNumber>(i));
  }

  std::vector<bgp::AsNumber> all = {world.prover, world.recipient};
  all.insert(all.end(), world.providers.begin(), world.providers.end());
  crypto::Drbg key_rng(setup.seed, "fig1-keys");
  handles.keys =
      std::make_unique<AsKeyPairs>(generate_keys(all, key_rng, setup.key_bits));

  auto make_node = [&](bgp::AsNumber asn, PvrRole role) {
    PvrConfig config{
        .asn = asn,
        .role = role,
        .directory = &handles.keys->directory,
        .private_key = &handles.keys->private_keys.at(asn).priv,
        .op = setup.op,
        .max_len = setup.max_len,
        .prover = world.prover,
        .providers = world.providers,
        .recipient = world.recipient,
        .collect_window = 10'000,
        .misbehavior = role == PvrRole::kProver ? setup.misbehavior
                                                : ProverMisbehavior{},
        .rng_seed = setup.seed,
    };
    world.sim.add_node(asn, std::make_unique<PvrNode>(std::move(config)));
  };

  make_node(world.prover, PvrRole::kProver);
  make_node(world.recipient, PvrRole::kRecipient);
  for (const bgp::AsNumber provider : world.providers) {
    make_node(provider, PvrRole::kProvider);
  }

  // Star links to the prover plus a verifier mesh for gossip.
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.sim.connect(world.prover, verifier, {.latency = 1000});
  }
  for (std::size_t i = 0; i < verifiers.size(); ++i) {
    for (std::size_t j = i + 1; j < verifiers.size(); ++j) {
      world.sim.connect(verifiers[i], verifiers[j], {.latency = 1000});
    }
  }
  return handles;
}

}  // namespace pvr::core
