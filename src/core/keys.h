// Per-AS signing keys and signed message envelopes.
//
// Every PVR artifact that can become evidence — route announcements,
// commitment bundles, reveals — travels inside a SignedMessage so that a
// third-party auditor can later attribute it to its author (paper §2.3,
// "Evidence"). Key distribution is assumed out of band (an RPKI-like
// directory), as in S-BGP.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "bgp/as_path.h"
#include "crypto/rsa.h"

namespace pvr::core {

class VerifyContext;

// Public keys of all participating ASes.
class KeyDirectory {
 public:
  KeyDirectory();
  ~KeyDirectory();
  // Copies and moves transfer the key map only; the lazily-built default
  // VerifyContext holds a back-pointer to its directory, so the target
  // starts fresh and rebuilds on first use.
  KeyDirectory(const KeyDirectory& other);
  KeyDirectory(KeyDirectory&& other) noexcept;
  KeyDirectory& operator=(const KeyDirectory& other);
  KeyDirectory& operator=(KeyDirectory&& other) noexcept;

  void add(bgp::AsNumber asn, crypto::RsaPublicKey key);
  [[nodiscard]] const crypto::RsaPublicKey* find(bgp::AsNumber asn) const;
  [[nodiscard]] bool contains(bgp::AsNumber asn) const;
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] std::vector<bgp::AsNumber> members() const;

  // The directory's shared default verification context (verify_context.h):
  // per-key Montgomery precompute, verdict cache OFF. Built lazily on first
  // use and reused by every verify_message(directory, ...) call site, so
  // legacy callers amortize the per-key precompute without any plumbing.
  // Thread-safe; the reference stays valid for the directory's lifetime.
  [[nodiscard]] const VerifyContext& verify_context() const;

 private:
  std::map<bgp::AsNumber, crypto::RsaPublicKey> keys_;
  // Double-checked lazy init: the atomic pointer is the fast path, the
  // mutex serializes the one-time construction.
  mutable std::mutex ctx_mu_;
  mutable std::unique_ptr<VerifyContext> ctx_;
  mutable std::atomic<const VerifyContext*> ctx_ptr_{nullptr};
};

struct SignedMessage {
  bgp::AsNumber signer = 0;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> signature;

  [[nodiscard]] bool operator==(const SignedMessage&) const = default;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SignedMessage decode(std::span<const std::uint8_t> data);
};

// Signs `payload` as `signer`. The signature covers signer || payload so a
// message cannot be re-attributed to another AS.
[[nodiscard]] SignedMessage sign_message(bgp::AsNumber signer,
                                         const crypto::RsaPrivateKey& key,
                                         std::vector<std::uint8_t> payload);

[[nodiscard]] bool verify_message(const KeyDirectory& directory,
                                  const SignedMessage& message);

// The exact byte string rsa_sign / rsa_verify operate on for a
// SignedMessage (domain tag || signer || payload). Exposed so batched
// verifiers can feed many messages into crypto::rsa_verify_batch.
[[nodiscard]] std::vector<std::uint8_t> message_signing_input(
    bgp::AsNumber signer, std::span<const std::uint8_t> payload);

// Generates one key pair per AS, deterministically from `rng`. 1024-bit by
// default, matching the paper's overhead discussion (§3.8).
struct AsKeyPairs {
  KeyDirectory directory;
  std::map<bgp::AsNumber, crypto::RsaKeyPair> private_keys;
};
[[nodiscard]] AsKeyPairs generate_keys(const std::vector<bgp::AsNumber>& asns,
                                       crypto::Drbg& rng,
                                       std::size_t modulus_bits = 1024);

}  // namespace pvr::core
