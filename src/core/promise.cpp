#include "core/promise.h"

#include <algorithm>
#include <limits>

namespace pvr::core {

namespace {

// Shortest input length over the given neighbors; nullopt if none provided.
[[nodiscard]] std::optional<std::size_t> shortest_length(
    const Promise::Inputs& inputs, const std::set<bgp::AsNumber>* subset) {
  std::optional<std::size_t> best;
  for (const auto& [neighbor, route] : inputs) {
    if (!route.has_value()) continue;
    if (subset != nullptr && !subset->contains(neighbor)) continue;
    if (!best || route->path.length() < *best) best = route->path.length();
  }
  return best;
}

}  // namespace

bool Promise::holds(
    const Inputs& inputs, const std::optional<bgp::Route>& output,
    const std::map<bgp::AsNumber, std::optional<bgp::Route>>& other_outputs)
    const {
  switch (type) {
    case PromiseType::kShortestOfAll: {
      const auto best = shortest_length(inputs, nullptr);
      if (!best) return !output.has_value();
      return output.has_value() && output->path.length() <= *best;
    }
    case PromiseType::kShortestOfSubset: {
      const auto best = shortest_length(inputs, &subset);
      if (!best) return !output.has_value();
      return output.has_value() && output->path.length() <= *best;
    }
    case PromiseType::kWithinSlackOfBest: {
      const auto best = shortest_length(inputs, nullptr);
      if (!best) return !output.has_value();
      return output.has_value() && output->path.length() <= *best + slack;
    }
    case PromiseType::kNoLongerThanOthers: {
      if (!output.has_value()) {
        // Vacuous only if nothing was told to anybody else either.
        return std::all_of(other_outputs.begin(), other_outputs.end(),
                           [](const auto& kv) { return !kv.second.has_value(); });
      }
      for (const auto& [neighbor, other] : other_outputs) {
        if (other.has_value() && other->path.length() < output->path.length()) {
          return false;
        }
      }
      return true;
    }
    case PromiseType::kExistentialFromSubset: {
      const bool any_input = std::any_of(
          inputs.begin(), inputs.end(), [&](const auto& kv) {
            return kv.second.has_value() && subset.contains(kv.first);
          });
      return any_input == output.has_value();
    }
    case PromiseType::kFallbackUnlessPrimaryShorter: {
      std::optional<std::size_t> primary_len;
      if (const auto it = inputs.find(primary);
          it != inputs.end() && it->second.has_value()) {
        primary_len = it->second->path.length();
      }
      const auto fallback_len = shortest_length(inputs, &subset);
      const bool primary_wins =
          primary_len.has_value() &&
          (!fallback_len.has_value() || *primary_len < *fallback_len);
      if (primary_wins) {
        return output.has_value() && output->path.length() <= *primary_len;
      }
      if (!fallback_len) return !output.has_value();
      return output.has_value() && output->path.length() <= *fallback_len;
    }
  }
  return false;
}

std::string Promise::to_string() const {
  auto subset_text = [this] {
    std::string out = "{";
    bool first = true;
    for (const bgp::AsNumber asn : subset) {
      if (!first) out += ",";
      out += std::to_string(asn);
      first = false;
    }
    return out + "}";
  };
  switch (type) {
    case PromiseType::kShortestOfAll:
      return "shortest-of-all";
    case PromiseType::kShortestOfSubset:
      return "shortest-of" + subset_text();
    case PromiseType::kWithinSlackOfBest:
      return "within-" + std::to_string(slack) + "-of-best";
    case PromiseType::kNoLongerThanOthers:
      return "no-longer-than-others";
    case PromiseType::kExistentialFromSubset:
      return "exists-from" + subset_text();
    case PromiseType::kFallbackUnlessPrimaryShorter:
      return "fallback" + subset_text() + "-unless-" + std::to_string(primary) +
             "-shorter";
  }
  return "unknown";
}

namespace {

// The set of neighbors whose input variables feed operator `op_id`.
[[nodiscard]] std::set<bgp::AsNumber> operand_neighbors(
    const rfg::RouteFlowGraph& graph, const rfg::VertexId& op_id) {
  std::set<bgp::AsNumber> out;
  for (const rfg::VertexId& operand : graph.operator_vertex(op_id).operands) {
    if (!graph.has_variable(operand)) continue;
    const auto& var = graph.variable(operand);
    if (var.role == rfg::VariableRole::kInput) out.insert(var.neighbor);
  }
  return out;
}

}  // namespace

bool graph_implements_promise(const rfg::RouteFlowGraph& graph,
                              const Promise& promise) {
  const auto outputs = graph.output_variables();
  if (outputs.size() != 1) return false;
  const auto producer = graph.producer_of(outputs.front());
  if (!producer) return false;
  const rfg::OperatorVertex& op = graph.operator_vertex(*producer);
  const std::string descriptor = op.op->descriptor();

  switch (promise.type) {
    case PromiseType::kShortestOfAll: {
      // All inputs of the graph must flow into one minimum operator.
      if (descriptor != "min") return false;
      const auto all_inputs = graph.input_variables();
      std::set<rfg::VertexId> operand_set(op.operands.begin(), op.operands.end());
      return std::all_of(all_inputs.begin(), all_inputs.end(),
                         [&](const rfg::VertexId& v) {
                           return operand_set.contains(v);
                         });
    }
    case PromiseType::kShortestOfSubset: {
      if (descriptor != "min") return false;
      return operand_neighbors(graph, *producer) == promise.subset;
    }
    case PromiseType::kExistentialFromSubset: {
      if (descriptor != "exists") return false;
      return operand_neighbors(graph, *producer) == promise.subset;
    }
    case PromiseType::kFallbackUnlessPrimaryShorter: {
      if (descriptor != "prefer-if-shorter" || op.operands.size() != 2) {
        return false;
      }
      // Operand 0 must be the primary's input variable.
      if (!graph.has_variable(op.operands[0])) return false;
      const auto& primary_var = graph.variable(op.operands[0]);
      if (primary_var.role != rfg::VariableRole::kInput ||
          primary_var.neighbor != promise.primary) {
        return false;
      }
      // Operand 1 must be produced by a minimum over exactly the subset.
      const auto fallback_producer = graph.producer_of(op.operands[1]);
      if (!fallback_producer) return false;
      const rfg::OperatorVertex& min_op = graph.operator_vertex(*fallback_producer);
      if (min_op.op->descriptor() != "min") return false;
      return operand_neighbors(graph, *fallback_producer) == promise.subset;
    }
    case PromiseType::kWithinSlackOfBest:
    case PromiseType::kNoLongerThanOthers:
      // No canonical single-operator shape recognizable; conservative "no".
      return false;
  }
  return false;
}

bool access_sufficient_for(const rfg::RouteFlowGraph& graph,
                           const rfg::AccessPolicy& policy,
                           const Promise& promise, bgp::AsNumber recipient) {
  const auto outputs = graph.output_variables();
  if (outputs.size() != 1) return false;
  const rfg::VertexId& output = outputs.front();

  // The recipient must be able to see the output it receives.
  if (!policy.allowed(recipient, output, rfg::Component::kPayload)) return false;

  // Every provider in the promise's range must see its own input variable
  // (otherwise it cannot check reveals against what it actually sent).
  std::set<bgp::AsNumber> range = promise.subset;
  if (promise.type == PromiseType::kShortestOfAll) {
    range.clear();
    for (const rfg::VertexId& id : graph.input_variables()) {
      range.insert(graph.variable(id).neighbor);
    }
  }
  if (promise.type == PromiseType::kFallbackUnlessPrimaryShorter) {
    range.insert(promise.primary);
  }
  for (const bgp::AsNumber provider : range) {
    if (!policy.allowed(provider, rfg::input_variable_id(provider),
                        rfg::Component::kPayload)) {
      return false;
    }
  }

  // Everyone in the protocol must be able to see the deciding operator's
  // type and wiring (a promise about an invisible rule is unverifiable —
  // the paper's "trivial example" of insufficient access).
  const auto producer = graph.producer_of(output);
  if (!producer) return false;
  for (const bgp::AsNumber network : range) {
    if (!policy.allowed(network, *producer, rfg::Component::kPayload)) return false;
  }
  return policy.allowed(recipient, *producer, rfg::Component::kPayload);
}

}  // namespace pvr::core
