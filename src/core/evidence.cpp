#include "core/evidence.h"

#include <algorithm>
#include <stdexcept>

#include "core/bundle_aggregation.h"
#include "core/min_protocol.h"
#include "crypto/encoding.h"

namespace pvr::core {

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kEquivocation: return "equivocation";
    case ViolationKind::kBadOpening: return "bad-opening";
    case ViolationKind::kBitNotSet: return "bit-not-set";
    case ViolationKind::kMissingReveal: return "missing-reveal";
    case ViolationKind::kNonMonotoneBits: return "non-monotone-bits";
    case ViolationKind::kOutputNotMinimal: return "output-not-minimal";
    case ViolationKind::kOutputWithoutInput: return "output-without-input";
    case ViolationKind::kSuppressedOutput: return "suppressed-output";
    case ViolationKind::kBadSignature: return "bad-signature";
    case ViolationKind::kStructuralMismatch: return "structural-mismatch";
  }
  return "unknown";
}

std::string Evidence::to_string() const {
  return core::to_string(kind) + " against AS" + std::to_string(accused) +
         " (reported by AS" + std::to_string(reporter) + "): " + detail;
}

std::vector<std::uint8_t> Evidence::encode() const {
  crypto::ByteWriter writer;
  writer.put_u8(static_cast<std::uint8_t>(kind));
  writer.put_u32(accused);
  writer.put_u32(reporter);
  writer.put_u32(index);
  writer.put_u32(static_cast<std::uint32_t>(messages.size()));
  for (const SignedMessage& message : messages) {
    writer.put_bytes(message.encode());
  }
  writer.put_string(detail);
  return writer.take();
}

Evidence Evidence::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  Evidence evidence;
  evidence.kind = static_cast<ViolationKind>(reader.get_u8());
  evidence.accused = reader.get_u32();
  evidence.reporter = reader.get_u32();
  evidence.index = reader.get_u32();
  const std::uint32_t count = reader.get_u32();
  evidence.messages.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    evidence.messages.push_back(SignedMessage::decode(reader.get_bytes()));
  }
  evidence.detail = reader.get_string();
  if (!reader.exhausted()) {
    throw std::out_of_range("Evidence::decode: trailing bytes");
  }
  return evidence;
}

Auditor::Auditor(const KeyDirectory* directory) : directory_(directory) {
  if (directory_ == nullptr) {
    throw std::invalid_argument("Auditor: null key directory");
  }
}

namespace {

// All decode helpers return nullopt instead of throwing: malformed evidence
// must never crash the auditor, only fail to convince it.

template <typename T>
[[nodiscard]] std::optional<T> try_decode(const SignedMessage& message) {
  try {
    return T::decode(message.payload);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

[[nodiscard]] std::optional<std::vector<bool>> open_all_bits(
    const CommitmentBundle& bundle, const RevealToRecipient& reveal) {
  if (reveal.openings.size() != bundle.bits.size()) return std::nullopt;
  std::vector<bool> bits(bundle.bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!crypto::verify_commitment(bundle.bits[i], reveal.openings[i])) {
      return std::nullopt;
    }
    if (reveal.openings[i].value.size() != 1 ||
        reveal.openings[i].value[0] > 1) {
      return std::nullopt;
    }
    bits[i] = reveal.openings[i].value[0] == 1;
  }
  return bits;
}

}  // namespace

bool Auditor::validate(const Evidence& evidence) const {
  // Every message in valid evidence must carry the accused's (or, for
  // provenance, another directory member's) verifiable signature.
  const auto verified = [&](std::size_t index,
                            bgp::AsNumber expected_signer) -> const SignedMessage* {
    if (index >= evidence.messages.size()) return nullptr;
    const SignedMessage& message = evidence.messages[index];
    if (message.signer != expected_signer) return nullptr;
    if (!verify_message(*directory_, message)) return nullptr;
    return &message;
  };

  switch (evidence.kind) {
    case ViolationKind::kEquivocation: {
      const SignedMessage* first = verified(0, evidence.accused);
      const SignedMessage* second = verified(1, evidence.accused);
      if (first == nullptr || second == nullptr) return false;
      // Legacy wire mode: two signed CommitmentBundles for one round.
      const auto a = try_decode<CommitmentBundle>(*first);
      const auto b = try_decode<CommitmentBundle>(*second);
      if (a && b) {
        return a->id == b->id && a->id.prover == evidence.accused &&
               first->payload != second->payload;
      }
      // Aggregated wire mode: two content-distinct signed roots that are
      // either for one (prover, epoch, batch) window or for two windows
      // claiming a common round (batch-split equivocation).
      const auto ra = try_decode<AggregatedBundle>(*first);
      const auto rb = try_decode<AggregatedBundle>(*second);
      if (!ra || !rb) return false;
      return ra->prover == evidence.accused && roots_conflict(*ra, *rb);
    }

    case ViolationKind::kBadOpening: {
      const SignedMessage* bundle_msg = verified(0, evidence.accused);
      const SignedMessage* reveal_msg = verified(1, evidence.accused);
      if (bundle_msg == nullptr || reveal_msg == nullptr) return false;
      const auto bundle = try_decode<CommitmentBundle>(*bundle_msg);
      if (!bundle || bundle->id.prover != evidence.accused) return false;
      // The reveal may be either flavor; the claim is "the accused signed
      // an opening for bit `index` that does not match its own commitment".
      if (evidence.index == 0 || evidence.index > bundle->bits.size()) {
        return false;
      }
      if (const auto provider = try_decode<RevealToProvider>(*reveal_msg)) {
        return provider->id == bundle->id &&
               provider->bit_index == evidence.index &&
               !crypto::verify_commitment(bundle->bits[evidence.index - 1],
                                          provider->opening);
      }
      if (const auto recipient = try_decode<RevealToRecipient>(*reveal_msg)) {
        return recipient->id == bundle->id &&
               recipient->openings.size() == bundle->bits.size() &&
               !crypto::verify_commitment(bundle->bits[evidence.index - 1],
                                          recipient->openings[evidence.index - 1]);
      }
      return false;
    }

    case ViolationKind::kBitNotSet: {
      // The accused's signed reveal for bit index l acknowledges an input
      // of length l while opening the bit to 0.
      const SignedMessage* bundle_msg = verified(0, evidence.accused);
      const SignedMessage* reveal_msg = verified(1, evidence.accused);
      if (bundle_msg == nullptr || reveal_msg == nullptr) return false;
      const auto bundle = try_decode<CommitmentBundle>(*bundle_msg);
      const auto reveal = try_decode<RevealToProvider>(*reveal_msg);
      if (!bundle || !reveal) return false;
      if (!(reveal->id == bundle->id) || bundle->id.prover != evidence.accused) {
        return false;
      }
      if (reveal->bit_index == 0 || reveal->bit_index > bundle->bits.size()) {
        return false;
      }
      if (!crypto::verify_commitment(bundle->bits[reveal->bit_index - 1],
                                     reveal->opening)) {
        return false;
      }
      return reveal->opening.value == std::vector<std::uint8_t>{0};
    }

    case ViolationKind::kNonMonotoneBits: {
      const SignedMessage* bundle_msg = verified(0, evidence.accused);
      const SignedMessage* reveal_msg = verified(1, evidence.accused);
      if (bundle_msg == nullptr || reveal_msg == nullptr) return false;
      const auto bundle = try_decode<CommitmentBundle>(*bundle_msg);
      const auto reveal = try_decode<RevealToRecipient>(*reveal_msg);
      if (!bundle || !reveal || !(reveal->id == bundle->id)) return false;
      if (bundle->op != OperatorKind::kMinimum) return false;
      const auto bits = open_all_bits(*bundle, *reveal);
      if (!bits) return false;
      bool seen_set = false;
      for (const bool bit : *bits) {
        if (bit) {
          seen_set = true;
        } else if (seen_set) {
          return true;
        }
      }
      return false;
    }

    case ViolationKind::kOutputNotMinimal:
    case ViolationKind::kOutputWithoutInput:
    case ViolationKind::kSuppressedOutput: {
      const SignedMessage* bundle_msg = verified(0, evidence.accused);
      const SignedMessage* reveal_msg = verified(1, evidence.accused);
      const SignedMessage* export_msg = verified(2, evidence.accused);
      if (bundle_msg == nullptr || reveal_msg == nullptr || export_msg == nullptr) {
        return false;
      }
      const auto bundle = try_decode<CommitmentBundle>(*bundle_msg);
      const auto reveal = try_decode<RevealToRecipient>(*reveal_msg);
      const auto statement = try_decode<ExportStatement>(*export_msg);
      if (!bundle || !reveal || !statement) return false;
      if (!(reveal->id == bundle->id) || !(statement->id == bundle->id)) {
        return false;
      }
      const auto bits = open_all_bits(*bundle, *reveal);
      if (!bits) return false;
      const bool any_set =
          std::any_of(bits->begin(), bits->end(), [](bool b) { return b; });

      if (evidence.kind == ViolationKind::kSuppressedOutput) {
        return !statement->has_route && any_set;
      }

      if (!statement->has_route) return false;
      // Re-derive provenance validity exactly as the recipient verifier did.
      const auto provenance_length = [&]() -> std::optional<std::size_t> {
        if (!statement->provenance.has_value()) return std::nullopt;
        if (!verify_message(*directory_, *statement->provenance)) {
          return std::nullopt;
        }
        const auto input = try_decode<InputAnnouncement>(*statement->provenance);
        if (!input || !(input->id == bundle->id)) return std::nullopt;
        if (input->provider != statement->provenance->signer) return std::nullopt;
        if (statement->route.path !=
            input->route.path.prepended(bundle->id.prover)) {
          return std::nullopt;
        }
        if (statement->route.prefix != input->route.prefix) return std::nullopt;
        return input->route.path.length();
      }();

      if (evidence.kind == ViolationKind::kOutputWithoutInput) {
        return !provenance_length.has_value() || !any_set;
      }
      // kOutputNotMinimal:
      if (!provenance_length.has_value() || !any_set) return false;
      if (bundle->op != OperatorKind::kMinimum) return false;
      const std::size_t min_set = static_cast<std::size_t>(
          std::find(bits->begin(), bits->end(), true) - bits->begin()) + 1;
      return *provenance_length != min_set;
    }

    case ViolationKind::kMissingReveal:
    case ViolationKind::kBadSignature:
      // Liveness / transport faults: detectable, not third-party provable.
      return false;

    case ViolationKind::kStructuralMismatch:
      // Graph-protocol evidence is validated by the graph layer
      // (core::verify_vertex_disclosure); the generic auditor cannot
      // reconstruct the tree without the disclosures, so it rejects.
      return false;
  }
  return false;
}

}  // namespace pvr::core
