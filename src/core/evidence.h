// Violations, evidence, and the third-party auditor (paper §2.3).
//
// PVR's four properties are Detection, Evidence, Accuracy, Confidentiality.
// This module implements the Evidence and Accuracy halves: every detected
// *safety* violation is packaged as a self-contained Evidence object built
// from the misbehaving AS's own signed artifacts, and `Auditor::validate`
// is the "convince a third party" predicate — it re-derives the violation
// from the signed artifacts alone, so a correct AS can always disprove
// fabricated evidence (validation fails) and a guilty AS cannot repudiate
// (its signatures bind it).
//
// Liveness faults (a reveal or export that never arrives) are detectable by
// the waiting neighbor but not third-party provable without signed
// acknowledgments of message delivery; validate() deliberately rejects
// those kinds. See DESIGN.md §7.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/keys.h"
#include "crypto/commitment.h"

namespace pvr::core {

enum class ViolationKind : std::uint8_t {
  // Two different signed commitment bundles for the same protocol round.
  kEquivocation = 0,
  // A reveal whose opening does not match the committed value.
  kBadOpening = 1,
  // Provider Ni supplied a route of length l but the opened bit b_l is 0.
  kBitNotSet = 2,
  // Provider supplied a route but received no (or a malformed) reveal.
  // Detectable; NOT third-party provable (liveness).
  kMissingReveal = 3,
  // Recipient-side: some b_i = 1 with b_j = 0 for j > i.
  kNonMonotoneBits = 4,
  // Recipient-side: exported route's input length != the minimum set bit.
  kOutputNotMinimal = 5,
  // Recipient-side: a route was exported although no bit is set, or its
  // provenance (the providing neighbor's signature chain) is invalid.
  kOutputWithoutInput = 6,
  // Recipient-side: a bit is set but the signed export statement says
  // "no route".
  kSuppressedOutput = 7,
  // A signature that fails verification where one is required.
  // Detectable; not provable (anyone can corrupt bytes).
  kBadSignature = 8,
  // Graph protocol: a disclosed vertex is inconsistent with the committed
  // root, or the disclosed structure does not implement the promise.
  kStructuralMismatch = 9,
};

[[nodiscard]] std::string to_string(ViolationKind kind);

struct Evidence {
  ViolationKind kind = ViolationKind::kBadSignature;
  bgp::AsNumber accused = 0;
  bgp::AsNumber reporter = 0;
  // Bit index the violation refers to (kBitNotSet / kBadOpening), 1-based.
  std::uint32_t index = 0;
  // The accused's signed artifacts, in kind-specific order (see auditor.cpp
  // table in min_protocol.h). Everything the auditor needs is here.
  std::vector<SignedMessage> messages;
  std::string detail;  // human-readable diagnosis

  [[nodiscard]] std::string to_string() const;

  // Canonical wire form (ByteWriter layout): evidence is self-contained by
  // design, so a serialized item validates anywhere — the multiprocess node
  // processes ship their verifiers' logs back to the conductor with this.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Evidence decode(std::span<const std::uint8_t> data);
};

// Third-party evidence validation. Holds only public keys; never sees
// protocol state, so whatever it accepts is reproducible by anyone.
class Auditor {
 public:
  explicit Auditor(const KeyDirectory* directory);

  // True iff the evidence proves the accused misbehaved.
  [[nodiscard]] bool validate(const Evidence& evidence) const;

 private:
  const KeyDirectory* directory_;  // not owned
};

}  // namespace pvr::core
