#include "core/bundle_aggregation.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "core/verify_context.h"

namespace pvr::core {

namespace {

constexpr std::string_view kAggregatedBundleTag = "pvr-aggregated-bundle";
constexpr std::string_view kAggregatedMessageTag = "pvr.bundle.agg";

}  // namespace

bool AggregatedBundle::covers(const bgp::Ipv4Prefix& prefix) const {
  return std::find(prefixes.begin(), prefixes.end(), prefix) != prefixes.end();
}

std::vector<std::uint8_t> AggregatedBundle::encode() const {
  crypto::ByteWriter writer;
  writer.put_string(kAggregatedBundleTag);
  writer.put_u32(prover);
  writer.put_u64(epoch);
  writer.put_u32(batch);
  writer.put_u32(prefix_count());
  for (const bgp::Ipv4Prefix& prefix : prefixes) prefix.encode(writer);
  writer.put_raw(std::span(root.data(), root.size()));
  return writer.take();
}

AggregatedBundle AggregatedBundle::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != kAggregatedBundleTag) {
    throw std::out_of_range("AggregatedBundle::decode: bad tag");
  }
  AggregatedBundle bundle;
  bundle.prover = reader.get_u32();
  bundle.epoch = reader.get_u64();
  bundle.batch = reader.get_u32();
  const std::uint32_t count = reader.get_u32();
  bundle.prefixes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    bundle.prefixes.push_back(bgp::Ipv4Prefix::decode(reader));
  }
  const std::vector<std::uint8_t> raw = reader.get_raw(crypto::kSha256DigestSize);
  std::copy(raw.begin(), raw.end(), bundle.root.begin());
  return bundle;
}

std::vector<std::uint8_t> AggregatedOpening::encode() const {
  crypto::ByteWriter writer;
  writer.put_bytes(bundle.encode());
  proof.encode(writer);
  return writer.take();
}

AggregatedOpening AggregatedOpening::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  AggregatedOpening opening;
  opening.bundle = CommitmentBundle::decode(reader.get_bytes());
  opening.proof = crypto::MerkleProof::decode(reader);
  return opening;
}

AggregatedCommitment aggregate_bundles(bgp::AsNumber prover,
                                       std::uint64_t epoch,
                                       std::span<const CommitmentBundle> bundles,
                                       const crypto::RsaPrivateKey& key,
                                       std::uint32_t batch) {
  if (bundles.empty()) {
    throw std::invalid_argument("aggregate_bundles: no bundles");
  }
  std::vector<std::vector<std::uint8_t>> leaves;
  leaves.reserve(bundles.size());
  for (const CommitmentBundle& bundle : bundles) {
    leaves.push_back(bundle.encode());
  }
  const crypto::MerkleTree tree = crypto::MerkleTree::build(leaves);

  AggregatedCommitment commitment;
  AggregatedBundle root{
      .prover = prover, .epoch = epoch, .batch = batch, .root = tree.root()};
  for (const CommitmentBundle& bundle : bundles) {
    root.prefixes.push_back(bundle.id.prefix);
  }
  commitment.signed_root = sign_message(prover, key, root.encode());
  commitment.openings.reserve(bundles.size());
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    commitment.openings.push_back(
        AggregatedOpening{.bundle = bundles[i], .proof = tree.prove(i)});
  }
  return commitment;
}

namespace {

// Signature-free part of the aggregated check (the root signature is the
// caller's responsibility, verified once per epoch in the batched form).
[[nodiscard]] bool check_opening_against_root(const AggregatedBundle& root,
                                              bgp::AsNumber root_signer,
                                              const AggregatedOpening& opening) {
  // The opened bundle must belong to the same (prover, epoch) the root was
  // signed for — a proof from another epoch's tree must not transplant.
  if (opening.bundle.id.prover != root.prover ||
      opening.bundle.id.epoch != root.epoch || root.prover != root_signer) {
    return false;
  }
  if (!root.covers(opening.bundle.id.prefix)) return false;
  if (opening.proof.leaf_count != root.prefix_count()) return false;
  return crypto::MerkleTree::verify(root.root, opening.bundle.encode(),
                                    opening.proof);
}

}  // namespace

bool verify_aggregated_opening(const VerifyContext& ctx,
                               const SignedMessage& signed_root,
                               const AggregatedOpening& opening) {
  if (!ctx.verify(signed_root)) return false;
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(signed_root.payload);
  } catch (const std::out_of_range&) {
    return false;
  }
  return check_opening_against_root(root, signed_root.signer, opening);
}

bool verify_aggregated_opening(const KeyDirectory& directory,
                               const SignedMessage& signed_root,
                               const AggregatedOpening& opening) {
  return verify_aggregated_opening(directory.verify_context(), signed_root,
                                   opening);
}

std::vector<bool> verify_aggregated_openings(
    const VerifyContext& ctx, const SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings) {
  std::vector<bool> out(openings.size(), false);
  if (!ctx.verify(signed_root)) return out;
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(signed_root.payload);
  } catch (const std::out_of_range&) {
    return out;
  }
  for (std::size_t i = 0; i < openings.size(); ++i) {
    out[i] = check_opening_against_root(root, signed_root.signer, openings[i]);
  }
  return out;
}

std::vector<bool> verify_aggregated_openings(
    const KeyDirectory& directory, const SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings) {
  return verify_aggregated_openings(directory.verify_context(), signed_root,
                                    openings);
}

// ---- Envelope-level wire aggregation ----

void SignedBundleOpening::encode(crypto::ByteWriter& writer) const {
  writer.put_bytes(bundle.encode());
  proof.encode(writer);
}

SignedBundleOpening SignedBundleOpening::decode(crypto::ByteReader& reader) {
  SignedBundleOpening opening;
  opening.bundle = SignedMessage::decode(reader.get_bytes());
  opening.proof = crypto::MerkleProof::decode(reader);
  return opening;
}

std::vector<std::uint8_t> AggregatedBundleMessage::encode() const {
  crypto::ByteWriter writer;
  writer.put_string(kAggregatedMessageTag);
  writer.put_bytes(signed_root.encode());
  writer.put_u32(static_cast<std::uint32_t>(openings.size()));
  for (const SignedBundleOpening& opening : openings) opening.encode(writer);
  return writer.take();
}

AggregatedBundleMessage AggregatedBundleMessage::decode(
    std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != kAggregatedMessageTag) {
    throw std::out_of_range("AggregatedBundleMessage::decode: bad tag");
  }
  AggregatedBundleMessage message;
  message.signed_root = SignedMessage::decode(reader.get_bytes());
  const std::uint32_t count = reader.get_u32();
  message.openings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    message.openings.push_back(SignedBundleOpening::decode(reader));
  }
  return message;
}

AggregatedBundleMessage aggregate_signed_bundles(
    bgp::AsNumber prover, std::uint64_t epoch, std::uint32_t batch,
    std::span<const SignedMessage> bundles, const crypto::RsaPrivateKey& key) {
  if (bundles.empty()) {
    throw std::invalid_argument("aggregate_signed_bundles: no bundles");
  }
  std::vector<std::vector<std::uint8_t>> leaves;
  leaves.reserve(bundles.size());
  for (const SignedMessage& bundle : bundles) leaves.push_back(bundle.encode());
  const crypto::MerkleTree tree = crypto::MerkleTree::build(leaves);

  AggregatedBundleMessage message;
  AggregatedBundle root{
      .prover = prover, .epoch = epoch, .batch = batch, .root = tree.root()};
  for (const SignedMessage& bundle : bundles) {
    root.prefixes.push_back(CommitmentBundle::decode(bundle.payload).id.prefix);
  }
  message.signed_root = sign_message(prover, key, root.encode());
  message.openings.reserve(bundles.size());
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    message.openings.push_back(
        SignedBundleOpening{.bundle = bundles[i], .proof = tree.prove(i)});
  }
  return message;
}

bool verify_signed_opening(const AggregatedBundle& root,
                           const SignedBundleOpening& opening) {
  if (opening.bundle.signer != root.prover) return false;
  if (opening.proof.leaf_count != root.prefix_count()) return false;
  // The opened bundle must belong to this window's (prover, epoch) — a
  // proof from another epoch's tree must not transplant — and its round
  // must be in the window's SIGNED prefix list, otherwise a prover could
  // hide a round inside the tree while omitting it from every window's
  // list, and no two windows would ever conflict over it (the batch-split
  // evasion the list exists to close).
  try {
    const CommitmentBundle opened = CommitmentBundle::decode(opening.bundle.payload);
    if (opened.id.prover != root.prover || opened.id.epoch != root.epoch ||
        !root.covers(opened.id.prefix)) {
      return false;
    }
  } catch (const std::out_of_range&) {
    return false;
  }
  return crypto::MerkleTree::verify(root.root, opening.bundle.encode(),
                                    opening.proof);
}

bool roots_conflict(const AggregatedBundle& a, const AggregatedBundle& b) {
  if (a.prover != b.prover || a.epoch != b.epoch) return false;
  if (a.root == b.root) return false;
  // Same window signed twice with different contents — or two windows
  // claiming a common round (the batch-split evasion).
  if (a.batch == b.batch) return true;
  return std::any_of(a.prefixes.begin(), a.prefixes.end(),
                     [&](const bgp::Ipv4Prefix& prefix) { return b.covers(prefix); });
}

std::optional<Evidence> check_root_equivocation(const VerifyContext& ctx,
                                                bgp::AsNumber reporter,
                                                const SignedMessage& first,
                                                const SignedMessage& second) {
  if (!ctx.verify(first) || !ctx.verify(second)) {
    return std::nullopt;
  }
  if (first.signer != second.signer) return std::nullopt;
  AggregatedBundle a;
  AggregatedBundle b;
  try {
    a = AggregatedBundle::decode(first.payload);
    b = AggregatedBundle::decode(second.payload);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
  if (a.prover != first.signer || b.prover != second.signer) return std::nullopt;
  if (!roots_conflict(a, b)) return std::nullopt;
  return Evidence{
      .kind = ViolationKind::kEquivocation,
      .accused = first.signer,
      .reporter = reporter,
      .index = 0,
      .messages = {first, second},
      .detail = a.batch == b.batch
                    ? "two conflicting signed bundle roots for one aggregation window"
                    : "two aggregation windows claim the same round"};
}

std::optional<Evidence> check_root_equivocation(const KeyDirectory& directory,
                                                bgp::AsNumber reporter,
                                                const SignedMessage& first,
                                                const SignedMessage& second) {
  return check_root_equivocation(directory.verify_context(), reporter, first,
                                 second);
}

}  // namespace pvr::core
