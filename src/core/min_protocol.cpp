#include "core/min_protocol.h"

#include <algorithm>
#include <stdexcept>

#include "core/verify_context.h"

namespace pvr::core {

// ---- ProtocolId ----

std::string ProtocolId::gossip_topic() const {
  return "pvr/" + std::to_string(prover) + "/" + prefix.to_string() + "/" +
         std::to_string(epoch);
}

void ProtocolId::encode(crypto::ByteWriter& writer) const {
  writer.put_u32(prover);
  prefix.encode(writer);
  writer.put_u64(epoch);
}

ProtocolId ProtocolId::decode(crypto::ByteReader& reader) {
  ProtocolId id;
  id.prover = reader.get_u32();
  id.prefix = bgp::Ipv4Prefix::decode(reader);
  id.epoch = reader.get_u64();
  return id;
}

std::size_t ProtocolIdHash::operator()(const ProtocolId& id) const noexcept {
  // splitmix64 over the packed fields: cheap, well-distributed, and stable
  // across runs (no per-process seeding), which keeps shard assignment
  // reproducible.
  const auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  std::uint64_t h = mix(static_cast<std::uint64_t>(id.prover) << 32 |
                        id.prefix.address());
  h = mix(h ^ (static_cast<std::uint64_t>(id.prefix.length()) << 56 | id.epoch));
  return static_cast<std::size_t>(h);
}

// ---- Wire payloads ----

std::vector<std::uint8_t> InputAnnouncement::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.input");
  id.encode(writer);
  writer.put_u32(provider);
  route.encode(writer);
  return writer.take();
}

InputAnnouncement InputAnnouncement::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.input") {
    throw std::out_of_range("InputAnnouncement: bad tag");
  }
  InputAnnouncement out;
  out.id = ProtocolId::decode(reader);
  out.provider = reader.get_u32();
  out.route = bgp::Route::decode(reader);
  return out;
}

std::vector<std::uint8_t> CommitmentBundle::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.bundle");
  id.encode(writer);
  writer.put_u8(static_cast<std::uint8_t>(op));
  writer.put_u32(max_len);
  writer.put_u32(static_cast<std::uint32_t>(bits.size()));
  for (const crypto::Commitment& c : bits) {
    writer.put_raw(std::span(c.digest.data(), c.digest.size()));
  }
  return writer.take();
}

CommitmentBundle CommitmentBundle::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.bundle") {
    throw std::out_of_range("CommitmentBundle: bad tag");
  }
  CommitmentBundle out;
  out.id = ProtocolId::decode(reader);
  const std::uint8_t op = reader.get_u8();
  if (op > 1) throw std::out_of_range("CommitmentBundle: bad operator");
  out.op = static_cast<OperatorKind>(op);
  out.max_len = reader.get_u32();
  const std::uint32_t count = reader.get_u32();
  if (count != out.max_len || count == 0 || count > 4096) {
    throw std::out_of_range("CommitmentBundle: bad bit count");
  }
  out.bits.resize(count);
  for (crypto::Commitment& c : out.bits) {
    const auto raw = reader.get_raw(crypto::kSha256DigestSize);
    std::copy(raw.begin(), raw.end(), c.digest.begin());
  }
  return out;
}

namespace {

void encode_opening(crypto::ByteWriter& writer,
                    const crypto::CommitmentOpening& opening) {
  writer.put_bytes(opening.value);
  writer.put_bytes(opening.nonce);
}

[[nodiscard]] crypto::CommitmentOpening decode_opening(crypto::ByteReader& reader) {
  crypto::CommitmentOpening opening;
  opening.value = reader.get_bytes();
  opening.nonce = reader.get_bytes();
  return opening;
}

}  // namespace

std::vector<std::uint8_t> RevealToProvider::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.reveal.n");
  id.encode(writer);
  writer.put_u32(provider);
  writer.put_u32(bit_index);
  encode_opening(writer, opening);
  return writer.take();
}

RevealToProvider RevealToProvider::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.reveal.n") {
    throw std::out_of_range("RevealToProvider: bad tag");
  }
  RevealToProvider out;
  out.id = ProtocolId::decode(reader);
  out.provider = reader.get_u32();
  out.bit_index = reader.get_u32();
  out.opening = decode_opening(reader);
  return out;
}

std::vector<std::uint8_t> RevealToRecipient::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.reveal.b");
  id.encode(writer);
  writer.put_u32(static_cast<std::uint32_t>(openings.size()));
  for (const crypto::CommitmentOpening& opening : openings) {
    encode_opening(writer, opening);
  }
  return writer.take();
}

RevealToRecipient RevealToRecipient::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.reveal.b") {
    throw std::out_of_range("RevealToRecipient: bad tag");
  }
  RevealToRecipient out;
  out.id = ProtocolId::decode(reader);
  const std::uint32_t count = reader.get_u32();
  if (count == 0 || count > 4096) {
    throw std::out_of_range("RevealToRecipient: bad opening count");
  }
  out.openings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.openings.push_back(decode_opening(reader));
  }
  return out;
}

std::vector<std::uint8_t> ExportStatement::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr.export");
  id.encode(writer);
  writer.put_bool(has_route);
  if (has_route) {
    route.encode(writer);
    writer.put_bool(provenance.has_value());
    if (provenance) writer.put_bytes(provenance->encode());
  }
  return writer.take();
}

ExportStatement ExportStatement::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "pvr.export") {
    throw std::out_of_range("ExportStatement: bad tag");
  }
  ExportStatement out;
  out.id = ProtocolId::decode(reader);
  out.has_route = reader.get_bool();
  if (out.has_route) {
    out.route = bgp::Route::decode(reader);
    if (reader.get_bool()) {
      const auto bytes = reader.get_bytes();
      out.provenance = SignedMessage::decode(bytes);
    }
  }
  return out;
}

// ---- Prover ----

std::vector<bool> compute_bits(OperatorKind op,
                               const std::vector<bgp::Route>& inputs,
                               std::uint32_t max_len) {
  if (op == OperatorKind::kExistential) {
    return {!inputs.empty()};
  }
  std::vector<bool> bits(max_len, false);
  for (const bgp::Route& route : inputs) {
    const std::size_t len = route.path.length();
    if (len == 0 || len > max_len) continue;
    for (std::size_t i = len; i <= max_len; ++i) bits[i - 1] = true;
  }
  return bits;
}

ProverResult run_prover(
    const ProtocolId& id, OperatorKind op,
    const std::map<bgp::AsNumber, std::optional<SignedMessage>>& inputs,
    std::uint32_t max_len, const crypto::RsaPrivateKey& prover_key,
    crypto::Drbg& rng, const ProverMisbehavior& misbehavior) {
  if (op == OperatorKind::kExistential) max_len = 1;
  if (max_len == 0) throw std::invalid_argument("run_prover: max_len == 0");

  // Decode the valid inputs. (The prover already verified signatures on
  // receipt; it keeps the signed envelopes for provenance.)
  struct ValidInput {
    bgp::AsNumber provider;
    InputAnnouncement announcement;
    const SignedMessage* envelope;
  };
  std::vector<ValidInput> valid;
  for (const auto& [provider, envelope] : inputs) {
    if (!envelope.has_value()) continue;
    InputAnnouncement announcement = InputAnnouncement::decode(envelope->payload);
    const std::size_t len = announcement.route.path.length();
    if (len == 0) continue;
    if (op == OperatorKind::kMinimum && len > max_len) continue;
    valid.push_back({provider, std::move(announcement), &*envelope});
  }

  // Honest decision: the minimum (ties by provider ASN, which is also the
  // map iteration order), or the first present input for the existential.
  const ValidInput* honest = nullptr;
  for (const ValidInput& input : valid) {
    if (honest == nullptr) {
      honest = &input;
      continue;
    }
    if (op == OperatorKind::kMinimum &&
        input.announcement.route.path.length() <
            honest->announcement.route.path.length()) {
      honest = &input;
    }
  }

  // Byzantine output selection.
  const ValidInput* actual = honest;
  if (misbehavior.export_nonminimal && !valid.empty()) {
    const ValidInput* longest = &valid.front();
    for (const ValidInput& input : valid) {
      if (input.announcement.route.path.length() >
          longest->announcement.route.path.length()) {
        longest = &input;
      }
    }
    actual = longest;
  }
  if (misbehavior.suppress_export) actual = nullptr;

  // Bit computation (honest, or matching the lie).
  std::vector<bgp::Route> bit_basis;
  if (misbehavior.bits_match_lie) {
    if (actual != nullptr) bit_basis.push_back(actual->announcement.route);
  } else {
    for (const ValidInput& input : valid) {
      bit_basis.push_back(input.announcement.route);
    }
  }
  std::vector<bool> bits = compute_bits(op, bit_basis, max_len);

  if (misbehavior.nonmonotone_bits) {
    // Clear the highest set bit, provided a lower one stays set.
    for (std::size_t i = bits.size(); i-- > 0;) {
      if (bits[i]) {
        const bool lower_set =
            std::any_of(bits.begin(), bits.begin() + static_cast<std::ptrdiff_t>(i),
                        [](bool b) { return b; });
        if (lower_set) bits[i] = false;
        break;
      }
    }
  }

  // Commitments.
  std::vector<crypto::Commitment> commitments(bits.size());
  std::vector<crypto::CommitmentOpening> openings(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    auto [commitment, opening] = crypto::commit_bit(bits[i], rng);
    commitments[i] = commitment;
    openings[i] = std::move(opening);
  }

  CommitmentBundle bundle{
      .id = id, .op = op, .max_len = max_len, .bits = commitments};

  ProverResult result;
  result.signed_bundle = sign_message(id.prover, prover_key, bundle.encode());

  if (misbehavior.equivocate) {
    // Fresh nonces -> different commitments -> a second, conflicting bundle.
    CommitmentBundle alt = bundle;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      auto [commitment, opening] = crypto::commit_bit(bits[i], rng);
      alt.bits[i] = commitment;
    }
    result.equivocating_bundle = sign_message(id.prover, prover_key, alt.encode());
  }

  // Reveals to providers.
  for (const ValidInput& input : valid) {
    if (misbehavior.skip_reveal_for == input.provider) continue;
    const std::uint32_t bit_index =
        op == OperatorKind::kExistential
            ? 1u
            : static_cast<std::uint32_t>(input.announcement.route.path.length());
    RevealToProvider reveal{
        .id = id,
        .provider = input.provider,
        .bit_index = bit_index,
        .opening = openings[bit_index - 1],
    };
    if (misbehavior.wrong_opening_for == input.provider) {
      reveal.opening.nonce[0] ^= 0xff;
    }
    result.provider_reveals.emplace(
        input.provider, sign_message(id.prover, prover_key, reveal.encode()));
  }

  // Reveal to the recipient.
  RevealToRecipient recipient_reveal{.id = id, .openings = openings};
  result.recipient_reveal =
      sign_message(id.prover, prover_key, recipient_reveal.encode());

  // Export statement.
  ExportStatement statement{.id = id, .has_route = false, .route = {}, .provenance = {}};
  if (misbehavior.fabricate_route) {
    statement.has_route = true;
    statement.route = bgp::Route{
        .prefix = id.prefix,
        .path = bgp::AsPath{id.prover, 4242},
        .next_hop = id.prover,
        .local_pref = 0,
        .med = 0,
        .origin = bgp::Origin::kIncomplete,
        .communities = {},
    };
  } else if (actual != nullptr) {
    statement.has_route = true;
    statement.route = actual->announcement.route;
    statement.route.path = statement.route.path.prepended(id.prover);
    statement.route.next_hop = id.prover;
    statement.provenance = *actual->envelope;
  }
  result.export_statement =
      sign_message(id.prover, prover_key, statement.encode());

  if (honest != nullptr) result.honest_output = honest->announcement.route;
  return result;
}

// ---- Verifiers ----

namespace {

[[nodiscard]] Evidence make_evidence(ViolationKind kind, bgp::AsNumber accused,
                                     bgp::AsNumber reporter, std::string detail,
                                     std::vector<SignedMessage> messages = {},
                                     std::uint32_t index = 0) {
  return Evidence{.kind = kind,
                  .accused = accused,
                  .reporter = reporter,
                  .index = index,
                  .messages = std::move(messages),
                  .detail = std::move(detail)};
}

// Decodes and sanity-checks the bundle; appends evidence and returns
// nullopt on failure.
[[nodiscard]] std::optional<CommitmentBundle> checked_bundle(
    const VerifyContext& ctx, bgp::AsNumber reporter,
    const SignedMessage& signed_bundle, std::vector<Evidence>& out) {
  if (!ctx.verify(signed_bundle)) {
    out.push_back(make_evidence(ViolationKind::kBadSignature,
                                signed_bundle.signer, reporter,
                                "commitment bundle signature invalid"));
    return std::nullopt;
  }
  try {
    CommitmentBundle bundle = CommitmentBundle::decode(signed_bundle.payload);
    if (bundle.id.prover != signed_bundle.signer) {
      out.push_back(make_evidence(ViolationKind::kBadSignature,
                                  signed_bundle.signer, reporter,
                                  "bundle prover != signer"));
      return std::nullopt;
    }
    return bundle;
  } catch (const std::out_of_range&) {
    out.push_back(make_evidence(ViolationKind::kBadSignature,
                                signed_bundle.signer, reporter,
                                "commitment bundle malformed"));
    return std::nullopt;
  }
}

[[nodiscard]] bool opened_bit(const crypto::CommitmentOpening& opening) {
  return opening.value.size() == 1 && opening.value[0] == 1;
}

}  // namespace

std::vector<Evidence> verify_as_provider(
    const VerifyContext& ctx, bgp::AsNumber self,
    const std::optional<InputAnnouncement>& own_input,
    const SignedMessage& signed_bundle, const SignedMessage* reveal) {
  std::vector<Evidence> out;
  const auto bundle = checked_bundle(ctx, self, signed_bundle, out);
  if (!bundle) return out;
  const bgp::AsNumber prover = bundle->id.prover;

  if (!own_input.has_value()) return out;  // provided nothing: nothing to check
  const std::size_t len = own_input->route.path.length();
  if (bundle->op == OperatorKind::kMinimum &&
      (len == 0 || len > bundle->max_len)) {
    return out;  // outside the promise's domain
  }
  const std::uint32_t expected_index =
      bundle->op == OperatorKind::kExistential ? 1u
                                               : static_cast<std::uint32_t>(len);

  if (reveal == nullptr) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "no reveal received for provided route"));
    return out;
  }
  if (!ctx.verify(*reveal) || reveal->signer != prover) {
    out.push_back(make_evidence(ViolationKind::kBadSignature, prover, self,
                                "provider reveal signature invalid"));
    return out;
  }
  RevealToProvider decoded;
  try {
    decoded = RevealToProvider::decode(reveal->payload);
  } catch (const std::out_of_range&) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "provider reveal malformed"));
    return out;
  }
  if (!(decoded.id == bundle->id) || decoded.provider != self ||
      decoded.bit_index != expected_index ||
      decoded.bit_index > bundle->max_len) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "reveal does not match this round/provider"));
    return out;
  }
  if (!crypto::verify_commitment(bundle->bits[decoded.bit_index - 1],
                                 decoded.opening)) {
    out.push_back(make_evidence(ViolationKind::kBadOpening, prover, self,
                                "opening does not match commitment",
                                {signed_bundle, *reveal}, decoded.bit_index));
    return out;
  }
  if (!opened_bit(decoded.opening)) {
    out.push_back(make_evidence(
        ViolationKind::kBitNotSet, prover, self,
        "bit b_" + std::to_string(decoded.bit_index) +
            " is 0 although this provider supplied a route of that length",
        {signed_bundle, *reveal}, decoded.bit_index));
  }
  return out;
}

std::vector<Evidence> verify_as_recipient(const VerifyContext& ctx,
                                          bgp::AsNumber self,
                                          const SignedMessage& signed_bundle,
                                          const SignedMessage* recipient_reveal,
                                          const SignedMessage* export_statement) {
  std::vector<Evidence> out;
  const auto bundle = checked_bundle(ctx, self, signed_bundle, out);
  if (!bundle) return out;
  const bgp::AsNumber prover = bundle->id.prover;

  if (recipient_reveal == nullptr || export_statement == nullptr) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "recipient reveal or export statement missing"));
    return out;
  }
  for (const SignedMessage* message : {recipient_reveal, export_statement}) {
    if (!ctx.verify(*message) || message->signer != prover) {
      out.push_back(make_evidence(ViolationKind::kBadSignature, prover, self,
                                  "recipient-side message signature invalid"));
      return out;
    }
  }

  RevealToRecipient reveal;
  ExportStatement statement;
  try {
    reveal = RevealToRecipient::decode(recipient_reveal->payload);
    statement = ExportStatement::decode(export_statement->payload);
  } catch (const std::out_of_range&) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "recipient-side message malformed"));
    return out;
  }
  if (!(reveal.id == bundle->id) || !(statement.id == bundle->id) ||
      reveal.openings.size() != bundle->bits.size()) {
    out.push_back(make_evidence(ViolationKind::kMissingReveal, prover, self,
                                "recipient-side messages do not match round"));
    return out;
  }

  // Open every bit.
  std::vector<bool> bits(bundle->bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!crypto::verify_commitment(bundle->bits[i], reveal.openings[i])) {
      out.push_back(make_evidence(ViolationKind::kBadOpening, prover, self,
                                  "opening " + std::to_string(i + 1) +
                                      " does not match commitment",
                                  {signed_bundle, *recipient_reveal},
                                  static_cast<std::uint32_t>(i + 1)));
      return out;
    }
    bits[i] = opened_bit(reveal.openings[i]);
  }

  // Monotonicity (§3.3: "if some bi is set to 1, then all the bj, j > i,
  // must also be set").
  if (bundle->op == OperatorKind::kMinimum) {
    bool seen_set = false;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) {
        seen_set = true;
      } else if (seen_set) {
        out.push_back(make_evidence(ViolationKind::kNonMonotoneBits, prover,
                                    self, "bit vector is not monotone",
                                    {signed_bundle, *recipient_reveal},
                                    static_cast<std::uint32_t>(i + 1)));
        break;
      }
    }
  }

  const bool any_set = std::any_of(bits.begin(), bits.end(), [](bool b) { return b; });

  if (statement.has_route) {
    // Condition 1: the route must have been provided by some Ni — checked
    // via the provenance signature chain.
    const auto provenance_valid = [&]() -> std::optional<std::size_t> {
      if (!statement.provenance.has_value()) return std::nullopt;
      if (!ctx.verify(*statement.provenance)) return std::nullopt;
      InputAnnouncement input;
      try {
        input = InputAnnouncement::decode(statement.provenance->payload);
      } catch (const std::out_of_range&) {
        return std::nullopt;
      }
      if (!(input.id == bundle->id)) return std::nullopt;
      if (input.provider != statement.provenance->signer) return std::nullopt;
      // Exported path must be the input path prepended with the prover.
      if (statement.route.path != input.route.path.prepended(prover)) {
        return std::nullopt;
      }
      if (statement.route.prefix != input.route.prefix) return std::nullopt;
      return input.route.path.length();
    }();

    if (!provenance_valid.has_value()) {
      out.push_back(make_evidence(
          ViolationKind::kOutputWithoutInput, prover, self,
          "exported route has no valid provenance",
          {signed_bundle, *recipient_reveal, *export_statement}));
      return out;
    }
    if (!any_set) {
      out.push_back(make_evidence(
          ViolationKind::kOutputWithoutInput, prover, self,
          "route exported although all bits are 0",
          {signed_bundle, *recipient_reveal, *export_statement}));
      return out;
    }
    if (bundle->op == OperatorKind::kMinimum) {
      const std::size_t min_set =
          static_cast<std::size_t>(std::find(bits.begin(), bits.end(), true) -
                                   bits.begin()) + 1;
      if (*provenance_valid != min_set) {
        out.push_back(make_evidence(
            ViolationKind::kOutputNotMinimal, prover, self,
            "exported input length " + std::to_string(*provenance_valid) +
                " != committed minimum " + std::to_string(min_set),
            {signed_bundle, *recipient_reveal, *export_statement}));
      }
    }
  } else if (any_set) {
    out.push_back(make_evidence(
        ViolationKind::kSuppressedOutput, prover, self,
        "bits claim a route exists but none was exported",
        {signed_bundle, *recipient_reveal, *export_statement}));
  }
  return out;
}

std::optional<Evidence> check_equivocation(const VerifyContext& ctx,
                                           bgp::AsNumber reporter,
                                           const SignedMessage& first,
                                           const SignedMessage& second) {
  if (!ctx.verify(first) || !ctx.verify(second)) {
    return std::nullopt;
  }
  if (first.signer != second.signer) return std::nullopt;
  CommitmentBundle a;
  CommitmentBundle b;
  try {
    a = CommitmentBundle::decode(first.payload);
    b = CommitmentBundle::decode(second.payload);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
  if (!(a.id == b.id)) return std::nullopt;
  if (first.payload == second.payload) return std::nullopt;
  return make_evidence(ViolationKind::kEquivocation, first.signer, reporter,
                       "two conflicting signed bundles for one round",
                       {first, second});
}

// ---- KeyDirectory convenience wrappers ----

std::vector<Evidence> verify_as_provider(
    const KeyDirectory& directory, bgp::AsNumber self,
    const std::optional<InputAnnouncement>& own_input,
    const SignedMessage& signed_bundle, const SignedMessage* reveal) {
  return verify_as_provider(directory.verify_context(), self, own_input,
                            signed_bundle, reveal);
}

std::vector<Evidence> verify_as_recipient(const KeyDirectory& directory,
                                          bgp::AsNumber self,
                                          const SignedMessage& signed_bundle,
                                          const SignedMessage* recipient_reveal,
                                          const SignedMessage* export_statement) {
  return verify_as_recipient(directory.verify_context(), self, signed_bundle,
                             recipient_reveal, export_statement);
}

std::optional<Evidence> check_equivocation(const KeyDirectory& directory,
                                           bgp::AsNumber reporter,
                                           const SignedMessage& first,
                                           const SignedMessage& second) {
  return check_equivocation(directory.verify_context(), reporter, first,
                            second);
}

}  // namespace pvr::core
