// PVR protocol endpoints. Nodes program against the abstract net::Transport
// (net/transport.h) — the deterministic simulator and the socket backend
// both drive the same code.
//
// One PvrNode per AS in the Figure-1 scenario: the prover A, the providers
// N1..Nk, and the recipient B. The harness drives rounds:
//
//   1. providers call provide_input() (their signed route for this epoch),
//   2. the prover's start_round() opens a collection window; every prefix
//      started inside the window joins one aggregation batch. When the
//      window closes the prover runs run_prover per prefix and fans out
//      ONE Merkle-aggregated bundle message per neighbor (pvr.bundle.agg:
//      the signed root plus per-prefix openings) plus reveals / export,
//   3. verifiers gossip the small signed roots among themselves
//      ("pvr.gossip.root") instead of full bundles; two signed roots for
//      one window are provable equivocation,
//   4. after the simulator quiesces, the rounds are finalized — by default
//      through engine::VerificationEngine (see finalize_world_round), with
//      sequential finalize_round() as the fallback path.
//
// All per-round node state is keyed by the full core::ProtocolId
// (prover, prefix, epoch), so concurrent rounds for different prefixes —
// or different provers — in the same epoch never collide.
//
// Byzantine behavior is injected via PvrConfig::misbehavior on the prover.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bundle_aggregation.h"
#include "core/min_protocol.h"
#include "crypto/sha256.h"
#include "net/gossip.h"
#include "net/simulator.h"

namespace pvr::core {

inline constexpr const char* kInputChannel = "pvr.input";
inline constexpr const char* kBundleChannel = "pvr.bundle";
inline constexpr const char* kBundleAggChannel = "pvr.bundle.agg";
inline constexpr const char* kRevealProviderChannel = "pvr.reveal.n";
inline constexpr const char* kRevealRecipientChannel = "pvr.reveal.b";
inline constexpr const char* kExportChannel = "pvr.export";
inline constexpr const char* kGossipChannel = "pvr.gossip";
inline constexpr const char* kGossipRootChannel = "pvr.gossip.root";

enum class PvrRole : std::uint8_t { kProver, kProvider, kRecipient };

struct PvrConfig {
  bgp::AsNumber asn = 0;
  PvrRole role = PvrRole::kProvider;
  const KeyDirectory* directory = nullptr;        // not owned
  // Shared verification context (engine workers + every node of a world,
  // see core/verify_context.h). nullptr = fall back to the directory's own
  // cache-off context; verdicts are identical either way.
  const VerifyContext* verify_ctx = nullptr;      // not owned

  // The context every verification in this node goes through.
  [[nodiscard]] const VerifyContext& verify_context() const {
    return verify_ctx != nullptr ? *verify_ctx : directory->verify_context();
  }
  const crypto::RsaPrivateKey* private_key = nullptr;  // not owned
  OperatorKind op = OperatorKind::kMinimum;
  std::uint32_t max_len = 16;
  bgp::AsNumber prover = 0;                 // A (verifiers need to know it)
  std::vector<bgp::AsNumber> providers;     // N1..Nk
  bgp::AsNumber recipient = 0;              // B
  net::SimTime collect_window = 10'000;     // µs the prover waits for inputs
  // Max µs a collection window stays open past its first prefix to batch
  // later start_round arrivals (0 = collect_window, i.e. only simultaneous
  // arrivals share a window). A prefix joins an open window only if it
  // still gets its full collect_window of input collection before the
  // window's deadline — otherwise it opens its own window, so staggered
  // arrivals never get a truncated collection phase (DESIGN.md §6).
  net::SimTime batch_deadline = 0;
  ProverMisbehavior misbehavior;            // prover only
  std::uint64_t rng_seed = 1;
  // Default wire mode: one signed Merkle root + openings per epoch window
  // (pvr.bundle.agg), with verifiers gossiping roots. false = one signed
  // bundle per prefix (pvr.bundle) with full-bundle gossip.
  bool aggregate_wire_bundles = true;
  // Max times a gossiped bundle/root is relayed peer-to-peer. Bounds the
  // flood; must be >= the verifier mesh diameter for full convergence.
  std::uint8_t gossip_hop_budget = 8;
  // Max equivocation-pair checks folded into ONE deferred engine task by
  // defer_finalize_checks. Rounds with huge observed-bundle/root sets have
  // O(pairs) checks; chunking bounds the engine task count at
  // ceil(pairs / chunk) per kind while the per-round fold keeps Evidence
  // byte-identical for ANY chunk size (1 = legacy one-task-per-pair).
  std::size_t finalize_chunk_pairs = 32;
};

// Result of running one round's verifier checks (finalize_round, or its
// deferred form executed on an engine worker).
struct RoundFindings {
  std::vector<Evidence> evidence;
  std::optional<bgp::Route> accepted;  // recipient-side accepted route
  std::uint64_t signatures_verified = 0;
};

// A packaged, self-contained verification round. `work` owns a snapshot of
// the node's round state plus const pointers to the key directory, so it is
// safe to run on any thread while the simulator is quiescent.
struct DeferredRound {
  ProtocolId id;
  std::function<RoundFindings()> work;
};

// One round's checks split at check granularity: each closure runs one
// bundle-equivocation pair, one root-equivocation pair, or the role checks
// over a shared immutable snapshot, so the engine can spread a single
// round's work across workers. Folding the partial findings in vector
// order with fold_round_findings reproduces finalize_round byte-for-byte
// (the split preserves the sequential check order: bundle pairs, then
// root pairs, then the role checks).
struct DeferredRoundChecks {
  ProtocolId id;
  std::vector<std::function<RoundFindings()>> checks;
};

// Deterministic reducer for split round checks: evidence concatenates in
// fold order, signature counts add, and the role check's accepted route
// wins (it is the only part that sets one).
void fold_round_findings(RoundFindings& into, RoundFindings part);

// Prover-side notification that one collection window just fired: the
// epoch and the prefixes whose rounds were run and fanned out as one
// aggregation batch. Fires inside the simulator event that closed the
// window, AFTER every wire message of the batch has been sent, so a
// subscriber observes window closes in deterministic simulated-time order.
using WindowCloseHandler = std::function<void(
    std::uint64_t epoch, const std::vector<bgp::Ipv4Prefix>& prefixes)>;

class PvrNode : public net::Node {
 public:
  explicit PvrNode(PvrConfig config);

  void on_message(net::Transport& sim, const net::Message& message) override;

  // Subscribes to window-close events (prover role only fires them). The
  // online scenario pipeline uses this to learn which rounds exist without
  // polling; at most one handler is active (nullptr clears).
  void set_window_close_handler(WindowCloseHandler handler) {
    on_window_closed_ = std::move(handler);
  }

  // Provider-side: sign and send `route` to the prover for round
  // (prover, prefix, epoch). Pass nullopt to explicitly provide nothing
  // (bookkeeping only).
  void provide_input(net::Transport& sim, std::uint64_t epoch,
                     const bgp::Ipv4Prefix& prefix,
                     const std::optional<bgp::Route>& route);

  // Prover-side: adds (prefix, epoch) to the current collection window for
  // `epoch` (opening one if none is pending). When the window elapses, the
  // prover runs every pending prefix of the epoch as one aggregation batch
  // and fans out the results.
  void start_round(net::Transport& sim, std::uint64_t epoch,
                   const bgp::Ipv4Prefix& prefix);

  // Verifier-side sequential fallback: runs all checks for round `id` over
  // the messages received so far. Call after the simulator has quiesced.
  // The default path routes through engine::VerificationEngine instead
  // (defer_finalize below, or engine::finalize_world_round).
  void finalize_round(const ProtocolId& id);

  // Engine-backed finalize: packages the checks for round `id` into a
  // closure that can run on a worker thread, and marks the round finalized
  // so a later finalize_round is a no-op. Returns nullopt if the round is
  // already finalized. The findings must be handed back to this node via
  // apply_round_findings once the closure has run.
  [[nodiscard]] std::optional<DeferredRound> defer_finalize(const ProtocolId& id);

  // Split form of defer_finalize: the same checks as one closure per check
  // part over a shared snapshot (see DeferredRoundChecks). The engine's
  // intra-round path folds the partial findings back together in order and
  // delivers them via apply_round_findings exactly once per round.
  [[nodiscard]] std::optional<DeferredRoundChecks> defer_finalize_checks(
      const ProtocolId& id);

  // Delivers the outcome of a deferred round back into this node's evidence
  // log and accepted-route table. Must be called from the thread that owns
  // the node (i.e. after the engine has drained).
  void apply_round_findings(const ProtocolId& id, RoundFindings findings);

  // Online-mode GC: releases the per-round state of a round the CALLER
  // knows is settled (no message referencing it can still arrive — the
  // scenario runner waits out a conservative propagation horizon after the
  // window closes). Retention rules — nothing is pruned when the round
  //   - was never finalized (its checks still need the state), or
  //   - still carries an unescalated root conflict with bundles to spread
  //     (a witnessed conflict whose proof material must survive until the
  //     escalation gossip has gone out).
  // Prunes the RoundState, the round's slot in the root index, and (on the
  // prover) the collected inputs. Deliverables — evidence_, accepted_ —
  // and the tiny re-commit / root-dedup guards are never touched, so a
  // duplicate or replayed message arriving for a pruned round is still
  // recognized and dropped instead of re-creating state. Returns true when
  // the round's state was released.
  bool gc_finalized(const ProtocolId& id);

  // Epoch-keyed GC of the verified-root dedup sets (the last unbounded
  // per-window residual): releases every seen-root digest of
  // (prover, epoch) at once. Only safe when the CALLER knows the epoch has
  // fully settled — every one of its rounds past the settle horizon, which
  // by construction includes the adversary's replay lag — because a
  // replayed root arriving after retirement would miss the dedup, re-enter
  // attach_root, re-create round state, and re-gossip. The online runner
  // retires an epoch when its last settled round is harvested; the
  // fingerprint-parity gates enforce the timing empirically. Returns true
  // when the epoch held digests.
  bool gc_epoch_roots(bgp::AsNumber prover, std::uint64_t epoch);

  // Root-dedup footprint: epochs currently holding digest sets, digests
  // held across them, and the high-water digest count since construction —
  // the numbers the epoch-GC test bounds by open epochs on a long trace.
  [[nodiscard]] std::size_t seen_root_epochs() const noexcept {
    return seen_roots_.size();
  }
  [[nodiscard]] std::size_t seen_root_digests() const noexcept {
    return seen_root_digests_;
  }
  [[nodiscard]] std::size_t peak_seen_root_digests() const noexcept {
    return peak_seen_root_digests_;
  }

  // Rounds currently holding state, and the high-water mark since
  // construction. The online pipeline's memory claim is exactly
  // "peak_open_rounds() stays bounded by concurrently-open windows, not
  // trace length" (tests/scenario/online_pipeline_test.cpp asserts it).
  [[nodiscard]] std::size_t open_rounds() const noexcept {
    return rounds_.size();
  }
  [[nodiscard]] std::size_t peak_open_rounds() const noexcept {
    return peak_open_rounds_;
  }

  [[nodiscard]] const std::vector<Evidence>& evidence() const noexcept {
    return evidence_;
  }
  // The route B accepted in round `id` (nullopt if none / not recipient).
  [[nodiscard]] std::optional<bgp::Route> accepted_route(const ProtocolId& id) const;
  [[nodiscard]] bgp::AsNumber asn() const noexcept { return config_.asn; }
  // Messages and bytes this node pushed onto the wire (for experiments).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  // Prover-side workload counters: rounds admitted to a collection window
  // and windows actually fired. windows_fired < rounds_started proves that
  // staggered arrivals coalesced into shared windows (batch_deadline >
  // collect_window) — the scenario reports assert on exactly this.
  [[nodiscard]] std::uint64_t rounds_started() const noexcept {
    return rounds_started_;
  }
  [[nodiscard]] std::uint64_t windows_fired() const noexcept {
    return windows_fired_;
  }

 private:
  struct RoundState {
    std::optional<SignedMessage> bundle;             // first bundle seen
    std::optional<SignedMessage> provider_reveal;    // reveal addressed to us
    std::optional<SignedMessage> recipient_reveal;
    std::optional<SignedMessage> export_statement;
    std::optional<InputAnnouncement> own_input;      // what we provided
    // All distinct signed bundles observed (directly or via gossip).
    std::vector<SignedMessage> observed_bundles;
    // Aggregated wire mode: every distinct signed root observed whose
    // window claims this round's prefix. Two entries prove equivocation.
    std::vector<SignedMessage> observed_roots;
    // Whether this round's bundles were already re-gossiped in full after
    // a root conflict surfaced (see escalate_round).
    bool escalated = false;
    bool finalized = false;
  };

  // Roots are deduplicated per (prover, epoch); batch/window identity lives
  // inside the signed statements themselves.
  using RootKey = std::pair<bgp::AsNumber, std::uint64_t>;

  // One independently runnable slice of a round's checks. The enumeration
  // order (all bundle pairs, all root pairs, the role checks) is the
  // canonical sequential order; both check_round and the engine's reducer
  // fold partial findings in exactly this order.
  struct RoundCheckPart {
    enum class Kind : std::uint8_t { kBundlePair, kRootPair, kRole };
    Kind kind = Kind::kRole;
    std::size_t i = 0;  // pair indices into observed_bundles/observed_roots
    std::size_t j = 0;
  };
  [[nodiscard]] static std::vector<RoundCheckPart> enumerate_round_checks(
      const RoundState& round);
  [[nodiscard]] static RoundFindings run_round_check(const PvrConfig& config,
                                                     const RoundState& round,
                                                     const RoundCheckPart& part);

  // Pure check logic shared by finalize_round and defer_finalize: folds
  // every RoundCheckPart of the round in enumeration order — the same
  // reduction the engine performs across workers. Static so deferred
  // closures cannot touch live node state.
  [[nodiscard]] static RoundFindings check_round(const PvrConfig& config,
                                                 const RoundState& round);

  void send(net::Transport& sim, bgp::AsNumber to, const char* channel,
            std::vector<std::uint8_t> payload);
  // Records a signed per-prefix bundle; in legacy wire mode relays it on
  // pvr.gossip (skipping `origin`) while `hops` is under the budget.
  void observe_bundle(net::Transport& sim, const SignedMessage& bundle,
                      bgp::AsNumber origin, std::uint8_t hops);
  // Records a signed aggregation root and relays it on pvr.gossip.root.
  void observe_root(net::Transport& sim, const SignedMessage& signed_root,
                    bgp::AsNumber origin, std::uint8_t hops);
  // Unpacks a pvr.bundle.agg message from the prover into per-round state.
  void open_aggregated(net::Transport& sim, const AggregatedBundleMessage& message,
                       bgp::AsNumber origin);
  // Attaches a verified signed root to the round of every prefix its window
  // claims, creating round state as needed (the claimed rounds are exactly
  // the rounds this neighborhood's prover ran, so creation is bounded by
  // the prover's own signing rate and GC'd like any other round state).
  void attach_root(net::Transport& sim, const SignedMessage& signed_root,
                   const AggregatedBundle& root, bgp::AsNumber origin);
  // Root gossip carries no bundle contents, so once a round has TWO
  // distinct signed roots claiming it (same window signed twice, or the
  // batch-split evasion where each victim group gets its own window), this
  // node falls back to gossiping its full signed bundles for that round —
  // every verifier then obtains the conflicting per-round bundles and the
  // per-round equivocation check regains its legacy power. Honest rounds
  // have exactly one covering root and never escalate. Escalation is
  // checked per TOUCHED round (the rounds the triggering root or bundle
  // just attached to), never by scanning every open round — with thousands
  // of simultaneously open rounds per node the scan would be O(n) per
  // gossiped root.
  void escalate_round(net::Transport& sim, bgp::AsNumber origin,
                      RoundState& round);
  void run_prover_batch(net::Transport& sim, std::uint64_t epoch,
                        const std::vector<bgp::Ipv4Prefix>& prefixes);
  [[nodiscard]] std::vector<bgp::AsNumber> gossip_peers() const;

  // Prover-side: one open collection window. `fire_at` extends as prefixes
  // join (each needs collect_window µs of input collection) but never past
  // `deadline`; a prefix that cannot make the deadline opens a new window.
  struct CollectionWindow {
    net::SimTime deadline = 0;
    net::SimTime fire_at = 0;
    std::vector<bgp::Ipv4Prefix> prefixes;
  };
  void schedule_window_fire(net::Transport& sim, std::uint64_t epoch,
                            std::shared_ptr<CollectionWindow> window);

  // All round-state creation funnels through here so the hash index stays
  // in sync with rounds_ (map nodes are pointer-stable).
  [[nodiscard]] RoundState& round_state(const ProtocolId& id);
  // O(1) lookup of an OPEN round; nullptr when the round does not exist
  // (never creates state — the root-attachment hot path must not).
  [[nodiscard]] RoundState* find_round(const ProtocolId& id);

  PvrConfig config_;
  crypto::Drbg rng_;
  // All per-round state, keyed by the full round identity. An ordered map
  // keeps deterministic iteration for replay; map nodes are pointer-stable
  // so round_index_ below can hold raw pointers into it.
  std::map<ProtocolId, RoundState> rounds_;
  // Hash index over rounds_: root attachment resolves each prefix a window
  // claims with one O(1) lookup instead of scanning every open round (the
  // pre-index linear scan was O(open rounds) per gossiped root).
  std::unordered_map<ProtocolId, RoundState*, ProtocolIdHash> round_index_;
  // Prover-side: inputs collected per round.
  std::map<ProtocolId, std::map<bgp::AsNumber, std::optional<SignedMessage>>>
      collected_inputs_;
  // Prover-side: open collection windows per epoch (several can be in
  // flight when staggered start_round arrivals miss an earlier window's
  // deadline), and the next batch number per epoch.
  std::map<std::uint64_t, std::vector<std::shared_ptr<CollectionWindow>>>
      open_windows_;
  std::map<std::uint64_t, std::uint32_t> next_batch_;
  // Prover-side: rounds already run, so a re-announced prefix can never
  // make an honest prover commit to one round twice.
  std::set<ProtocolId> rounds_run_;
  // Verifier-side first-seen dedup of signed roots per (prover, epoch),
  // keyed by the SHA-256 of the root payload. Roots attach to their claimed
  // rounds ON ARRIVAL (attach_root creates round state as needed), so this
  // holds digests only — one dedup membership check replaces both the old
  // linear distinct-scan per gossiped copy and the finalize-time decode
  // scan over every root the epoch ever saw. NOT pruned per round by
  // gc_finalized: a stale replayed root must keep hitting the dedup (and
  // not re-create state or re-gossip) while any of its epoch's rounds can
  // still legally receive messages. Instead the sets retire a whole epoch
  // at a time via gc_epoch_roots, once the caller has waited out the
  // settle horizon (which bounds replay lag) for ALL of that epoch's
  // rounds — so the dedup footprint tracks OPEN epochs, not trace length
  // (peak_seen_root_digests() gates it alongside peak_open_rounds()).
  std::map<RootKey, std::set<crypto::Digest>> seen_roots_;
  std::size_t seen_root_digests_ = 0;       // live digests across epochs
  std::size_t peak_seen_root_digests_ = 0;
  std::vector<Evidence> evidence_;
  std::map<ProtocolId, bgp::Route> accepted_;
  WindowCloseHandler on_window_closed_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t rounds_started_ = 0;
  std::uint64_t windows_fired_ = 0;
  std::size_t peak_open_rounds_ = 0;
};

// Convenience: builds the full Figure-1 world (star topology links between
// every participant and the prover, plus a verifier mesh for gossip).
struct Figure1World {
  net::Simulator sim;
  bgp::AsNumber prover;
  std::vector<bgp::AsNumber> providers;
  bgp::AsNumber recipient;

  explicit Figure1World(std::uint64_t seed) : sim(seed), prover(0), recipient(0) {}

  [[nodiscard]] PvrNode& node(bgp::AsNumber asn) {
    return dynamic_cast<PvrNode&>(sim.node(asn));
  }
};

// Assembles the world: prover AS `asn_base`+100, providers `asn_base`+300..,
// recipient B at `asn_base`+200. All keys are generated from `seed`.
struct Figure1Setup {
  std::uint64_t seed = 1;
  std::size_t provider_count = 3;
  OperatorKind op = OperatorKind::kMinimum;
  std::uint32_t max_len = 16;
  ProverMisbehavior misbehavior;
  std::size_t key_bits = 512;  // small keys keep tests fast; benches use 1024
  // Offset applied to every ASN, so several neighborhoods (distinct
  // provers) can run in the same epoch without ASN collisions.
  bgp::AsNumber asn_base = 0;
  bool aggregate_wire_bundles = true;
  std::size_t finalize_chunk_pairs = 32;  // see PvrConfig
};

struct Figure1Handles {
  std::unique_ptr<Figure1World> world;
  std::unique_ptr<AsKeyPairs> keys;
  bgp::Ipv4Prefix prefix;

  // The identity of the round the harness drives for `epoch` over the
  // default prefix.
  [[nodiscard]] ProtocolId round_id(std::uint64_t epoch) const {
    return ProtocolId{.prover = world->prover, .prefix = prefix, .epoch = epoch};
  }
};

[[nodiscard]] Figure1Handles make_figure1_world(const Figure1Setup& setup);

}  // namespace pvr::core
