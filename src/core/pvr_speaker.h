// PVR protocol endpoints on the simulated network.
//
// One PvrNode per AS in the Figure-1 scenario: the prover A, the providers
// N1..Nk, and the recipient B. The harness drives rounds:
//
//   1. providers call provide_input() (their signed route for this epoch),
//   2. the prover's start_round() opens a collection window, then runs the
//      prover (run_prover) and fans out bundle / reveals / export,
//   3. verifiers gossip bundles among themselves ("pvr.gossip"),
//   4. after the simulator quiesces, finalize_round() on each verifier runs
//      the §3.2/3.3 checks and records Evidence.
//
// Byzantine behavior is injected via PvrConfig::misbehavior on the prover.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/min_protocol.h"
#include "net/gossip.h"
#include "net/simulator.h"

namespace pvr::core {

inline constexpr const char* kInputChannel = "pvr.input";
inline constexpr const char* kBundleChannel = "pvr.bundle";
inline constexpr const char* kRevealProviderChannel = "pvr.reveal.n";
inline constexpr const char* kRevealRecipientChannel = "pvr.reveal.b";
inline constexpr const char* kExportChannel = "pvr.export";
inline constexpr const char* kGossipChannel = "pvr.gossip";

enum class PvrRole : std::uint8_t { kProver, kProvider, kRecipient };

struct PvrConfig {
  bgp::AsNumber asn = 0;
  PvrRole role = PvrRole::kProvider;
  const KeyDirectory* directory = nullptr;        // not owned
  const crypto::RsaPrivateKey* private_key = nullptr;  // not owned
  OperatorKind op = OperatorKind::kMinimum;
  std::uint32_t max_len = 16;
  bgp::AsNumber prover = 0;                 // A (verifiers need to know it)
  std::vector<bgp::AsNumber> providers;     // N1..Nk
  bgp::AsNumber recipient = 0;              // B
  net::SimTime collect_window = 10'000;     // µs the prover waits for inputs
  ProverMisbehavior misbehavior;            // prover only
  std::uint64_t rng_seed = 1;
};

// Result of running one round's verifier checks (finalize_round, or its
// deferred form executed on an engine worker).
struct RoundFindings {
  std::vector<Evidence> evidence;
  std::optional<bgp::Route> accepted;  // recipient-side accepted route
  std::uint64_t signatures_verified = 0;
};

// A packaged, self-contained verification round. `work` owns a snapshot of
// the node's round state plus const pointers to the key directory, so it is
// safe to run on any thread while the simulator is quiescent.
struct DeferredRound {
  ProtocolId id;
  std::function<RoundFindings()> work;
};

class PvrNode : public net::Node {
 public:
  explicit PvrNode(PvrConfig config);

  void on_message(net::Simulator& sim, const net::Message& message) override;

  // Provider-side: sign and send `route` to the prover for round `epoch`.
  // Pass nullopt to explicitly provide nothing (bookkeeping only).
  void provide_input(net::Simulator& sim, std::uint64_t epoch,
                     const bgp::Ipv4Prefix& prefix,
                     const std::optional<bgp::Route>& route);

  // Prover-side: opens round `epoch`; after collect_window elapses, runs
  // the prover over whatever inputs arrived and fans out the results.
  void start_round(net::Simulator& sim, std::uint64_t epoch,
                   const bgp::Ipv4Prefix& prefix);

  // Verifier-side: runs all checks for `epoch` over the messages received
  // so far. Call after the simulator has quiesced.
  void finalize_round(std::uint64_t epoch);

  // Engine-backed finalize: packages the checks for `epoch` into a closure
  // that can run on a worker thread, and marks the round finalized so a
  // later finalize_round is a no-op. Returns nullopt if the round is
  // already finalized. The findings must be handed back to this node via
  // apply_round_findings once the closure has run.
  [[nodiscard]] std::optional<DeferredRound> defer_finalize(std::uint64_t epoch);

  // Delivers the outcome of a deferred round back into this node's evidence
  // log and accepted-route table. Must be called from the thread that owns
  // the node (i.e. after the engine has drained).
  void apply_round_findings(std::uint64_t epoch, RoundFindings findings);

  [[nodiscard]] const std::vector<Evidence>& evidence() const noexcept {
    return evidence_;
  }
  // The route B accepted in `epoch` (nullopt if none / not recipient).
  [[nodiscard]] std::optional<bgp::Route> accepted_route(std::uint64_t epoch) const;
  [[nodiscard]] bgp::AsNumber asn() const noexcept { return config_.asn; }
  // Messages and bytes this node pushed onto the wire (for experiments).
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

 private:
  struct RoundState {
    std::optional<SignedMessage> bundle;             // first bundle seen
    std::optional<SignedMessage> provider_reveal;    // reveal addressed to us
    std::optional<SignedMessage> recipient_reveal;
    std::optional<SignedMessage> export_statement;
    std::optional<InputAnnouncement> own_input;      // what we provided
    // All distinct signed bundles observed (directly or via gossip).
    std::vector<SignedMessage> observed_bundles;
    bool finalized = false;
  };

  // Pure check logic shared by finalize_round and defer_finalize: runs the
  // role-specific §3.2/3.3 verifier over a snapshot of the round state.
  // Static so deferred closures cannot touch live node state.
  [[nodiscard]] static RoundFindings check_round(const PvrConfig& config,
                                                 const RoundState& round);

  void send(net::Simulator& sim, bgp::AsNumber to, const char* channel,
            std::vector<std::uint8_t> payload);
  void observe_bundle(net::Simulator& sim, const SignedMessage& bundle);
  void run_prover_now(net::Simulator& sim, std::uint64_t epoch,
                      const bgp::Ipv4Prefix& prefix);
  [[nodiscard]] std::vector<bgp::AsNumber> gossip_peers() const;

  PvrConfig config_;
  crypto::Drbg rng_;
  std::map<std::uint64_t, RoundState> rounds_;
  // Prover-side: inputs collected per epoch.
  std::map<std::uint64_t, std::map<bgp::AsNumber, std::optional<SignedMessage>>>
      collected_inputs_;
  std::vector<Evidence> evidence_;
  std::map<std::uint64_t, bgp::Route> accepted_;
  std::uint64_t bytes_sent_ = 0;
};

// Convenience: builds the full Figure-1 world (star topology links between
// every participant and the prover, plus a verifier mesh for gossip).
struct Figure1World {
  net::Simulator sim;
  bgp::AsNumber prover;
  std::vector<bgp::AsNumber> providers;
  bgp::AsNumber recipient;

  explicit Figure1World(std::uint64_t seed) : sim(seed), prover(0), recipient(0) {}

  [[nodiscard]] PvrNode& node(bgp::AsNumber asn) {
    return dynamic_cast<PvrNode&>(sim.node(asn));
  }
};

// Assembles the world: prover AS `prover_asn`, providers n_base..n_base+k-1,
// recipient B. All keys are generated from `seed`.
struct Figure1Setup {
  std::uint64_t seed = 1;
  std::size_t provider_count = 3;
  OperatorKind op = OperatorKind::kMinimum;
  std::uint32_t max_len = 16;
  ProverMisbehavior misbehavior;
  std::size_t key_bits = 512;  // small keys keep tests fast; benches use 1024
};

struct Figure1Handles {
  std::unique_ptr<Figure1World> world;
  std::unique_ptr<AsKeyPairs> keys;
  bgp::Ipv4Prefix prefix;
};

[[nodiscard]] Figure1Handles make_figure1_world(const Figure1Setup& setup);

}  // namespace pvr::core
