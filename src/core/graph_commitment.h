// Commitment and selective disclosure over whole route-flow graphs
// (paper §3.5–3.7).
//
// Each vertex x stores I(x) = (c(pred), c(succ), c(payload)): separate hash
// commitments to the predecessor list, successor list, and payload (route
// value for variables, operator type for operators), "so the three types of
// information can be revealed independently, depending on the authorization
// of the querying neighbor" (§3.7). The leaf value H(I(x)) is stored in a
// blinded sparse Merkle tree keyed by the vertex's prefix-free bitstring
// (§3.6); the signed tree root is the only thing published, and neighbors
// gossip it to rule out equivocation.
//
// A verifier holding disclosures for the vertices α lets it see can
// reconstruct the visible part of the graph (DisclosedGraph) and statically
// check that the structure implements the promise (§2.2) without learning
// anything about undisclosed vertices — the sparse-tree sibling hashes are
// indistinguishable from the blinded empty-subtree hashes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/keys.h"
#include "core/min_protocol.h"
#include "core/promise.h"
#include "crypto/commitment.h"
#include "crypto/sparse_merkle.h"
#include "rfg/access_control.h"
#include "rfg/graph.h"

namespace pvr::core {

// The three commitments of I(x).
struct VertexRecord {
  crypto::Commitment predecessors;
  crypto::Commitment successors;
  crypto::Commitment payload;

  [[nodiscard]] crypto::Digest leaf_value() const;
};

// One vertex's disclosure to one neighbor: always carries the record and
// the tree proof (structure of the commitment itself); the three openings
// are present per the access policy.
struct VertexDisclosure {
  rfg::VertexId vertex;
  VertexRecord record;
  crypto::SparseDisclosureProof proof;
  std::optional<crypto::CommitmentOpening> predecessors_opening;
  std::optional<crypto::CommitmentOpening> successors_opening;
  std::optional<crypto::CommitmentOpening> payload_opening;
};

// Canonical payload encodings committed to by c(payload).
[[nodiscard]] std::vector<std::uint8_t> encode_variable_payload(
    const rfg::Value& value);
[[nodiscard]] std::optional<rfg::Value> decode_variable_payload(
    std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> encode_operator_payload(
    const rfg::Operator& op);
[[nodiscard]] std::optional<std::string> decode_operator_payload(
    std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> encode_id_list(
    const std::vector<rfg::VertexId>& ids);
[[nodiscard]] std::optional<std::vector<rfg::VertexId>> decode_id_list(
    std::span<const std::uint8_t> data);

// Prover-side: commits to a graph plus its current evaluation.
class GraphCommitment {
 public:
  // `values` is the full evaluation (rfg::RouteFlowGraph::evaluate output).
  GraphCommitment(const rfg::RouteFlowGraph& graph,
                  const std::map<rfg::VertexId, rfg::Value>& values,
                  crypto::Drbg& rng);

  [[nodiscard]] crypto::Digest root() const { return root_; }

  // Discloses vertex `id` to a neighbor, opening exactly the components the
  // access policy grants to `viewer`. Throws std::out_of_range on unknown id.
  [[nodiscard]] VertexDisclosure disclose(const rfg::VertexId& id,
                                          bgp::AsNumber viewer,
                                          const rfg::AccessPolicy& policy) const;

  // Unrestricted disclosure (for the prover's own bookkeeping and tests).
  [[nodiscard]] VertexDisclosure disclose_full(const rfg::VertexId& id) const;

 private:
  struct VertexSecrets {
    VertexRecord record;
    crypto::CommitmentOpening predecessors;
    crypto::CommitmentOpening successors;
    crypto::CommitmentOpening payload;
  };

  crypto::SparseMerkleTree tree_;
  std::map<rfg::VertexId, VertexSecrets> secrets_;
  crypto::Digest root_{};
};

// Verifier-side check of a single disclosure against a committed root:
// tree membership plus consistency of every provided opening.
[[nodiscard]] bool verify_vertex_disclosure(const crypto::Digest& root,
                                            const VertexDisclosure& disclosure);

// Verifier-side reconstruction of the visible subgraph.
class DisclosedGraph {
 public:
  // Adds a disclosure after verifying it against `root`. Returns false (and
  // ignores the disclosure) if verification fails.
  bool add(const crypto::Digest& root, const VertexDisclosure& disclosure);

  [[nodiscard]] std::size_t size() const noexcept { return vertices_.size(); }
  [[nodiscard]] bool has(const rfg::VertexId& id) const;

  // Disclosed route value of a variable (nullopt if not disclosed or not a
  // variable).
  [[nodiscard]] std::optional<rfg::Value> variable_value(
      const rfg::VertexId& id) const;
  [[nodiscard]] std::optional<std::string> operator_descriptor(
      const rfg::VertexId& id) const;
  [[nodiscard]] std::optional<std::vector<rfg::VertexId>> predecessors(
      const rfg::VertexId& id) const;

  // Rebuilds an rfg::RouteFlowGraph from the disclosed structure (vertex
  // labels follow the canonical conventions: "var:r<asn>", "var:ro",
  // operators reconstructed from descriptors) and runs the §2.2 static
  // check. Returns false if anything needed is missing or inconsistent.
  [[nodiscard]] bool implements_promise(const Promise& promise,
                                        bgp::AsNumber recipient) const;

 private:
  struct Disclosed {
    VertexDisclosure disclosure;
  };
  std::map<rfg::VertexId, Disclosed> vertices_;
};

// Signed root announcement payload (gossiped for equivocation detection).
struct GraphRootAnnouncement {
  ProtocolId id;
  crypto::Digest root{};

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static GraphRootAnnouncement decode(
      std::span<const std::uint8_t> data);
};

}  // namespace pvr::core
