#include "core/verify_context.h"

#include "crypto/encoding.h"
#include "obs/metrics.h"

namespace pvr::core {

VerifyContext::VerifyContext(const KeyDirectory* directory,
                             bool cache_verdicts)
    : directory_(directory), cache_verdicts_(cache_verdicts) {}

const crypto::RsaVerifyKey* VerifyContext::verify_key(
    bgp::AsNumber signer) const {
  {
    std::shared_lock lock(keys_mu_);
    const auto it = keys_.find(signer);
    if (it != keys_.end()) return it->second.get();
  }
  const crypto::RsaPublicKey* pub = directory_->find(signer);
  // Unknown signers are deliberately not negative-cached: the directory
  // may still gain the key, and re-checking a map miss is cheap.
  if (pub == nullptr) return nullptr;
  auto built = std::make_unique<crypto::RsaVerifyKey>(*pub);
  std::unique_lock lock(keys_mu_);
  const auto [it, inserted] = keys_.emplace(signer, std::move(built));
  return it->second.get();
}

bool VerifyContext::verify(const SignedMessage& message) const {
  const crypto::RsaVerifyKey* key = verify_key(message.signer);
  if (key == nullptr) return false;
  const std::vector<std::uint8_t> input =
      message_signing_input(message.signer, message.payload);
  const auto prepared = key->prepare(input, message.signature);
  if (!prepared.has_value()) return false;  // structurally invalid: never cached
  if (!cache_verdicts_) return key->finish(*prepared);

  // The cache key binds signer + payload (both inside the signing input)
  // and the signature bytes; length prefixes keep the pair unambiguous.
  // Uncounted: this digest is cache bookkeeping, and counting it would
  // make crypto.bytes_hashed (kSim, fingerprinted) depend on whether the
  // cache is enabled. All PROTOCOL hashing (screen + EMSA above) already
  // ran and counted identically for hit and miss.
  crypto::ByteWriter writer;
  writer.put_bytes(input);
  writer.put_bytes(message.signature);
  const std::vector<std::uint8_t> keyed = writer.take();
  const crypto::Digest digest = crypto::sha256_uncounted(keyed);
  {
    std::shared_lock lock(verdicts_mu_);
    const auto it = verdicts_.find(digest);
    if (it != verdicts_.end()) {
      PVR_OBS_COUNT(crypto_world_cache_hits, 1);
      return it->second;
    }
  }
  const bool ok = key->finish(*prepared);
  {
    std::unique_lock lock(verdicts_mu_);
    verdicts_.emplace(digest, ok);
  }
  return ok;
}

std::size_t VerifyContext::cached_verdicts() const {
  std::shared_lock lock(verdicts_mu_);
  return verdicts_.size();
}

}  // namespace pvr::core
