// Merkle-aggregated commitment bundles (paper §3.6, §3.8): the prover
// commits to ONE signed Merkle root over all its per-prefix bundles of an
// epoch window and reveals each prefix with a log-size inclusion proof.
//
// Two layers share the machinery:
//
//  1. Payload-level aggregation (AggregatedBundle / AggregatedOpening):
//     leaves are raw CommitmentBundle encodings, so verifying N prefixes
//     costs one RSA verification plus hashes. Exercised by the engine
//     benches (see bench_engine_throughput).
//
//  2. Envelope-level wire aggregation (AggregatedBundleMessage, the
//     "pvr.bundle.agg" channel): leaves are the prover's per-prefix
//     *signed* bundle envelopes, so all per-round evidence keeps working
//     unchanged, while verifiers gossip only the small signed root
//     ("pvr.gossip.root") instead of every full bundle. Two signed roots
//     for the same (prover, epoch, batch) window are third-party-provable
//     equivocation (check_root_equivocation).
//
// Wire formats are specified in DESIGN.md §"Engine".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/evidence.h"
#include "core/keys.h"
#include "core/min_protocol.h"
#include "crypto/merkle.h"

namespace pvr::core {

// The signed statement: one root over all per-prefix bundles of one
// aggregation window. `batch` numbers the prover's windows within an
// epoch, and `prefixes` names the rounds the window covers — both are
// signed, so EITHER two different roots for one (prover, epoch, batch)
// OR two windows that both claim the same prefix are provable
// equivocation from the two statements alone (a correct prover aggregates
// each (prefix, epoch) round in exactly one window).
struct AggregatedBundle {
  bgp::AsNumber prover = 0;
  std::uint64_t epoch = 0;
  std::uint32_t batch = 0;
  std::vector<bgp::Ipv4Prefix> prefixes;  // rounds covered, leaf order
  crypto::Digest root{};

  [[nodiscard]] std::uint32_t prefix_count() const noexcept {
    return static_cast<std::uint32_t>(prefixes.size());
  }
  [[nodiscard]] bool covers(const bgp::Ipv4Prefix& prefix) const;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AggregatedBundle decode(std::span<const std::uint8_t> data);
};

// Per-prefix reveal: the bundle itself plus its inclusion proof under the
// signed root (payload-level form).
struct AggregatedOpening {
  CommitmentBundle bundle;
  crypto::MerkleProof proof;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AggregatedOpening decode(std::span<const std::uint8_t> data);
};

struct AggregatedCommitment {
  SignedMessage signed_root;                // AggregatedBundle payload
  std::vector<AggregatedOpening> openings;  // same order as the input bundles
};

// Prover side: one signature for the whole window (payload-level form).
[[nodiscard]] AggregatedCommitment aggregate_bundles(
    bgp::AsNumber prover, std::uint64_t epoch,
    std::span<const CommitmentBundle> bundles, const crypto::RsaPrivateKey& key,
    std::uint32_t batch = 0);

// Verifier side for one prefix: checks the root signature, the inclusion
// proof, and that the opened bundle belongs to (prover, epoch).
[[nodiscard]] bool verify_aggregated_opening(
    const KeyDirectory& directory, const SignedMessage& signed_root,
    const AggregatedOpening& opening);

// Amortized form: verifies the root signature ONCE and then each opening
// against it — the per-epoch cost the aggregated mode exists for. Result
// order matches `openings`; all false if the root itself fails.
[[nodiscard]] std::vector<bool> verify_aggregated_openings(
    const KeyDirectory& directory, const SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings);

// ---- Envelope-level wire aggregation (the pvr.bundle.agg channel) ----

// One prefix's reveal under the root: the prover's individually signed
// CommitmentBundle envelope plus its inclusion proof.
struct SignedBundleOpening {
  SignedMessage bundle;  // CommitmentBundle payload, prover-signed
  crypto::MerkleProof proof;

  void encode(crypto::ByteWriter& writer) const;
  [[nodiscard]] static SignedBundleOpening decode(crypto::ByteReader& reader);
};

// What actually travels on pvr.bundle.agg: the signed root plus one
// opening per prefix of the window.
struct AggregatedBundleMessage {
  SignedMessage signed_root;  // AggregatedBundle payload
  std::vector<SignedBundleOpening> openings;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AggregatedBundleMessage decode(
      std::span<const std::uint8_t> data);
};

// Prover side: aggregates the signed per-prefix bundle envelopes of one
// (epoch, batch) window under one signed root.
[[nodiscard]] AggregatedBundleMessage aggregate_signed_bundles(
    bgp::AsNumber prover, std::uint64_t epoch, std::uint32_t batch,
    std::span<const SignedMessage> bundles, const crypto::RsaPrivateKey& key);

// Hash-only check of one opening against an already-decoded root statement
// (the root signature is the caller's concern — verified once per window).
// Also requires the opened bundle's prefix to be in the root's signed
// prefix list.
[[nodiscard]] bool verify_signed_opening(const AggregatedBundle& root,
                                         const SignedBundleOpening& opening);

// The shared conflict predicate behind both evidence creation
// (check_root_equivocation) and third-party validation (Auditor): two
// content-distinct statements by one prover for one epoch conflict when
// they share a batch or claim a common prefix.
[[nodiscard]] bool roots_conflict(const AggregatedBundle& a,
                                  const AggregatedBundle& b);

// Two verifiably signed, content-distinct roots for the same
// (prover, epoch) prove equivocation when they either belong to the same
// batch window or both claim a common prefix (the same round committed in
// two windows — the batch-split evasion). The evidence is the two signed
// root envelopes, validatable by core::Auditor.
[[nodiscard]] std::optional<Evidence> check_root_equivocation(
    const KeyDirectory& directory, bgp::AsNumber reporter,
    const SignedMessage& first, const SignedMessage& second);

// VerifyContext flavors (the engine / world-shared path, see
// core/verify_context.h): identical verdicts, amortized root-signature
// verification. The KeyDirectory versions forward to
// directory.verify_context().
[[nodiscard]] bool verify_aggregated_opening(const VerifyContext& ctx,
                                             const SignedMessage& signed_root,
                                             const AggregatedOpening& opening);
[[nodiscard]] std::vector<bool> verify_aggregated_openings(
    const VerifyContext& ctx, const SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings);
[[nodiscard]] std::optional<Evidence> check_root_equivocation(
    const VerifyContext& ctx, bgp::AsNumber reporter,
    const SignedMessage& first, const SignedMessage& second);

}  // namespace pvr::core
