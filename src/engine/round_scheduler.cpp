#include "engine/round_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::engine {

RoundScheduler::RoundScheduler(SchedulerConfig config)
    : salt_shards_(config.salt_shards) {
  const std::size_t shards = std::max<std::size_t>(1, config.shards);
  shard_queues_.resize(shards);
  shard_busy_.assign(shards, false);
  shard_totals_.assign(shards, 0);

  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RoundScheduler::~RoundScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t RoundScheduler::shard_of(const core::ProtocolId& id) const {
  // Hash the (prover, prefix) projection, not the epoch: in unsalted mode
  // successive epochs of one prover's rounds for one prefix must serialize.
  core::ProtocolId projection = id;
  projection.epoch = 0;
  return core::ProtocolIdHash{}(projection) % shard_queues_.size();
}

std::size_t RoundScheduler::shard_of(const core::ProtocolId& id,
                                     std::size_t salt) const {
  core::ProtocolId projection = id;
  projection.epoch = 0;
  // splitmix64-style finalizer over (key hash ⊕ salt): tickets are
  // sequential, so the mix must decorrelate low bits or salted loads
  // would stripe the shards.
  std::uint64_t mixed =
      static_cast<std::uint64_t>(core::ProtocolIdHash{}(projection)) ^
      (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(salt) + 1));
  mixed ^= mixed >> 30;
  mixed *= 0xbf58476d1ce4e5b9ull;
  mixed ^= mixed >> 27;
  mixed *= 0x94d049bb133111ebull;
  mixed ^= mixed >> 31;
  return static_cast<std::size_t>(mixed % shard_queues_.size());
}

std::size_t RoundScheduler::submit(const core::ProtocolId& id,
                                   std::function<core::RoundFindings()> work) {
  std::size_t ticket;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (async_callback_) {
      throw std::logic_error(
          "RoundScheduler::submit: a begin_drain batch is still in flight "
          "(tickets restart per batch — collect it first)");
    }
    ticket = tasks_.size();
    const std::size_t shard =
        salt_shards_ ? shard_of(id, ticket) : shard_of(id);
    tasks_.push_back(Task{.id = id, .work = std::move(work)});
    results_.emplace_back();
    shard_queues_[shard].push_back(ticket);
    shard_totals_[shard] += 1;
  }
  work_cv_.notify_one();
  return ticket;
}

bool RoundScheduler::run_one(std::unique_lock<std::mutex>& lock) {
  // Find a shard that is idle and has queued work. Same-shard tasks are
  // FIFO and never run concurrently, so per-prefix execution is serial.
  for (std::size_t shard = 0; shard < shard_queues_.size(); ++shard) {
    if (shard_busy_[shard] || shard_queues_[shard].empty()) continue;
    shard_busy_[shard] = true;
    const std::size_t ticket = shard_queues_[shard].front();
    shard_queues_[shard].pop_front();
    Task task = std::move(tasks_[ticket]);

    lock.unlock();
    RoundOutcome outcome{.id = task.id, .findings = {}, .error = nullptr};
    {
      // The span brackets only the work closure: one lane per worker
      // thread, so an open trace shows engine occupancy directly.
      const obs::TraceSpan span("engine.task", "engine");
      const std::uint64_t start_us = obs::wall_clock_us();
      try {
        outcome.findings = task.work();
      } catch (...) {
        outcome.error = std::current_exception();
      }
      PVR_OBS_COUNT(engine_tasks, 1);
      PVR_OBS_RECORD(engine_task_us, obs::wall_clock_us() - start_us);
    }
    lock.lock();

    results_[ticket] = std::move(outcome);
    shard_busy_[shard] = false;
    completed_ += 1;
    // The shard may have more queued work another worker can now take.
    if (!shard_queues_[shard].empty()) work_cv_.notify_one();
    drain_cv_.notify_all();
    if (async_callback_ && completed_ == tasks_.size()) {
      // This worker just finished the async batch's last task: it extracts
      // the outcomes, resets the batch, and runs the completion callback
      // with the lock released — the engine's fold executes HERE, on a
      // worker thread, while the submitting thread is free to advance.
      std::vector<RoundOutcome> outcomes = take_outcomes_locked();
      std::function<void(std::vector<RoundOutcome>)> callback =
          std::move(async_callback_);
      async_callback_ = nullptr;
      lock.unlock();
      callback(std::move(outcomes));
      lock.lock();
    }
    return true;
  }
  return false;
}

void RoundScheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (run_one(lock)) continue;
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

std::vector<RoundOutcome> RoundScheduler::take_outcomes_locked() {
  std::vector<RoundOutcome> outcomes;
  outcomes.reserve(results_.size());
  for (std::optional<RoundOutcome>& result : results_) {
    outcomes.push_back(std::move(*result));
  }
  tasks_.clear();
  results_.clear();
  completed_ = 0;
  return outcomes;
}

std::vector<RoundOutcome> RoundScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (async_callback_) {
    throw std::logic_error(
        "RoundScheduler::drain: a begin_drain batch is still in flight");
  }
  drain_cv_.wait(lock, [this] { return completed_ == tasks_.size(); });
  return take_outcomes_locked();
}

void RoundScheduler::begin_drain(
    std::function<void(std::vector<RoundOutcome>)> on_complete) {
  std::vector<RoundOutcome> ready;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (async_callback_) {
      throw std::logic_error(
          "RoundScheduler::begin_drain: a batch is already in flight — at "
          "most one async batch may be pending");
    }
    if (completed_ != tasks_.size()) {
      // Workers still own tasks of this batch: the last one to finish
      // invokes the callback (see run_one).
      async_callback_ = std::move(on_complete);
      return;
    }
    ready = take_outcomes_locked();
  }
  // Already quiesced (or empty batch): deliver synchronously, outside the
  // lock so the callback may submit the next batch immediately.
  on_complete(std::move(ready));
}

std::vector<std::uint64_t> RoundScheduler::shard_loads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return shard_totals_;
}

}  // namespace pvr::engine
