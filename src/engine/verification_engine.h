// Facade tying the engine together: scheduler + batch verifier + sink.
//
// This is the DEFAULT verification path for simulator-driven rounds
// (sequential PvrNode::finalize_round is the fallback):
//
//   engine::VerificationEngine engine({.workers = 8}, &keys.directory);
//   finalize_world_round(engine, world, handles.round_id(epoch));
//   // or, node by node:
//   for (PvrNode* node : verifiers) engine.submit_node_round(*node, id);
//   engine.drain();   // findings delivered back to each node, evidence
//                     // aggregated into engine.sink() in submission order
//
// Usage (standalone rounds, e.g. benches):
//   engine.submit(id, [&] { return check(...); });
//   EngineReport report = engine.drain();
//
// Rounds are identified by the full core::ProtocolId (prover, prefix,
// epoch) throughout — submission tickets, shard assignment, and findings
// delivery — so concurrent rounds for different prefixes or provers in the
// same epoch never collide.
//
// Intra-round parallelism (DESIGN.md §8.1): submit_node_round splits a
// round into one task per check (PvrNode::defer_finalize_checks) and the
// salted scheduler spreads them across shards, so even a single round's
// n+1 verifier checks run concurrently. drain() folds each round's partial
// findings back together in enumeration order (core::fold_round_findings)
// — the same reduction the sequential check_round performs — before
// delivering them, so Evidence stays byte-identical to the sequential path
// at any worker count.
//
// Determinism: outcomes are applied in submission order after the pool has
// quiesced, so node evidence logs and the sink's log are byte-identical
// across worker counts (see DESIGN.md §"Engine").
//
// Pipelined (two-phase) drain — DESIGN.md §12: begin_drain() seals the
// current batch and hands it to the worker pool WITHOUT blocking; the
// worker that finishes the batch's last task folds every round's partial
// findings (submission-ordered, the same core::fold_round_findings
// reduction) into a completed-batch buffer. collect() then blocks only
// until that fold is ready and performs the thread-owning half — node
// apply_round_findings, sink recording — on the calling thread. drain()
// remains the blocking composition begin_drain() + collect(), so every
// legacy call site keeps the "after drain() returns, findings are applied"
// contract; only callers that interleave simulation between the two phases
// (the online scenario runner) migrate to the split protocol. At most one
// batch is in flight: submit/begin_drain while one is pending throws.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/evidence_sink.h"
#include "engine/round_scheduler.h"

namespace pvr::engine {

struct EngineConfig {
  std::size_t workers = 0;  // 0 = hardware concurrency
  std::size_t shards = 64;
  // Salt the scheduler's shard keys per submission so same-round tasks
  // spread across shards (engine closures are self-contained snapshots,
  // which is what makes this safe). See SchedulerConfig::salt_shards.
  bool salt_shards = true;
  // Split node rounds into one task per check (defer_finalize_checks)
  // instead of one whole-round closure. false = legacy whole-round tasks.
  bool intra_round_checks = true;
};

struct EngineReport {
  // One outcome per ROUND (split checks are folded back), submission order.
  std::vector<RoundOutcome> outcomes;
  std::uint64_t rounds = 0;
  std::uint64_t violations = 0;
  std::uint64_t signatures_verified = 0;
  // Rounds whose closure threw (their outcomes carry the exception and no
  // findings). Long-lived online pipelines drain with rethrow_errors =
  // false and GATE on this count instead of unwinding mid-simulation.
  std::uint64_t failed_rounds = 0;
  // Wall-clock profile of the batch's async window (begin_drain to the
  // last fold), and the portion of it that elapsed BEFORE the caller came
  // back to collect — i.e. verification that overlapped whatever the
  // caller did in between. A blocking drain() reports ~0 overlap; the
  // pipelined runner sums these into pipeline_overlap_ratio.
  double verify_wall_ms = 0;
  double overlapped_ms = 0;
};

class VerificationEngine {
 public:
  // Shares `ctx` (not owned, must outlive the engine) across all workers —
  // the per-key Montgomery precompute and, when the context caches
  // verdicts, the world-level verified-signature cache.
  VerificationEngine(EngineConfig config, const core::VerifyContext* ctx);
  // Compatibility: uses the directory's shared cache-off context.
  VerificationEngine(EngineConfig config, const core::KeyDirectory* directory);

  // Packages node's deferred finalize for round `id` (no-op if already
  // finalized). The findings are handed back to the node during drain().
  bool submit_node_round(core::PvrNode& node, const core::ProtocolId& id);

  // A free-standing round; its evidence goes only to the sink.
  std::size_t submit(const core::ProtocolId& id,
                     std::function<core::RoundFindings()> work);

  // Blocks until all submitted rounds have run; applies node findings back
  // to their nodes, records all evidence into the sink (submission order),
  // and returns the aggregate report. Incremental by design: a long-lived
  // engine alternates submit batches and drains, each drain returning that
  // batch's findings. If any round's closure threw it is counted in
  // EngineReport::failed_rounds and, when `rethrow_errors` (the default),
  // the first exception is rethrown AFTER every successful round's
  // findings were delivered and owner bookkeeping was reset — a failed
  // round loses only its own findings (its node stays finalized with
  // none). Online pipelines pass rethrow_errors = false and gate on the
  // count: a mid-simulation unwind would abandon every not-yet-submitted
  // round, which is worse than finishing the trace with one round short.
  // Equivalent to begin_drain() + collect(rethrow_errors).
  EngineReport drain(bool rethrow_errors = true);

  // Phase one of the pipelined drain: seals the submitted batch and hands
  // it to the worker pool, returning immediately. The submission-ordered
  // fold runs on the worker that completes the batch's last task. Throws
  // std::logic_error if a batch is already in flight. Safe on an empty
  // batch (collect() then returns an empty report).
  void begin_drain();

  // Phase two: blocks until the in-flight batch's fold is ready, then — on
  // the calling thread, which must be the thread that owns the submitted
  // nodes — applies findings back to their nodes, records evidence into
  // the sink (submission order), and returns the batch's report. Error
  // semantics match drain(). Throws std::logic_error when no batch is in
  // flight.
  EngineReport collect(bool rethrow_errors = true);

  // True between begin_drain() and the matching collect().
  [[nodiscard]] bool has_pending() const noexcept { return pending_; }

  [[nodiscard]] EvidenceSink& sink() noexcept { return sink_; }
  [[nodiscard]] const core::KeyDirectory& directory() const noexcept;
  [[nodiscard]] const core::VerifyContext& verify_context() const noexcept {
    return *ctx_;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return scheduler_.worker_count();
  }
  [[nodiscard]] const RoundScheduler& scheduler() const noexcept {
    return scheduler_;
  }

 private:
  // One submitted round: `parts` consecutive scheduler tickets starting at
  // `first_ticket`, folded back into one RoundOutcome during drain and
  // delivered to `node` (nullptr for free-standing rounds).
  struct TaskGroup {
    core::PvrNode* node = nullptr;
    core::ProtocolId id;
    std::size_t first_ticket = 0;
    std::size_t parts = 1;
  };

  // One folded batch parked between the worker-side fold and collect():
  // the immutable hand-off unit of the two-slot pipeline. `folded` holds
  // one fully-reduced RoundOutcome per group (same order as `groups`).
  struct CompletedBatch {
    std::vector<TaskGroup> groups;
    std::vector<RoundOutcome> folded;
    double begin_ms = 0;  // wall clock at begin_drain
    double done_ms = 0;   // wall clock when the fold finished
  };

  const core::VerifyContext* ctx_;  // not owned
  bool intra_round_checks_;
  RoundScheduler scheduler_;
  EvidenceSink sink_;
  std::vector<TaskGroup> groups_;  // submission order
  // Pipelined-drain state. `pending_` is only touched by the submitting
  // thread (begin_drain/collect are thread-compatible like submit); the
  // completed batch crosses threads under `done_mutex_`.
  bool pending_ = false;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::optional<CompletedBatch> done_;
};

// Submits every verifier of `world` (providers, then the recipient) for
// round `id` WITHOUT draining. Returns how many rounds were actually
// deferred. With the default intra-round config every check of every
// round lands on its own salted shard; submit several rounds before one
// drain() to also batch cross-round work.
std::size_t submit_world_round(VerificationEngine& engine,
                               core::Figure1World& world,
                               const core::ProtocolId& id);

// The engine-default finalize for a simulator-driven Figure-1 round:
// submit_world_round + drain. Safe to call for several rounds back to
// back — each call is one drained batch.
EngineReport finalize_world_round(VerificationEngine& engine,
                                  core::Figure1World& world,
                                  const core::ProtocolId& id);

}  // namespace pvr::engine
