// Facade tying the engine together: scheduler + batch verifier + sink.
//
// This is the DEFAULT verification path for simulator-driven rounds
// (sequential PvrNode::finalize_round is the fallback):
//
//   engine::VerificationEngine engine({.workers = 8}, &keys.directory);
//   finalize_world_round(engine, world, handles.round_id(epoch));
//   // or, node by node:
//   for (PvrNode* node : verifiers) engine.submit_node_round(*node, id);
//   engine.drain();   // findings delivered back to each node, evidence
//                     // aggregated into engine.sink() in submission order
//
// Usage (standalone rounds, e.g. benches):
//   engine.submit(id, [&] { return check(...); });
//   EngineReport report = engine.drain();
//
// Rounds are identified by the full core::ProtocolId (prover, prefix,
// epoch) throughout — submission tickets, shard assignment, and findings
// delivery — so concurrent rounds for different prefixes or provers in the
// same epoch never collide.
//
// Determinism: outcomes are applied in submission order after the pool has
// quiesced, so node evidence logs and the sink's log are byte-identical
// across worker counts (see DESIGN.md §"Engine").
#pragma once

#include <cstdint>
#include <vector>

#include "engine/evidence_sink.h"
#include "engine/round_scheduler.h"

namespace pvr::engine {

struct EngineConfig {
  std::size_t workers = 0;  // 0 = hardware concurrency
  std::size_t shards = 64;
};

struct EngineReport {
  std::vector<RoundOutcome> outcomes;  // submission order
  std::uint64_t rounds = 0;
  std::uint64_t violations = 0;
  std::uint64_t signatures_verified = 0;
};

class VerificationEngine {
 public:
  VerificationEngine(EngineConfig config, const core::KeyDirectory* directory);

  // Packages node's deferred finalize for round `id` (no-op if already
  // finalized). The findings are handed back to the node during drain().
  bool submit_node_round(core::PvrNode& node, const core::ProtocolId& id);

  // A free-standing round; its evidence goes only to the sink.
  std::size_t submit(const core::ProtocolId& id,
                     std::function<core::RoundFindings()> work);

  // Blocks until all submitted rounds have run; applies node findings back
  // to their nodes, records all evidence into the sink (submission order),
  // and returns the aggregate report. If any round's closure threw, the
  // first exception is rethrown AFTER every successful round's findings
  // were delivered and owner bookkeeping was reset — a failed round loses
  // only its own findings (its node stays finalized with none).
  EngineReport drain();

  [[nodiscard]] EvidenceSink& sink() noexcept { return sink_; }
  [[nodiscard]] const core::KeyDirectory& directory() const noexcept {
    return *directory_;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return scheduler_.worker_count();
  }
  [[nodiscard]] const RoundScheduler& scheduler() const noexcept {
    return scheduler_;
  }

 private:
  const core::KeyDirectory* directory_;  // not owned
  RoundScheduler scheduler_;
  EvidenceSink sink_;
  // ticket -> node to deliver findings to (nullptr for free-standing
  // rounds) and the round identity the findings belong to.
  std::vector<core::PvrNode*> owners_;
  std::vector<core::ProtocolId> ids_;
};

// Submits every verifier of `world` (providers, then the recipient) for
// round `id` WITHOUT draining. Returns how many rounds were actually
// deferred. All of one round's checks share the round's (prover, prefix)
// shard and therefore serialize; submit several rounds before one drain()
// to get cross-round parallelism.
std::size_t submit_world_round(VerificationEngine& engine,
                               core::Figure1World& world,
                               const core::ProtocolId& id);

// The engine-default finalize for a simulator-driven Figure-1 round:
// submit_world_round + drain. Safe to call for several rounds back to
// back — each call is one drained batch.
EngineReport finalize_world_round(VerificationEngine& engine,
                                  core::Figure1World& world,
                                  const core::ProtocolId& id);

}  // namespace pvr::engine
