// Sharded worker pool for (prover, prefix, epoch) verification rounds.
//
// The paper's feasibility argument (§4) needs one commitment/reveal round
// per (prover, prefix, epoch) at Internet scale; this scheduler drains
// thousands of such rounds through a bounded thread pool.
//
// Shard assignment (DESIGN.md §8.1): by default every submission's shard
// key is SALTED with its submission ticket, so even two tasks of the SAME
// round — e.g. the n+1 verifier checks of one (prover, prefix, epoch) —
// land on different shards and run concurrently. This is safe because
// submitted closures are self-contained snapshots (they share no mutable
// state), and it is what keeps one hot prefix from pinning a single
// worker. Callers whose closures DO share per-(prover, prefix) state can
// set `salt_shards = false` to get the legacy guarantee back: all rounds
// of one (prover, prefix) execute serially in submission order.
//
// Determinism guarantee (DESIGN.md §"Engine"): drain() returns outcomes in
// submission order, and each round closure only reads its own snapshot, so
// the drained sequence — and therefore any Evidence log built from it — is
// byte-identical for every worker count and either salting mode.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/pvr_speaker.h"

namespace pvr::engine {

struct SchedulerConfig {
  // 0 = std::thread::hardware_concurrency(). The pool is created once in
  // the constructor and joined in the destructor.
  std::size_t workers = 0;
  std::size_t shards = 64;
  // true (default): each submission's shard key is salted with its ticket,
  // so same-round tasks parallelize (closures must be self-contained).
  // false: shard purely by (prover, prefix) — same-key tasks serialize in
  // submission order.
  bool salt_shards = true;
};

// One drained round: the findings plus the identity of the round that
// produced them, in submission order. A round whose closure threw carries
// the exception instead of findings — one failing round never discards the
// results of the others.
struct RoundOutcome {
  core::ProtocolId id;
  core::RoundFindings findings;
  std::exception_ptr error;  // null on success
};

class RoundScheduler {
 public:
  explicit RoundScheduler(SchedulerConfig config = {});
  ~RoundScheduler();

  RoundScheduler(const RoundScheduler&) = delete;
  RoundScheduler& operator=(const RoundScheduler&) = delete;

  // Enqueues one round. Returns the submission ticket (index into the
  // vector drain() returns). Thread-compatible: submit from one thread.
  std::size_t submit(const core::ProtocolId& id,
                     std::function<core::RoundFindings()> work);

  // Blocks until every submitted round has run, then returns all outcomes
  // in submission order and resets the scheduler for the next batch.
  // Never throws for round failures: inspect RoundOutcome::error.
  // Throws std::logic_error while an async batch (begin_drain) is pending.
  [[nodiscard]] std::vector<RoundOutcome> drain();

  // Async half of the pipelined drain protocol: seals the current batch
  // and registers `on_complete` to receive its outcomes (submission order,
  // same contract as drain()). Non-blocking — if the batch already
  // quiesced the callback runs synchronously on the calling thread;
  // otherwise the WORKER that completes the batch's last task invokes it
  // (with the scheduler lock released), which is where the engine's
  // submission-ordered fold runs off the simulator thread. Until the
  // callback has run, submit(), drain(), and a second begin_drain() throw
  // std::logic_error: tickets restart at 0 per batch, so interleaving a
  // new submission into an unfinished batch would corrupt the
  // ticket-to-result mapping. At most ONE batch is ever in flight — the
  // two-slot buffer the online runner builds on top (DESIGN.md §12).
  void begin_drain(std::function<void(std::vector<RoundOutcome>)> on_complete);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_queues_.size();
  }
  [[nodiscard]] bool salted() const noexcept { return salt_shards_; }
  // The unsalted shard key: hashes the (prover, prefix) projection (the
  // assignment used when salt_shards = false).
  [[nodiscard]] std::size_t shard_of(const core::ProtocolId& id) const;
  // The salted key actually used for a submission with ticket `salt` when
  // salting is enabled: mixes the ticket into the hash so every submission
  // — same round or not — gets an independent shard.
  [[nodiscard]] std::size_t shard_of(const core::ProtocolId& id,
                                     std::size_t salt) const;

  // Rounds submitted per shard since construction (for balance tests).
  [[nodiscard]] std::vector<std::uint64_t> shard_loads() const;

 private:
  struct Task {
    core::ProtocolId id;
    std::function<core::RoundFindings()> work;
  };

  void worker_loop();
  // Runs one queued task if any shard is runnable. Returns false when
  // nothing was runnable. Caller must hold `mutex_` (released while the
  // task body runs, reacquired before returning).
  bool run_one(std::unique_lock<std::mutex>& lock);
  // Extracts the finished batch's outcomes and resets per-batch state.
  // Caller must hold `mutex_` and have checked completed_ == tasks_.size().
  [[nodiscard]] std::vector<RoundOutcome> take_outcomes_locked();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  bool stopping_ = false;

  std::vector<Task> tasks_;                        // indexed by ticket
  std::vector<std::optional<RoundOutcome>> results_;
  std::vector<std::deque<std::size_t>> shard_queues_;  // tickets, FIFO
  std::vector<bool> shard_busy_;
  std::vector<std::uint64_t> shard_totals_;
  std::size_t completed_ = 0;
  bool salt_shards_ = true;
  // Non-null while an async batch is in flight (begin_drain registered a
  // callback the batch has not yet delivered to).
  std::function<void(std::vector<RoundOutcome>)> async_callback_;

  std::vector<std::thread> workers_;
};

}  // namespace pvr::engine
