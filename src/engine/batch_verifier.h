// Amortized signature verification for engine workers.
//
// Two amortization levers (paper §3.8 counts RSA operations as the dominant
// cost; §4 argues feasibility hinges on keeping them sublinear in traffic):
//
//  1. Batched RSA verification: many SignedMessages are checked per worker
//     wakeup. Messages are grouped by signer and each group goes through
//     crypto::rsa_verify_batch in one call, so the returned vector is
//     always exactly what per-message core::verify_message would produce
//     (see rsa.h on why a product-test accept is deliberately absent).
//
//  2. Merkle-aggregated commitment bundles: a prover commits ONE signed
//     Merkle root over all its per-prefix CommitmentBundles for an epoch
//     and reveals each prefix with a log-size inclusion proof. Verifying N
//     prefixes then costs one RSA verification plus N*log2(N) hashes
//     instead of N RSA verifications. The aggregation machinery itself
//     lives in core/bundle_aggregation.h (it is also PvrNode's default
//     wire format, the pvr.bundle.agg channel); this header re-exports it
//     under pvr::engine for the engine-facing call sites.
//
// Wire format of the aggregated mode is specified in DESIGN.md §"Engine".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bundle_aggregation.h"
#include "core/keys.h"
#include "core/min_protocol.h"
#include "crypto/merkle.h"

namespace pvr::engine {

struct BatchVerifyStats {
  std::uint64_t messages = 0;       // total messages checked
  std::uint64_t batches = 0;        // rsa_verify_batch invocations
  std::uint64_t singletons = 0;     // groups of size 1 (no amortization)
};

// Batch-checks signed messages through a shared core::VerifyContext. The
// per-key Montgomery precompute lives in the context, so workers that share
// one context amortize it across every batch they drain. The verifier
// itself only accumulates stats; construction is free. Stats are NOT
// synchronized — engine workers each construct their own verifier over the
// shared context.
class BatchVerifier {
 public:
  // Borrows `ctx` (must outlive the verifier).
  explicit BatchVerifier(const core::VerifyContext* ctx);
  // Compatibility: uses the directory's shared cache-off context.
  explicit BatchVerifier(const core::KeyDirectory* directory);

  // result[i] == core::verify_message(directory, *messages[i]), always.
  [[nodiscard]] std::vector<bool> verify(
      std::span<const core::SignedMessage* const> messages);
  [[nodiscard]] std::vector<bool> verify(
      std::span<const core::SignedMessage> messages);

  [[nodiscard]] const BatchVerifyStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::VerifyContext& context() const noexcept {
    return *ctx_;
  }

 private:
  const core::VerifyContext* ctx_;  // not owned
  BatchVerifyStats stats_;
};

// ---- Merkle-aggregated commitment bundles ----
// Re-exported from core/bundle_aggregation.h for engine call sites.

using core::AggregatedBundle;
using core::AggregatedCommitment;
using core::AggregatedOpening;
using core::aggregate_bundles;
using core::verify_aggregated_opening;
using core::verify_aggregated_openings;

}  // namespace pvr::engine
