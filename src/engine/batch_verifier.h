// Amortized signature verification for engine workers.
//
// Two amortization levers (paper §3.8 counts RSA operations as the dominant
// cost; §4 argues feasibility hinges on keeping them sublinear in traffic):
//
//  1. Batched RSA verification: many SignedMessages are checked per worker
//     wakeup. Messages are grouped by signer and each group goes through
//     crypto::rsa_verify_batch in one call, so the returned vector is
//     always exactly what per-message core::verify_message would produce
//     (see rsa.h on why a product-test accept is deliberately absent).
//
//  2. Merkle-aggregated commitment bundles: a prover commits ONE signed
//     Merkle root over all its per-prefix CommitmentBundles for an epoch
//     and reveals each prefix with a log-size inclusion proof. Verifying N
//     prefixes then costs one RSA verification plus N*log2(N) hashes
//     instead of N RSA verifications (reuses crypto/merkle.h, the same
//     machinery the batched route-signing path advertises).
//
// Wire format of the aggregated mode is specified in DESIGN.md §"Engine".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/keys.h"
#include "core/min_protocol.h"
#include "crypto/merkle.h"

namespace pvr::engine {

struct BatchVerifyStats {
  std::uint64_t messages = 0;       // total messages checked
  std::uint64_t batches = 0;        // rsa_verify_batch invocations
  std::uint64_t singletons = 0;     // groups of size 1 (no amortization)
};

// Batch-checks signed messages against a key directory. Not thread-safe;
// engine workers each construct their own (construction is free — it only
// borrows the directory).
class BatchVerifier {
 public:
  explicit BatchVerifier(const core::KeyDirectory* directory);

  // result[i] == core::verify_message(directory, *messages[i]), always.
  [[nodiscard]] std::vector<bool> verify(
      std::span<const core::SignedMessage* const> messages);
  [[nodiscard]] std::vector<bool> verify(
      std::span<const core::SignedMessage> messages);

  [[nodiscard]] const BatchVerifyStats& stats() const noexcept { return stats_; }

 private:
  const core::KeyDirectory* directory_;  // not owned
  BatchVerifyStats stats_;
};

// ---- Merkle-aggregated commitment bundles ----

// The signed statement: one root over all per-prefix bundles of an epoch.
struct AggregatedBundle {
  bgp::AsNumber prover = 0;
  std::uint64_t epoch = 0;
  std::uint32_t prefix_count = 0;
  crypto::Digest root{};

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AggregatedBundle decode(std::span<const std::uint8_t> data);
};

// Per-prefix reveal: the bundle itself plus its inclusion proof under the
// signed root.
struct AggregatedOpening {
  core::CommitmentBundle bundle;
  crypto::MerkleProof proof;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AggregatedOpening decode(std::span<const std::uint8_t> data);
};

struct AggregatedCommitment {
  core::SignedMessage signed_root;          // AggregatedBundle payload
  std::vector<AggregatedOpening> openings;  // same order as the input bundles
};

// Prover side: one signature for the whole epoch.
[[nodiscard]] AggregatedCommitment aggregate_bundles(
    bgp::AsNumber prover, std::uint64_t epoch,
    std::span<const core::CommitmentBundle> bundles,
    const crypto::RsaPrivateKey& key);

// Verifier side for one prefix: checks the root signature, the inclusion
// proof, and that the opened bundle belongs to (prover, epoch).
[[nodiscard]] bool verify_aggregated_opening(
    const core::KeyDirectory& directory, const core::SignedMessage& signed_root,
    const AggregatedOpening& opening);

// Amortized form: verifies the root signature ONCE and then each opening
// against it — the per-epoch cost the aggregated mode exists for. Result
// order matches `openings`; all false if the root itself fails.
[[nodiscard]] std::vector<bool> verify_aggregated_openings(
    const core::KeyDirectory& directory, const core::SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings);

}  // namespace pvr::engine
