#include "engine/batch_verifier.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string_view>

#include "crypto/encoding.h"
#include "crypto/rsa.h"

namespace pvr::engine {

BatchVerifier::BatchVerifier(const core::KeyDirectory* directory)
    : directory_(directory) {}

std::vector<bool> BatchVerifier::verify(
    std::span<const core::SignedMessage* const> messages) {
  std::vector<bool> out(messages.size(), false);
  stats_.messages += messages.size();

  // Group by signer; each group shares one public key.
  std::map<bgp::AsNumber, std::vector<std::size_t>> by_signer;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    by_signer[messages[i]->signer].push_back(i);
  }

  for (const auto& [signer, indices] : by_signer) {
    const crypto::RsaPublicKey* key = directory_->find(signer);
    if (key == nullptr) continue;  // unknown signer: all false, as unbatched

    // The signing input must outlive the span batch items point into.
    std::vector<std::vector<std::uint8_t>> inputs;
    inputs.reserve(indices.size());
    std::vector<crypto::RsaBatchItem> items;
    items.reserve(indices.size());
    for (const std::size_t i : indices) {
      inputs.push_back(core::message_signing_input(signer, messages[i]->payload));
      items.push_back(crypto::RsaBatchItem{.message = inputs.back(),
                                           .signature = messages[i]->signature});
    }
    const std::vector<bool> results = crypto::rsa_verify_batch(*key, items);
    for (std::size_t j = 0; j < indices.size(); ++j) out[indices[j]] = results[j];

    stats_.batches += 1;
    if (indices.size() == 1) stats_.singletons += 1;
  }
  return out;
}

std::vector<bool> BatchVerifier::verify(
    std::span<const core::SignedMessage> messages) {
  std::vector<const core::SignedMessage*> pointers;
  pointers.reserve(messages.size());
  for (const core::SignedMessage& message : messages) pointers.push_back(&message);
  return verify(pointers);
}

// ---- Merkle-aggregated commitment bundles ----

namespace {

constexpr std::string_view kAggregatedBundleTag = "pvr-aggregated-bundle";

}  // namespace

std::vector<std::uint8_t> AggregatedBundle::encode() const {
  crypto::ByteWriter writer;
  writer.put_string(kAggregatedBundleTag);
  writer.put_u32(prover);
  writer.put_u64(epoch);
  writer.put_u32(prefix_count);
  writer.put_raw(std::span(root.data(), root.size()));
  return writer.take();
}

AggregatedBundle AggregatedBundle::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != kAggregatedBundleTag) {
    throw std::out_of_range("AggregatedBundle::decode: bad tag");
  }
  AggregatedBundle bundle;
  bundle.prover = reader.get_u32();
  bundle.epoch = reader.get_u64();
  bundle.prefix_count = reader.get_u32();
  const std::vector<std::uint8_t> raw = reader.get_raw(crypto::kSha256DigestSize);
  std::copy(raw.begin(), raw.end(), bundle.root.begin());
  return bundle;
}

std::vector<std::uint8_t> AggregatedOpening::encode() const {
  crypto::ByteWriter writer;
  writer.put_bytes(bundle.encode());
  proof.encode(writer);
  return writer.take();
}

AggregatedOpening AggregatedOpening::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  AggregatedOpening opening;
  opening.bundle = core::CommitmentBundle::decode(reader.get_bytes());
  opening.proof = crypto::MerkleProof::decode(reader);
  return opening;
}

AggregatedCommitment aggregate_bundles(
    bgp::AsNumber prover, std::uint64_t epoch,
    std::span<const core::CommitmentBundle> bundles,
    const crypto::RsaPrivateKey& key) {
  if (bundles.empty()) {
    throw std::invalid_argument("aggregate_bundles: no bundles");
  }
  std::vector<std::vector<std::uint8_t>> leaves;
  leaves.reserve(bundles.size());
  for (const core::CommitmentBundle& bundle : bundles) {
    leaves.push_back(bundle.encode());
  }
  const crypto::MerkleTree tree = crypto::MerkleTree::build(leaves);

  AggregatedCommitment commitment;
  const AggregatedBundle root{
      .prover = prover,
      .epoch = epoch,
      .prefix_count = static_cast<std::uint32_t>(bundles.size()),
      .root = tree.root()};
  commitment.signed_root = core::sign_message(prover, key, root.encode());
  commitment.openings.reserve(bundles.size());
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    commitment.openings.push_back(
        AggregatedOpening{.bundle = bundles[i], .proof = tree.prove(i)});
  }
  return commitment;
}

namespace {

// Signature-free part of the aggregated check (the root signature is the
// caller's responsibility, verified once per epoch in the batched form).
[[nodiscard]] bool check_opening_against_root(const AggregatedBundle& root,
                                              bgp::AsNumber root_signer,
                                              const AggregatedOpening& opening) {
  // The opened bundle must belong to the same (prover, epoch) the root was
  // signed for — a proof from another epoch's tree must not transplant.
  if (opening.bundle.id.prover != root.prover ||
      opening.bundle.id.epoch != root.epoch || root.prover != root_signer) {
    return false;
  }
  if (opening.proof.leaf_count != root.prefix_count) return false;
  return crypto::MerkleTree::verify(root.root, opening.bundle.encode(),
                                    opening.proof);
}

}  // namespace

bool verify_aggregated_opening(const core::KeyDirectory& directory,
                               const core::SignedMessage& signed_root,
                               const AggregatedOpening& opening) {
  if (!core::verify_message(directory, signed_root)) return false;
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(signed_root.payload);
  } catch (const std::out_of_range&) {
    return false;
  }
  return check_opening_against_root(root, signed_root.signer, opening);
}

std::vector<bool> verify_aggregated_openings(
    const core::KeyDirectory& directory, const core::SignedMessage& signed_root,
    std::span<const AggregatedOpening> openings) {
  std::vector<bool> out(openings.size(), false);
  if (!core::verify_message(directory, signed_root)) return out;
  AggregatedBundle root;
  try {
    root = AggregatedBundle::decode(signed_root.payload);
  } catch (const std::out_of_range&) {
    return out;
  }
  for (std::size_t i = 0; i < openings.size(); ++i) {
    out[i] = check_opening_against_root(root, signed_root.signer, openings[i]);
  }
  return out;
}

}  // namespace pvr::engine
