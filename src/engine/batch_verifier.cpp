#include "engine/batch_verifier.h"

#include <map>

#include "core/verify_context.h"
#include "crypto/rsa.h"

namespace pvr::engine {

BatchVerifier::BatchVerifier(const core::VerifyContext* ctx) : ctx_(ctx) {}

BatchVerifier::BatchVerifier(const core::KeyDirectory* directory)
    : ctx_(&directory->verify_context()) {}

std::vector<bool> BatchVerifier::verify(
    std::span<const core::SignedMessage* const> messages) {
  std::vector<bool> out(messages.size(), false);
  stats_.messages += messages.size();

  // Group by signer; each group shares one prepared verification key.
  std::map<bgp::AsNumber, std::vector<std::size_t>> by_signer;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    by_signer[messages[i]->signer].push_back(i);
  }

  for (const auto& [signer, indices] : by_signer) {
    const crypto::RsaVerifyKey* key = ctx_->verify_key(signer);
    if (key == nullptr) continue;  // unknown signer: all false, as unbatched

    // The signing input must outlive the span batch items point into.
    std::vector<std::vector<std::uint8_t>> inputs;
    inputs.reserve(indices.size());
    std::vector<crypto::RsaBatchItem> items;
    items.reserve(indices.size());
    for (const std::size_t i : indices) {
      inputs.push_back(core::message_signing_input(signer, messages[i]->payload));
      items.push_back(crypto::RsaBatchItem{.message = inputs.back(),
                                           .signature = messages[i]->signature});
    }
    const std::vector<bool> results = key->verify_batch(items);
    for (std::size_t j = 0; j < indices.size(); ++j) out[indices[j]] = results[j];

    stats_.batches += 1;
    if (indices.size() == 1) stats_.singletons += 1;
  }
  return out;
}

std::vector<bool> BatchVerifier::verify(
    std::span<const core::SignedMessage> messages) {
  std::vector<const core::SignedMessage*> pointers;
  pointers.reserve(messages.size());
  for (const core::SignedMessage& message : messages) pointers.push_back(&message);
  return verify(pointers);
}

}  // namespace pvr::engine
