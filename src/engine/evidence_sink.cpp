#include "engine/evidence_sink.h"

#include <utility>

namespace pvr::engine {

void EvidenceSink::record(core::Evidence evidence) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto kind = static_cast<std::size_t>(evidence.kind);
  if (kind < kKindCount) counts_[kind] += 1;
  total_ += 1;
  evidence_.push_back(std::move(evidence));
}

void EvidenceSink::record_all(std::vector<core::Evidence> evidence) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (core::Evidence& item : evidence) {
    const auto kind = static_cast<std::size_t>(item.kind);
    if (kind < kKindCount) counts_[kind] += 1;
    total_ += 1;
    evidence_.push_back(std::move(item));
  }
}

std::vector<core::Evidence> EvidenceSink::take() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(evidence_, {});
}

std::vector<core::Evidence> EvidenceSink::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evidence_;
}

std::uint64_t EvidenceSink::count(core::ViolationKind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindCount ? counts_[index] : 0;
}

std::uint64_t EvidenceSink::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::size_t EvidenceSink::validate_all(const core::Auditor& auditor) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t accepted = 0;
  for (const core::Evidence& item : evidence_) {
    if (auditor.validate(item)) accepted += 1;
  }
  return accepted;
}

}  // namespace pvr::engine
