#include "engine/verification_engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::engine {

VerificationEngine::VerificationEngine(EngineConfig config,
                                       const core::KeyDirectory* directory)
    : directory_(directory),
      intra_round_checks_(config.intra_round_checks),
      scheduler_(SchedulerConfig{.workers = config.workers,
                                 .shards = config.shards,
                                 .salt_shards = config.salt_shards}) {}

bool VerificationEngine::submit_node_round(core::PvrNode& node,
                                           const core::ProtocolId& id) {
  if (!intra_round_checks_) {
    std::optional<core::DeferredRound> deferred = node.defer_finalize(id);
    if (!deferred.has_value()) return false;
    const std::size_t ticket =
        scheduler_.submit(deferred->id, std::move(deferred->work));
    groups_.push_back(TaskGroup{
        .node = &node, .id = id, .first_ticket = ticket, .parts = 1});
    return true;
  }

  // Intra-round path: one task per check, all over one shared snapshot.
  // The salted scheduler spreads them across shards, so this round's
  // checks run concurrently; drain() folds the parts back in order.
  std::optional<core::DeferredRoundChecks> deferred =
      node.defer_finalize_checks(id);
  if (!deferred.has_value()) return false;
  TaskGroup group{.node = &node,
                  .id = id,
                  .first_ticket = 0,
                  .parts = deferred->checks.size()};
  for (std::size_t part = 0; part < deferred->checks.size(); ++part) {
    const std::size_t ticket =
        scheduler_.submit(id, std::move(deferred->checks[part]));
    if (part == 0) group.first_ticket = ticket;
  }
  groups_.push_back(group);
  return true;
}

std::size_t VerificationEngine::submit(
    const core::ProtocolId& id, std::function<core::RoundFindings()> work) {
  const std::size_t ticket = scheduler_.submit(id, std::move(work));
  groups_.push_back(TaskGroup{
      .node = nullptr, .id = id, .first_ticket = ticket, .parts = 1});
  return ticket;
}

EngineReport VerificationEngine::drain(bool rethrow_errors) {
  const obs::TraceSpan drain_span("engine.drain", "engine");
  PVR_OBS_COUNT(engine_drains, 1);
  PVR_OBS_RECORD(scenario_drain_rounds, groups_.size());
  std::vector<RoundOutcome> raw = scheduler_.drain();
  EngineReport report;
  report.outcomes.reserve(groups_.size());
  std::exception_ptr first_error;
  for (const TaskGroup& group : groups_) {
    // Deterministic per-round reducer: fold the group's partial findings
    // in ticket order — the enumeration order check_round uses — so the
    // folded round is byte-identical to the sequential path regardless of
    // which workers ran which parts.
    RoundOutcome folded{.id = group.id, .findings = {}, .error = nullptr};
    for (std::size_t part = 0; part < group.parts; ++part) {
      RoundOutcome& outcome = raw[group.first_ticket + part];
      if (outcome.error) {
        if (!folded.error) folded.error = outcome.error;
        continue;
      }
      core::fold_round_findings(folded.findings, std::move(outcome.findings));
    }
    if (folded.error) {
      // A failed round contributes no findings (its node stays finalized
      // with none) — even the parts that succeeded.
      folded.findings = core::RoundFindings{};
      report.failed_rounds += 1;
      if (!first_error) first_error = folded.error;
    } else {
      report.violations += folded.findings.evidence.size();
      report.signatures_verified += folded.findings.signatures_verified;
      sink_.record_all(folded.findings.evidence);  // copy into ordered log
      if (group.node != nullptr) {
        group.node->apply_round_findings(group.id, folded.findings);
      }
    }
    report.outcomes.push_back(std::move(folded));
  }
  report.rounds = report.outcomes.size();
  PVR_OBS_COUNT(engine_rounds_folded, report.rounds);
  // Group bookkeeping must never survive into the next batch (tickets
  // restart at 0), failed drain or not.
  groups_.clear();
  // Rethrow only after every successful round's findings were delivered.
  if (first_error && rethrow_errors) std::rethrow_exception(first_error);
  return report;
}

std::size_t submit_world_round(VerificationEngine& engine,
                               core::Figure1World& world,
                               const core::ProtocolId& id) {
  std::size_t submitted = 0;
  for (const bgp::AsNumber provider : world.providers) {
    submitted += engine.submit_node_round(world.node(provider), id) ? 1 : 0;
  }
  submitted += engine.submit_node_round(world.node(world.recipient), id) ? 1 : 0;
  return submitted;
}

EngineReport finalize_world_round(VerificationEngine& engine,
                                  core::Figure1World& world,
                                  const core::ProtocolId& id) {
  (void)submit_world_round(engine, world, id);
  return engine.drain();
}

}  // namespace pvr::engine
