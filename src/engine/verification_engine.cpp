#include "engine/verification_engine.h"

namespace pvr::engine {

VerificationEngine::VerificationEngine(EngineConfig config,
                                       const core::KeyDirectory* directory)
    : directory_(directory),
      scheduler_(SchedulerConfig{.workers = config.workers,
                                 .shards = config.shards}) {}

bool VerificationEngine::submit_node_round(core::PvrNode& node,
                                           const core::ProtocolId& id) {
  std::optional<core::DeferredRound> deferred = node.defer_finalize(id);
  if (!deferred.has_value()) return false;
  const std::size_t ticket =
      scheduler_.submit(deferred->id, std::move(deferred->work));
  if (owners_.size() <= ticket) {
    owners_.resize(ticket + 1, nullptr);
    ids_.resize(ticket + 1);
  }
  owners_[ticket] = &node;
  ids_[ticket] = id;
  return true;
}

std::size_t VerificationEngine::submit(
    const core::ProtocolId& id, std::function<core::RoundFindings()> work) {
  const std::size_t ticket = scheduler_.submit(id, std::move(work));
  if (owners_.size() <= ticket) {
    owners_.resize(ticket + 1, nullptr);
    ids_.resize(ticket + 1);
  }
  return ticket;
}

EngineReport VerificationEngine::drain() {
  EngineReport report;
  report.outcomes = scheduler_.drain();
  report.rounds = report.outcomes.size();
  std::exception_ptr first_error;
  for (std::size_t ticket = 0; ticket < report.outcomes.size(); ++ticket) {
    RoundOutcome& outcome = report.outcomes[ticket];
    if (outcome.error) {
      if (!first_error) first_error = outcome.error;
      continue;  // a failed round contributes no findings
    }
    report.violations += outcome.findings.evidence.size();
    report.signatures_verified += outcome.findings.signatures_verified;
    sink_.record_all(outcome.findings.evidence);  // copy into ordered log
    if (ticket < owners_.size() && owners_[ticket] != nullptr) {
      owners_[ticket]->apply_round_findings(ids_[ticket], outcome.findings);
    }
  }
  // Owner bookkeeping must never survive into the next batch (tickets
  // restart at 0), failed drain or not.
  owners_.clear();
  ids_.clear();
  // Rethrow only after every successful round's findings were delivered.
  if (first_error) std::rethrow_exception(first_error);
  return report;
}

std::size_t submit_world_round(VerificationEngine& engine,
                               core::Figure1World& world,
                               const core::ProtocolId& id) {
  std::size_t submitted = 0;
  for (const bgp::AsNumber provider : world.providers) {
    submitted += engine.submit_node_round(world.node(provider), id) ? 1 : 0;
  }
  submitted += engine.submit_node_round(world.node(world.recipient), id) ? 1 : 0;
  return submitted;
}

EngineReport finalize_world_round(VerificationEngine& engine,
                                  core::Figure1World& world,
                                  const core::ProtocolId& id) {
  (void)submit_world_round(engine, world, id);
  return engine.drain();
}

}  // namespace pvr::engine
