#include "engine/verification_engine.h"

namespace pvr::engine {

VerificationEngine::VerificationEngine(EngineConfig config,
                                       const core::KeyDirectory* directory)
    : directory_(directory),
      scheduler_(SchedulerConfig{.workers = config.workers,
                                 .shards = config.shards}) {}

bool VerificationEngine::submit_node_round(core::PvrNode& node,
                                           std::uint64_t epoch) {
  std::optional<core::DeferredRound> deferred = node.defer_finalize(epoch);
  if (!deferred.has_value()) return false;
  const std::size_t ticket =
      scheduler_.submit(deferred->id, std::move(deferred->work));
  if (owners_.size() <= ticket) {
    owners_.resize(ticket + 1, nullptr);
    epochs_.resize(ticket + 1, 0);
  }
  owners_[ticket] = &node;
  epochs_[ticket] = epoch;
  return true;
}

std::size_t VerificationEngine::submit(
    const core::ProtocolId& id, std::function<core::RoundFindings()> work) {
  const std::size_t ticket = scheduler_.submit(id, std::move(work));
  if (owners_.size() <= ticket) {
    owners_.resize(ticket + 1, nullptr);
    epochs_.resize(ticket + 1, 0);
  }
  return ticket;
}

EngineReport VerificationEngine::drain() {
  EngineReport report;
  report.outcomes = scheduler_.drain();
  report.rounds = report.outcomes.size();
  std::exception_ptr first_error;
  for (std::size_t ticket = 0; ticket < report.outcomes.size(); ++ticket) {
    RoundOutcome& outcome = report.outcomes[ticket];
    if (outcome.error) {
      if (!first_error) first_error = outcome.error;
      continue;  // a failed round contributes no findings
    }
    report.violations += outcome.findings.evidence.size();
    report.signatures_verified += outcome.findings.signatures_verified;
    sink_.record_all(outcome.findings.evidence);  // copy into ordered log
    if (ticket < owners_.size() && owners_[ticket] != nullptr) {
      owners_[ticket]->apply_round_findings(epochs_[ticket], outcome.findings);
    }
  }
  // Owner bookkeeping must never survive into the next batch (tickets
  // restart at 0), failed drain or not.
  owners_.clear();
  epochs_.clear();
  // Rethrow only after every successful round's findings were delivered.
  if (first_error) std::rethrow_exception(first_error);
  return report;
}

}  // namespace pvr::engine
