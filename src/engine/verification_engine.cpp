#include "engine/verification_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/verify_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pvr::engine {

namespace {

[[nodiscard]] double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

VerificationEngine::VerificationEngine(EngineConfig config,
                                       const core::VerifyContext* ctx)
    : ctx_(ctx),
      intra_round_checks_(config.intra_round_checks),
      scheduler_(SchedulerConfig{.workers = config.workers,
                                 .shards = config.shards,
                                 .salt_shards = config.salt_shards}) {}

VerificationEngine::VerificationEngine(EngineConfig config,
                                       const core::KeyDirectory* directory)
    : VerificationEngine(config, &directory->verify_context()) {}

const core::KeyDirectory& VerificationEngine::directory() const noexcept {
  return ctx_->directory();
}

bool VerificationEngine::submit_node_round(core::PvrNode& node,
                                           const core::ProtocolId& id) {
  if (pending_) {
    throw std::logic_error(
        "VerificationEngine::submit_node_round: a begin_drain batch is in "
        "flight — collect() it before submitting the next batch");
  }
  if (!intra_round_checks_) {
    std::optional<core::DeferredRound> deferred = node.defer_finalize(id);
    if (!deferred.has_value()) return false;
    const std::size_t ticket =
        scheduler_.submit(deferred->id, std::move(deferred->work));
    groups_.push_back(TaskGroup{
        .node = &node, .id = id, .first_ticket = ticket, .parts = 1});
    return true;
  }

  // Intra-round path: one task per check, all over one shared snapshot.
  // The salted scheduler spreads them across shards, so this round's
  // checks run concurrently; drain() folds the parts back in order.
  std::optional<core::DeferredRoundChecks> deferred =
      node.defer_finalize_checks(id);
  if (!deferred.has_value()) return false;
  TaskGroup group{.node = &node,
                  .id = id,
                  .first_ticket = 0,
                  .parts = deferred->checks.size()};
  for (std::size_t part = 0; part < deferred->checks.size(); ++part) {
    const std::size_t ticket =
        scheduler_.submit(id, std::move(deferred->checks[part]));
    if (part == 0) group.first_ticket = ticket;
  }
  groups_.push_back(group);
  return true;
}

std::size_t VerificationEngine::submit(
    const core::ProtocolId& id, std::function<core::RoundFindings()> work) {
  if (pending_) {
    throw std::logic_error(
        "VerificationEngine::submit: a begin_drain batch is in flight — "
        "collect() it before submitting the next batch");
  }
  const std::size_t ticket = scheduler_.submit(id, std::move(work));
  groups_.push_back(TaskGroup{
      .node = nullptr, .id = id, .first_ticket = ticket, .parts = 1});
  return ticket;
}

void VerificationEngine::begin_drain() {
  if (pending_) {
    throw std::logic_error(
        "VerificationEngine::begin_drain: a batch is already in flight — "
        "collect() it before sealing the next one");
  }
  pending_ = true;
  PVR_OBS_COUNT(engine_drains, 1);
  PVR_OBS_RECORD(scenario_drain_rounds, groups_.size());
  // Group bookkeeping must never survive into the next batch (tickets
  // restart at 0) — the sealed batch owns it from here on.
  std::vector<TaskGroup> groups = std::move(groups_);
  groups_.clear();
  const double begin_ms = now_ms();
  scheduler_.begin_drain([this, groups = std::move(groups),
                          begin_ms](std::vector<RoundOutcome> raw) mutable {
    // Runs on whichever worker finishes the batch's last task (or on the
    // submitting thread when the batch already quiesced). Only touches the
    // self-contained task outputs — node and sink stay with collect().
    CompletedBatch batch;
    batch.begin_ms = begin_ms;
    batch.folded.reserve(groups.size());
    for (const TaskGroup& group : groups) {
      // Deterministic per-round reducer: fold the group's partial findings
      // in ticket order — the enumeration order check_round uses — so the
      // folded round is byte-identical to the sequential path regardless
      // of which workers ran which parts.
      RoundOutcome folded{.id = group.id, .findings = {}, .error = nullptr};
      for (std::size_t part = 0; part < group.parts; ++part) {
        RoundOutcome& outcome = raw[group.first_ticket + part];
        if (outcome.error) {
          if (!folded.error) folded.error = outcome.error;
          continue;
        }
        core::fold_round_findings(folded.findings,
                                  std::move(outcome.findings));
      }
      if (folded.error) {
        // A failed round contributes no findings (its node stays finalized
        // with none) — even the parts that succeeded.
        folded.findings = core::RoundFindings{};
      }
      batch.folded.push_back(std::move(folded));
    }
    batch.groups = std::move(groups);
    batch.done_ms = now_ms();
    {
      const std::lock_guard<std::mutex> lock(done_mutex_);
      done_ = std::move(batch);
      // Notify while still holding the mutex: the waiter in collect()
      // may destroy this engine the moment it returns, and it cannot
      // reacquire the mutex (and so cannot return) until this worker has
      // finished touching done_cv_. Notifying after unlock races the
      // broadcast against ~VerificationEngine's pthread_cond_destroy.
      done_cv_.notify_all();
    }
  });
}

EngineReport VerificationEngine::collect(bool rethrow_errors) {
  if (!pending_) {
    throw std::logic_error(
        "VerificationEngine::collect: no batch in flight (call begin_drain "
        "first)");
  }
  const double arrive_ms = now_ms();
  CompletedBatch batch;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return done_.has_value(); });
    batch = std::move(*done_);
    done_.reset();
  }
  pending_ = false;

  const obs::TraceSpan collect_span("engine.collect", "engine");
  EngineReport report;
  report.outcomes.reserve(batch.folded.size());
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < batch.folded.size(); ++i) {
    const TaskGroup& group = batch.groups[i];
    RoundOutcome& folded = batch.folded[i];
    if (folded.error) {
      report.failed_rounds += 1;
      if (!first_error) first_error = folded.error;
    } else {
      report.violations += folded.findings.evidence.size();
      report.signatures_verified += folded.findings.signatures_verified;
      sink_.record_all(folded.findings.evidence);  // copy into ordered log
      if (group.node != nullptr) {
        group.node->apply_round_findings(group.id, folded.findings);
      }
    }
    report.outcomes.push_back(std::move(folded));
  }
  report.rounds = report.outcomes.size();
  PVR_OBS_COUNT(engine_rounds_folded, report.rounds);

  // Overlap accounting: the batch's async window is [begin, done]; the
  // slice of it that elapsed before the caller arrived here is work that
  // overlapped whatever the caller did in between (simulation, in the
  // online runner). A blocking drain arrives almost immediately, so its
  // overlap is ~0 by construction.
  report.verify_wall_ms = std::max(0.0, batch.done_ms - batch.begin_ms);
  report.overlapped_ms =
      std::max(0.0, std::min(batch.done_ms, arrive_ms) - batch.begin_ms);
  PVR_OBS_RECORD(engine_overlap_us,
                 static_cast<std::uint64_t>(report.overlapped_ms * 1000.0));
  obs::TraceWriter& tracer = obs::TraceWriter::global();
  if (tracer.active()) {
    // Per-batch overlap span (wall track, one shared lane): the window the
    // pool verified batch N while the submitting thread was elsewhere.
    const std::uint64_t now_us = tracer.wall_now_us();
    const std::uint64_t dur_us =
        static_cast<std::uint64_t>(report.overlapped_ms * 1000.0);
    const std::uint64_t since_begin_us =
        static_cast<std::uint64_t>((now_ms() - batch.begin_ms) * 1000.0);
    tracer.complete("engine.pipeline.overlap", "engine", obs::Track::kWall,
                    /*tid=*/0,
                    now_us >= since_begin_us ? now_us - since_begin_us : 0,
                    dur_us);
  }
  // Rethrow only after every successful round's findings were delivered.
  if (first_error && rethrow_errors) std::rethrow_exception(first_error);
  return report;
}

EngineReport VerificationEngine::drain(bool rethrow_errors) {
  const obs::TraceSpan drain_span("engine.drain", "engine");
  begin_drain();
  return collect(rethrow_errors);
}

std::size_t submit_world_round(VerificationEngine& engine,
                               core::Figure1World& world,
                               const core::ProtocolId& id) {
  std::size_t submitted = 0;
  for (const bgp::AsNumber provider : world.providers) {
    submitted += engine.submit_node_round(world.node(provider), id) ? 1 : 0;
  }
  submitted += engine.submit_node_round(world.node(world.recipient), id) ? 1 : 0;
  return submitted;
}

EngineReport finalize_world_round(VerificationEngine& engine,
                                  core::Figure1World& world,
                                  const core::ProtocolId& id) {
  (void)submit_world_round(engine, world, id);
  return engine.drain();
}

}  // namespace pvr::engine
