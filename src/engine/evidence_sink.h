// Thread-safe Evidence aggregation with per-violation-class counters.
//
// Engine workers (and anything else running off the simulator thread) push
// Evidence here; the Auditor-facing side reads a stable, deterministic log.
// Counters are commutative, so they are exact under any interleaving; the
// ordered log is built by the engine's drain step, which records outcomes
// in submission order regardless of which worker finished first.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/evidence.h"

namespace pvr::engine {

class EvidenceSink {
 public:
  // Thread-safe. Evidence is appended in call order; callers that need a
  // deterministic log must call record in a deterministic order (the
  // engine's drain does) or sort the result of take().
  void record(core::Evidence evidence);
  void record_all(std::vector<core::Evidence> evidence);

  // Moves the accumulated log out (counters are NOT reset).
  [[nodiscard]] std::vector<core::Evidence> take();
  [[nodiscard]] std::vector<core::Evidence> snapshot() const;

  [[nodiscard]] std::uint64_t count(core::ViolationKind kind) const;
  [[nodiscard]] std::uint64_t total() const;

  // Runs every held Evidence through the third-party auditor; returns how
  // many it accepts (the third-party-provable subset).
  [[nodiscard]] std::size_t validate_all(const core::Auditor& auditor) const;

 private:
  // One counter per ViolationKind; derived from the enum's last member so
  // a new kind cannot silently fall outside the counter array.
  static constexpr std::size_t kKindCount =
      static_cast<std::size_t>(core::ViolationKind::kStructuralMismatch) + 1;

  mutable std::mutex mutex_;
  std::vector<core::Evidence> evidence_;
  std::array<std::uint64_t, kKindCount> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace pvr::engine
