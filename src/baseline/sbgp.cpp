#include "baseline/sbgp.h"

#include <stdexcept>

#include "crypto/encoding.h"

namespace pvr::baseline {

std::vector<std::uint8_t> Attestation::encode() const {
  crypto::ByteWriter writer;
  writer.put_string("sbgp.attestation");
  prefix.encode(writer);
  writer.put_u32(signer);
  writer.put_u32(to);
  writer.put_u16(static_cast<std::uint16_t>(suffix.size()));
  for (const bgp::AsNumber asn : suffix) writer.put_u32(asn);
  return writer.take();
}

Attestation Attestation::decode(std::span<const std::uint8_t> data) {
  crypto::ByteReader reader(data);
  if (reader.get_string() != "sbgp.attestation") {
    throw std::out_of_range("Attestation: bad tag");
  }
  Attestation out;
  out.prefix = bgp::Ipv4Prefix::decode(reader);
  out.signer = reader.get_u32();
  out.to = reader.get_u32();
  const std::uint16_t count = reader.get_u16();
  out.suffix.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) out.suffix.push_back(reader.get_u32());
  return out;
}

SbgpAnnouncement sbgp_originate(const bgp::Ipv4Prefix& prefix,
                                bgp::AsNumber origin, bgp::AsNumber next,
                                const crypto::RsaPrivateKey& key) {
  const Attestation attestation{
      .prefix = prefix, .signer = origin, .to = next, .suffix = {origin}};
  return SbgpAnnouncement{
      .prefix = prefix,
      .path = bgp::AsPath{origin},
      .attestations = {core::sign_message(origin, key, attestation.encode())},
  };
}

SbgpAnnouncement sbgp_extend(const SbgpAnnouncement& received,
                             bgp::AsNumber self, bgp::AsNumber next,
                             const crypto::RsaPrivateKey& key) {
  SbgpAnnouncement out = received;
  out.path = received.path.prepended(self);
  const Attestation attestation{.prefix = received.prefix,
                                .signer = self,
                                .to = next,
                                .suffix = out.path.hops()};
  out.attestations.push_back(core::sign_message(self, key, attestation.encode()));
  return out;
}

bool sbgp_verify(const core::KeyDirectory& directory,
                 const SbgpAnnouncement& announcement, bgp::AsNumber receiver) {
  const std::vector<bgp::AsNumber>& hops = announcement.path.hops();
  if (hops.empty() || announcement.attestations.size() != hops.size()) {
    return false;
  }
  // hops = [A_k, ..., A_1, origin]; attestations[i] belongs to
  // hops[hops.size()-1-i] (origin first).
  for (std::size_t i = 0; i < announcement.attestations.size(); ++i) {
    const core::SignedMessage& message = announcement.attestations[i];
    if (!core::verify_message(directory, message)) return false;
    Attestation attestation;
    try {
      attestation = Attestation::decode(message.payload);
    } catch (const std::out_of_range&) {
      return false;
    }
    const std::size_t hop_index = hops.size() - 1 - i;
    if (attestation.signer != hops[hop_index]) return false;
    if (attestation.signer != message.signer) return false;
    if (attestation.prefix != announcement.prefix) return false;
    // The signed suffix must equal the path from this hop down to origin.
    const std::vector<bgp::AsNumber> expected(hops.begin() +
                                                  static_cast<std::ptrdiff_t>(hop_index),
                                              hops.end());
    if (attestation.suffix != expected) return false;
    // Addressed to the next hop up the chain (or the final receiver).
    const bgp::AsNumber expected_to =
        hop_index == 0 ? receiver : hops[hop_index - 1];
    if (attestation.to != expected_to) return false;
  }
  return true;
}

std::size_t sbgp_wire_size(const SbgpAnnouncement& announcement) {
  std::size_t total = announcement.path.hops().size() * 4 + 5;
  for (const core::SignedMessage& message : announcement.attestations) {
    total += message.encode().size();
  }
  return total;
}

}  // namespace pvr::baseline
