#include "baseline/full_disclosure.h"

namespace pvr::baseline {

FullDisclosureReport full_disclosure_audit(
    const core::Promise& promise, const core::Promise::Inputs& inputs,
    const std::optional<bgp::Route>& output, std::size_t verifier_count) {
  FullDisclosureReport report;
  report.promise_kept = promise.holds(inputs, output);
  for (const auto& [neighbor, route] : inputs) {
    if (!route.has_value()) continue;
    report.routes_revealed += verifier_count;
    report.bytes_revealed += verifier_count * route->canonical_bytes().size();
  }
  return report;
}

}  // namespace pvr::baseline
