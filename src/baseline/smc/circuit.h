// Boolean circuits for the SMC strawman (paper §3.1).
//
// The strawman computes the same minimum-of-k-path-lengths function as the
// PVR minimum protocol, but inside a generic secure multiparty computation.
// Circuits are layered DAGs of XOR / AND / NOT gates over single-bit wires;
// XOR and NOT are free in GMW, each AND layer costs one communication
// round, so the builder tracks layers explicitly.
#pragma once

#include <cstdint>
#include <vector>

namespace pvr::baseline::smc {

enum class GateType : std::uint8_t { kInput, kConstant, kXor, kAnd, kNot };

struct Gate {
  GateType type = GateType::kInput;
  std::uint32_t a = 0;  // operand wire (unused for inputs/constants)
  std::uint32_t b = 0;  // second operand (kXor / kAnd only)
  bool constant = false;
  std::uint32_t layer = 0;  // AND-depth of this wire
};

using Wire = std::uint32_t;

class Circuit {
 public:
  [[nodiscard]] Wire add_input();
  [[nodiscard]] Wire add_constant(bool value);
  [[nodiscard]] Wire add_xor(Wire a, Wire b);
  [[nodiscard]] Wire add_and(Wire a, Wire b);
  [[nodiscard]] Wire add_not(Wire a);

  void mark_output(Wire w) { outputs_.push_back(w); }

  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }
  [[nodiscard]] const std::vector<Wire>& outputs() const noexcept { return outputs_; }
  [[nodiscard]] std::size_t input_count() const noexcept { return input_count_; }
  [[nodiscard]] std::size_t and_count() const noexcept { return and_count_; }
  // Number of AND layers == GMW communication rounds.
  [[nodiscard]] std::uint32_t and_depth() const noexcept { return max_layer_; }

  // Plaintext evaluation (reference semantics for tests).
  [[nodiscard]] std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  // ---- Multi-bit helpers (little-endian wire vectors) ----

  // `width` fresh input wires forming one party's integer input.
  [[nodiscard]] std::vector<Wire> add_input_word(std::size_t width);
  // Comparator: 1 iff word a < word b (unsigned).
  [[nodiscard]] Wire less_than(const std::vector<Wire>& a,
                               const std::vector<Wire>& b);
  // Selector: sel ? a : b, bitwise.
  [[nodiscard]] std::vector<Wire> mux(Wire sel, const std::vector<Wire>& a,
                                      const std::vector<Wire>& b);

 private:
  [[nodiscard]] Wire push(Gate gate);

  std::vector<Gate> gates_;
  std::vector<Wire> outputs_;
  std::size_t input_count_ = 0;
  std::size_t and_count_ = 0;
  std::uint32_t max_layer_ = 0;
};

// The strawman's workload: min over `parties` unsigned `width`-bit inputs.
// Tournament of comparator+mux stages; outputs the minimum value's bits.
[[nodiscard]] Circuit build_minimum_circuit(std::size_t parties, std::size_t width);

// Existential variant: OR over "input != 0" bits.
[[nodiscard]] Circuit build_existential_circuit(std::size_t parties,
                                                std::size_t width);

}  // namespace pvr::baseline::smc
