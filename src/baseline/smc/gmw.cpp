#include "baseline/smc/gmw.h"

#include <chrono>
#include <stdexcept>

namespace pvr::baseline::smc {

namespace {

// One XOR-shared bit: share[p] for each party, XOR of all = plaintext.
struct SharedBit {
  std::vector<std::uint8_t> shares;  // one bit per party
};

[[nodiscard]] SharedBit share_bit(bool value, std::size_t parties,
                                  crypto::Drbg& rng) {
  SharedBit out;
  out.shares.resize(parties);
  std::uint8_t acc = 0;
  for (std::size_t p = 0; p + 1 < parties; ++p) {
    out.shares[p] = static_cast<std::uint8_t>(rng.uniform(2));
    acc ^= out.shares[p];
  }
  out.shares[parties - 1] = static_cast<std::uint8_t>(acc ^ (value ? 1 : 0));
  return out;
}

[[nodiscard]] bool reconstruct(const SharedBit& bit) {
  std::uint8_t acc = 0;
  for (const std::uint8_t share : bit.shares) acc ^= share;
  return acc == 1;
}

}  // namespace

GmwResult gmw_evaluate(const Circuit& circuit, const std::vector<bool>& inputs,
                       std::size_t parties, crypto::Drbg& rng) {
  if (parties < 2) throw std::invalid_argument("gmw_evaluate: need >= 2 parties");
  if (inputs.size() != circuit.input_count()) {
    throw std::invalid_argument("gmw_evaluate: wrong input count");
  }

  const auto start = std::chrono::steady_clock::now();

  GmwResult result;
  result.stats.parties = parties;
  result.stats.and_gates = circuit.and_count();

  const std::vector<Gate>& gates = circuit.gates();
  std::vector<SharedBit> wires(gates.size());

  // Track which AND layers actually occur so rounds = distinct layers.
  std::vector<std::uint8_t> layer_used(circuit.and_depth() + 1, 0);

  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& gate = gates[i];
    switch (gate.type) {
      case GateType::kInput:
        // The owner shares its bit with everyone (n-1 messages, 1 bit each).
        wires[i] = share_bit(inputs[next_input++], parties, rng);
        result.stats.messages += parties - 1;
        result.stats.bytes += parties - 1;
        break;
      case GateType::kConstant: {
        SharedBit bit;
        bit.shares.assign(parties, 0);
        bit.shares[0] = gate.constant ? 1 : 0;
        wires[i] = std::move(bit);
        break;
      }
      case GateType::kXor: {
        // Free: local XOR of shares.
        SharedBit bit;
        bit.shares.resize(parties);
        for (std::size_t p = 0; p < parties; ++p) {
          bit.shares[p] = wires[gate.a].shares[p] ^ wires[gate.b].shares[p];
        }
        wires[i] = std::move(bit);
        break;
      }
      case GateType::kNot: {
        SharedBit bit = wires[gate.a];
        bit.shares[0] ^= 1;
        wires[i] = std::move(bit);
        break;
      }
      case GateType::kAnd: {
        // Beaver triple (a, b, c = a & b), dealt as shares.
        const SharedBit ta = share_bit(false, parties, rng);
        const SharedBit tb = share_bit(false, parties, rng);
        const bool plain_a = reconstruct(ta);
        const bool plain_b = reconstruct(tb);
        SharedBit tc = share_bit(plain_a && plain_b, parties, rng);

        // d = x ^ a, e = y ^ b are opened: every party broadcasts its
        // share of d and e to every other party.
        SharedBit d;
        SharedBit e;
        d.shares.resize(parties);
        e.shares.resize(parties);
        for (std::size_t p = 0; p < parties; ++p) {
          d.shares[p] = wires[gate.a].shares[p] ^ ta.shares[p];
          e.shares[p] = wires[gate.b].shares[p] ^ tb.shares[p];
        }
        const bool plain_d = reconstruct(d);
        const bool plain_e = reconstruct(e);
        result.stats.messages += parties * (parties - 1);
        result.stats.bytes += parties * (parties - 1) * 2;
        layer_used[gates[i].layer] = 1;

        // z = c ^ d&y ... standard: z = c ^ (d & b) ^ (e & a) ^ (d & e);
        // with opened d,e the corrections are local on shares.
        SharedBit z = tc;
        for (std::size_t p = 0; p < parties; ++p) {
          std::uint8_t share = z.shares[p];
          if (plain_d) share ^= tb.shares[p];
          if (plain_e) share ^= ta.shares[p];
          z.shares[p] = share;
        }
        if (plain_d && plain_e) z.shares[0] ^= 1;
        wires[i] = std::move(z);
        break;
      }
    }
  }

  // Output reconstruction: every party sends its output shares to everyone.
  for (const Wire w : circuit.outputs()) {
    result.outputs.push_back(reconstruct(wires[w]));
    result.stats.messages += parties * (parties - 1);
    result.stats.bytes += parties * (parties - 1);
  }
  // Rounds: one per populated AND layer, plus input sharing and output
  // reconstruction.
  for (const std::uint8_t used : layer_used) {
    if (used != 0) ++result.stats.rounds;
  }
  result.stats.rounds += 2;

  result.stats.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace pvr::baseline::smc
