// GMW-style secure multiparty evaluation over XOR secret shares
// (Goldreich–Micali–Wigderson 1987, cited as [9] in the paper).
//
// This is the §3.1 strawman: the same min-of-k computation PVR verifies
// with a handful of hashes costs, under SMC, one Beaver-triple-assisted
// reconstruction round per AND layer with n*(n-1) messages each. The
// implementation is a faithful semi-honest n-party GMW with a trusted
// dealer for triples (standard in benchmarking setups); the cost model
// (rounds, messages, bytes) is what experiment E3 reports alongside
// measured CPU time.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/smc/circuit.h"
#include "crypto/drbg.h"

namespace pvr::baseline::smc {

struct GmwStats {
  std::size_t parties = 0;
  std::size_t and_gates = 0;
  std::size_t rounds = 0;          // AND layers (communication rounds)
  std::size_t messages = 0;        // point-to-point messages exchanged
  std::size_t bytes = 0;           // payload bytes exchanged
  double cpu_seconds = 0.0;        // measured share-arithmetic time

  // Modeled wall-clock: CPU + rounds * RTT (the dominant term for WAN SMC).
  [[nodiscard]] double modeled_seconds(double rtt_seconds) const {
    return cpu_seconds + static_cast<double>(rounds) * rtt_seconds;
  }
};

struct GmwResult {
  std::vector<bool> outputs;
  GmwStats stats;
};

// Evaluates `circuit` among `parties` players. `inputs` assigns each input
// wire its plaintext bit together with the owning party (inputs are split
// round-robin by word: input wire i belongs to party (i / word_width) when
// built via build_minimum_circuit). For generality the owner is simply
// (input_index * parties) / input_count — contiguous blocks.
[[nodiscard]] GmwResult gmw_evaluate(const Circuit& circuit,
                                     const std::vector<bool>& inputs,
                                     std::size_t parties, crypto::Drbg& rng);

}  // namespace pvr::baseline::smc
