#include "baseline/smc/circuit.h"

#include <algorithm>
#include <stdexcept>

namespace pvr::baseline::smc {

Wire Circuit::push(Gate gate) {
  gates_.push_back(gate);
  max_layer_ = std::max(max_layer_, gate.layer);
  return static_cast<Wire>(gates_.size() - 1);
}

Wire Circuit::add_input() {
  ++input_count_;
  return push({.type = GateType::kInput});
}

Wire Circuit::add_constant(bool value) {
  return push({.type = GateType::kConstant, .constant = value});
}

Wire Circuit::add_xor(Wire a, Wire b) {
  if (a >= gates_.size() || b >= gates_.size()) {
    throw std::out_of_range("Circuit::add_xor: bad wire");
  }
  return push({.type = GateType::kXor,
               .a = a,
               .b = b,
               .layer = std::max(gates_[a].layer, gates_[b].layer)});
}

Wire Circuit::add_and(Wire a, Wire b) {
  if (a >= gates_.size() || b >= gates_.size()) {
    throw std::out_of_range("Circuit::add_and: bad wire");
  }
  ++and_count_;
  return push({.type = GateType::kAnd,
               .a = a,
               .b = b,
               .layer = std::max(gates_[a].layer, gates_[b].layer) + 1});
}

Wire Circuit::add_not(Wire a) {
  if (a >= gates_.size()) throw std::out_of_range("Circuit::add_not: bad wire");
  return push({.type = GateType::kNot, .a = a, .layer = gates_[a].layer});
}

std::vector<bool> Circuit::evaluate(const std::vector<bool>& inputs) const {
  if (inputs.size() != input_count_) {
    throw std::invalid_argument("Circuit::evaluate: wrong input count");
  }
  std::vector<bool> values(gates_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.type) {
      case GateType::kInput: values[i] = inputs[next_input++]; break;
      case GateType::kConstant: values[i] = gate.constant; break;
      case GateType::kXor: values[i] = values[gate.a] ^ values[gate.b]; break;
      case GateType::kAnd: values[i] = values[gate.a] && values[gate.b]; break;
      case GateType::kNot: values[i] = !values[gate.a]; break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const Wire w : outputs_) out.push_back(values[w]);
  return out;
}

std::vector<Wire> Circuit::add_input_word(std::size_t width) {
  std::vector<Wire> word(width);
  for (Wire& w : word) w = add_input();
  return word;
}

Wire Circuit::less_than(const std::vector<Wire>& a, const std::vector<Wire>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("Circuit::less_than: width mismatch");
  }
  // Ripple from LSB: lt_i = (~a_i & b_i) | (eq_i & lt_{i-1})
  //                        = (~a_i & b_i) ^ (~(a_i^b_i) & lt_{i-1})
  // (the two terms are disjoint, so XOR == OR).
  Wire lt = add_constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Wire ai = a[i];
    const Wire bi = b[i];
    const Wire not_ai = add_not(ai);
    const Wire strictly = add_and(not_ai, bi);
    const Wire eq = add_not(add_xor(ai, bi));
    const Wire carry = add_and(eq, lt);
    lt = add_xor(strictly, carry);
  }
  return lt;
}

std::vector<Wire> Circuit::mux(Wire sel, const std::vector<Wire>& a,
                               const std::vector<Wire>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Circuit::mux: width");
  // out = b ^ (sel & (a ^ b))
  std::vector<Wire> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = add_xor(b[i], add_and(sel, add_xor(a[i], b[i])));
  }
  return out;
}

Circuit build_minimum_circuit(std::size_t parties, std::size_t width) {
  if (parties == 0 || width == 0) {
    throw std::invalid_argument("build_minimum_circuit: bad params");
  }
  Circuit circuit;
  std::vector<std::vector<Wire>> words;
  words.reserve(parties);
  for (std::size_t p = 0; p < parties; ++p) {
    words.push_back(circuit.add_input_word(width));
  }
  // Tournament reduction.
  while (words.size() > 1) {
    std::vector<std::vector<Wire>> next;
    for (std::size_t i = 0; i + 1 < words.size(); i += 2) {
      const Wire less = circuit.less_than(words[i], words[i + 1]);
      next.push_back(circuit.mux(less, words[i], words[i + 1]));
    }
    if (words.size() % 2 == 1) next.push_back(words.back());
    words = std::move(next);
  }
  for (const Wire w : words.front()) circuit.mark_output(w);
  return circuit;
}

Circuit build_existential_circuit(std::size_t parties, std::size_t width) {
  if (parties == 0 || width == 0) {
    throw std::invalid_argument("build_existential_circuit: bad params");
  }
  Circuit circuit;
  Wire any = circuit.add_constant(false);
  for (std::size_t p = 0; p < parties; ++p) {
    const std::vector<Wire> word = circuit.add_input_word(width);
    // nonzero = OR over bits; OR(a,b) = a ^ b ^ (a & b).
    Wire nonzero = circuit.add_constant(false);
    for (const Wire bit : word) {
      const Wire conj = circuit.add_and(nonzero, bit);
      nonzero = circuit.add_xor(circuit.add_xor(nonzero, bit), conj);
    }
    const Wire conj = circuit.add_and(any, nonzero);
    any = circuit.add_xor(circuit.add_xor(any, nonzero), conj);
  }
  circuit.mark_output(any);
  return circuit;
}

}  // namespace pvr::baseline::smc
