// S-BGP-style route attestations (Kent, Lynn, Seo 2000; paper §1–2).
//
// The comparison system the paper positions PVR against: nested signatures
// prove that "a routing announcement does correspond to the claimed path
// and destination", i.e. each AS on the path authorized the announcement to
// the next AS. What S-BGP cannot do — and what the sbgp tests demonstrate —
// is say anything about the *decision process*: an AS that received a
// shorter route and exported a longer one still produces a perfectly valid
// attestation chain.
#pragma once

#include <optional>
#include <vector>

#include "bgp/route.h"
#include "core/keys.h"

namespace pvr::baseline {

// One hop's route attestation: `signer` authorizes the announcement of
// `prefix` with the path suffix it saw, to the named next AS.
struct Attestation {
  bgp::Ipv4Prefix prefix;
  bgp::AsNumber signer = 0;
  bgp::AsNumber to = 0;               // the AS this announcement is sent to
  std::vector<bgp::AsNumber> suffix;  // path from signer to origin, inclusive

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static Attestation decode(std::span<const std::uint8_t> data);
};

struct SbgpAnnouncement {
  bgp::Ipv4Prefix prefix;
  bgp::AsPath path;  // [A_k, ..., A_1, origin]
  // attestations[0] is the origin's, attestations.back() the latest hop's.
  std::vector<core::SignedMessage> attestations;
};

// Originates `prefix` at `origin`, addressed to `next`.
[[nodiscard]] SbgpAnnouncement sbgp_originate(const bgp::Ipv4Prefix& prefix,
                                              bgp::AsNumber origin,
                                              bgp::AsNumber next,
                                              const crypto::RsaPrivateKey& key);

// Extends a received announcement at `self`, addressed to `next`.
[[nodiscard]] SbgpAnnouncement sbgp_extend(const SbgpAnnouncement& received,
                                           bgp::AsNumber self, bgp::AsNumber next,
                                           const crypto::RsaPrivateKey& key);

// Full chain validation at `receiver`: every hop signed, suffixes nest,
// every attestation addressed to the following hop, final one to receiver.
[[nodiscard]] bool sbgp_verify(const core::KeyDirectory& directory,
                               const SbgpAnnouncement& announcement,
                               bgp::AsNumber receiver);

// Total attestation bytes (for the overhead comparison benches).
[[nodiscard]] std::size_t sbgp_wire_size(const SbgpAnnouncement& announcement);

}  // namespace pvr::baseline
