// The full-disclosure baseline (paper §1: "We could enable complete
// verification by revealing all routing tables, similar to [NetReview],
// but then everything is revealed").
//
// The checker is trivially complete — it sees every input and the output,
// so it can check any promise semantically — and maximally leaky. The
// `leakage` accounting quantifies the privacy cost that PVR avoids:
// every neighbor learns every other neighbor's route.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/promise.h"

namespace pvr::baseline {

struct FullDisclosureReport {
  bool promise_kept = false;
  // Number of (viewer, route) pairs revealed beyond what BGP itself sends:
  // each of the n verifying neighbors sees all k input routes.
  std::size_t routes_revealed = 0;
  std::size_t bytes_revealed = 0;
};

// Publishes all inputs and the output to `verifier_count` neighbors and
// checks the promise directly.
[[nodiscard]] FullDisclosureReport full_disclosure_audit(
    const core::Promise& promise, const core::Promise::Inputs& inputs,
    const std::optional<bgp::Route>& output, std::size_t verifier_count);

}  // namespace pvr::baseline
