#include "rfg/operators.h"

#include <charconv>

#include "bgp/decision.h"
#include "crypto/encoding.h"

namespace pvr::rfg {

std::vector<std::uint8_t> Operator::canonical_bytes() const {
  crypto::ByteWriter writer;
  writer.put_string("pvr-operator");
  writer.put_string(descriptor());
  return writer.take();
}

Value ExistentialOperator::apply(std::span<const Value> inputs) const {
  for (const Value& input : inputs) {
    if (input.has_value()) return input;
  }
  return std::nullopt;
}

Value MinimumOperator::apply(std::span<const Value> inputs) const {
  const Value* best = nullptr;
  for (const Value& input : inputs) {
    if (!input.has_value()) continue;
    if (best == nullptr ||
        input->path.length() < (*best)->path.length() ||
        (input->path.length() == (*best)->path.length() &&
         input->next_hop < (*best)->next_hop)) {
      best = &input;
    }
  }
  return best == nullptr ? std::nullopt : *best;
}

Value BgpBestOperator::apply(std::span<const Value> inputs) const {
  std::vector<bgp::Route> present;
  for (const Value& input : inputs) {
    if (input.has_value()) present.push_back(*input);
  }
  return bgp::best_route(present);
}

Value PreferIfShorterOperator::apply(std::span<const Value> inputs) const {
  if (inputs.size() != 2) return std::nullopt;
  const Value& primary = inputs[0];
  const Value& fallback = inputs[1];
  if (primary.has_value() &&
      (!fallback.has_value() ||
       primary->path.length() < fallback->path.length())) {
    return primary;
  }
  return fallback;
}

std::string CommunityFilterOperator::descriptor() const {
  return std::string("filter.community(") +
         (mode_ == Mode::kRequire ? '+' : '-') + std::to_string(community_) + ")";
}

Value CommunityFilterOperator::apply(std::span<const Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].has_value()) return std::nullopt;
  const bool has = inputs[0]->has_community(community_);
  const bool pass = mode_ == Mode::kRequire ? has : !has;
  return pass ? inputs[0] : std::nullopt;
}

std::string AsPathFilterOperator::descriptor() const {
  return "filter.as-path(!" + std::to_string(banned_) + ")";
}

Value AsPathFilterOperator::apply(std::span<const Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].has_value()) return std::nullopt;
  return inputs[0]->path.contains(banned_) ? std::nullopt : inputs[0];
}

std::string MaxLengthFilterOperator::descriptor() const {
  return "filter.max-length(" + std::to_string(max_) + ")";
}

Value MaxLengthFilterOperator::apply(std::span<const Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].has_value()) return std::nullopt;
  return inputs[0]->path.length() <= max_ ? inputs[0] : std::nullopt;
}

std::string SetLocalPrefOperator::descriptor() const {
  return "set.local-pref(" + std::to_string(local_pref_) + ")";
}

Value SetLocalPrefOperator::apply(std::span<const Value> inputs) const {
  if (inputs.size() != 1 || !inputs[0].has_value()) return std::nullopt;
  bgp::Route route = *inputs[0];
  route.local_pref = local_pref_;
  return route;
}

namespace {

// Parses "name(arg)" shapes; returns true and fills `arg` when the
// descriptor is `name` + "(" + arg + ")".
[[nodiscard]] bool match_call(const std::string& descriptor,
                              std::string_view name, std::string& arg) {
  if (descriptor.size() < name.size() + 2) return false;
  if (descriptor.compare(0, name.size(), name) != 0) return false;
  if (descriptor[name.size()] != '(' || descriptor.back() != ')') return false;
  arg = descriptor.substr(name.size() + 1,
                          descriptor.size() - name.size() - 2);
  return true;
}

template <typename T>
[[nodiscard]] bool parse_number(std::string_view text, T& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

std::unique_ptr<Operator> operator_from_descriptor(const std::string& descriptor) {
  if (descriptor == "exists") return std::make_unique<ExistentialOperator>();
  if (descriptor == "min") return std::make_unique<MinimumOperator>();
  if (descriptor == "bgp-best") return std::make_unique<BgpBestOperator>();
  if (descriptor == "prefer-if-shorter") {
    return std::make_unique<PreferIfShorterOperator>();
  }

  std::string arg;
  if (match_call(descriptor, "filter.community", arg) && arg.size() > 1) {
    const auto mode = arg[0] == '+' ? CommunityFilterOperator::Mode::kRequire
                                    : CommunityFilterOperator::Mode::kForbid;
    if (arg[0] != '+' && arg[0] != '-') return nullptr;
    bgp::Community community = 0;
    if (!parse_number(std::string_view(arg).substr(1), community)) return nullptr;
    return std::make_unique<CommunityFilterOperator>(community, mode);
  }
  if (match_call(descriptor, "filter.as-path", arg) && arg.size() > 1 &&
      arg[0] == '!') {
    bgp::AsNumber banned = 0;
    if (!parse_number(std::string_view(arg).substr(1), banned)) return nullptr;
    return std::make_unique<AsPathFilterOperator>(banned);
  }
  if (match_call(descriptor, "filter.max-length", arg)) {
    std::size_t max = 0;
    if (!parse_number(arg, max)) return nullptr;
    return std::make_unique<MaxLengthFilterOperator>(max);
  }
  if (match_call(descriptor, "set.local-pref", arg)) {
    std::uint32_t local_pref = 0;
    if (!parse_number(arg, local_pref)) return nullptr;
    return std::make_unique<SetLocalPrefOperator>(local_pref);
  }
  return nullptr;
}

}  // namespace pvr::rfg
