// Access-control policy α (paper §2.2, refined per §3.7).
//
// α : N × V → {TRUE, FALSE} says which networks may see which parts of the
// route-flow graph. §3.7 splits each vertex's information I(x) into three
// independently-disclosable components — predecessor edges, successor
// edges, and the payload (route value / operator type) — so the policy here
// is per-(network, vertex, component).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "bgp/as_path.h"
#include "rfg/graph.h"

namespace pvr::rfg {

enum class Component : std::uint8_t {
  kPredecessors = 0,
  kSuccessors = 1,
  kPayload = 2,
};

class AccessPolicy {
 public:
  // Grants `network` access to one component of vertex `id`.
  void grant(bgp::AsNumber network, const VertexId& id, Component component);
  // Grants all three components.
  void grant_all(bgp::AsNumber network, const VertexId& id);
  void revoke(bgp::AsNumber network, const VertexId& id, Component component);

  [[nodiscard]] bool allowed(bgp::AsNumber network, const VertexId& id,
                             Component component) const;
  // α(n, v) for the whole vertex: true iff the payload is visible (the
  // paper's coarse-grained α; structure-only access is strictly weaker).
  [[nodiscard]] bool allowed(bgp::AsNumber network, const VertexId& id) const;

  [[nodiscard]] std::set<VertexId> visible_vertices(bgp::AsNumber network) const;

  // The canonical policy of the Figure 1 scenario (§3): each provider Ni
  // sees its own input variable; B sees the output; everyone sees the
  // operator; nothing else.
  [[nodiscard]] static AccessPolicy figure1_policy(
      const RouteFlowGraph& graph, const std::vector<bgp::AsNumber>& providers,
      bgp::AsNumber b, const VertexId& operator_id);

 private:
  // (network, vertex) -> component bitmask.
  std::map<std::pair<bgp::AsNumber, VertexId>, std::uint8_t> grants_;
};

}  // namespace pvr::rfg
