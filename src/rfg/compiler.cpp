#include "rfg/compiler.h"

#include <memory>
#include <optional>

#include "bgp/decision.h"

namespace pvr::rfg {

namespace {

// One compiled unary stage.
struct Stage {
  std::shared_ptr<const Operator> op;
};

// Translates a policy rule into the stage it contributes to `neighbor`'s
// chain, or nullopt if the rule does not apply to this neighbor. Throws
// UnsupportedPolicyError outside the filter-chain fragment.
[[nodiscard]] std::optional<Stage> stage_for(const bgp::PolicyRule& rule,
                                             bgp::AsNumber neighbor) {
  const bgp::PolicyMatch& match = rule.match;
  if (match.neighbor.has_value() && *match.neighbor != neighbor) {
    return std::nullopt;
  }
  if (match.prefix.has_value()) {
    throw UnsupportedPolicyError(
        "rule '" + rule.name + "': per-prefix matches are not compilable "
        "(route-flow graphs are per-prefix already)");
  }

  // Count the single-condition constraint.
  const int conditions = (match.as_in_path.has_value() ? 1 : 0) +
                         (match.community.has_value() ? 1 : 0) +
                         (match.max_path_length.has_value() ? 1 : 0);

  if (rule.action.verdict == bgp::PolicyVerdict::kReject) {
    if (conditions != 1) {
      throw UnsupportedPolicyError(
          "rule '" + rule.name +
          "': reject rules must test exactly one condition");
    }
    if (match.as_in_path.has_value()) {
      return Stage{std::make_shared<AsPathFilterOperator>(*match.as_in_path)};
    }
    if (match.community.has_value()) {
      return Stage{std::make_shared<CommunityFilterOperator>(
          *match.community, CommunityFilterOperator::Mode::kForbid)};
    }
    // Reject "length <= m" is not monotone in the way filters compose;
    // the expressible form is the ACCEPT-bounded variant below.
    throw UnsupportedPolicyError(
        "rule '" + rule.name +
        "': reject-by-max-path-length is not expressible; use an accept "
        "rule with max_path_length instead");
  }

  // Accept rules: either a pure local-pref rewrite (terminal), or a
  // max-length bound (filter that drops longer routes), or a require-
  // community accept (drops routes lacking it) — each a single stage.
  if (!rule.action.add_communities.empty() ||
      !rule.action.strip_communities.empty() || rule.action.set_med) {
    throw UnsupportedPolicyError(
        "rule '" + rule.name +
        "': community/MED rewrites are outside the compilable fragment");
  }
  if (rule.action.set_local_pref.has_value()) {
    if (conditions != 0) {
      throw UnsupportedPolicyError(
          "rule '" + rule.name +
          "': conditional local-pref is outside the compilable fragment");
    }
    // Unconditional accept: under first-match semantics nothing after this
    // rule can fire, so the stage is terminal (the caller stops compiling
    // further stages for this neighbor).
    return Stage{
        std::make_shared<SetLocalPrefOperator>(*rule.action.set_local_pref)};
  }
  // Conditional ACCEPT rules (require-community, max-length) short-circuit
  // later rejects under first-match semantics, which a filter *chain*
  // cannot express — refuse rather than mis-compile.
  throw UnsupportedPolicyError("rule '" + rule.name +
                               "': conditional accept rules are outside the "
                               "compilable fragment");
}

}  // namespace

RouteFlowGraph compile_policy(const CompilerInput& input) {
  if (input.neighbors.empty()) {
    throw UnsupportedPolicyError("compile_policy: no neighbors");
  }
  if (input.import_policy.default_verdict() == bgp::PolicyVerdict::kReject) {
    throw UnsupportedPolicyError(
        "compile_policy: default-reject policies need explicit accept rules "
        "outside the compilable fragment");
  }

  RouteFlowGraph graph;
  std::vector<VertexId> selection_operands;

  for (const bgp::AsNumber neighbor : input.neighbors) {
    const VertexId input_id = input_variable_id(neighbor);
    graph.add_variable(
        {.id = input_id, .role = VariableRole::kInput, .neighbor = neighbor});

    VertexId current = input_id;
    std::size_t stage_index = 0;
    for (const bgp::PolicyRule& rule : input.import_policy.rules()) {
      const auto stage = stage_for(rule, neighbor);
      if (!stage) continue;
      const std::string suffix =
          std::to_string(neighbor) + "." + std::to_string(stage_index++);
      const VertexId out_id = "var:s" + suffix;
      graph.add_variable({.id = out_id, .role = VariableRole::kInternal});
      graph.add_operator({.id = "op:s" + suffix,
                          .op = stage->op,
                          .operands = {current},
                          .result = out_id});
      current = out_id;
      // An unconditional accept (set-lp) ends this neighbor's chain: under
      // first-match semantics no later rule can apply.
      if (rule.action.verdict == bgp::PolicyVerdict::kAccept &&
          rule.action.set_local_pref.has_value() && !rule.match.as_in_path &&
          !rule.match.community && !rule.match.max_path_length) {
        break;
      }
    }
    selection_operands.push_back(current);
  }

  graph.add_variable({.id = kOutputVariableId,
                      .role = VariableRole::kOutput,
                      .neighbor = input.exported_to});
  std::shared_ptr<const Operator> selector;
  switch (input.selection) {
    case SelectionKind::kMinimum:
      selector = std::make_shared<MinimumOperator>();
      break;
    case SelectionKind::kBgpBest:
      selector = std::make_shared<BgpBestOperator>();
      break;
    case SelectionKind::kExistential:
      selector = std::make_shared<ExistentialOperator>();
      break;
  }
  graph.add_operator({.id = "op:select",
                      .op = std::move(selector),
                      .operands = std::move(selection_operands),
                      .result = kOutputVariableId});
  graph.validate();
  return graph;
}

Value reference_semantics(const CompilerInput& input,
                          const std::map<bgp::AsNumber, Value>& routes_by_neighbor) {
  std::vector<Value> filtered;
  for (const bgp::AsNumber neighbor : input.neighbors) {
    const auto it = routes_by_neighbor.find(neighbor);
    if (it == routes_by_neighbor.end() || !it->second.has_value()) {
      filtered.emplace_back(std::nullopt);
      continue;
    }
    const auto result = input.import_policy.evaluate(*it->second, neighbor);
    filtered.emplace_back(result.has_value() ? Value{*result} : Value{});
  }
  switch (input.selection) {
    case SelectionKind::kMinimum:
      return MinimumOperator{}.apply(filtered);
    case SelectionKind::kBgpBest:
      return BgpBestOperator{}.apply(filtered);
    case SelectionKind::kExistential:
      return ExistentialOperator{}.apply(filtered);
  }
  return std::nullopt;
}

}  // namespace pvr::rfg
