// Route-flow-graph operators (paper §2.1).
//
// "A rule is an operation that takes some set of input routes and emits a
// set of output routes (which may be a single route, or no route at all)."
// Each operator is a pure function over optional routes; the evaluation
// engine wires them together through variables. The operator *type* string
// is what gets committed to and selectively disclosed (§3.6–3.7).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route.h"

namespace pvr::rfg {

// A variable's current value: a route, or "no route".
using Value = std::optional<bgp::Route>;

class Operator {
 public:
  virtual ~Operator() = default;

  // Canonical type descriptor, e.g. "min", "exists", "filter.community(+x)".
  // Committed to and revealed under access control; two operators with the
  // same descriptor must compute the same function.
  [[nodiscard]] virtual std::string descriptor() const = 0;

  // Pure evaluation over the (ordered) operand values.
  [[nodiscard]] virtual Value apply(std::span<const Value> inputs) const = 0;

  [[nodiscard]] std::vector<std::uint8_t> canonical_bytes() const;
};

// §3.2: emits a route whenever at least one input provides one (the first
// present input, deterministically).
class ExistentialOperator final : public Operator {
 public:
  [[nodiscard]] std::string descriptor() const override { return "exists"; }
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;
};

// §3.3: emits the input route with minimal AS-path length; ties broken by
// lowest next-hop AS (deterministic, matching the BGP tiebreak).
class MinimumOperator final : public Operator {
 public:
  [[nodiscard]] std::string descriptor() const override { return "min"; }
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;
};

// The full standard BGP decision process (local-pref, length, origin, MED,
// next-hop) as a single operator.
class BgpBestOperator final : public Operator {
 public:
  [[nodiscard]] std::string descriptor() const override { return "bgp-best"; }
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;
};

// Fig. 2 / §3.5: "export some route via the fallback inputs unless the
// primary provides a shorter route". Operand 0 is the primary; operand 1 is
// the (already aggregated) fallback.
class PreferIfShorterOperator final : public Operator {
 public:
  [[nodiscard]] std::string descriptor() const override { return "prefer-if-shorter"; }
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;
};

// Unary filter: passes the route iff a community is present (require) or
// absent (forbid). §4 "operators that evaluate communities".
class CommunityFilterOperator final : public Operator {
 public:
  enum class Mode : std::uint8_t { kRequire, kForbid };
  CommunityFilterOperator(bgp::Community community, Mode mode)
      : community_(community), mode_(mode) {}
  [[nodiscard]] std::string descriptor() const override;
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;

 private:
  bgp::Community community_;
  Mode mode_;
};

// Unary filter: drops the route if a given AS appears in its path.
// §4 "check for the presence of particular ASes on the path".
class AsPathFilterOperator final : public Operator {
 public:
  explicit AsPathFilterOperator(bgp::AsNumber banned) : banned_(banned) {}
  [[nodiscard]] std::string descriptor() const override;
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;

 private:
  bgp::AsNumber banned_;
};

// Unary filter: drops routes with AS-path length above a bound (used to
// express promise #3, "no more than k hops longer").
class MaxLengthFilterOperator final : public Operator {
 public:
  explicit MaxLengthFilterOperator(std::size_t max_length) : max_(max_length) {}
  [[nodiscard]] std::string descriptor() const override;
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;

 private:
  std::size_t max_;
};

// Unary attribute rewrite: sets local-pref (models import policy steps).
class SetLocalPrefOperator final : public Operator {
 public:
  explicit SetLocalPrefOperator(std::uint32_t local_pref) : local_pref_(local_pref) {}
  [[nodiscard]] std::string descriptor() const override;
  [[nodiscard]] Value apply(std::span<const Value> inputs) const override;

 private:
  std::uint32_t local_pref_;
};

// Reconstructs an operator from its descriptor (inverse of descriptor()).
// Returns nullptr for unknown descriptors — verifiers treat that as a
// violation, never as a silently-accepted opaque rule.
[[nodiscard]] std::unique_ptr<Operator> operator_from_descriptor(
    const std::string& descriptor);

}  // namespace pvr::rfg
