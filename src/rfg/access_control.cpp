#include "rfg/access_control.h"

namespace pvr::rfg {

namespace {
[[nodiscard]] constexpr std::uint8_t bit_for(Component component) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(component));
}
}  // namespace

void AccessPolicy::grant(bgp::AsNumber network, const VertexId& id,
                         Component component) {
  grants_[{network, id}] |= bit_for(component);
}

void AccessPolicy::grant_all(bgp::AsNumber network, const VertexId& id) {
  grant(network, id, Component::kPredecessors);
  grant(network, id, Component::kSuccessors);
  grant(network, id, Component::kPayload);
}

void AccessPolicy::revoke(bgp::AsNumber network, const VertexId& id,
                          Component component) {
  const auto it = grants_.find({network, id});
  if (it == grants_.end()) return;
  it->second &= static_cast<std::uint8_t>(~bit_for(component));
  if (it->second == 0) grants_.erase(it);
}

bool AccessPolicy::allowed(bgp::AsNumber network, const VertexId& id,
                           Component component) const {
  const auto it = grants_.find({network, id});
  return it != grants_.end() && (it->second & bit_for(component)) != 0;
}

bool AccessPolicy::allowed(bgp::AsNumber network, const VertexId& id) const {
  return allowed(network, id, Component::kPayload);
}

std::set<VertexId> AccessPolicy::visible_vertices(bgp::AsNumber network) const {
  std::set<VertexId> out;
  for (const auto& [key, mask] : grants_) {
    if (key.first == network && mask != 0) out.insert(key.second);
  }
  return out;
}

AccessPolicy AccessPolicy::figure1_policy(
    const RouteFlowGraph& graph, const std::vector<bgp::AsNumber>& providers,
    bgp::AsNumber b, const VertexId& operator_id) {
  AccessPolicy policy;
  // α(Ni, ri) = TRUE: each provider sees its own input variable.
  for (const bgp::AsNumber provider : providers) {
    policy.grant_all(provider, input_variable_id(provider));
  }
  // α(B, r0) = TRUE.
  policy.grant_all(b, kOutputVariableId);
  // α(n, min) = TRUE for all participating networks (the operator's type
  // and wiring are public so everyone can check the promise structurally).
  for (const bgp::AsNumber provider : providers) {
    policy.grant_all(provider, operator_id);
  }
  policy.grant_all(b, operator_id);
  (void)graph;
  return policy;
}

}  // namespace pvr::rfg
