// Policy-to-graph compiler (paper §4, "More operators": "such a system
// should have language support for compiling a high-level policy
// description (or router configuration file) into a compact route-flow
// graph").
//
// Compiles a router-configuration-style import policy (bgp::RoutePolicy)
// plus a selection step into the operator graph that PVR commits to. The
// supported policy fragment is filter-chain shaped — the common case in
// practice and the one our operator library can express exactly:
//
//   * any number of REJECT rules whose match is a single condition on
//     community presence, AS-in-path, or maximum path length (these become
//     unary filter operators), optionally scoped to one neighbor;
//   * at most one terminal ACCEPT rule per neighbor that sets local-pref
//     (becomes a set.local-pref operator);
//   * a selection step: minimum-by-length, full BGP best, or existential.
//
// Policies outside this fragment throw UnsupportedPolicyError — an honest
// "cannot verify this promise with the current operator set" rather than a
// silent approximation.
#pragma once

#include <stdexcept>
#include <vector>

#include "bgp/policy.h"
#include "rfg/graph.h"

namespace pvr::rfg {

class UnsupportedPolicyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class SelectionKind : std::uint8_t { kMinimum, kBgpBest, kExistential };

struct CompilerInput {
  std::vector<bgp::AsNumber> neighbors;  // import sources, in order
  bgp::RoutePolicy import_policy;        // the filter-chain fragment
  SelectionKind selection = SelectionKind::kMinimum;
  bgp::AsNumber exported_to = 0;         // the recipient of var:ro
};

// Compiles to a validated route-flow graph. Vertex naming follows the
// canonical conventions (var:r<asn> inputs, var:ro output) so the result
// plugs directly into core::GraphCommitment and the static promise checker.
[[nodiscard]] RouteFlowGraph compile_policy(const CompilerInput& input);

// Reference semantics the compiler is tested against: apply the policy to
// each neighbor's route, then select.
[[nodiscard]] Value reference_semantics(
    const CompilerInput& input,
    const std::map<bgp::AsNumber, Value>& routes_by_neighbor);

}  // namespace pvr::rfg
