#include "rfg/graph.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pvr::rfg {

void RouteFlowGraph::add_variable(VariableVertex vertex) {
  if (vertex.id.empty()) throw std::logic_error("add_variable: empty id");
  if (variables_.contains(vertex.id) || operators_.contains(vertex.id)) {
    throw std::logic_error("add_variable: duplicate id " + vertex.id);
  }
  variables_.emplace(vertex.id, std::move(vertex));
}

void RouteFlowGraph::add_operator(OperatorVertex vertex) {
  if (vertex.id.empty()) throw std::logic_error("add_operator: empty id");
  if (!vertex.op) throw std::logic_error("add_operator: null operator");
  if (variables_.contains(vertex.id) || operators_.contains(vertex.id)) {
    throw std::logic_error("add_operator: duplicate id " + vertex.id);
  }
  operators_.emplace(vertex.id, std::move(vertex));
}

bool RouteFlowGraph::has_variable(const VertexId& id) const {
  return variables_.contains(id);
}

bool RouteFlowGraph::has_operator(const VertexId& id) const {
  return operators_.contains(id);
}

const VariableVertex& RouteFlowGraph::variable(const VertexId& id) const {
  const auto it = variables_.find(id);
  if (it == variables_.end()) throw std::out_of_range("unknown variable " + id);
  return it->second;
}

const OperatorVertex& RouteFlowGraph::operator_vertex(const VertexId& id) const {
  const auto it = operators_.find(id);
  if (it == operators_.end()) throw std::out_of_range("unknown operator " + id);
  return it->second;
}

std::vector<VertexId> RouteFlowGraph::variable_ids() const {
  std::vector<VertexId> out;
  out.reserve(variables_.size());
  for (const auto& [id, v] : variables_) out.push_back(id);
  return out;
}

std::vector<VertexId> RouteFlowGraph::operator_ids() const {
  std::vector<VertexId> out;
  out.reserve(operators_.size());
  for (const auto& [id, v] : operators_) out.push_back(id);
  return out;
}

std::vector<VertexId> RouteFlowGraph::input_variables() const {
  std::vector<VertexId> out;
  for (const auto& [id, v] : variables_) {
    if (v.role == VariableRole::kInput) out.push_back(id);
  }
  return out;
}

std::vector<VertexId> RouteFlowGraph::output_variables() const {
  std::vector<VertexId> out;
  for (const auto& [id, v] : variables_) {
    if (v.role == VariableRole::kOutput) out.push_back(id);
  }
  return out;
}

std::optional<VertexId> RouteFlowGraph::producer_of(const VertexId& id) const {
  for (const auto& [op_id, op] : operators_) {
    if (op.result == id) return op_id;
  }
  return std::nullopt;
}

std::vector<VertexId> RouteFlowGraph::consumers_of(const VertexId& id) const {
  std::vector<VertexId> out;
  for (const auto& [op_id, op] : operators_) {
    if (std::find(op.operands.begin(), op.operands.end(), id) !=
        op.operands.end()) {
      out.push_back(op_id);
    }
  }
  return out;
}

void RouteFlowGraph::validate() const {
  std::set<VertexId> produced;
  for (const auto& [op_id, op] : operators_) {
    for (const VertexId& operand : op.operands) {
      if (!variables_.contains(operand)) {
        throw std::logic_error("operator " + op_id + " reads unknown variable " +
                               operand);
      }
    }
    if (!variables_.contains(op.result)) {
      throw std::logic_error("operator " + op_id + " writes unknown variable " +
                             op.result);
    }
    if (variable(op.result).role == VariableRole::kInput) {
      throw std::logic_error("operator " + op_id + " writes input variable " +
                             op.result);
    }
    if (!produced.insert(op.result).second) {
      throw std::logic_error("variable " + op.result +
                             " computed by more than one operator");
    }
  }
  for (const auto& [id, v] : variables_) {
    if (v.role != VariableRole::kInput && !produced.contains(id)) {
      throw std::logic_error("non-input variable " + id + " has no producer");
    }
  }
  (void)topo_order();  // throws on cycles
}

std::vector<VertexId> RouteFlowGraph::topo_order() const {
  // Kahn's algorithm over operator vertices: an operator is ready when all
  // its operand variables are inputs or already-computed results.
  std::set<VertexId> ready_vars;
  for (const auto& [id, v] : variables_) {
    if (v.role == VariableRole::kInput) ready_vars.insert(id);
  }
  std::vector<VertexId> order;
  std::set<VertexId> emitted;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& [op_id, op] : operators_) {
      if (emitted.contains(op_id)) continue;
      const bool ready = std::all_of(
          op.operands.begin(), op.operands.end(),
          [&](const VertexId& v) { return ready_vars.contains(v); });
      if (ready) {
        order.push_back(op_id);
        emitted.insert(op_id);
        ready_vars.insert(op.result);
        progress = true;
      }
    }
  }
  if (emitted.size() != operators_.size()) {
    throw std::logic_error("route-flow graph contains a cycle");
  }
  return order;
}

std::map<VertexId, Value> RouteFlowGraph::evaluate(
    const std::map<VertexId, Value>& inputs) const {
  std::map<VertexId, Value> values;
  for (const auto& [id, v] : variables_) {
    if (v.role == VariableRole::kInput) {
      const auto it = inputs.find(id);
      values[id] = it == inputs.end() ? std::nullopt : it->second;
    } else {
      values[id] = std::nullopt;
    }
  }
  for (const VertexId& op_id : topo_order()) {
    const OperatorVertex& op = operators_.at(op_id);
    std::vector<Value> operand_values;
    operand_values.reserve(op.operands.size());
    for (const VertexId& operand : op.operands) {
      operand_values.push_back(values.at(operand));
    }
    values[op.result] = op.op->apply(operand_values);
  }
  return values;
}

std::vector<VertexId> RouteFlowGraph::predecessors(const VertexId& id) const {
  if (const auto it = operators_.find(id); it != operators_.end()) {
    return it->second.operands;
  }
  const auto producer = producer_of(id);
  return producer ? std::vector<VertexId>{*producer} : std::vector<VertexId>{};
}

std::vector<VertexId> RouteFlowGraph::successors(const VertexId& id) const {
  if (const auto it = operators_.find(id); it != operators_.end()) {
    return {it->second.result};
  }
  return consumers_of(id);
}

VertexId input_variable_id(bgp::AsNumber neighbor) {
  return "var:r" + std::to_string(neighbor);
}

namespace {

[[nodiscard]] RouteFlowGraph make_single_operator_graph(
    const std::vector<bgp::AsNumber>& providers, bgp::AsNumber b,
    const VertexId& op_id, std::shared_ptr<const Operator> op) {
  RouteFlowGraph graph;
  std::vector<VertexId> operands;
  for (const bgp::AsNumber provider : providers) {
    const VertexId id = input_variable_id(provider);
    graph.add_variable({.id = id, .role = VariableRole::kInput, .neighbor = provider});
    operands.push_back(id);
  }
  graph.add_variable(
      {.id = kOutputVariableId, .role = VariableRole::kOutput, .neighbor = b});
  graph.add_operator({.id = op_id,
                      .op = std::move(op),
                      .operands = std::move(operands),
                      .result = kOutputVariableId});
  return graph;
}

}  // namespace

RouteFlowGraph make_figure1_graph(const std::vector<bgp::AsNumber>& providers,
                                  bgp::AsNumber b) {
  return make_single_operator_graph(providers, b, "op:min",
                                    std::make_shared<MinimumOperator>());
}

RouteFlowGraph make_existential_graph(
    const std::vector<bgp::AsNumber>& providers, bgp::AsNumber b) {
  return make_single_operator_graph(providers, b, "op:exists",
                                    std::make_shared<ExistentialOperator>());
}

RouteFlowGraph make_figure2_graph(bgp::AsNumber primary,
                                  const std::vector<bgp::AsNumber>& fallbacks,
                                  bgp::AsNumber b) {
  RouteFlowGraph graph;
  const VertexId primary_id = input_variable_id(primary);
  graph.add_variable(
      {.id = primary_id, .role = VariableRole::kInput, .neighbor = primary});

  std::vector<VertexId> fallback_ids;
  for (const bgp::AsNumber fallback : fallbacks) {
    const VertexId id = input_variable_id(fallback);
    graph.add_variable({.id = id, .role = VariableRole::kInput, .neighbor = fallback});
    fallback_ids.push_back(id);
  }

  graph.add_variable({.id = "var:v", .role = VariableRole::kInternal});
  graph.add_variable(
      {.id = kOutputVariableId, .role = VariableRole::kOutput, .neighbor = b});

  graph.add_operator({.id = "op:min",
                      .op = std::make_shared<MinimumOperator>(),
                      .operands = std::move(fallback_ids),
                      .result = "var:v"});
  graph.add_operator({.id = "op:prefer",
                      .op = std::make_shared<PreferIfShorterOperator>(),
                      .operands = {primary_id, "var:v"},
                      .result = kOutputVariableId});
  return graph;
}

}  // namespace pvr::rfg
