// The route-flow graph itself (paper §2.1, Figures 1 and 2).
//
// Vertices are variables (routes) and operators (rules); edges wire
// variables into operators and operators to the variable they compute.
// The graph supports trusted reference evaluation (what an honest AS runs),
// structural validation, and canonical per-vertex encodings that the PVR
// commitment layer (src/core) commits to.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgp/route.h"
#include "rfg/operators.h"

namespace pvr::rfg {

using VertexId = std::string;

enum class VariableRole : std::uint8_t {
  kInput,     // an incoming route announcement (r1..rk in Fig. 1)
  kInternal,  // intermediate value (v in Fig. 2)
  kOutput,    // an exported route (r0 in Fig. 1)
};

struct VariableVertex {
  VertexId id;
  VariableRole role = VariableRole::kInternal;
  // For inputs: which neighbor AS supplies the value. For outputs: which
  // neighbor the value is exported to. Unused for internal variables.
  bgp::AsNumber neighbor = 0;
};

struct OperatorVertex {
  VertexId id;
  std::shared_ptr<const Operator> op;
  std::vector<VertexId> operands;  // ordered variable inputs
  VertexId result;                 // the variable this operator computes
};

class RouteFlowGraph {
 public:
  void add_variable(VariableVertex vertex);
  void add_operator(OperatorVertex vertex);

  [[nodiscard]] bool has_variable(const VertexId& id) const;
  [[nodiscard]] bool has_operator(const VertexId& id) const;
  [[nodiscard]] const VariableVertex& variable(const VertexId& id) const;
  [[nodiscard]] const OperatorVertex& operator_vertex(const VertexId& id) const;
  [[nodiscard]] std::vector<VertexId> variable_ids() const;
  [[nodiscard]] std::vector<VertexId> operator_ids() const;
  [[nodiscard]] std::vector<VertexId> input_variables() const;
  [[nodiscard]] std::vector<VertexId> output_variables() const;
  // The operator (if any) whose result is `id`.
  [[nodiscard]] std::optional<VertexId> producer_of(const VertexId& id) const;
  // Operators consuming variable `id`.
  [[nodiscard]] std::vector<VertexId> consumers_of(const VertexId& id) const;

  // Checks: ids unique, operands/results resolve, each variable computed by
  // at most one operator, inputs are not computed, graph is acyclic.
  // Throws std::logic_error describing the first problem found.
  void validate() const;

  // Trusted reference evaluation: assigns `inputs` to the input variables
  // (missing entries mean "no route") and computes every internal/output
  // variable in topological order. Requires validate() to pass.
  [[nodiscard]] std::map<VertexId, Value> evaluate(
      const std::map<VertexId, Value>& inputs) const;

  // Structural neighbors of a vertex in the bipartite graph, as committed
  // to by I(x) = (predecessors, successors, payload) in paper §3.7.
  [[nodiscard]] std::vector<VertexId> predecessors(const VertexId& id) const;
  [[nodiscard]] std::vector<VertexId> successors(const VertexId& id) const;

  [[nodiscard]] std::size_t vertex_count() const {
    return variables_.size() + operators_.size();
  }

 private:
  [[nodiscard]] std::vector<VertexId> topo_order() const;

  std::map<VertexId, VariableVertex> variables_;
  std::map<VertexId, OperatorVertex> operators_;
};

// --- Canonical graph shapes used throughout the paper ---

// Figure 1: inputs r(Ni) for each neighbor, one "min" operator, output r0
// exported to `b`. Variable ids: "var:r" + ASN, operator "op:min",
// output "var:ro".
[[nodiscard]] RouteFlowGraph make_figure1_graph(
    const std::vector<bgp::AsNumber>& providers, bgp::AsNumber b);

// Same shape with the existential operator of §3.2 ("op:exists").
[[nodiscard]] RouteFlowGraph make_existential_graph(
    const std::vector<bgp::AsNumber>& providers, bgp::AsNumber b);

// Figure 2: r1 is preferred only if strictly shorter than the best of
// r2..rk ("op:min" -> "var:v", then "op:prefer" -> "var:ro").
[[nodiscard]] RouteFlowGraph make_figure2_graph(
    bgp::AsNumber primary, const std::vector<bgp::AsNumber>& fallbacks,
    bgp::AsNumber b);

// Conventional ids for the canonical graphs.
[[nodiscard]] VertexId input_variable_id(bgp::AsNumber neighbor);
inline const VertexId kOutputVariableId = "var:ro";

}  // namespace pvr::rfg
