// Backend conformance: every behavioral guarantee transport.h documents,
// held against BOTH backends — the deterministic simulator adapter and the
// real-TCP loopback SocketTransport. Each test runs once per backend
// through a small pair-world harness (two nodes, one link) so protocol
// code's assumptions (per-pair FIFO, framing fidelity incl. >64 KiB
// chunked payloads, no-link errors, interceptor drop/delay semantics,
// stats counting rules, trace recording) are checked where they are
// actually enforced.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message_trace.h"
#include "net/simulator.h"
#include "net/socket_transport.h"

namespace pvr::net {
namespace {

constexpr NodeId kA = 1;
constexpr NodeId kB = 2;

struct Recorder final : Node {
  std::vector<Message> received;
  void on_message(Transport& transport, const Message& message) override {
    (void)transport;
    received.push_back(message);
  }
};

// One two-node world, backend-agnostic. at(id) is the Transport the node's
// sends are issued on (the same instance for the simulator, one per
// process-side for sockets).
class PairWorld {
 public:
  virtual ~PairWorld() = default;
  virtual Transport& at(NodeId id) = 0;
  virtual Recorder& recorder(NodeId id) = 0;
  // Pumps the backend until `done` returns true or the backend gives up.
  virtual bool pump_until(const std::function<bool()>& done) = 0;
  // Severs the A—B link/connection on both sides.
  virtual void disconnect_pair() = 0;
};

class SimPairWorld final : public PairWorld {
 public:
  SimPairWorld() : sim_(7) {
    auto a = std::make_unique<Recorder>();
    auto b = std::make_unique<Recorder>();
    a_ = a.get();
    b_ = b.get();
    sim_.add_node(kA, std::move(a));
    sim_.add_node(kB, std::move(b));
    sim_.connect(kA, kB, LinkConfig{.latency = 100});
  }
  Transport& at(NodeId id) override {
    (void)id;
    return sim_.transport();
  }
  Recorder& recorder(NodeId id) override { return id == kA ? *a_ : *b_; }
  bool pump_until(const std::function<bool()>& done) override {
    sim_.run();
    return done();
  }
  void disconnect_pair() override { sim_.disconnect(kA, kB); }

 private:
  Simulator sim_;
  Recorder* a_ = nullptr;
  Recorder* b_ = nullptr;
};

class SocketPairWorld final : public PairWorld {
 public:
  SocketPairWorld() {
    ta_.add_node(kA, &ra_);
    tb_.add_node(kB, &rb_);
    const std::uint16_t port = tb_.listen(0);
    ta_.connect_to(port);
    if (!pump_until([this] {
          return ta_.connected(kA, kB) && tb_.connected(kA, kB);
        })) {
      throw std::runtime_error("socket pair world: handshake timed out");
    }
  }
  Transport& at(NodeId id) override {
    return id == kA ? static_cast<Transport&>(ta_)
                    : static_cast<Transport&>(tb_);
  }
  Recorder& recorder(NodeId id) override { return id == kA ? ra_ : rb_; }
  bool pump_until(const std::function<bool()>& done) override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) return true;
      ta_.poll_once(1);
      tb_.poll_once(1);
    }
    return done();
  }
  void disconnect_pair() override {
    ta_.drop_peer(kB);
    // The peer observes the close on its next read.
    (void)pump_until([this] { return !tb_.connected(kA, kB); });
  }

 private:
  SocketTransport ta_;
  SocketTransport tb_;
  Recorder ra_;
  Recorder rb_;
};

[[nodiscard]] std::unique_ptr<PairWorld> make_world(
    const std::string& backend) {
  if (backend == "sim") return std::make_unique<SimPairWorld>();
  return std::make_unique<SocketPairWorld>();
}

[[nodiscard]] std::vector<std::uint8_t> patterned_payload(std::size_t size,
                                                          std::uint8_t tag) {
  std::vector<std::uint8_t> payload(size);
  for (std::size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<std::uint8_t>((i * 31 + tag) & 0xFF);
  }
  return payload;
}

class TransportConformanceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(TransportConformanceTest, FramingRoundTripsEverySizeClassInOrder) {
  const auto world = make_world(GetParam());
  // Empty, tiny, exactly one chunk, one byte either side of the chunk
  // boundary, and a 3-chunk payload larger than any aggregation window.
  const std::vector<std::size_t> sizes = {0,          1,         1000,
                                          64 * 1024 - 1, 64 * 1024,
                                          64 * 1024 + 1, 200'000};
  std::uint64_t expected_bytes = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    Message message{.from = kA,
                    .to = kB,
                    .channel = "t.payload",
                    .payload = patterned_payload(sizes[i],
                                                 static_cast<std::uint8_t>(i))};
    expected_bytes += message.wire_size();
    world->at(kA).send(std::move(message));
  }
  ASSERT_TRUE(world->pump_until([&] {
    return world->recorder(kB).received.size() == sizes.size();
  }));
  const std::vector<Message>& received = world->recorder(kB).received;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(received[i].from, kA);
    EXPECT_EQ(received[i].channel, "t.payload");
    EXPECT_EQ(received[i].payload,
              patterned_payload(sizes[i], static_cast<std::uint8_t>(i)))
        << "payload size " << sizes[i] << " corrupted in transit";
  }
  // Byte accounting uses wire_size() on every backend, so totals are
  // cross-backend comparable.
  EXPECT_EQ(world->at(kA).stats().bytes_sent, expected_bytes);
  EXPECT_EQ(world->at(kA).stats().messages_sent, sizes.size());
  EXPECT_EQ(world->at(kB).stats().messages_delivered, sizes.size());
}

TEST_P(TransportConformanceTest, PerPairFifoHoldsAcrossChannels) {
  const auto world = make_world(GetParam());
  constexpr std::size_t kCount = 64;
  for (std::size_t i = 0; i < kCount; ++i) {
    world->at(kA).send(Message{
        .from = kA,
        .to = kB,
        .channel = i % 2 == 0 ? "t.even" : "t.odd",
        .payload = {static_cast<std::uint8_t>(i)}});
  }
  ASSERT_TRUE(world->pump_until(
      [&] { return world->recorder(kB).received.size() == kCount; }));
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(world->recorder(kB).received[i].payload[0],
              static_cast<std::uint8_t>(i))
        << "messages reordered within the A->B pair";
  }
}

TEST_P(TransportConformanceTest, SendWithoutLinkThrowsLogicError) {
  const auto world = make_world(GetParam());
  EXPECT_THROW(world->at(kA).send(Message{.from = kA,
                                          .to = 99,
                                          .channel = "t.void",
                                          .payload = {1}}),
               std::logic_error);
}

TEST_P(TransportConformanceTest, InterceptorDropAndDelaySemantics) {
  const auto world = make_world(GetParam());
  world->at(kA).set_interceptor(
      [](Transport& transport, const Message& message) {
        (void)transport;
        InterceptDecision decision;
        if (message.channel == "t.drop") decision.drop = true;
        if (message.channel == "t.delay") decision.extra_delay = 20'000;
        return decision;
      });
  world->at(kA).send(
      Message{.from = kA, .to = kB, .channel = "t.drop", .payload = {1}});
  world->at(kA).send(
      Message{.from = kA, .to = kB, .channel = "t.delay", .payload = {2}});
  world->at(kA).send(
      Message{.from = kA, .to = kB, .channel = "t.plain", .payload = {3}});
  ASSERT_TRUE(world->pump_until(
      [&] { return world->recorder(kB).received.size() == 2; }));
  world->at(kA).set_interceptor(nullptr);

  // The dropped message was counted (sent AND dropped) and never arrived;
  // the delayed one arrived after the undelayed one.
  EXPECT_EQ(world->at(kA).stats().messages_sent, 3u);
  EXPECT_EQ(world->at(kA).stats().messages_dropped, 1u);
  ASSERT_EQ(world->recorder(kB).received.size(), 2u);
  EXPECT_EQ(world->recorder(kB).received[0].channel, "t.plain");
  EXPECT_EQ(world->recorder(kB).received[1].channel, "t.delay");
}

TEST_P(TransportConformanceTest, DisconnectSeversLinkAndFailsFurtherSends) {
  const auto world = make_world(GetParam());
  world->at(kA).send(
      Message{.from = kA, .to = kB, .channel = "t.pre", .payload = {1}});
  ASSERT_TRUE(world->pump_until(
      [&] { return world->recorder(kB).received.size() == 1; }));

  world->disconnect_pair();
  EXPECT_FALSE(world->at(kA).connected(kA, kB));
  EXPECT_FALSE(world->at(kB).connected(kA, kB));
  EXPECT_THROW(world->at(kA).send(Message{.from = kA,
                                          .to = kB,
                                          .channel = "t.post",
                                          .payload = {2}}),
               std::logic_error);
}

TEST_P(TransportConformanceTest, TraceRecordsDeliveriesInOrder) {
  const auto world = make_world(GetParam());
  MessageTrace trace;
  world->at(kB).set_trace(&trace);
  for (std::uint8_t i = 0; i < 3; ++i) {
    world->at(kA).send(Message{.from = kA,
                               .to = kB,
                               .channel = "t.trace",
                               .payload = {i}});
  }
  ASSERT_TRUE(world->pump_until(
      [&] { return world->recorder(kB).received.size() == 3; }));
  world->at(kB).set_trace(nullptr);

  ASSERT_EQ(trace.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(trace.entries[i].sequence, i);
    EXPECT_EQ(trace.entries[i].message.payload[0],
              static_cast<std::uint8_t>(i));
    if (i > 0) {
      EXPECT_GE(trace.entries[i].at, trace.entries[i - 1].at)
          << "trace delivery times must be monotone";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values("sim", "socket"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace pvr::net
