// Socket-backend internals: the canonical message-body codec (chunking at
// the 64 KiB boundary, malformed-input rejection), FrameConn reassembly
// across partial reads, the disconnect-mid-message contract (a torn
// trailing frame is discarded, never delivered), and the wall-clock timer
// wheel.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/frame.h"
#include "net/socket_transport.h"

namespace pvr::net {
namespace {

[[nodiscard]] std::vector<std::uint8_t> patterned(std::size_t size) {
  std::vector<std::uint8_t> out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::uint8_t>((i * 131) & 0xFF);
  }
  return out;
}

TEST(MessageBodyCodecTest, RoundTripsEveryChunkBoundary) {
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, kWireChunkPayload - 1,
        kWireChunkPayload, kWireChunkPayload + 1, 3 * kWireChunkPayload + 17}) {
    const Message message{.from = 11,
                          .to = 22,
                          .channel = "pvr.bundle",
                          .payload = patterned(size)};
    const std::vector<std::uint8_t> body = encode_message_body(message);
    // The canonical encoding IS the byte-accounting model.
    EXPECT_EQ(body.size(), message.wire_size()) << "payload size " << size;
    const Message decoded = decode_message_body(body);
    EXPECT_EQ(decoded.from, message.from);
    EXPECT_EQ(decoded.to, message.to);
    EXPECT_EQ(decoded.channel, message.channel);
    EXPECT_EQ(decoded.payload, message.payload) << "payload size " << size;
    EXPECT_EQ(decoded.cookie, 0u);  // never serialized
  }
}

TEST(MessageBodyCodecTest, RejectsTruncationAndBadChunkHeaders) {
  const Message message{.from = 1,
                        .to = 2,
                        .channel = "pvr.gossip",
                        .payload = patterned(kWireChunkPayload + 100)};
  std::vector<std::uint8_t> body = encode_message_body(message);

  std::vector<std::uint8_t> truncated(body.begin(), body.end() - 1);
  EXPECT_THROW((void)decode_message_body(truncated), std::out_of_range);

  // Corrupt the second chunk's offset field (right after the first chunk).
  const std::size_t offset_pos =
      8 + 2 + message.channel.size() + 4 + kWireChunkPayload;
  body[offset_pos] ^= 0x01;
  EXPECT_THROW((void)decode_message_body(body), std::invalid_argument);
}

TEST(FrameConnTest, ReassemblesFramesAcrossPartialReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameConn reader(fds[0]);

  const std::vector<std::uint8_t> body = patterned(300);
  std::vector<std::uint8_t> wire;
  const std::uint32_t total = static_cast<std::uint32_t>(1 + body.size());
  wire.push_back(static_cast<std::uint8_t>(total >> 24));
  wire.push_back(static_cast<std::uint8_t>(total >> 16));
  wire.push_back(static_cast<std::uint8_t>(total >> 8));
  wire.push_back(static_cast<std::uint8_t>(total));
  wire.push_back(kFrameMessage);
  wire.insert(wire.end(), body.begin(), body.end());

  std::vector<std::vector<std::uint8_t>> frames;
  const auto on_frame = [&](std::uint8_t type,
                            std::span<const std::uint8_t> data) {
    EXPECT_EQ(type, kFrameMessage);
    frames.emplace_back(data.begin(), data.end());
  };

  // Drip the frame in three fragments: no frame until the last byte lands.
  ASSERT_EQ(::send(fds[1], wire.data(), 10, 0), 10);
  EXPECT_TRUE(reader.read_frames(on_frame));
  EXPECT_TRUE(frames.empty());
  ASSERT_EQ(::send(fds[1], wire.data() + 10, 100, 0), 100);
  EXPECT_TRUE(reader.read_frames(on_frame));
  EXPECT_TRUE(frames.empty());
  const std::size_t rest = wire.size() - 110;
  ASSERT_EQ(::send(fds[1], wire.data() + 110, rest, 0),
            static_cast<ssize_t>(rest));
  EXPECT_TRUE(reader.read_frames(on_frame));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], body);
  ::close(fds[1]);
}

TEST(FrameConnTest, DisconnectMidMessageDiscardsTornFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameConn reader(fds[0]);

  // A complete frame followed by the first half of another, then a close:
  // the complete one is delivered, the torn one never is.
  const std::vector<std::uint8_t> first = {0, 0, 0, 2, kFrameHello, 0xAA};
  const std::vector<std::uint8_t> torn = {0, 0, 1, 0, kFrameMessage, 1, 2, 3};
  ASSERT_EQ(::send(fds[1], first.data(), first.size(), 0),
            static_cast<ssize_t>(first.size()));
  ASSERT_EQ(::send(fds[1], torn.data(), torn.size(), 0),
            static_cast<ssize_t>(torn.size()));
  ::close(fds[1]);

  std::size_t delivered = 0;
  const bool alive =
      reader.read_frames([&](std::uint8_t type,
                             std::span<const std::uint8_t> data) {
        delivered += 1;
        EXPECT_EQ(type, kFrameHello);
        ASSERT_EQ(data.size(), 1u);
        EXPECT_EQ(data[0], 0xAA);
      });
  EXPECT_FALSE(alive) << "closed peer must report the connection dead";
  EXPECT_EQ(delivered, 1u) << "the torn trailing frame must be discarded";
}

TEST(SocketTransportTest, TimersFireInOrderAndPeriodicsRepeatUntilStop) {
  SocketTransport transport;
  std::vector<int> fired;
  const SimTime base = transport.now();
  transport.schedule(base + 4000, [&] { fired.push_back(2); });
  transport.schedule(base + 1000, [&] { fired.push_back(1); });
  std::size_t ticks = 0;
  transport.schedule_periodic(2000, [&] {
    ticks += 1;
    if (ticks >= 3) transport.stop();
  });
  transport.run_for(2'000'000);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
  EXPECT_EQ(ticks, 3u) << "periodic must repeat until stop()";
}

TEST(SocketTransportTest, HelloHandshakePopulatesRoutesAndNeighbors) {
  struct Sink final : Node {
    void on_message(Transport&, const Message&) override {}
  };
  Sink a_node;
  Sink b_node;
  SocketTransport a;
  SocketTransport b;
  a.add_node(1, &a_node);
  b.add_node(2, &b_node);
  const std::uint16_t port = b.listen(0);
  a.connect_to(port);
  for (int i = 0; i < 2000 && !(a.connected(1, 2) && b.connected(1, 2)); ++i) {
    a.poll_once(1);
    b.poll_once(1);
  }
  ASSERT_TRUE(a.connected(1, 2));
  ASSERT_TRUE(b.connected(1, 2));
  EXPECT_EQ(a.neighbors_of(1), std::vector<NodeId>{2});
  EXPECT_EQ(b.neighbors_of(2), std::vector<NodeId>{1});

  // Abrupt local drop: the peer learns on its next read.
  a.drop_peer(2);
  EXPECT_FALSE(a.connected(1, 2));
  for (int i = 0; i < 2000 && b.connected(1, 2); ++i) b.poll_once(1);
  EXPECT_FALSE(b.connected(1, 2));
}

}  // namespace
}  // namespace pvr::net
