#include "net/gossip.h"

#include <gtest/gtest.h>

namespace pvr::net {
namespace {

TEST(GossipStateTest, ObserveNewReturnsTrue) {
  GossipState state;
  EXPECT_TRUE(state.observe("t", {1}));
  EXPECT_FALSE(state.observe("t", {1}));  // duplicate
  EXPECT_TRUE(state.observe("t", {2}));   // distinct value
}

TEST(GossipStateTest, NoConflictForSingleValue) {
  GossipState state;
  state.observe("root/epoch1", {1, 2, 3});
  EXPECT_FALSE(state.conflict_for("root/epoch1").has_value());
  EXPECT_FALSE(state.conflict_for("unknown").has_value());
}

TEST(GossipStateTest, ConflictDetectedOnEquivocation) {
  GossipState state;
  state.observe("root/epoch1", {1});
  state.observe("root/epoch1", {2});
  const auto conflict = state.conflict_for("root/epoch1");
  ASSERT_TRUE(conflict.has_value());
  EXPECT_EQ(conflict->values.size(), 2u);
}

TEST(GossipStateTest, ConflictsIsolatedPerTopic) {
  GossipState state;
  state.observe("a", {1});
  state.observe("a", {2});
  state.observe("b", {1});
  EXPECT_TRUE(state.conflict_for("a").has_value());
  EXPECT_FALSE(state.conflict_for("b").has_value());
  EXPECT_EQ(state.all_conflicts().size(), 1u);
}

TEST(GossipStateTest, ValuesAccessor) {
  GossipState state;
  state.observe("t", {5});
  state.observe("t", {6});
  EXPECT_EQ(state.values("t").size(), 2u);
  EXPECT_TRUE(state.values("missing").empty());
}

TEST(GossipWireTest, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> value = {9, 8, 7, 6};
  const auto payload = encode_gossip("commit/AS7/epoch3", value);
  const GossipAnnouncement decoded = decode_gossip(payload);
  EXPECT_EQ(decoded.topic, "commit/AS7/epoch3");
  EXPECT_EQ(decoded.value, value);
}

TEST(GossipWireTest, DecodeTruncatedThrows) {
  auto payload = encode_gossip("topic", {1, 2, 3});
  payload.resize(payload.size() - 2);
  EXPECT_THROW((void)decode_gossip(payload), std::out_of_range);
}

}  // namespace
}  // namespace pvr::net
