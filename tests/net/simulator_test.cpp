#include "net/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace pvr::net {
namespace {

// Records deliveries with timestamps; optionally echoes back.
class Recorder : public Node {
 public:
  struct Delivery {
    SimTime at;
    Message message;
  };

  explicit Recorder(bool echo = false) : echo_(echo) {}

  void on_message(Transport& sim, const Message& message) override {
    deliveries_.push_back({sim.now(), message});
    if (echo_) {
      sim.send({.from = message.to,
                .to = message.from,
                .channel = "echo",
                .payload = message.payload});
    }
  }

  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }

 private:
  bool echo_;
  std::vector<Delivery> deliveries_;
};

TEST(SimulatorTest, DeliversWithLatency) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  sim.add_node(2, std::make_unique<Recorder>());
  sim.connect(1, 2, {.latency = 5000, .drop_probability = 0.0});

  sim.schedule(0, [&] {
    sim.send({.from = 1, .to = 2, .channel = "test", .payload = {42}});
  });
  sim.run();

  const auto& recorder = dynamic_cast<Recorder&>(sim.node(2));
  ASSERT_EQ(recorder.deliveries().size(), 1u);
  EXPECT_EQ(recorder.deliveries()[0].at, 5000u);
  EXPECT_EQ(recorder.deliveries()[0].message.payload, std::vector<std::uint8_t>{42});
  EXPECT_EQ(sim.stats().messages_delivered, 1u);
}

TEST(SimulatorTest, EchoRoundTrip) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  sim.add_node(2, std::make_unique<Recorder>(/*echo=*/true));
  sim.connect(1, 2, {.latency = 1000});

  sim.schedule(0, [&] {
    sim.send({.from = 1, .to = 2, .channel = "ping", .payload = {7}});
  });
  sim.run();

  const auto& a = dynamic_cast<Recorder&>(sim.node(1));
  ASSERT_EQ(a.deliveries().size(), 1u);
  EXPECT_EQ(a.deliveries()[0].at, 2000u);  // two hops
}

TEST(SimulatorTest, SendWithoutLinkThrows) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  sim.add_node(2, std::make_unique<Recorder>());
  EXPECT_THROW(sim.send({.from = 1, .to = 2, .channel = "x", .payload = {}}),
               std::logic_error);
}

TEST(SimulatorTest, DuplicateNodeThrows) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  EXPECT_THROW(sim.add_node(1, std::make_unique<Recorder>()),
               std::invalid_argument);
}

TEST(SimulatorTest, SelfLinkThrows) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  EXPECT_THROW(sim.connect(1, 1), std::invalid_argument);
}

TEST(SimulatorTest, SameTimeEventsFifoOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(100, [&] { order.push_back(2); });
  sim.schedule(50, [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  std::vector<int> fired;
  sim.schedule(10, [&] { fired.push_back(1); });
  sim.schedule(20, [&] { fired.push_back(2); });
  sim.run_until(15);
  EXPECT_EQ(fired, std::vector<int>{1});
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, SchedulePastThrows) {
  Simulator sim(1);
  sim.schedule(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(50, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, PeriodicTicksInterleaveAndStopAfterLastRealEvent) {
  Simulator sim(1);
  std::vector<SimTime> ticks;
  // Real work at 10, 250, 990; ticks every 100 starting at 100. The tick
  // that finds the queue empty (after the 990 event, at t=1000) is the
  // LAST one — an armed periodic task must never keep run() alive.
  sim.schedule(10, [] {});
  sim.schedule(250, [] {});
  sim.schedule(990, [] {});
  sim.schedule_periodic(100, [&] { ticks.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300, 400, 500, 600, 700,
                                         800, 900, 1000}));
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(SimulatorTest, TwoPeriodicTasksDoNotKeepEachOtherAlive) {
  Simulator sim(1);
  std::size_t fast = 0;
  std::size_t slow = 0;
  sim.schedule(500, [] {});
  sim.schedule_periodic(100, [&] { fast += 1; });
  sim.schedule_periodic(170, [&] { slow += 1; });
  sim.run();
  // Each other's pending ticks must not count as work, or the pair would
  // re-arm forever once the real event at 500 has run.
  EXPECT_LE(fast, 7u);
  EXPECT_LE(slow, 5u);
  EXPECT_GE(fast, 5u);
  EXPECT_GE(slow, 3u);
}

TEST(SimulatorTest, PeriodicWithZeroIntervalThrows) {
  Simulator sim(1);
  EXPECT_THROW(sim.schedule_periodic(0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, PeriodicCallbackMayRegisterAnotherPeriodicTask) {
  Simulator sim(1);
  std::size_t inner = 0;
  bool registered = false;
  sim.schedule(1000, [] {});
  sim.schedule_periodic(100, [&] {
    if (registered) return;
    registered = true;
    // Several registrations from INSIDE a periodic callback: the storage
    // growth must not relocate the task whose fn is currently executing
    // (ASan would flag the use-after-move if it did).
    for (int i = 0; i < 8; ++i) {
      sim.schedule_periodic(300, [&] { inner += 1; });
    }
  });
  sim.run();
  EXPECT_GT(inner, 0u);
}

TEST(SimulatorTest, LossyLinkDropsRoughlyAtRate) {
  Simulator sim(42);
  sim.add_node(1, std::make_unique<Recorder>());
  sim.add_node(2, std::make_unique<Recorder>());
  sim.connect(1, 2, {.latency = 1, .drop_probability = 0.5});

  constexpr int kMessages = 1000;
  sim.schedule(0, [&] {
    for (int i = 0; i < kMessages; ++i) {
      sim.send({.from = 1, .to = 2, .channel = "lossy", .payload = {}});
    }
  });
  sim.run();

  const auto dropped = sim.stats().messages_dropped;
  EXPECT_GT(dropped, kMessages * 40 / 100);
  EXPECT_LT(dropped, kMessages * 60 / 100);
  EXPECT_EQ(sim.stats().messages_delivered + dropped,
            static_cast<std::uint64_t>(kMessages));
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim(7);
    sim.add_node(1, std::make_unique<Recorder>());
    sim.add_node(2, std::make_unique<Recorder>());
    sim.connect(1, 2, {.latency = 3, .drop_probability = 0.3});
    sim.schedule(0, [&] {
      for (int i = 0; i < 100; ++i) {
        sim.send({.from = 1, .to = 2, .channel = "d",
                  .payload = {static_cast<std::uint8_t>(i)}});
      }
    });
    sim.run();
    return dynamic_cast<Recorder&>(sim.node(2)).deliveries().size();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorTest, NeighborsOf) {
  Simulator sim(1);
  for (NodeId id = 1; id <= 4; ++id) sim.add_node(id, std::make_unique<Recorder>());
  sim.connect(1, 2);
  sim.connect(1, 3);
  sim.connect(2, 3);
  EXPECT_EQ(sim.neighbors_of(1), (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(sim.neighbors_of(4).empty());
  sim.disconnect(1, 2);
  EXPECT_EQ(sim.neighbors_of(1), std::vector<NodeId>{3});
}

TEST(SimulatorTest, StatsCountBytes) {
  Simulator sim(1);
  sim.add_node(1, std::make_unique<Recorder>());
  sim.add_node(2, std::make_unique<Recorder>());
  sim.connect(1, 2);
  Message msg{.from = 1, .to = 2, .channel = "abc", .payload = {1, 2, 3, 4}};
  const std::size_t expected = msg.wire_size();
  sim.schedule(0, [&, msg] { sim.send(msg); });
  sim.run();
  EXPECT_EQ(sim.stats().bytes_sent, expected);
}

}  // namespace
}  // namespace pvr::net
