// core::VerifyContext: shared per-key verification state plus the optional
// world-level verdict cache. The load-bearing property is PARITY — a
// caching context must return exactly the verdicts of a cache-off context
// (and of the stateless crypto::rsa_verify underneath), for any interleaving
// of threads, so the scenario fingerprint cannot observe the cache.
#include "core/verify_context.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/keys.h"
#include "obs/metrics.h"

namespace pvr::core {
namespace {

class VerifyContextTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(515, "verify-context-test");
    keys_ = new AsKeyPairs(generate_keys({10, 20, 30}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static const AsKeyPairs& keys() { return *keys_; }

  static SignedMessage signed_by(bgp::AsNumber asn,
                                 std::vector<std::uint8_t> payload) {
    return sign_message(asn, keys().private_keys.at(asn).priv,
                        std::move(payload));
  }

 private:
  static AsKeyPairs* keys_;
};

AsKeyPairs* VerifyContextTest::keys_ = nullptr;

TEST_F(VerifyContextTest, VerdictsMatchVerifyMessageWithAndWithoutCache) {
  const VerifyContext plain(&keys().directory, /*cache_verdicts=*/false);
  const VerifyContext caching(&keys().directory, /*cache_verdicts=*/true);

  std::vector<SignedMessage> messages;
  messages.push_back(signed_by(10, {1, 2, 3}));
  messages.push_back(signed_by(20, {4, 5}));
  messages.push_back(signed_by(30, {}));
  SignedMessage tampered = signed_by(10, {9, 9});
  tampered.payload.push_back(7);
  messages.push_back(tampered);
  SignedMessage reattributed = signed_by(20, {6});
  reattributed.signer = 30;
  messages.push_back(reattributed);
  SignedMessage unknown = signed_by(10, {1});
  unknown.signer = 99;  // no key in the directory
  messages.push_back(unknown);
  SignedMessage truncated = signed_by(30, {2});
  truncated.signature.pop_back();  // structurally invalid
  messages.push_back(truncated);

  // Two passes so the caching context answers the second from the cache.
  for (int pass = 0; pass < 2; ++pass) {
    for (const SignedMessage& message : messages) {
      const bool expected = verify_message(keys().directory, message);
      EXPECT_EQ(plain.verify(message), expected) << "pass " << pass;
      EXPECT_EQ(caching.verify(message), expected) << "pass " << pass;
    }
  }
  EXPECT_EQ(plain.cached_verdicts(), 0u);
  // Valid and tampered/reattributed signatures are cached; the unknown
  // signer and the structurally invalid one never reach the cache.
  EXPECT_EQ(caching.cached_verdicts(), 5u);
}

TEST_F(VerifyContextTest, CacheHitSkipsExponentiationButCountsHit) {
#if !PVR_OBS_ENABLED
  GTEST_SKIP() << "counters compiled out";
#else
  const obs::HotMetrics& hot = obs::MetricsRegistry::global().hot;
  const VerifyContext caching(&keys().directory, /*cache_verdicts=*/true);
  const SignedMessage message = signed_by(10, {42});

  const std::uint64_t verifies_before = hot.crypto_rsa_verifies.value();
  ASSERT_TRUE(caching.verify(message));
  EXPECT_EQ(hot.crypto_rsa_verifies.value(), verifies_before + 1);

  const std::uint64_t hits_before = hot.crypto_world_cache_hits.value();
  ASSERT_TRUE(caching.verify(message));
  EXPECT_EQ(hot.crypto_rsa_verifies.value(), verifies_before + 1);  // no new
  EXPECT_EQ(hot.crypto_world_cache_hits.value(), hits_before + 1);
#endif
}

// The kSim-deterministic hash accounting must not depend on hit/miss: a
// cache hit still screens, EMSA-encodes, and digests the pair, eliding
// only the exponentiation. Otherwise WHICH worker verified first would
// leak into crypto.bytes_hashed and break the sim fingerprint.
TEST_F(VerifyContextTest, HashWorkIsIdenticalOnHitAndMiss) {
#if !PVR_OBS_ENABLED
  GTEST_SKIP() << "counters compiled out";
#else
  const obs::HotMetrics& hot = obs::MetricsRegistry::global().hot;
  const VerifyContext caching(&keys().directory, /*cache_verdicts=*/true);
  const SignedMessage message = signed_by(20, {7, 7, 7});

  ASSERT_TRUE(caching.verify(message));  // prime: miss
  const std::uint64_t hashed_before_miss = hot.crypto_bytes_hashed.value();
  const VerifyContext fresh(&keys().directory, /*cache_verdicts=*/true);
  ASSERT_TRUE(fresh.verify(message));  // miss on a fresh context
  const std::uint64_t miss_delta =
      hot.crypto_bytes_hashed.value() - hashed_before_miss;

  const std::uint64_t hashed_before_hit = hot.crypto_bytes_hashed.value();
  ASSERT_TRUE(caching.verify(message));  // hit
  const std::uint64_t hit_delta =
      hot.crypto_bytes_hashed.value() - hashed_before_hit;
  EXPECT_EQ(hit_delta, miss_delta);
#endif
}

TEST_F(VerifyContextTest, VerifyKeyIsStableAndNullForUnknownSigners) {
  const VerifyContext ctx(&keys().directory, /*cache_verdicts=*/false);
  const crypto::RsaVerifyKey* key = ctx.verify_key(10);
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(ctx.verify_key(10), key);  // lazily built once, stable pointer
  EXPECT_EQ(key->key(), *keys().directory.find(10));
  EXPECT_EQ(ctx.verify_key(99), nullptr);
  EXPECT_EQ(ctx.verify_key(99), nullptr);  // unknowns are not negative-cached
}

TEST_F(VerifyContextTest, DirectoryContextIsSharedAndCacheOff) {
  const VerifyContext& ctx = keys().directory.verify_context();
  EXPECT_EQ(&keys().directory.verify_context(), &ctx);
  EXPECT_FALSE(ctx.caches_verdicts());
  EXPECT_EQ(&ctx.directory(), &keys().directory);
}

TEST_F(VerifyContextTest, CopiedDirectoryRebuildsItsOwnContext) {
  KeyDirectory copy = keys().directory;
  const VerifyContext& original_ctx = keys().directory.verify_context();
  const VerifyContext& copy_ctx = copy.verify_context();
  EXPECT_NE(&copy_ctx, &original_ctx);
  EXPECT_EQ(&copy_ctx.directory(), &copy);
  EXPECT_TRUE(copy_ctx.verify(signed_by(10, {8})));

  KeyDirectory moved = std::move(copy);
  EXPECT_EQ(&moved.verify_context().directory(), &moved);
  EXPECT_TRUE(moved.verify_context().verify(signed_by(20, {8})));
}

// Many threads hammering one caching context: same verdicts as the
// stateless path, no torn state under TSan.
TEST_F(VerifyContextTest, ConcurrentVerifyIsConsistent) {
  const VerifyContext caching(&keys().directory, /*cache_verdicts=*/true);
  std::vector<SignedMessage> messages;
  for (std::uint8_t i = 0; i < 16; ++i) {
    messages.push_back(signed_by(i % 2 == 0 ? 10 : 20, {i}));
  }
  messages[3].payload[0] ^= 1;  // one forgery
  std::vector<bool> expected;
  for (const SignedMessage& message : messages) {
    expected.push_back(verify_message(keys().directory, message));
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < messages.size(); ++i) {
          if (caching.verify(messages[i]) != expected[i]) failures[t]++;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const int count : failures) EXPECT_EQ(count, 0);
  EXPECT_EQ(caching.cached_verdicts(), messages.size());
}

}  // namespace
}  // namespace pvr::core
