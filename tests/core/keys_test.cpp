#include "core/keys.h"

#include <gtest/gtest.h>

namespace pvr::core {
namespace {

class KeysTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(42, "keys-test");
    keys_ = new AsKeyPairs(generate_keys({1, 2, 3}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static const AsKeyPairs& keys() { return *keys_; }

 private:
  static AsKeyPairs* keys_;
};

AsKeyPairs* KeysTest::keys_ = nullptr;

TEST_F(KeysTest, DirectoryLookup) {
  EXPECT_EQ(keys().directory.size(), 3u);
  EXPECT_TRUE(keys().directory.contains(1));
  EXPECT_FALSE(keys().directory.contains(9));
  EXPECT_NE(keys().directory.find(2), nullptr);
  EXPECT_EQ(keys().directory.find(9), nullptr);
  EXPECT_EQ(keys().directory.members(), (std::vector<bgp::AsNumber>{1, 2, 3}));
}

TEST_F(KeysTest, SignVerifyRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const SignedMessage message =
      sign_message(1, keys().private_keys.at(1).priv, payload);
  EXPECT_EQ(message.signer, 1u);
  EXPECT_TRUE(verify_message(keys().directory, message));
}

TEST_F(KeysTest, TamperedPayloadRejected) {
  SignedMessage message =
      sign_message(1, keys().private_keys.at(1).priv, {1, 2, 3});
  message.payload[0] ^= 1;
  EXPECT_FALSE(verify_message(keys().directory, message));
}

TEST_F(KeysTest, ReattributionRejected) {
  // A message signed by AS1 but claiming to be from AS2 must not verify:
  // the signature covers the signer field.
  SignedMessage message =
      sign_message(1, keys().private_keys.at(1).priv, {9, 9});
  message.signer = 2;
  EXPECT_FALSE(verify_message(keys().directory, message));
}

TEST_F(KeysTest, UnknownSignerRejected) {
  const SignedMessage message =
      sign_message(77, keys().private_keys.at(1).priv, {1});
  EXPECT_FALSE(verify_message(keys().directory, message));
}

TEST_F(KeysTest, EncodeDecodeRoundTrip) {
  const SignedMessage message =
      sign_message(3, keys().private_keys.at(3).priv, {5, 6, 7});
  const SignedMessage decoded = SignedMessage::decode(message.encode());
  EXPECT_EQ(decoded, message);
  EXPECT_TRUE(verify_message(keys().directory, decoded));
}

TEST_F(KeysTest, KeysAreDistinctPerAs) {
  EXPECT_NE(keys().directory.find(1)->n, keys().directory.find(2)->n);
}

TEST_F(KeysTest, DeterministicGeneration) {
  crypto::Drbg rng(42, "keys-test");
  const AsKeyPairs again = generate_keys({1, 2, 3}, rng, 512);
  EXPECT_EQ(again.directory.find(1)->n, keys().directory.find(1)->n);
}

}  // namespace
}  // namespace pvr::core
