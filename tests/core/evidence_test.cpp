// Auditor tests: the Evidence and Accuracy properties of §2.3.
//
// Every genuine violation's evidence must convince the auditor; every
// fabricated or tampered evidence object must fail validation (so an
// honest AS can always disprove false accusations).
#include "core/evidence.h"

#include <gtest/gtest.h>

#include "core/min_protocol.h"

namespace pvr::core {
namespace {

constexpr bgp::AsNumber kProver = 100;
constexpr bgp::AsNumber kRecipient = 200;
constexpr bgp::AsNumber kN1 = 301;
constexpr bgp::AsNumber kN2 = 302;
constexpr std::uint32_t kMaxLen = 8;

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = origin_as,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

class AuditorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(13, "auditor-keys");
    keys_ = new AsKeyPairs(generate_keys({kProver, kRecipient, kN1, kN2}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  static const KeyDirectory& directory() { return keys_->directory; }
  static const crypto::RsaPrivateKey& key_of(bgp::AsNumber asn) {
    return keys_->private_keys.at(asn).priv;
  }

  [[nodiscard]] static ProtocolId round_id() {
    return {.prover = kProver,
            .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
            .epoch = 1};
  }

  [[nodiscard]] static std::map<bgp::AsNumber, std::optional<SignedMessage>>
  canonical_inputs() {
    auto make = [&](bgp::AsNumber provider, std::size_t length) {
      const InputAnnouncement announcement{.id = round_id(),
                                           .provider = provider,
                                           .route = route_len(length, provider)};
      return sign_message(provider, key_of(provider), announcement.encode());
    };
    return {{kN1, make(kN1, 3)}, {kN2, make(kN2, 2)}};
  }

  [[nodiscard]] static ProverResult run(const ProverMisbehavior& misbehavior) {
    crypto::Drbg rng(5, "auditor-prover");
    return run_prover(round_id(), OperatorKind::kMinimum, canonical_inputs(),
                      kMaxLen, key_of(kProver), rng, misbehavior);
  }

  // First evidence of a given kind produced by the full verifier sweep.
  [[nodiscard]] static Evidence evidence_for(const ProverMisbehavior& misbehavior,
                                             ViolationKind kind) {
    const ProverResult result = run(misbehavior);
    std::vector<Evidence> all;
    for (const auto& [provider, length] :
         std::vector<std::pair<bgp::AsNumber, std::size_t>>{{kN1, 3}, {kN2, 2}}) {
      const InputAnnouncement own{.id = round_id(), .provider = provider,
                                  .route = route_len(length, provider)};
      const auto it = result.provider_reveals.find(provider);
      auto found = verify_as_provider(
          directory(), provider, own, result.signed_bundle,
          it == result.provider_reveals.end() ? nullptr : &it->second);
      all.insert(all.end(), found.begin(), found.end());
    }
    auto found = verify_as_recipient(directory(), kRecipient,
                                     result.signed_bundle,
                                     &result.recipient_reveal,
                                     &result.export_statement);
    all.insert(all.end(), found.begin(), found.end());
    for (const Evidence& e : all) {
      if (e.kind == kind) return e;
    }
    ADD_FAILURE() << "expected evidence of kind " << to_string(kind);
    return {};
  }

 private:
  static AsKeyPairs* keys_;
};

AsKeyPairs* AuditorTest::keys_ = nullptr;

TEST_F(AuditorTest, RejectsNullDirectory) {
  EXPECT_THROW(Auditor(nullptr), std::invalid_argument);
}

// ---- Genuine evidence convinces the auditor ----

TEST_F(AuditorTest, ValidatesEquivocation) {
  const ProverResult result = run({.equivocate = true});
  const auto conflict = check_equivocation(directory(), kN1, result.signed_bundle,
                                           *result.equivocating_bundle);
  ASSERT_TRUE(conflict.has_value());
  EXPECT_TRUE(Auditor(&directory()).validate(*conflict));
}

TEST_F(AuditorTest, ValidatesBadOpening) {
  const Evidence evidence =
      evidence_for({.wrong_opening_for = kN1}, ViolationKind::kBadOpening);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, ValidatesBitNotSet) {
  const Evidence evidence = evidence_for(
      {.export_nonminimal = true, .bits_match_lie = true},
      ViolationKind::kBitNotSet);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, ValidatesNonMonotoneBits) {
  const Evidence evidence =
      evidence_for({.nonmonotone_bits = true}, ViolationKind::kNonMonotoneBits);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, ValidatesOutputNotMinimal) {
  const Evidence evidence =
      evidence_for({.export_nonminimal = true}, ViolationKind::kOutputNotMinimal);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, ValidatesOutputWithoutInput) {
  const Evidence evidence =
      evidence_for({.fabricate_route = true}, ViolationKind::kOutputWithoutInput);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, ValidatesSuppressedOutput) {
  const Evidence evidence =
      evidence_for({.suppress_export = true}, ViolationKind::kSuppressedOutput);
  EXPECT_TRUE(Auditor(&directory()).validate(evidence));
}

// ---- Fabricated evidence is rejected (Accuracy) ----

TEST_F(AuditorTest, RejectsAccusationAgainstHonestProver) {
  // Take an honest round and try to frame the prover with every provable
  // violation kind using its genuine messages.
  const ProverResult result = run({});
  const Auditor auditor(&directory());
  for (const ViolationKind kind :
       {ViolationKind::kEquivocation, ViolationKind::kBadOpening,
        ViolationKind::kBitNotSet, ViolationKind::kNonMonotoneBits,
        ViolationKind::kOutputNotMinimal, ViolationKind::kOutputWithoutInput,
        ViolationKind::kSuppressedOutput}) {
    const Evidence framed{
        .kind = kind,
        .accused = kProver,
        .reporter = kN1,
        .index = 2,
        .messages = {result.signed_bundle, result.recipient_reveal,
                     result.export_statement},
        .detail = "framed",
    };
    EXPECT_FALSE(auditor.validate(framed)) << to_string(kind);
  }
}

TEST_F(AuditorTest, RejectsEvidenceWithTamperedMessages) {
  Evidence evidence =
      evidence_for({.export_nonminimal = true}, ViolationKind::kOutputNotMinimal);
  ASSERT_FALSE(evidence.messages.empty());
  evidence.messages[0].payload[15] ^= 1;  // break the bundle signature
  EXPECT_FALSE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, RejectsEvidenceAccusingWrongAs) {
  Evidence evidence =
      evidence_for({.export_nonminimal = true}, ViolationKind::kOutputNotMinimal);
  evidence.accused = kN1;  // redirect the accusation
  EXPECT_FALSE(Auditor(&directory()).validate(evidence));
}

TEST_F(AuditorTest, RejectsEmptyEvidence) {
  const Evidence empty{.kind = ViolationKind::kEquivocation,
                       .accused = kProver,
                       .reporter = kN1,
                       .index = 0,
                       .messages = {},
                       .detail = ""};
  EXPECT_FALSE(Auditor(&directory()).validate(empty));
}

TEST_F(AuditorTest, RejectsLivenessKinds) {
  // Missing reveals are detectable but not third-party provable; validate()
  // must never convict on them.
  const ProverResult result = run({.skip_reveal_for = kN2});
  const Evidence liveness{.kind = ViolationKind::kMissingReveal,
                          .accused = kProver,
                          .reporter = kN2,
                          .index = 0,
                          .messages = {result.signed_bundle},
                          .detail = "no reveal"};
  EXPECT_FALSE(Auditor(&directory()).validate(liveness));
}

TEST_F(AuditorTest, EvidenceToStringNamesParties) {
  const Evidence evidence =
      evidence_for({.suppress_export = true}, ViolationKind::kSuppressedOutput);
  const std::string text = evidence.to_string();
  EXPECT_NE(text.find("AS100"), std::string::npos);
  EXPECT_NE(text.find("suppressed-output"), std::string::npos);
}

}  // namespace
}  // namespace pvr::core
