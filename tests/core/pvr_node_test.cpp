// End-to-end Figure-1 rounds over the simulated network: the PVR paper's
// Detection / Evidence / Accuracy / Confidentiality properties, exercised
// through actual message exchange (inputs, bundle, gossip, reveals, export).
#include "core/pvr_speaker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/evidence.h"

namespace pvr::core {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                                   const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{
      .prefix = prefix,
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = origin_as,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

struct RoundOutcome {
  std::vector<Evidence> all_evidence;
  std::optional<bgp::Route> accepted;
};

// Runs one full round: providers 0..k-1 provide routes of the given lengths
// (0 = provide nothing), prover proves, everyone verifies.
[[nodiscard]] RoundOutcome run_round(const Figure1Setup& setup,
                                     const std::vector<std::size_t>& lengths) {
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;

  world.sim.schedule(0, [&] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      const bgp::AsNumber provider = world.providers[i];
      const std::optional<bgp::Route> route =
          (i < lengths.size() && lengths[i] > 0)
              ? std::optional(route_len(lengths[i], provider, handles.prefix))
              : std::nullopt;
      world.node(provider).provide_input(world.sim.transport(), 1, handles.prefix, route);
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  RoundOutcome outcome;
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(handles.round_id(1));
    const auto& found = world.node(verifier).evidence();
    outcome.all_evidence.insert(outcome.all_evidence.end(), found.begin(),
                                found.end());
  }
  outcome.accepted = world.node(world.recipient).accepted_route(handles.round_id(1));
  return outcome;
}

[[nodiscard]] bool detected(const RoundOutcome& outcome, ViolationKind kind) {
  return std::any_of(outcome.all_evidence.begin(), outcome.all_evidence.end(),
                     [&](const Evidence& e) { return e.kind == kind; });
}

TEST(PvrNodeTest, HonestRoundAcceptsMinimumNoEvidence) {
  const RoundOutcome outcome = run_round({.seed = 1}, {4, 2, 6});
  EXPECT_TRUE(outcome.all_evidence.empty())
      << outcome.all_evidence.front().to_string();
  ASSERT_TRUE(outcome.accepted.has_value());
  // Input length 2 + the prover prepended = 3 hops.
  EXPECT_EQ(outcome.accepted->path.length(), 3u);
}

TEST(PvrNodeTest, HonestEmptyRoundAcceptsNothing) {
  const RoundOutcome outcome = run_round({.seed = 2}, {0, 0, 0});
  EXPECT_TRUE(outcome.all_evidence.empty());
  EXPECT_FALSE(outcome.accepted.has_value());
}

TEST(PvrNodeTest, HonestExistentialRound) {
  const RoundOutcome outcome = run_round(
      {.seed = 3, .op = OperatorKind::kExistential}, {0, 5, 0});
  EXPECT_TRUE(outcome.all_evidence.empty());
  EXPECT_TRUE(outcome.accepted.has_value());
}

TEST(PvrNodeTest, SingleProviderRound) {
  const RoundOutcome outcome =
      run_round({.seed = 4, .provider_count = 1}, {3});
  EXPECT_TRUE(outcome.all_evidence.empty());
  ASSERT_TRUE(outcome.accepted.has_value());
  EXPECT_EQ(outcome.accepted->path.length(), 4u);
}

// ---- Detection over the wire (the §2.3 Detection property) ----

struct MisbehaviorCase {
  const char* name;
  ProverMisbehavior misbehavior;
  ViolationKind expected;
  bool provable;  // should the auditor accept the evidence?
};

class PvrDetectionTest : public ::testing::TestWithParam<MisbehaviorCase> {};

TEST_P(PvrDetectionTest, MisbehaviorDetectedOverTheWire) {
  const MisbehaviorCase& test_case = GetParam();
  Figure1Setup setup{.seed = 5};
  setup.misbehavior = test_case.misbehavior;

  // Recreate the world to get the directory for auditing.
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;
  world.sim.schedule(0, [&] {
    const std::vector<std::size_t> lengths = {4, 2, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  std::vector<Evidence> all;
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(handles.round_id(1));
    const auto& found = world.node(verifier).evidence();
    all.insert(all.end(), found.begin(), found.end());
  }

  const auto it = std::find_if(all.begin(), all.end(), [&](const Evidence& e) {
    return e.kind == test_case.expected;
  });
  ASSERT_NE(it, all.end()) << "expected " << to_string(test_case.expected);
  EXPECT_EQ(it->accused, world.prover);

  const Auditor auditor(&handles.keys->directory);
  EXPECT_EQ(auditor.validate(*it), test_case.provable) << it->to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PvrDetectionTest,
    ::testing::Values(
        MisbehaviorCase{"nonminimal", {.export_nonminimal = true},
                        ViolationKind::kOutputNotMinimal, true},
        MisbehaviorCase{"nonminimal_forged_bits",
                        {.export_nonminimal = true, .bits_match_lie = true},
                        ViolationKind::kBitNotSet, true},
        MisbehaviorCase{"suppress", {.suppress_export = true},
                        ViolationKind::kSuppressedOutput, true},
        MisbehaviorCase{"fabricate", {.fabricate_route = true},
                        ViolationKind::kOutputWithoutInput, true},
        MisbehaviorCase{"nonmonotone", {.nonmonotone_bits = true},
                        ViolationKind::kNonMonotoneBits, true},
        MisbehaviorCase{"wrong_opening", {.wrong_opening_for = 301},
                        ViolationKind::kBadOpening, true},
        MisbehaviorCase{"skip_reveal", {.skip_reveal_for = 302},
                        ViolationKind::kMissingReveal, false},
        MisbehaviorCase{"equivocate", {.equivocate = true},
                        ViolationKind::kEquivocation, true}),
    [](const ::testing::TestParamInfo<MisbehaviorCase>& info) {
      return info.param.name;
    });

// A misbehaving prover must not have its route accepted by B when B's own
// checks fail.
TEST(PvrNodeTest, RecipientRejectsRouteOnDetectedViolation) {
  Figure1Setup setup{.seed = 6};
  setup.misbehavior = {.export_nonminimal = true};
  const RoundOutcome outcome = [&] {
    Figure1Handles handles = make_figure1_world(setup);
    Figure1World& world = *handles.world;
    world.sim.schedule(0, [&] {
      const std::vector<std::size_t> lengths = {4, 2, 6};
      for (std::size_t i = 0; i < world.providers.size(); ++i) {
        world.node(world.providers[i])
            .provide_input(world.sim.transport(), 1, handles.prefix,
                           route_len(lengths[i], world.providers[i], handles.prefix));
      }
      world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
    });
    world.sim.run();
    RoundOutcome out;
    world.node(world.recipient).finalize_round(handles.round_id(1));
    out.accepted = world.node(world.recipient).accepted_route(handles.round_id(1));
    out.all_evidence = world.node(world.recipient).evidence();
    return out;
  }();
  EXPECT_FALSE(outcome.accepted.has_value());
  EXPECT_FALSE(outcome.all_evidence.empty());
}

// Equivocation is caught by gossip even though each individual neighbor saw
// a self-consistent bundle.
TEST(PvrNodeTest, GossipCatchesEquivocation) {
  Figure1Setup setup{.seed = 7, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  const RoundOutcome outcome = run_round(setup, {3, 4, 5, 6});
  EXPECT_TRUE(detected(outcome, ViolationKind::kEquivocation));
}

// Confidentiality: in an honest round, a provider's node state never holds
// another provider's route or the recipient reveal, and the recipient never
// sees provider reveals. (The channels are point-to-point; this asserts the
// node-level bookkeeping honors that.)
TEST(PvrNodeTest, NoCrossNeighborLeakage) {
  Figure1Setup setup{.seed = 8};
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;
  world.sim.schedule(0, [&] {
    const std::vector<std::size_t> lengths = {4, 2, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();
  for (const bgp::AsNumber provider : world.providers) {
    world.node(provider).finalize_round(handles.round_id(1));
    EXPECT_TRUE(world.node(provider).evidence().empty());
    // Providers never accept/observe the exported route.
    EXPECT_FALSE(world.node(provider).accepted_route(handles.round_id(1)).has_value());
  }
}

TEST(PvrNodeTest, MultipleSequentialEpochs) {
  Figure1Setup setup{.seed = 9};
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;

  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    world.sim.schedule_after(1000, [&, epoch] {
      const std::vector<std::size_t> lengths = {4 + epoch % 2, 2, 6};
      for (std::size_t i = 0; i < world.providers.size(); ++i) {
        world.node(world.providers[i])
            .provide_input(world.sim.transport(), epoch, handles.prefix,
                           route_len(lengths[i], world.providers[i], handles.prefix));
      }
      world.node(world.prover).start_round(world.sim.transport(), epoch, handles.prefix);
    });
    world.sim.run();
  }
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    world.node(world.recipient).finalize_round(handles.round_id(epoch));
    EXPECT_TRUE(world.node(world.recipient).accepted_route(handles.round_id(epoch)).has_value())
        << "epoch " << epoch;
  }
  EXPECT_TRUE(world.node(world.recipient).evidence().empty());
}

TEST(PvrNodeTest, RoleValidation) {
  Figure1Setup setup{.seed = 10};
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;
  EXPECT_THROW(world.node(world.recipient).start_round(world.sim.transport(), 1, handles.prefix),
               std::logic_error);
  EXPECT_THROW(world.node(world.prover)
                   .provide_input(world.sim.transport(), 1, handles.prefix, std::nullopt),
               std::logic_error);
}

}  // namespace
}  // namespace pvr::core
