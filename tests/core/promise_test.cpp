#include "core/promise.h"

#include <gtest/gtest.h>

namespace pvr::core {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber next_hop) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(1000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

TEST(PromiseSemanticsTest, ShortestOfAll) {
  const Promise promise{.type = PromiseType::kShortestOfAll};
  const Promise::Inputs inputs = {{1, route_len(3, 1)}, {2, route_len(2, 2)}};
  EXPECT_TRUE(promise.holds(inputs, route_len(2, 2)));
  EXPECT_FALSE(promise.holds(inputs, route_len(3, 1)));
  EXPECT_FALSE(promise.holds(inputs, std::nullopt));
  // No inputs: exporting nothing is the only compliant behavior.
  EXPECT_TRUE(promise.holds({}, std::nullopt));
  EXPECT_FALSE(promise.holds({}, route_len(1, 1)));
  // Absent optionals count as "provided nothing".
  const Promise::Inputs sparse = {{1, std::nullopt}, {2, route_len(4, 2)}};
  EXPECT_TRUE(promise.holds(sparse, route_len(4, 2)));
}

TEST(PromiseSemanticsTest, ShortestOfSubsetIgnoresOutsiders) {
  const Promise promise{.type = PromiseType::kShortestOfSubset, .subset = {1, 2}};
  // Neighbor 9 has a shorter route, but it is outside the subset.
  const Promise::Inputs inputs = {
      {1, route_len(4, 1)}, {2, route_len(5, 2)}, {9, route_len(1, 9)}};
  EXPECT_TRUE(promise.holds(inputs, route_len(4, 1)));
  EXPECT_FALSE(promise.holds(inputs, route_len(5, 2)));
  // Equal-length alternative is fine (promise is about length, not identity).
  EXPECT_TRUE(promise.holds(inputs, route_len(4, 7)));
}

TEST(PromiseSemanticsTest, WithinSlackOfBest) {
  const Promise promise{.type = PromiseType::kWithinSlackOfBest, .slack = 2};
  const Promise::Inputs inputs = {{1, route_len(3, 1)}, {2, route_len(6, 2)}};
  EXPECT_TRUE(promise.holds(inputs, route_len(3, 1)));
  EXPECT_TRUE(promise.holds(inputs, route_len(5, 2)));
  EXPECT_FALSE(promise.holds(inputs, route_len(6, 2)));
  EXPECT_FALSE(promise.holds(inputs, std::nullopt));
}

TEST(PromiseSemanticsTest, NoLongerThanOthers) {
  const Promise promise{.type = PromiseType::kNoLongerThanOthers};
  const std::map<bgp::AsNumber, std::optional<bgp::Route>> others = {
      {5, route_len(4, 5)}, {6, route_len(6, 6)}};
  EXPECT_TRUE(promise.holds({}, route_len(4, 1), others));
  EXPECT_TRUE(promise.holds({}, route_len(3, 1), others));
  EXPECT_FALSE(promise.holds({}, route_len(5, 1), others));
  // Exporting nothing while telling others something violates the promise.
  EXPECT_FALSE(promise.holds({}, std::nullopt, others));
  EXPECT_TRUE(promise.holds({}, std::nullopt, {}));
}

TEST(PromiseSemanticsTest, ExistentialFromSubset) {
  const Promise promise{.type = PromiseType::kExistentialFromSubset,
                        .subset = {1, 2}};
  EXPECT_TRUE(promise.holds({{1, route_len(3, 1)}}, route_len(7, 7)));
  EXPECT_FALSE(promise.holds({{1, route_len(3, 1)}}, std::nullopt));
  EXPECT_TRUE(promise.holds({{9, route_len(3, 9)}}, std::nullopt));
  EXPECT_FALSE(promise.holds({}, route_len(1, 1)));
}

TEST(PromiseSemanticsTest, FallbackUnlessPrimaryShorter) {
  const Promise promise{.type = PromiseType::kFallbackUnlessPrimaryShorter,
                        .subset = {2, 3},
                        .primary = 1};
  // Primary strictly shorter: output must match primary's length.
  Promise::Inputs inputs = {
      {1, route_len(2, 1)}, {2, route_len(3, 2)}, {3, route_len(5, 3)}};
  EXPECT_TRUE(promise.holds(inputs, route_len(2, 1)));
  EXPECT_FALSE(promise.holds(inputs, route_len(3, 2)));
  // Primary not shorter: output drawn from fallback's best length.
  inputs[1] = route_len(3, 1);
  EXPECT_TRUE(promise.holds(inputs, route_len(3, 2)));
  EXPECT_FALSE(promise.holds(inputs, route_len(5, 3)));
  // No primary: fallback.
  inputs.erase(1);
  EXPECT_TRUE(promise.holds(inputs, route_len(3, 2)));
  // Nothing at all: no output allowed.
  EXPECT_TRUE(promise.holds({}, std::nullopt));
  EXPECT_FALSE(promise.holds({}, route_len(1, 1)));
}

TEST(PromiseTest, ToStringIsDescriptive) {
  EXPECT_EQ(Promise{.type = PromiseType::kShortestOfAll}.to_string(),
            "shortest-of-all");
  const Promise subset{.type = PromiseType::kShortestOfSubset, .subset = {3, 5}};
  EXPECT_EQ(subset.to_string(), "shortest-of{3,5}");
}

// ---- Static structural checking (§2.2) ----

TEST(GraphImplementsPromiseTest, Figure1GraphImplementsSubsetMin) {
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph({11, 12, 13}, 99);
  EXPECT_TRUE(graph_implements_promise(
      graph, {.type = PromiseType::kShortestOfSubset, .subset = {11, 12, 13}}));
  EXPECT_TRUE(graph_implements_promise(graph,
                                       {.type = PromiseType::kShortestOfAll}));
  // Wrong subset: not implemented.
  EXPECT_FALSE(graph_implements_promise(
      graph, {.type = PromiseType::kShortestOfSubset, .subset = {11, 12}}));
  // Wrong operator kind.
  EXPECT_FALSE(graph_implements_promise(
      graph,
      {.type = PromiseType::kExistentialFromSubset, .subset = {11, 12, 13}}));
}

TEST(GraphImplementsPromiseTest, ExistentialGraph) {
  const rfg::RouteFlowGraph graph = rfg::make_existential_graph({1, 2}, 99);
  EXPECT_TRUE(graph_implements_promise(
      graph, {.type = PromiseType::kExistentialFromSubset, .subset = {1, 2}}));
  EXPECT_FALSE(graph_implements_promise(
      graph, {.type = PromiseType::kShortestOfSubset, .subset = {1, 2}}));
}

TEST(GraphImplementsPromiseTest, Figure2Graph) {
  const rfg::RouteFlowGraph graph = rfg::make_figure2_graph(1, {2, 3}, 99);
  EXPECT_TRUE(graph_implements_promise(
      graph, {.type = PromiseType::kFallbackUnlessPrimaryShorter,
              .subset = {2, 3},
              .primary = 1}));
  // Wrong primary.
  EXPECT_FALSE(graph_implements_promise(
      graph, {.type = PromiseType::kFallbackUnlessPrimaryShorter,
              .subset = {2, 3},
              .primary = 2}));
  // The full-graph min promise is NOT implemented by Fig. 2 (r1 can win
  // despite a shorter r2 only when r1 is shorter — but the min over all
  // inputs includes r1 anyway; shape check rejects regardless).
  EXPECT_FALSE(graph_implements_promise(graph,
                                        {.type = PromiseType::kShortestOfAll}));
}

TEST(GraphImplementsPromiseTest, UnrecognizedShapesRejected) {
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph({1, 2}, 99);
  EXPECT_FALSE(graph_implements_promise(
      graph, {.type = PromiseType::kWithinSlackOfBest, .slack = 1}));
  EXPECT_FALSE(graph_implements_promise(
      graph, {.type = PromiseType::kNoLongerThanOthers}));
}

// ---- Minimum access (§4) ----

TEST(AccessSufficientTest, Figure1PolicyIsSufficient) {
  const std::vector<bgp::AsNumber> providers = {11, 12, 13};
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph(providers, 99);
  const rfg::AccessPolicy policy =
      rfg::AccessPolicy::figure1_policy(graph, providers, 99, "op:min");
  const Promise promise{.type = PromiseType::kShortestOfSubset,
                        .subset = {11, 12, 13}};
  EXPECT_TRUE(access_sufficient_for(graph, policy, promise, 99));
}

TEST(AccessSufficientTest, HiddenOperatorIsInsufficient) {
  // The paper's trivial example: a promise about a route derived by an
  // operator nobody may see is unverifiable.
  const std::vector<bgp::AsNumber> providers = {11, 12};
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph(providers, 99);
  rfg::AccessPolicy policy =
      rfg::AccessPolicy::figure1_policy(graph, providers, 99, "op:min");
  policy.revoke(99, "op:min", rfg::Component::kPayload);
  const Promise promise{.type = PromiseType::kShortestOfSubset,
                        .subset = {11, 12}};
  EXPECT_FALSE(access_sufficient_for(graph, policy, promise, 99));
}

TEST(AccessSufficientTest, ProviderBlindToOwnInputIsInsufficient) {
  const std::vector<bgp::AsNumber> providers = {11, 12};
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph(providers, 99);
  rfg::AccessPolicy policy =
      rfg::AccessPolicy::figure1_policy(graph, providers, 99, "op:min");
  policy.revoke(11, rfg::input_variable_id(11), rfg::Component::kPayload);
  const Promise promise{.type = PromiseType::kShortestOfSubset,
                        .subset = {11, 12}};
  EXPECT_FALSE(access_sufficient_for(graph, policy, promise, 99));
}

TEST(AccessSufficientTest, RecipientBlindToOutputIsInsufficient) {
  const std::vector<bgp::AsNumber> providers = {11};
  const rfg::RouteFlowGraph graph = rfg::make_figure1_graph(providers, 99);
  rfg::AccessPolicy policy =
      rfg::AccessPolicy::figure1_policy(graph, providers, 99, "op:min");
  policy.revoke(99, rfg::kOutputVariableId, rfg::Component::kPayload);
  const Promise promise{.type = PromiseType::kShortestOfSubset, .subset = {11}};
  EXPECT_FALSE(access_sufficient_for(graph, policy, promise, 99));
}

}  // namespace
}  // namespace pvr::core
