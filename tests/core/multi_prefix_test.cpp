// Regression coverage for the multi-prefix / multi-prover round-state
// collision: before round state was keyed by the full core::ProtocolId,
// PvrNode keyed rounds_ / collected_inputs_ / accepted_ by epoch alone, so
// two concurrent rounds in the same epoch — different prefixes, or
// different provers — stomped each other's bundles and reveals and were
// reported as equivocation / bad reveals that never happened (and the
// recipient could not hold one accepted route per prefix at all).
#include "core/pvr_speaker.h"

#include <gtest/gtest.h>

#include "core/evidence.h"
#include "engine/verification_engine.h"

namespace pvr::core {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as,
                                   const bgp::Ipv4Prefix& prefix) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{.prefix = prefix,
                    .path = bgp::AsPath(std::move(hops)),
                    .next_hop = origin_as,
                    .local_pref = 100,
                    .med = 0,
                    .origin = bgp::Origin::kIgp,
                    .communities = {}};
}

// Drives two prefixes through the same epoch of one world: every provider
// announces a route for both prefixes, the prover starts both rounds inside
// one collection window.
struct TwoPrefixRun {
  Figure1Handles handles;
  bgp::Ipv4Prefix prefix_b;

  [[nodiscard]] ProtocolId id_a() const { return handles.round_id(1); }
  [[nodiscard]] ProtocolId id_b() const {
    return ProtocolId{
        .prover = handles.world->prover, .prefix = prefix_b, .epoch = 1};
  }
};

[[nodiscard]] TwoPrefixRun run_two_prefixes(Figure1Setup setup) {
  TwoPrefixRun run{.handles = make_figure1_world(setup),
                   .prefix_b = bgp::Ipv4Prefix::parse("198.51.100.0/24")};
  Figure1World& world = *run.handles.world;

  world.sim.schedule(0, [&world, &run] {
    // Prefix A minimum: length 2 (provider 1); prefix B minimum: length 3
    // (provider 2) — distinct winners so cross-prefix clobbering would be
    // visible in the accepted routes, not just in the evidence log. Sized
    // for the largest provider_count any caller uses (ASan caught the
    // 4-provider equivocation run reading past 3-element vectors).
    const std::vector<std::size_t> lengths_a = {4, 2, 6, 9};
    const std::vector<std::size_t> lengths_b = {5, 7, 3, 8};
    ASSERT_LE(world.providers.size(), lengths_a.size());
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      const bgp::AsNumber provider = world.providers[i];
      world.node(provider).provide_input(
          world.sim.transport(), 1, run.handles.prefix,
          route_len(lengths_a[i], provider, run.handles.prefix));
      world.node(provider).provide_input(
          world.sim.transport(), 1, run.prefix_b,
          route_len(lengths_b[i], provider, run.prefix_b));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, run.handles.prefix);
    world.node(world.prover).start_round(world.sim.transport(), 1, run.prefix_b);
  });
  world.sim.run();
  return run;
}

TEST(MultiPrefixTest, TwoPrefixesSameEpochNoFalseEvidence) {
  TwoPrefixRun run = run_two_prefixes({.seed = 21});
  Figure1World& world = *run.handles.world;

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(run.id_a());
    world.node(verifier).finalize_round(run.id_b());
    EXPECT_TRUE(world.node(verifier).evidence().empty())
        << "verifier " << verifier << ": "
        << world.node(verifier).evidence().front().to_string();
  }

  // Per-prefix accepted routes: input minimum + the prover prepended.
  const auto accepted_a = world.node(world.recipient).accepted_route(run.id_a());
  const auto accepted_b = world.node(world.recipient).accepted_route(run.id_b());
  ASSERT_TRUE(accepted_a.has_value());
  ASSERT_TRUE(accepted_b.has_value());
  EXPECT_EQ(accepted_a->path.length(), 3u);
  EXPECT_EQ(accepted_b->path.length(), 4u);
  EXPECT_EQ(accepted_a->prefix, run.handles.prefix);
  EXPECT_EQ(accepted_b->prefix, run.prefix_b);
}

TEST(MultiPrefixTest, TwoPrefixesSameEpochThroughEngine) {
  TwoPrefixRun run = run_two_prefixes({.seed = 22});
  Figure1World& world = *run.handles.world;

  engine::VerificationEngine engine({.workers = 8},
                                    &run.handles.keys->directory);
  engine::finalize_world_round(engine, world, run.id_a());
  const engine::EngineReport report =
      engine::finalize_world_round(engine, world, run.id_b());
  EXPECT_EQ(report.rounds, world.providers.size() + 1);
  EXPECT_EQ(report.violations, 0u);

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    EXPECT_TRUE(world.node(verifier).evidence().empty()) << verifier;
  }
  EXPECT_TRUE(
      world.node(world.recipient).accepted_route(run.id_a()).has_value());
  EXPECT_TRUE(
      world.node(world.recipient).accepted_route(run.id_b()).has_value());
}

// The legacy (per-prefix signed bundle) wire mode must isolate concurrent
// prefixes just as well — the fix is in the state keying, not the wire.
TEST(MultiPrefixTest, TwoPrefixesSameEpochLegacyWireMode) {
  TwoPrefixRun run =
      run_two_prefixes({.seed = 23, .aggregate_wire_bundles = false});
  Figure1World& world = *run.handles.world;

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(run.id_a());
    world.node(verifier).finalize_round(run.id_b());
    EXPECT_TRUE(world.node(verifier).evidence().empty()) << verifier;
  }
  const auto accepted_a = world.node(world.recipient).accepted_route(run.id_a());
  const auto accepted_b = world.node(world.recipient).accepted_route(run.id_b());
  ASSERT_TRUE(accepted_a.has_value());
  ASSERT_TRUE(accepted_b.has_value());
  EXPECT_EQ(accepted_a->path.length(), 3u);
  EXPECT_EQ(accepted_b->path.length(), 4u);
}

// Two provers (two Figure-1 neighborhoods, distinct ASNs) running the same
// epoch over the same prefix, drained through ONE engine batch: rounds are
// keyed and sharded by the full (prover, prefix, epoch) identity, so
// neither neighborhood sees the other's state or findings.
TEST(MultiPrefixTest, TwoProversSameEpochSamePrefixThroughOneEngine) {
  Figure1Handles first = make_figure1_world({.seed = 24});
  Figure1Handles second = make_figure1_world({.seed = 25, .asn_base = 1000});
  ASSERT_NE(first.world->prover, second.world->prover);
  ASSERT_EQ(first.prefix, second.prefix);

  const auto drive = [](Figure1Handles& handles,
                        const std::vector<std::size_t>& lengths) {
    Figure1World& world = *handles.world;
    world.sim.schedule(0, [&world, &handles, lengths] {
      for (std::size_t i = 0; i < world.providers.size(); ++i) {
        world.node(world.providers[i])
            .provide_input(world.sim.transport(), 1, handles.prefix,
                           route_len(lengths[i], world.providers[i],
                                     handles.prefix));
      }
      world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
    });
    world.sim.run();
  };
  drive(first, {4, 2, 6});
  drive(second, {5, 7, 3});

  engine::VerificationEngine engine({.workers = 8}, &first.keys->directory);
  engine::finalize_world_round(engine, *first.world, first.round_id(1));
  engine::finalize_world_round(engine, *second.world, second.round_id(1));

  for (Figure1Handles* handles : {&first, &second}) {
    Figure1World& world = *handles->world;
    std::vector<bgp::AsNumber> verifiers = world.providers;
    verifiers.push_back(world.recipient);
    for (const bgp::AsNumber verifier : verifiers) {
      EXPECT_TRUE(world.node(verifier).evidence().empty()) << verifier;
    }
  }
  const auto accepted_first =
      first.world->node(first.world->recipient).accepted_route(first.round_id(1));
  const auto accepted_second = second.world->node(second.world->recipient)
                                   .accepted_route(second.round_id(1));
  ASSERT_TRUE(accepted_first.has_value());
  ASSERT_TRUE(accepted_second.has_value());
  EXPECT_EQ(accepted_first->path.length(), 3u);   // min 2 + prover
  EXPECT_EQ(accepted_second->path.length(), 4u);  // min 3 + prover
}

// A Byzantine prover equivocating across a two-prefix window is caught per
// round, and the root evidence convinces the auditor.
TEST(MultiPrefixTest, EquivocationAcrossTwoPrefixWindowIsProvable) {
  Figure1Setup setup{.seed = 26, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  TwoPrefixRun run = run_two_prefixes(setup);
  Figure1World& world = *run.handles.world;

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  const Auditor auditor(&run.handles.keys->directory);
  std::size_t equivocations = 0;
  std::size_t provable = 0;
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(run.id_a());
    world.node(verifier).finalize_round(run.id_b());
    // Providers fed the variant bundle also (correctly) flag the mismatched
    // openings, so the log is a mix; every equivocation item must accuse
    // the prover and convince the auditor from the two signed roots alone.
    for (const Evidence& item : world.node(verifier).evidence()) {
      EXPECT_EQ(item.accused, world.prover);
      if (item.kind != ViolationKind::kEquivocation) continue;
      equivocations += 1;
      if (auditor.validate(item)) provable += 1;
    }
  }
  EXPECT_GT(equivocations, 0u);
  EXPECT_EQ(provable, equivocations);
}

// An honest epoch with TWO aggregation windows (the second prefix started
// after the first window closed) legitimately carries two different signed
// roots; that must neither produce evidence nor trigger the full-bundle
// escalation fallback.
TEST(MultiPrefixTest, HonestTwoWindowEpochDoesNotEscalate) {
  Figure1Handles handles = make_figure1_world({.seed = 29});
  Figure1World& world = *handles.world;
  const bgp::Ipv4Prefix prefix_b = bgp::Ipv4Prefix::parse("198.51.100.0/24");

  world.sim.schedule(0, [&world, &handles] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(3 + i, world.providers[i], handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  // Second window: starts well after the first 10 ms window closed.
  world.sim.schedule(50'000, [&world, &prefix_b] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, prefix_b,
                         route_len(2 + i, world.providers[i], prefix_b));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, prefix_b);
  });
  world.sim.run();

  const ProtocolId id_a = handles.round_id(1);
  const ProtocolId id_b{
      .prover = world.prover, .prefix = prefix_b, .epoch = 1};
  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(id_a);
    world.node(verifier).finalize_round(id_b);
    EXPECT_TRUE(world.node(verifier).evidence().empty())
        << "verifier " << verifier << ": "
        << world.node(verifier).evidence().front().to_string();
  }
  EXPECT_TRUE(world.node(world.recipient).accepted_route(id_a).has_value());
  EXPECT_TRUE(world.node(world.recipient).accepted_route(id_b).has_value());
  // No full-bundle gossip happened: the escalation fallback stayed cold.
  // (Exact channel name — "pvr.gossip.root" is a different channel.)
  const auto it = world.sim.stats().per_channel.find(kGossipChannel);
  EXPECT_TRUE(it == world.sim.stats().per_channel.end() ||
              it->second.messages_sent == 0);
}

// A prover that equivocates by splitting its victims across DIFFERENT
// batch numbers never signs two roots for one window, so the root-level
// conflict check alone cannot fire. The node must escalate to full-bundle
// gossip once two distinct roots exist for the epoch, restoring per-round
// provable equivocation for every verifier.
TEST(MultiPrefixTest, BatchSplitEquivocationEscalatesToProvableEvidence) {
  Figure1Handles handles =
      make_figure1_world({.seed = 27, .provider_count = 4});
  Figure1World& world = *handles.world;
  const ProtocolId id = handles.round_id(1);
  const auto& prover_key = handles.keys->private_keys.at(world.prover).priv;

  // Two conflicting signed bundles for the same round (fresh commitment
  // nonces), each wrapped in its own aggregation window: batch 0 vs 1.
  const std::map<bgp::AsNumber, std::optional<SignedMessage>> no_inputs;
  crypto::Drbg rng_a(71, "batch-split-a");
  crypto::Drbg rng_b(72, "batch-split-b");
  const ProverResult variant_a = run_prover(
      id, OperatorKind::kMinimum, no_inputs, 16, prover_key, rng_a, {});
  const ProverResult variant_b = run_prover(
      id, OperatorKind::kMinimum, no_inputs, 16, prover_key, rng_b, {});
  ASSERT_NE(variant_a.signed_bundle.payload, variant_b.signed_bundle.payload);
  const std::vector<SignedMessage> bundles_a = {variant_a.signed_bundle};
  const std::vector<SignedMessage> bundles_b = {variant_b.signed_bundle};
  const AggregatedBundleMessage agg_a =
      aggregate_signed_bundles(world.prover, 1, /*batch=*/0, bundles_a,
                               prover_key);
  const AggregatedBundleMessage agg_b =
      aggregate_signed_bundles(world.prover, 1, /*batch=*/1, bundles_b,
                               prover_key);

  world.sim.schedule(0, [&world, &agg_a, &agg_b] {
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.sim.send(net::Message{
          .from = world.prover,
          .to = world.providers[i],
          .channel = kBundleAggChannel,
          .payload = (i < world.providers.size() / 2 ? agg_a : agg_b).encode()});
    }
    world.sim.send(net::Message{.from = world.prover,
                                .to = world.recipient,
                                .channel = kBundleAggChannel,
                                .payload = agg_b.encode()});
  });
  world.sim.run();

  std::vector<bgp::AsNumber> verifiers = world.providers;
  verifiers.push_back(world.recipient);
  const Auditor auditor(&handles.keys->directory);
  for (const bgp::AsNumber verifier : verifiers) {
    world.node(verifier).finalize_round(id);
    std::size_t provable_equivocations = 0;
    for (const Evidence& item : world.node(verifier).evidence()) {
      if (item.kind == ViolationKind::kEquivocation &&
          auditor.validate(item)) {
        provable_equivocations += 1;
      }
    }
    EXPECT_GT(provable_equivocations, 0u) << "verifier " << verifier;
  }
}

// A forged bundle (claimed prover signer, garbage signature) injected
// before the real one must neither claim the first-seen bundle slot nor
// produce evidence: the honest round's route is still accepted.
TEST(MultiPrefixTest, ForgedBundleCannotPoisonHonestRound) {
  Figure1Handles handles = make_figure1_world({.seed = 31});
  Figure1World& world = *handles.world;
  const ProtocolId id = handles.round_id(1);

  CommitmentBundle forged_bundle;
  forged_bundle.id = id;
  forged_bundle.op = OperatorKind::kMinimum;
  forged_bundle.max_len = 16;
  SignedMessage forged{.signer = world.prover,
                       .payload = forged_bundle.encode(),
                       .signature = {0xde, 0xad, 0xbe, 0xef}};

  world.sim.schedule(0, [&world, &handles, &forged] {
    // The forgery races ahead of the honest protocol flow.
    world.sim.send(net::Message{.from = world.providers[0],
                                .to = world.recipient,
                                .channel = kBundleChannel,
                                .payload = forged.encode()});
    const std::vector<std::size_t> lengths = {4, 2, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i],
                                   handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });
  world.sim.run();

  world.node(world.recipient).finalize_round(id);
  EXPECT_TRUE(world.node(world.recipient).evidence().empty());
  const auto accepted = world.node(world.recipient).accepted_route(id);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->path.length(), 3u);
}

// An opening whose bundle round is NOT in the window's signed prefix list
// must be rejected: otherwise a prover could hide a round inside the tree
// while omitting it from every window's list, and no two windows would
// ever provably conflict over it.
TEST(MultiPrefixTest, OpeningOutsideSignedPrefixListIsRejected) {
  Figure1Handles handles = make_figure1_world({.seed = 30});
  Figure1World& world = *handles.world;
  const ProtocolId id = handles.round_id(1);
  const auto& prover_key = handles.keys->private_keys.at(world.prover).priv;

  const std::map<bgp::AsNumber, std::optional<SignedMessage>> no_inputs;
  crypto::Drbg rng(73, "hidden-prefix");
  const ProverResult result = run_prover(
      id, OperatorKind::kMinimum, no_inputs, 16, prover_key, rng, {});

  // A properly aggregated message verifies; the same message with the
  // round's prefix swapped out of the signed list must not.
  const std::vector<SignedMessage> bundles = {result.signed_bundle};
  const AggregatedBundleMessage honest =
      aggregate_signed_bundles(world.prover, 1, 0, bundles, prover_key);
  const AggregatedBundle honest_root =
      AggregatedBundle::decode(honest.signed_root.payload);
  ASSERT_TRUE(verify_signed_opening(honest_root, honest.openings[0]));

  AggregatedBundle hiding_root = honest_root;
  hiding_root.prefixes = {bgp::Ipv4Prefix::parse("198.51.100.0/24")};
  EXPECT_FALSE(verify_signed_opening(hiding_root, honest.openings[0]));

  // End to end: a node receiving the hiding window stashes nothing for the
  // round, so nothing is accepted and no bundle state exists to verify.
  AggregatedBundleMessage hiding = honest;
  hiding.signed_root =
      sign_message(world.prover, prover_key, hiding_root.encode());
  world.sim.schedule(0, [&world, &hiding] {
    world.sim.send(net::Message{.from = world.prover,
                                .to = world.recipient,
                                .channel = kBundleAggChannel,
                                .payload = hiding.encode()});
  });
  world.sim.run();
  world.node(world.recipient).finalize_round(id);
  EXPECT_FALSE(world.node(world.recipient).accepted_route(id).has_value());
  EXPECT_TRUE(world.node(world.recipient).evidence().empty());
}

// A verifier whose direct agg message is lost must still prove root
// equivocation it has seen via gossip alone: roots for the round's
// (prover, epoch) attach at finalize even without a delivered window.
TEST(MultiPrefixTest, OrphanedRoundStillProvesGossipedRootConflict) {
  Figure1Setup setup{.seed = 28, .provider_count = 4};
  setup.misbehavior = {.equivocate = true};
  Figure1Handles handles = make_figure1_world(setup);
  Figure1World& world = *handles.world;

  world.sim.schedule(0, [&world, &handles] {
    const std::vector<std::size_t> lengths = {3, 4, 5, 6};
    for (std::size_t i = 0; i < world.providers.size(); ++i) {
      world.node(world.providers[i])
          .provide_input(world.sim.transport(), 1, handles.prefix,
                         route_len(lengths[i], world.providers[i],
                                   handles.prefix));
    }
    world.node(world.prover).start_round(world.sim.transport(), 1, handles.prefix);
  });

  // Cut the prover->providers[3] link before the prover's window closes,
  // so that node gets neither its agg message nor reveals — only gossip.
  world.sim.schedule(5'000, [&world] {
    world.sim.disconnect(world.prover, world.providers[3]);
  });
  // The prover throws mid-batch when it hits the severed link; resume the
  // simulator so the deliveries already queued (aggs to the first three
  // providers, and their gossip) still dispatch.
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      world.sim.run();
      break;
    } catch (const std::logic_error&) {
      // expected: the prover sent on the severed link
    }
  }

  PvrNode& orphan = world.node(world.providers[3]);
  orphan.finalize_round(handles.round_id(1));
  const Auditor auditor(&handles.keys->directory);
  bool provable_equivocation = false;
  for (const Evidence& item : orphan.evidence()) {
    if (item.kind == ViolationKind::kEquivocation && auditor.validate(item)) {
      provable_equivocation = true;
    }
  }
  EXPECT_TRUE(provable_equivocation);
}

}  // namespace
}  // namespace pvr::core
