#include "core/min_protocol.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace pvr::core {
namespace {

constexpr bgp::AsNumber kProver = 100;
constexpr bgp::AsNumber kRecipient = 200;
constexpr bgp::AsNumber kN1 = 301;
constexpr bgp::AsNumber kN2 = 302;
constexpr bgp::AsNumber kN3 = 303;
constexpr std::uint32_t kMaxLen = 8;

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber origin_as) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(origin_as);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(5000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = origin_as,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

// Shared fixture: keys for the five participants plus canonical inputs
// (N1: length 3, N2: length 2, N3: nothing).
class MinProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    crypto::Drbg rng(7, "min-protocol-keys");
    keys_ = new AsKeyPairs(
        generate_keys({kProver, kRecipient, kN1, kN2, kN3}, rng, 512));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  static const AsKeyPairs& keys() { return *keys_; }
  static const KeyDirectory& directory() { return keys_->directory; }
  static const crypto::RsaPrivateKey& key_of(bgp::AsNumber asn) {
    return keys_->private_keys.at(asn).priv;
  }

  [[nodiscard]] static ProtocolId round_id(std::uint64_t epoch = 1) {
    return {.prover = kProver,
            .prefix = bgp::Ipv4Prefix::parse("203.0.113.0/24"),
            .epoch = epoch};
  }

  [[nodiscard]] static SignedMessage signed_input(bgp::AsNumber provider,
                                                  std::size_t length,
                                                  std::uint64_t epoch = 1) {
    const InputAnnouncement announcement{
        .id = round_id(epoch),
        .provider = provider,
        .route = route_len(length, provider),
    };
    return sign_message(provider, key_of(provider), announcement.encode());
  }

  // Canonical input set: N1 len 3, N2 len 2 (the minimum), N3 silent.
  [[nodiscard]] static std::map<bgp::AsNumber, std::optional<SignedMessage>>
  canonical_inputs() {
    return {{kN1, signed_input(kN1, 3)},
            {kN2, signed_input(kN2, 2)},
            {kN3, std::nullopt}};
  }

  [[nodiscard]] static ProverResult run(const ProverMisbehavior& misbehavior = {},
                                        OperatorKind op = OperatorKind::kMinimum) {
    crypto::Drbg rng(99, "min-protocol-prover");
    return run_prover(round_id(), op, canonical_inputs(), kMaxLen,
                      key_of(kProver), rng, misbehavior);
  }

  [[nodiscard]] static InputAnnouncement own_input_of(bgp::AsNumber provider,
                                                      std::size_t length) {
    return {.id = round_id(), .provider = provider,
            .route = route_len(length, provider)};
  }

  // Runs both verifier roles over a prover result; returns all evidence.
  [[nodiscard]] static std::vector<Evidence> verify_everything(
      const ProverResult& result) {
    std::vector<Evidence> all;
    for (const auto& [provider, length] :
         std::vector<std::pair<bgp::AsNumber, std::size_t>>{{kN1, 3}, {kN2, 2}}) {
      const auto it = result.provider_reveals.find(provider);
      auto found = verify_as_provider(
          directory(), provider, own_input_of(provider, length),
          result.signed_bundle,
          it == result.provider_reveals.end() ? nullptr : &it->second);
      all.insert(all.end(), found.begin(), found.end());
    }
    auto found = verify_as_recipient(directory(), kRecipient,
                                     result.signed_bundle,
                                     &result.recipient_reveal,
                                     &result.export_statement);
    all.insert(all.end(), found.begin(), found.end());
    return all;
  }

  [[nodiscard]] static bool detected(const std::vector<Evidence>& evidence,
                                     ViolationKind kind) {
    return std::any_of(evidence.begin(), evidence.end(),
                       [&](const Evidence& e) { return e.kind == kind; });
  }

 private:
  static AsKeyPairs* keys_;
};

AsKeyPairs* MinProtocolTest::keys_ = nullptr;

// ---- compute_bits ----

TEST(ComputeBitsTest, MinimumBitsAreCumulative) {
  const std::vector<bgp::Route> inputs = {route_len(3, 1), route_len(5, 2)};
  const std::vector<bool> bits =
      compute_bits(OperatorKind::kMinimum, inputs, 8);
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  true,  true, true};
  EXPECT_EQ(bits, expected);
}

TEST(ComputeBitsTest, EmptyInputsAllZero) {
  const std::vector<bool> bits = compute_bits(OperatorKind::kMinimum, {}, 4);
  EXPECT_EQ(bits, std::vector<bool>(4, false));
}

TEST(ComputeBitsTest, OverlongInputIgnored) {
  const std::vector<bool> bits =
      compute_bits(OperatorKind::kMinimum, {route_len(9, 1)}, 4);
  EXPECT_EQ(bits, std::vector<bool>(4, false));
}

TEST(ComputeBitsTest, ExistentialSingleBit) {
  EXPECT_EQ(compute_bits(OperatorKind::kExistential, {route_len(3, 1)}, 8),
            std::vector<bool>{true});
  EXPECT_EQ(compute_bits(OperatorKind::kExistential, {}, 8),
            std::vector<bool>{false});
}

// ---- Wire round trips ----

TEST_F(MinProtocolTest, WirePayloadsRoundTrip) {
  const ProverResult result = run();
  const CommitmentBundle bundle =
      CommitmentBundle::decode(result.signed_bundle.payload);
  EXPECT_EQ(bundle.id, round_id());
  EXPECT_EQ(bundle.max_len, kMaxLen);
  EXPECT_EQ(bundle.bits.size(), kMaxLen);
  EXPECT_EQ(CommitmentBundle::decode(bundle.encode()).bits, bundle.bits);

  const RevealToProvider reveal = RevealToProvider::decode(
      result.provider_reveals.at(kN1).payload);
  EXPECT_EQ(reveal.provider, kN1);
  EXPECT_EQ(reveal.bit_index, 3u);
  EXPECT_EQ(RevealToProvider::decode(reveal.encode()).bit_index, 3u);

  const RevealToRecipient recipient =
      RevealToRecipient::decode(result.recipient_reveal.payload);
  EXPECT_EQ(recipient.openings.size(), kMaxLen);

  const ExportStatement statement =
      ExportStatement::decode(result.export_statement.payload);
  EXPECT_TRUE(statement.has_route);
  const ExportStatement redecoded = ExportStatement::decode(statement.encode());
  EXPECT_EQ(redecoded.route, statement.route);
  ASSERT_TRUE(redecoded.provenance.has_value());
}

// ---- Honest prover: Accuracy ----

TEST_F(MinProtocolTest, HonestProverPassesAllChecks) {
  const ProverResult result = run();
  EXPECT_TRUE(verify_everything(result).empty());
  // Honest output is N2's length-2 route.
  ASSERT_TRUE(result.honest_output.has_value());
  EXPECT_EQ(result.honest_output->path.length(), 2u);
  // The exported route is that route with the prover prepended.
  const ExportStatement statement =
      ExportStatement::decode(result.export_statement.payload);
  EXPECT_EQ(statement.route.path.length(), 3u);
  EXPECT_EQ(statement.route.path.first(), kProver);
}

TEST_F(MinProtocolTest, HonestExistentialPassesAllChecks) {
  const ProverResult result = run({}, OperatorKind::kExistential);
  EXPECT_TRUE(verify_everything(result).empty());
}

TEST_F(MinProtocolTest, HonestEmptyRoundExportsNothing) {
  crypto::Drbg rng(1, "empty-round");
  const ProverResult result =
      run_prover(round_id(), OperatorKind::kMinimum,
                 {{kN1, std::nullopt}, {kN2, std::nullopt}}, kMaxLen,
                 key_of(kProver), rng, {});
  const ExportStatement statement =
      ExportStatement::decode(result.export_statement.payload);
  EXPECT_FALSE(statement.has_route);
  auto found = verify_as_recipient(directory(), kRecipient, result.signed_bundle,
                                   &result.recipient_reveal,
                                   &result.export_statement);
  EXPECT_TRUE(found.empty());
}

// ---- Detection matrix: every misbehavior class is caught ----

TEST_F(MinProtocolTest, DetectsNonMinimalExport) {
  const ProverResult result = run({.export_nonminimal = true});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kOutputNotMinimal));
}

TEST_F(MinProtocolTest, DetectsNonMinimalExportWithForgedBits) {
  // Bits forged to match the lie: B's checks pass, but the provider with
  // the shorter route sees its bit opened to 0.
  const ProverResult result =
      run({.export_nonminimal = true, .bits_match_lie = true});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kBitNotSet));
  // And the detecting neighbor is N2 (the one whose promise was broken).
  const auto it = std::find_if(
      evidence.begin(), evidence.end(),
      [](const Evidence& e) { return e.kind == ViolationKind::kBitNotSet; });
  ASSERT_NE(it, evidence.end());
  EXPECT_EQ(it->reporter, kN2);
  EXPECT_EQ(it->accused, kProver);
}

TEST_F(MinProtocolTest, DetectsSuppressedExport) {
  const ProverResult result = run({.suppress_export = true});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kSuppressedOutput));
}

TEST_F(MinProtocolTest, DetectsFabricatedRoute) {
  const ProverResult result = run({.fabricate_route = true});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kOutputWithoutInput));
}

TEST_F(MinProtocolTest, DetectsNonMonotoneBits) {
  const ProverResult result = run({.nonmonotone_bits = true});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kNonMonotoneBits));
}

TEST_F(MinProtocolTest, DetectsWrongOpening) {
  const ProverResult result = run({.wrong_opening_for = kN1});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kBadOpening));
}

TEST_F(MinProtocolTest, DetectsSkippedReveal) {
  const ProverResult result = run({.skip_reveal_for = kN2});
  const auto evidence = verify_everything(result);
  EXPECT_TRUE(detected(evidence, ViolationKind::kMissingReveal));
}

TEST_F(MinProtocolTest, DetectsEquivocation) {
  const ProverResult result = run({.equivocate = true});
  ASSERT_TRUE(result.equivocating_bundle.has_value());
  const auto conflict = check_equivocation(
      directory(), kN1, result.signed_bundle, *result.equivocating_bundle);
  ASSERT_TRUE(conflict.has_value());
  EXPECT_EQ(conflict->kind, ViolationKind::kEquivocation);
  EXPECT_EQ(conflict->accused, kProver);
}

TEST_F(MinProtocolTest, NoFalseEquivocationOnIdenticalBundles) {
  const ProverResult result = run();
  EXPECT_FALSE(check_equivocation(directory(), kN1, result.signed_bundle,
                                  result.signed_bundle)
                   .has_value());
}

TEST_F(MinProtocolTest, EquivocationRequiresValidSignatures) {
  const ProverResult result = run({.equivocate = true});
  SignedMessage forged = *result.equivocating_bundle;
  forged.signature[0] ^= 1;
  EXPECT_FALSE(check_equivocation(directory(), kN1, result.signed_bundle, forged)
                   .has_value());
}

// ---- Tampered-message handling ----

TEST_F(MinProtocolTest, TamperedBundleFlaggedAsBadSignature) {
  ProverResult result = run();
  result.signed_bundle.payload[20] ^= 1;
  const auto evidence =
      verify_as_provider(directory(), kN1, own_input_of(kN1, 3),
                         result.signed_bundle, nullptr);
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence.front().kind, ViolationKind::kBadSignature);
}

TEST_F(MinProtocolTest, ProviderOutsideDomainChecksNothing) {
  // A provider whose route is longer than max_len is outside the promise.
  const ProverResult result = run();
  const auto evidence = verify_as_provider(
      directory(), kN3, own_input_of(kN3, kMaxLen + 5), result.signed_bundle,
      nullptr);
  EXPECT_TRUE(evidence.empty());
}

TEST_F(MinProtocolTest, SilentProviderChecksNothing) {
  const ProverResult result = run();
  const auto evidence = verify_as_provider(directory(), kN3, std::nullopt,
                                           result.signed_bundle, nullptr);
  EXPECT_TRUE(evidence.empty());
}

// ---- Confidentiality (what flows to whom) ----

TEST_F(MinProtocolTest, ProviderRevealLeaksOnlyOneBit) {
  // The reveal to Ni contains exactly the opening of b_{|r_i|} — one bit —
  // and nothing derived from other providers' routes.
  const ProverResult result = run();
  const RevealToProvider reveal =
      RevealToProvider::decode(result.provider_reveals.at(kN1).payload);
  EXPECT_EQ(reveal.opening.value.size(), 1u);
  EXPECT_EQ(reveal.bit_index, 3u);  // N1's own route length, nothing else
  // No reveal at all goes to the silent provider.
  EXPECT_FALSE(result.provider_reveals.contains(kN3));
}

TEST_F(MinProtocolTest, RecipientLearnsOnlyBitsAndChosenRoute) {
  const ProverResult result = run();
  const RevealToRecipient reveal =
      RevealToRecipient::decode(result.recipient_reveal.payload);
  // L single-bit openings; the recipient cannot reconstruct which neighbor
  // provided what, only the length profile the promise already implies.
  for (const auto& opening : reveal.openings) {
    EXPECT_EQ(opening.value.size(), 1u);
  }
  const ExportStatement statement =
      ExportStatement::decode(result.export_statement.payload);
  // Provenance names the winning provider — exactly what the BGP AS path
  // already reveals (the paper's confidentiality baseline).
  ASSERT_TRUE(statement.provenance.has_value());
  EXPECT_EQ(statement.provenance->signer, kN2);
}

}  // namespace
}  // namespace pvr::core
