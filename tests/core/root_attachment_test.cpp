// Regression coverage for indexed root attachment: a node with thousands
// of simultaneously open rounds must attach a late-gossiped aggregation
// root to exactly the rounds its signed window claims (one map lookup per
// claimed prefix — the pre-index code scanned every open round per root),
// and a round that did not exist when its roots arrived must still prove
// the conflict at finalize (attach_root creates the round state on
// arrival; the old finalize-time decode scan over every seen root is
// gone — it was O(windows) per round, unusable on long online traces).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/evidence.h"
#include "core/pvr_speaker.h"

namespace pvr::core {
namespace {

constexpr std::size_t kOpenRounds = 1200;
constexpr std::size_t kTargetIndex = 537;

[[nodiscard]] bgp::Ipv4Prefix open_prefix(std::size_t index) {
  return bgp::Ipv4Prefix(
      0x0A000000u + (static_cast<std::uint32_t>(index) << 8), 24);
}

struct RootConflictWorld {
  Figure1Handles handles;
  ProtocolId target_id;
  ProtocolId orphan_id;
};

// Opens kOpenRounds rounds on providers[0] (bookkeeping-only inputs, so an
// unserved round finalizes clean), then gossips TWO conflicting signed
// roots whose window claims only the target round's prefix and one orphan
// prefix that has no open round at all.
[[nodiscard]] RootConflictWorld run_root_conflict_world() {
  RootConflictWorld out{.handles = make_figure1_world({.seed = 41}),
                        .target_id = {},
                        .orphan_id = {}};
  Figure1World& world = *out.handles.world;
  const bgp::AsNumber observer = world.providers[0];
  const auto& prover_key =
      out.handles.keys->private_keys.at(world.prover).priv;

  out.target_id = ProtocolId{.prover = world.prover,
                             .prefix = open_prefix(kTargetIndex),
                             .epoch = 1};
  out.orphan_id = ProtocolId{.prover = world.prover,
                             .prefix = bgp::Ipv4Prefix(0x0B000000u, 24),
                             .epoch = 1};

  // Open rounds are created by explicit "I provide nothing" bookkeeping —
  // no signatures, so opening thousands stays cheap.
  for (std::size_t i = 0; i < kOpenRounds; ++i) {
    world.node(observer).provide_input(world.sim.transport(), 1, open_prefix(i),
                                       std::nullopt);
  }

  // Two conflicting windows (same epoch, same batch, fresh commitment
  // nonces) covering exactly (target, orphan).
  const std::map<bgp::AsNumber, std::optional<SignedMessage>> no_inputs;
  const auto make_window = [&](std::uint64_t rng_seed) {
    crypto::Drbg rng(rng_seed, "root-attach");
    const std::vector<SignedMessage> bundles = {
        run_prover(out.target_id, OperatorKind::kMinimum, no_inputs, 16,
                   prover_key, rng, {})
            .signed_bundle,
        run_prover(out.orphan_id, OperatorKind::kMinimum, no_inputs, 16,
                   prover_key, rng, {})
            .signed_bundle};
    return aggregate_signed_bundles(world.prover, 1, /*batch=*/0, bundles,
                                    prover_key);
  };
  const AggregatedBundleMessage window_a = make_window(81);
  const AggregatedBundleMessage window_b = make_window(82);
  EXPECT_NE(window_a.signed_root.payload, window_b.signed_root.payload);

  // The roots arrive LATE (every round already open) via root gossip from
  // a peer: 1-byte hop count + the signed root envelope.
  const auto gossip_root = [](const SignedMessage& signed_root) {
    std::vector<std::uint8_t> payload{0};
    const std::vector<std::uint8_t> envelope = signed_root.encode();
    payload.insert(payload.end(), envelope.begin(), envelope.end());
    return payload;
  };
  world.sim.schedule(1000, [&world, observer, window_a, window_b,
                            gossip_root] {
    world.sim.send(net::Message{.from = world.providers[1],
                                .to = observer,
                                .channel = kGossipRootChannel,
                                .payload = gossip_root(window_a.signed_root)});
    world.sim.send(net::Message{.from = world.providers[1],
                                .to = observer,
                                .channel = kGossipRootChannel,
                                .payload = gossip_root(window_b.signed_root)});
  });
  world.sim.run();
  return out;
}

TEST(RootAttachmentTest, LateRootAttachesToExactlyItsRoundAmongThousands) {
  RootConflictWorld world = run_root_conflict_world();
  PvrNode& observer = world.handles.world->node(
      world.handles.world->providers[0]);

  // Finalize every open round. Only the target round's window was claimed
  // by the conflicting roots, so exactly ONE equivocation may surface — a
  // root leaking onto any of the other 1199 rounds would show up here.
  for (std::size_t i = 0; i < kOpenRounds; ++i) {
    observer.finalize_round(ProtocolId{
        .prover = world.handles.world->prover,
        .prefix = open_prefix(i),
        .epoch = 1});
  }
  ASSERT_EQ(observer.evidence().size(), 1u);
  const Evidence& conflict = observer.evidence().front();
  EXPECT_EQ(conflict.kind, ViolationKind::kEquivocation);
  EXPECT_EQ(conflict.accused, world.handles.world->prover);
  const Auditor auditor(&world.handles.keys->directory);
  EXPECT_TRUE(auditor.validate(conflict));
}

TEST(RootAttachmentTest, OrphanRoundStillGetsSeenRootsAtFinalize) {
  RootConflictWorld world = run_root_conflict_world();
  PvrNode& observer = world.handles.world->node(
      world.handles.world->providers[0]);

  // The orphan round did not exist when the roots arrived; attach_root
  // must have created its state and attached both covering roots then, so
  // finalize still proves the conflict without any deferred scan.
  observer.finalize_round(world.orphan_id);
  ASSERT_EQ(observer.evidence().size(), 1u);
  EXPECT_EQ(observer.evidence().front().kind, ViolationKind::kEquivocation);
  const Auditor auditor(&world.handles.keys->directory);
  EXPECT_TRUE(auditor.validate(observer.evidence().front()));
}

}  // namespace
}  // namespace pvr::core
