#include "core/graph_commitment.h"

#include <gtest/gtest.h>

namespace pvr::core {
namespace {

[[nodiscard]] bgp::Route route_len(std::size_t length, bgp::AsNumber next_hop) {
  std::vector<bgp::AsNumber> hops;
  hops.push_back(next_hop);
  for (std::size_t i = 1; i < length; ++i) {
    hops.push_back(static_cast<bgp::AsNumber>(7000 + i));
  }
  return bgp::Route{
      .prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
      .path = bgp::AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = 100,
      .med = 0,
      .origin = bgp::Origin::kIgp,
      .communities = {},
  };
}

// Figure-2 setup: primary N1 (=1), fallbacks {2, 3}, recipient 99.
struct Fig2Fixture {
  rfg::RouteFlowGraph graph = rfg::make_figure2_graph(1, {2, 3}, 99);
  std::map<rfg::VertexId, rfg::Value> values;
  crypto::Drbg rng{11, "graph-commit-test"};

  Fig2Fixture() {
    values = graph.evaluate({
        {rfg::input_variable_id(1), route_len(4, 1)},
        {rfg::input_variable_id(2), route_len(3, 2)},
        {rfg::input_variable_id(3), route_len(5, 3)},
    });
  }
};

TEST(PayloadEncodingTest, VariableRoundTrip) {
  const rfg::Value present = route_len(3, 1);
  const auto bytes = encode_variable_payload(present);
  const auto decoded = decode_variable_payload(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(**decoded, *present);

  const auto empty = decode_variable_payload(encode_variable_payload(std::nullopt));
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->has_value());
}

TEST(PayloadEncodingTest, OperatorRoundTrip) {
  const rfg::MinimumOperator op;
  const auto decoded = decode_operator_payload(encode_operator_payload(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "min");
}

TEST(PayloadEncodingTest, CrossDecodingFails) {
  const rfg::MinimumOperator op;
  EXPECT_FALSE(decode_variable_payload(encode_operator_payload(op)).has_value());
  EXPECT_FALSE(
      decode_operator_payload(encode_variable_payload(std::nullopt)).has_value());
}

TEST(PayloadEncodingTest, IdListRoundTrip) {
  const std::vector<rfg::VertexId> ids = {"var:r1", "op:min", "var:ro"};
  const auto decoded = decode_id_list(encode_id_list(ids));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ids);
  EXPECT_EQ(decode_id_list(encode_id_list({}))->size(), 0u);
}

TEST(GraphCommitmentTest, FullDisclosureVerifies) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  for (const rfg::VertexId& id : fixture.graph.variable_ids()) {
    EXPECT_TRUE(verify_vertex_disclosure(commitment.root(),
                                         commitment.disclose_full(id)))
        << id;
  }
  for (const rfg::VertexId& id : fixture.graph.operator_ids()) {
    EXPECT_TRUE(verify_vertex_disclosure(commitment.root(),
                                         commitment.disclose_full(id)))
        << id;
  }
}

TEST(GraphCommitmentTest, UnknownVertexThrows) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  EXPECT_THROW((void)commitment.disclose_full("var:nope"), std::out_of_range);
}

TEST(GraphCommitmentTest, TamperedRecordRejected) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  VertexDisclosure disclosure = commitment.disclose_full("var:v");
  disclosure.record.payload.digest[0] ^= 1;
  EXPECT_FALSE(verify_vertex_disclosure(commitment.root(), disclosure));
}

TEST(GraphCommitmentTest, RelabeledVertexRejected) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  VertexDisclosure disclosure = commitment.disclose_full("var:v");
  disclosure.vertex = "var:other";  // proof key no longer matches the label
  EXPECT_FALSE(verify_vertex_disclosure(commitment.root(), disclosure));
}

TEST(GraphCommitmentTest, SwappedOpeningRejected) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  VertexDisclosure a = commitment.disclose_full("var:r1");
  const VertexDisclosure b = commitment.disclose_full("var:r2");
  a.payload_opening = b.payload_opening;  // someone else's route value
  EXPECT_FALSE(verify_vertex_disclosure(commitment.root(), a));
}

TEST(GraphCommitmentTest, AccessPolicyGatesOpenings) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  rfg::AccessPolicy policy;
  policy.grant(42, "op:min", rfg::Component::kPayload);
  policy.grant(42, "op:min", rfg::Component::kPredecessors);

  const VertexDisclosure disclosure = commitment.disclose("op:min", 42, policy);
  EXPECT_TRUE(disclosure.payload_opening.has_value());
  EXPECT_TRUE(disclosure.predecessors_opening.has_value());
  EXPECT_FALSE(disclosure.successors_opening.has_value());
  // Structure-only disclosure still verifies against the root.
  EXPECT_TRUE(verify_vertex_disclosure(commitment.root(), disclosure));

  // A viewer with no grants gets a bare record (still verifiable).
  const VertexDisclosure bare = commitment.disclose("var:r1", 43, policy);
  EXPECT_FALSE(bare.payload_opening.has_value());
  EXPECT_TRUE(verify_vertex_disclosure(commitment.root(), bare));
}

TEST(DisclosedGraphTest, ReconstructsValuesAndStructure) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  DisclosedGraph view;
  EXPECT_TRUE(view.add(commitment.root(), commitment.disclose_full("var:r1")));
  EXPECT_TRUE(view.add(commitment.root(), commitment.disclose_full("op:min")));

  const auto value = view.variable_value("var:r1");
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->has_value());
  EXPECT_EQ((*value)->path.length(), 4u);

  EXPECT_EQ(view.operator_descriptor("op:min"), "min");
  const auto preds = view.predecessors("op:min");
  ASSERT_TRUE(preds.has_value());
  EXPECT_EQ(*preds, (std::vector<rfg::VertexId>{"var:r2", "var:r3"}));
  EXPECT_FALSE(view.has("var:ro"));
  EXPECT_FALSE(view.variable_value("var:ro").has_value());
}

TEST(DisclosedGraphTest, RejectsForgedDisclosure) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  VertexDisclosure forged = commitment.disclose_full("var:r1");
  forged.record.successors.digest[3] ^= 0x40;
  DisclosedGraph view;
  EXPECT_FALSE(view.add(commitment.root(), forged));
  EXPECT_EQ(view.size(), 0u);
}

// §3.5: B navigates the graph and statically checks the Fig. 2 promise.
TEST(DisclosedGraphTest, Figure2PromiseVerifiesStructurally) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);

  // B receives structural disclosures for every vertex (payloads only for
  // operators — B may not see the input route values).
  rfg::AccessPolicy policy;
  for (const rfg::VertexId& id : fixture.graph.variable_ids()) {
    policy.grant(99, id, rfg::Component::kPredecessors);
    policy.grant(99, id, rfg::Component::kSuccessors);
  }
  for (const rfg::VertexId& id : fixture.graph.operator_ids()) {
    policy.grant_all(99, id);
  }
  policy.grant(99, rfg::kOutputVariableId, rfg::Component::kPayload);

  DisclosedGraph view;
  for (const rfg::VertexId& id : fixture.graph.variable_ids()) {
    ASSERT_TRUE(view.add(commitment.root(), commitment.disclose(id, 99, policy)));
  }
  for (const rfg::VertexId& id : fixture.graph.operator_ids()) {
    ASSERT_TRUE(view.add(commitment.root(), commitment.disclose(id, 99, policy)));
  }

  const Promise promise{.type = PromiseType::kFallbackUnlessPrimaryShorter,
                        .subset = {2, 3},
                        .primary = 1};
  EXPECT_TRUE(view.implements_promise(promise, 99));

  // The same view does NOT support the stronger min-over-everything claim.
  EXPECT_FALSE(view.implements_promise(
      {.type = PromiseType::kShortestOfAll}, 99));

  // B never learned the hidden input values.
  EXPECT_FALSE(view.variable_value("var:r1").has_value());
  EXPECT_FALSE(view.variable_value("var:r2").has_value());
}

TEST(DisclosedGraphTest, MissingOperatorDisclosureFailsPromiseCheck) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  DisclosedGraph view;
  for (const rfg::VertexId& id : fixture.graph.variable_ids()) {
    ASSERT_TRUE(view.add(commitment.root(), commitment.disclose_full(id)));
  }
  // op:prefer withheld -> cannot establish the promise.
  ASSERT_TRUE(view.add(commitment.root(), commitment.disclose_full("op:min")));
  const Promise promise{.type = PromiseType::kFallbackUnlessPrimaryShorter,
                        .subset = {2, 3},
                        .primary = 1};
  EXPECT_FALSE(view.implements_promise(promise, 99));
}

TEST(GraphRootAnnouncementTest, EncodeDecodeRoundTrip) {
  Fig2Fixture fixture;
  const GraphCommitment commitment(fixture.graph, fixture.values, fixture.rng);
  const GraphRootAnnouncement announcement{
      .id = {.prover = 7,
             .prefix = bgp::Ipv4Prefix::parse("198.51.100.0/24"),
             .epoch = 3},
      .root = commitment.root()};
  const GraphRootAnnouncement decoded =
      GraphRootAnnouncement::decode(announcement.encode());
  EXPECT_EQ(decoded.id, announcement.id);
  EXPECT_EQ(decoded.root, announcement.root);
}

// Commitments must be fresh per epoch: same graph+values, different rng ->
// different root (hiding), but disclosures from one tree never verify
// against the other's root.
TEST(GraphCommitmentTest, RootsAreHidingAcrossRuns) {
  Fig2Fixture fixture;
  crypto::Drbg rng2(12, "graph-commit-test-2");
  const GraphCommitment first(fixture.graph, fixture.values, fixture.rng);
  const GraphCommitment second(fixture.graph, fixture.values, rng2);
  EXPECT_NE(first.root(), second.root());
  EXPECT_FALSE(
      verify_vertex_disclosure(second.root(), first.disclose_full("var:v")));
}

}  // namespace
}  // namespace pvr::core
