#include "bgp/policy.h"

#include <gtest/gtest.h>

namespace pvr::bgp {
namespace {

[[nodiscard]] Route make_route() {
  return Route{
      .prefix = Ipv4Prefix::parse("203.0.113.0/24"),
      .path = AsPath{65010, 65001},
      .next_hop = 65010,
      .local_pref = 100,
      .med = 0,
      .origin = Origin::kIgp,
      .communities = {make_community(65000, 1)},
  };
}

TEST(PolicyMatchTest, EmptyMatchMatchesEverything) {
  EXPECT_TRUE(PolicyMatch{}.matches(make_route(), 65010));
}

TEST(PolicyMatchTest, PrefixMatch) {
  PolicyMatch match{.prefix = Ipv4Prefix::parse("203.0.0.0/16")};
  EXPECT_TRUE(match.matches(make_route(), 65010));
  match.prefix = Ipv4Prefix::parse("198.51.0.0/16");
  EXPECT_FALSE(match.matches(make_route(), 65010));
}

TEST(PolicyMatchTest, NeighborMatch) {
  PolicyMatch match{.neighbor = 65010};
  EXPECT_TRUE(match.matches(make_route(), 65010));
  EXPECT_FALSE(match.matches(make_route(), 65011));
}

TEST(PolicyMatchTest, AsInPathMatch) {
  PolicyMatch match{.as_in_path = 65001};
  EXPECT_TRUE(match.matches(make_route(), 65010));
  match.as_in_path = 64999;
  EXPECT_FALSE(match.matches(make_route(), 65010));
}

TEST(PolicyMatchTest, CommunityMatch) {
  PolicyMatch match{.community = make_community(65000, 1)};
  EXPECT_TRUE(match.matches(make_route(), 65010));
  match.community = make_community(65000, 2);
  EXPECT_FALSE(match.matches(make_route(), 65010));
}

TEST(PolicyMatchTest, MaxPathLengthMatch) {
  PolicyMatch match{.max_path_length = 2};
  EXPECT_TRUE(match.matches(make_route(), 65010));
  match.max_path_length = 1;
  EXPECT_FALSE(match.matches(make_route(), 65010));
}

TEST(PolicyActionTest, RewritesAttributes) {
  PolicyAction action{
      .verdict = PolicyVerdict::kAccept,
      .set_local_pref = 300,
      .set_med = 42,
      .add_communities = {make_community(65000, 9)},
      .strip_communities = {make_community(65000, 1)},
  };
  const Route rewritten = action.apply(make_route());
  EXPECT_EQ(rewritten.local_pref, 300u);
  EXPECT_EQ(rewritten.med, 42u);
  EXPECT_TRUE(rewritten.has_community(make_community(65000, 9)));
  EXPECT_FALSE(rewritten.has_community(make_community(65000, 1)));
}

TEST(PolicyActionTest, AddCommunityIsIdempotent) {
  PolicyAction action{.add_communities = {make_community(65000, 1)}};
  const Route rewritten = action.apply(make_route());
  EXPECT_EQ(rewritten.communities.size(), 1u);
}

TEST(RoutePolicyTest, FirstMatchWins) {
  RoutePolicy policy(
      {PolicyRule{.name = "pin-lp",
                  .match = {.neighbor = 65010},
                  .action = {.set_local_pref = 250}},
       PolicyRule{.name = "reject-rest",
                  .match = {},
                  .action = {.verdict = PolicyVerdict::kReject}}});
  const auto accepted = policy.evaluate(make_route(), 65010);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->local_pref, 250u);
  EXPECT_FALSE(policy.evaluate(make_route(), 65099).has_value());
}

TEST(RoutePolicyTest, DefaultVerdictApplies) {
  const RoutePolicy accept_all;
  EXPECT_TRUE(accept_all.evaluate(make_route(), 1).has_value());
  const RoutePolicy reject_all({}, PolicyVerdict::kReject);
  EXPECT_FALSE(reject_all.evaluate(make_route(), 1).has_value());
}

TEST(RoutePolicyTest, RejectRuleStopsEvaluation) {
  RoutePolicy policy(
      {PolicyRule{.name = "block-as",
                  .match = {.as_in_path = 65001},
                  .action = {.verdict = PolicyVerdict::kReject}},
       PolicyRule{.name = "boost", .match = {}, .action = {.set_local_pref = 999}}});
  EXPECT_FALSE(policy.evaluate(make_route(), 65010).has_value());
}

}  // namespace
}  // namespace pvr::bgp
