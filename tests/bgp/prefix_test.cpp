#include "bgp/prefix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pvr::bgp {
namespace {

TEST(PrefixTest, ParseAndFormat) {
  const Ipv4Prefix p = Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_EQ(p.address(), 0x0a010000u);
  EXPECT_EQ(p.length(), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(PrefixTest, ParseZeroLength) {
  const Ipv4Prefix p = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(p.length(), 0);
  EXPECT_TRUE(p.contains_address(0xffffffff));
}

TEST(PrefixTest, ParseHostRoute) {
  const Ipv4Prefix p = Ipv4Prefix::parse("192.168.1.1/32");
  EXPECT_TRUE(p.contains_address(0xc0a80101));
  EXPECT_FALSE(p.contains_address(0xc0a80102));
}

TEST(PrefixTest, HostBitsClearedOnConstruction) {
  const Ipv4Prefix a = Ipv4Prefix::parse("10.1.2.3/16");
  const Ipv4Prefix b = Ipv4Prefix::parse("10.1.0.0/16");
  EXPECT_EQ(a, b);
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0.0"), std::invalid_argument);
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0/8"), std::invalid_argument);
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0.0.0/8"), std::invalid_argument);
  EXPECT_THROW((void)Ipv4Prefix::parse("256.0.0.0/8"), std::invalid_argument);
  EXPECT_THROW((void)Ipv4Prefix::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW((void)Ipv4Prefix::parse("a.b.c.d/8"), std::invalid_argument);
}

TEST(PrefixTest, Covers) {
  const Ipv4Prefix slash8 = Ipv4Prefix::parse("10.0.0.0/8");
  const Ipv4Prefix slash16 = Ipv4Prefix::parse("10.1.0.0/16");
  const Ipv4Prefix other = Ipv4Prefix::parse("11.0.0.0/8");
  EXPECT_TRUE(slash8.covers(slash16));
  EXPECT_FALSE(slash16.covers(slash8));
  EXPECT_TRUE(slash8.covers(slash8));
  EXPECT_FALSE(slash8.covers(other));
}

TEST(PrefixTest, DefaultRouteCoversEverything) {
  const Ipv4Prefix def = Ipv4Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(def.covers(Ipv4Prefix::parse("203.0.113.0/24")));
}

TEST(PrefixTest, Ordering) {
  EXPECT_LT(Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix::parse("11.0.0.0/8"));
  EXPECT_LT(Ipv4Prefix::parse("10.0.0.0/8"), Ipv4Prefix::parse("10.0.0.0/9"));
}

TEST(PrefixTest, EncodeDecodeRoundTrip) {
  const Ipv4Prefix p = Ipv4Prefix::parse("172.16.5.0/24");
  crypto::ByteWriter writer;
  p.encode(writer);
  crypto::ByteReader reader(writer.data());
  EXPECT_EQ(Ipv4Prefix::decode(reader), p);
}

TEST(PrefixTest, DecodeRejectsBadLength) {
  crypto::ByteWriter writer;
  writer.put_u32(0);
  writer.put_u8(40);
  crypto::ByteReader reader(writer.data());
  EXPECT_THROW((void)Ipv4Prefix::decode(reader), std::out_of_range);
}

}  // namespace
}  // namespace pvr::bgp
