#include "bgp/as_path.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pvr::bgp {
namespace {

TEST(AsPathTest, EmptyPath) {
  const AsPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.length(), 0u);
  EXPECT_THROW((void)path.first(), std::logic_error);
  EXPECT_THROW((void)path.origin(), std::logic_error);
}

TEST(AsPathTest, PrependBuildsPathVector) {
  AsPath path;
  path = path.prepended(65001);  // origin announces
  path = path.prepended(65002);  // transit prepends
  path = path.prepended(65003);
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.first(), 65003u);
  EXPECT_EQ(path.origin(), 65001u);
  EXPECT_EQ(path.to_string(), "65003 65002 65001");
}

TEST(AsPathTest, PrependDoesNotMutate) {
  const AsPath original{1, 2};
  const AsPath longer = original.prepended(3);
  EXPECT_EQ(original.length(), 2u);
  EXPECT_EQ(longer.length(), 3u);
}

TEST(AsPathTest, Contains) {
  const AsPath path{10, 20, 30};
  EXPECT_TRUE(path.contains(20));
  EXPECT_FALSE(path.contains(40));
}

TEST(AsPathTest, EncodeDecodeRoundTrip) {
  const AsPath path{7018, 3356, 65001};
  crypto::ByteWriter writer;
  path.encode(writer);
  crypto::ByteReader reader(writer.data());
  EXPECT_EQ(AsPath::decode(reader), path);
}

TEST(AsPathTest, EncodeDecodeEmpty) {
  const AsPath path;
  crypto::ByteWriter writer;
  path.encode(writer);
  crypto::ByteReader reader(writer.data());
  EXPECT_EQ(AsPath::decode(reader), path);
}

TEST(AsPathTest, OrderingIsLexicographic) {
  EXPECT_LT((AsPath{1, 2}), (AsPath{1, 3}));
  EXPECT_LT((AsPath{1}), (AsPath{1, 0}));
}

}  // namespace
}  // namespace pvr::bgp
