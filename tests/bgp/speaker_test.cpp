#include "bgp/speaker.h"

#include <gtest/gtest.h>

#include <memory>

namespace pvr::bgp {
namespace {

const Ipv4Prefix kPrefix = Ipv4Prefix::parse("203.0.113.0/24");

// Builds a simulator with one BgpSpeaker per AS in `graph`; `origin`
// originates kPrefix.
struct World {
  explicit World(const AsGraph& graph, AsNumber origin, std::uint64_t seed = 1)
      : sim(seed) {
    for (const AsNumber asn : graph.as_numbers()) {
      SpeakerConfig config{.asn = asn, .graph = &graph};
      if (asn == origin) config.originated = {kPrefix};
      sim.add_node(asn, std::make_unique<BgpSpeaker>(std::move(config)));
    }
    for (const AsNumber asn : graph.as_numbers()) {
      for (const AsNumber neighbor : graph.neighbors(asn)) {
        if (asn < neighbor) sim.connect(asn, neighbor, {.latency = 1000});
      }
    }
  }

  [[nodiscard]] BgpSpeaker& speaker(AsNumber asn) {
    return dynamic_cast<BgpSpeaker&>(sim.node(asn));
  }

  net::Simulator sim;
};

TEST(SpeakerTest, LinearChainPropagates) {
  // 1 -- 2 -- 3, all provider->customer down the chain (1 is 2's customer,
  // 2 is 3's customer): customer routes propagate everywhere.
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 3; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kProvider);  // 2 is 1's provider
  graph.add_link(2, 3, Relationship::kProvider);  // 3 is 2's provider

  World world(graph, /*origin=*/1);
  world.sim.run();

  const auto at2 = world.speaker(2).best(kPrefix);
  ASSERT_TRUE(at2.has_value());
  EXPECT_EQ(at2->path.hops(), (std::vector<AsNumber>{1}));

  const auto at3 = world.speaker(3).best(kPrefix);
  ASSERT_TRUE(at3.has_value());
  EXPECT_EQ(at3->path.hops(), (std::vector<AsNumber>{2, 1}));
}

TEST(SpeakerTest, ValleyFreeBlocksPeerToPeerTransit) {
  // 2 and 3 are peers; 1 is 2's peer as well. A route learned from peer 2
  // must not be re-exported to peer 3.
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 3; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kPeer);
  graph.add_link(2, 3, Relationship::kPeer);

  World world(graph, /*origin=*/1);
  world.sim.run();

  EXPECT_TRUE(world.speaker(2).best(kPrefix).has_value());
  EXPECT_FALSE(world.speaker(3).best(kPrefix).has_value());
}

TEST(SpeakerTest, CustomerRouteReachesPeersAndProviders) {
  // 1 is 2's customer; 2 peers with 3 and has provider 4. The customer
  // route must be exported to both.
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 4; ++asn) graph.add_as(asn);
  graph.add_link(2, 1, Relationship::kCustomer);
  graph.add_link(2, 3, Relationship::kPeer);
  graph.add_link(2, 4, Relationship::kProvider);

  World world(graph, /*origin=*/1);
  world.sim.run();

  EXPECT_TRUE(world.speaker(3).best(kPrefix).has_value());
  EXPECT_TRUE(world.speaker(4).best(kPrefix).has_value());
}

TEST(SpeakerTest, PrefersCustomerOverPeerOverProvider) {
  // AS 10 can reach the origin 1 via customer 2, peer 3, or provider 4,
  // all advertising equal-length paths.
  AsGraph graph;
  for (AsNumber asn : {1u, 2u, 3u, 4u, 10u}) graph.add_as(asn);
  graph.add_link(2, 1, Relationship::kCustomer);
  graph.add_link(3, 1, Relationship::kCustomer);
  graph.add_link(4, 1, Relationship::kCustomer);
  graph.add_link(10, 2, Relationship::kCustomer);  // 2 is 10's customer
  graph.add_link(10, 3, Relationship::kPeer);
  graph.add_link(10, 4, Relationship::kProvider);

  World world(graph, /*origin=*/1);
  world.sim.run();

  const auto best = world.speaker(10).best(kPrefix);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->next_hop, 2u);          // via the customer
  EXPECT_EQ(best->local_pref, 200u);      // customer local-pref
}

TEST(SpeakerTest, ShorterPathWinsWithinSameRelationship) {
  // Origin 1; AS 5 hears from customers 2 (direct: path "2 1") and
  // 4 (longer: "4 3 1").
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 5; ++asn) graph.add_as(asn);
  graph.add_link(2, 1, Relationship::kCustomer);
  graph.add_link(3, 1, Relationship::kCustomer);
  graph.add_link(4, 3, Relationship::kCustomer);
  graph.add_link(5, 2, Relationship::kCustomer);
  graph.add_link(5, 4, Relationship::kCustomer);

  World world(graph, /*origin=*/1);
  world.sim.run();

  const auto best = world.speaker(5).best(kPrefix);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->path.length(), 2u);
  EXPECT_EQ(best->next_hop, 2u);
}

TEST(SpeakerTest, LoopPreventionDiscardsOwnAsn) {
  // Triangle of mutual customers would loop without path checking.
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 3; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kProvider);
  graph.add_link(2, 3, Relationship::kProvider);
  graph.add_link(3, 1, Relationship::kProvider);

  World world(graph, /*origin=*/1);
  world.sim.run_until(10'000'000);
  // Convergence (no infinite loop) is the assertion; plus no route at 1
  // contains AS 1 in a received path.
  for (const Route& route : world.speaker(1).candidates(kPrefix)) {
    EXPECT_FALSE(route.path.contains(1));
  }
}

TEST(SpeakerTest, WithdrawPropagates) {
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 3; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kProvider);
  graph.add_link(2, 3, Relationship::kProvider);

  World world(graph, /*origin=*/1);
  world.sim.run();
  ASSERT_TRUE(world.speaker(3).best(kPrefix).has_value());

  // AS 2 stops hearing the route: simulate by 1 sending an explicit
  // withdraw to 2.
  world.sim.schedule_after(1000, [&] {
    world.sim.send({.from = 1,
                    .to = 2,
                    .channel = kUpdateChannel,
                    .payload = BgpUpdate{.withdraw = true, .prefix = kPrefix}
                                   .encode()});
  });
  world.sim.run();

  EXPECT_FALSE(world.speaker(2).best(kPrefix).has_value());
  EXPECT_FALSE(world.speaker(3).best(kPrefix).has_value());
}

TEST(SpeakerTest, ImportPolicyRejectionActsAsWithdraw) {
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 2; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kProvider);

  net::Simulator sim(1);
  SpeakerConfig origin_config{.asn = 1, .graph = &graph, .originated = {kPrefix}};
  sim.add_node(1, std::make_unique<BgpSpeaker>(std::move(origin_config)));

  SpeakerConfig filter_config{.asn = 2, .graph = &graph};
  filter_config.import_policy = RoutePolicy(
      {PolicyRule{.name = "reject-origin-1",
                  .match = {.as_in_path = 1},
                  .action = {.verdict = PolicyVerdict::kReject}}});
  sim.add_node(2, std::make_unique<BgpSpeaker>(std::move(filter_config)));
  sim.connect(1, 2, {.latency = 1000});
  sim.run();

  EXPECT_FALSE(dynamic_cast<BgpSpeaker&>(sim.node(2)).best(kPrefix).has_value());
}

TEST(SpeakerTest, ExportPolicyFiltersPerNeighbor) {
  // 2 learns from customer 1 but its export policy blocks neighbor 3.
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 3; ++asn) graph.add_as(asn);
  graph.add_link(2, 1, Relationship::kCustomer);
  graph.add_link(2, 3, Relationship::kCustomer);

  net::Simulator sim(1);
  SpeakerConfig origin_config{.asn = 1, .graph = &graph, .originated = {kPrefix}};
  sim.add_node(1, std::make_unique<BgpSpeaker>(std::move(origin_config)));

  SpeakerConfig transit_config{.asn = 2, .graph = &graph};
  transit_config.export_policy = RoutePolicy(
      {PolicyRule{.name = "block-3",
                  .match = {.neighbor = 3},
                  .action = {.verdict = PolicyVerdict::kReject}}});
  sim.add_node(2, std::make_unique<BgpSpeaker>(std::move(transit_config)));
  sim.add_node(3, std::make_unique<BgpSpeaker>(SpeakerConfig{.asn = 3, .graph = &graph}));
  sim.connect(1, 2, {.latency = 1000});
  sim.connect(2, 3, {.latency = 1000});
  sim.run();

  EXPECT_TRUE(dynamic_cast<BgpSpeaker&>(sim.node(2)).best(kPrefix).has_value());
  EXPECT_FALSE(dynamic_cast<BgpSpeaker&>(sim.node(3)).best(kPrefix).has_value());
}

TEST(SpeakerTest, GaoRexfordTopologyConverges) {
  crypto::Drbg rng(3, "speaker-gr");
  const AsGraph graph =
      generate_gao_rexford({.as_count = 40, .tier1_count = 4}, rng);
  World world(graph, /*origin=*/40);
  world.sim.run();

  // Every AS should have a route (the hierarchy is connected and the origin
  // is a stub customer, so valley-free export reaches everyone).
  std::size_t with_route = 0;
  for (const AsNumber asn : graph.as_numbers()) {
    if (asn == 40) continue;
    if (world.speaker(asn).best(kPrefix).has_value()) ++with_route;
  }
  EXPECT_EQ(with_route, graph.as_count() - 1);
}

TEST(SpeakerTest, ConstructorValidation) {
  AsGraph graph;
  graph.add_as(1);
  EXPECT_THROW(BgpSpeaker(SpeakerConfig{.asn = 1, .graph = nullptr}),
               std::invalid_argument);
  EXPECT_THROW(BgpSpeaker(SpeakerConfig{.asn = 2, .graph = &graph}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pvr::bgp
