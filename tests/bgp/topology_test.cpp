#include "bgp/topology.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

namespace pvr::bgp {
namespace {

TEST(RelationshipTest, ReverseIsInvolution) {
  for (Relationship r : {Relationship::kCustomer, Relationship::kProvider,
                         Relationship::kPeer}) {
    EXPECT_EQ(reverse(reverse(r)), r);
  }
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(RelationshipTest, ValleyFreeMatrix) {
  using enum Relationship;
  // Customer routes export everywhere.
  EXPECT_TRUE(valley_free_exportable(kCustomer, kCustomer));
  EXPECT_TRUE(valley_free_exportable(kCustomer, kPeer));
  EXPECT_TRUE(valley_free_exportable(kCustomer, kProvider));
  // Peer/provider routes export only to customers.
  EXPECT_TRUE(valley_free_exportable(kPeer, kCustomer));
  EXPECT_TRUE(valley_free_exportable(kProvider, kCustomer));
  EXPECT_FALSE(valley_free_exportable(kPeer, kPeer));
  EXPECT_FALSE(valley_free_exportable(kPeer, kProvider));
  EXPECT_FALSE(valley_free_exportable(kProvider, kPeer));
  EXPECT_FALSE(valley_free_exportable(kProvider, kProvider));
}

TEST(AsGraphTest, AddLinkSetsBothDirections) {
  AsGraph graph;
  graph.add_as(1);
  graph.add_as(2);
  graph.add_link(1, 2, Relationship::kCustomer);  // 2 is 1's customer
  EXPECT_EQ(graph.relationship(1, 2), Relationship::kCustomer);
  EXPECT_EQ(graph.relationship(2, 1), Relationship::kProvider);
  EXPECT_EQ(graph.link_count(), 1u);
}

TEST(AsGraphTest, RejectsSelfAndUnknown) {
  AsGraph graph;
  graph.add_as(1);
  EXPECT_THROW(graph.add_link(1, 1, Relationship::kPeer), std::invalid_argument);
  EXPECT_THROW(graph.add_link(1, 99, Relationship::kPeer), std::invalid_argument);
}

TEST(AsGraphTest, NeighborQueries) {
  AsGraph graph;
  for (AsNumber asn = 1; asn <= 4; ++asn) graph.add_as(asn);
  graph.add_link(1, 2, Relationship::kCustomer);
  graph.add_link(1, 3, Relationship::kProvider);
  graph.add_link(1, 4, Relationship::kPeer);
  EXPECT_EQ(graph.customers_of(1), std::vector<AsNumber>{2});
  EXPECT_EQ(graph.providers_of(1), std::vector<AsNumber>{3});
  EXPECT_EQ(graph.peers_of(1), std::vector<AsNumber>{4});
  EXPECT_EQ(graph.neighbors(1).size(), 3u);
  EXPECT_TRUE(graph.neighbors(99).empty());
  EXPECT_FALSE(graph.relationship(2, 3).has_value());
}

TEST(StarTopologyTest, MatchesFigure1) {
  const AsGraph graph = make_star_topology(100, 200, 300, 5);
  EXPECT_EQ(graph.as_count(), 7u);
  EXPECT_EQ(graph.relationship(100, 200), Relationship::kCustomer);
  for (AsNumber ni = 300; ni < 305; ++ni) {
    EXPECT_EQ(graph.relationship(100, ni), Relationship::kProvider) << ni;
  }
  // B and the N_i are not directly connected.
  EXPECT_FALSE(graph.relationship(200, 300).has_value());
}

class GaoRexfordTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GaoRexfordTest, GeneratesConnectedHierarchy) {
  crypto::Drbg rng(GetParam(), "topo-test");
  const GaoRexfordParams params{.as_count = GetParam(), .tier1_count = 4};
  const AsGraph graph = generate_gao_rexford(params, rng);
  EXPECT_EQ(graph.as_count(), GetParam());

  // Connectivity via BFS over all links.
  std::set<AsNumber> visited;
  std::vector<AsNumber> frontier = {1};
  visited.insert(1);
  while (!frontier.empty()) {
    const AsNumber current = frontier.back();
    frontier.pop_back();
    for (const AsNumber next : graph.neighbors(current)) {
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  EXPECT_EQ(visited.size(), GetParam());
}

TEST_P(GaoRexfordTest, NoProviderCyclesAmongNonTier1) {
  crypto::Drbg rng(GetParam() + 7, "topo-test");
  const GaoRexfordParams params{.as_count = GetParam(), .tier1_count = 4};
  const AsGraph graph = generate_gao_rexford(params, rng);

  // Provider edges always point from a later AS to an earlier AS in
  // generation order, so the customer->provider digraph is acyclic; verify
  // by checking that every provider of AS i has a smaller AS number.
  for (const AsNumber asn : graph.as_numbers()) {
    for (const AsNumber provider : graph.providers_of(asn)) {
      EXPECT_LT(provider, asn)
          << "provider edge violates generation order (cycle risk)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GaoRexfordTest,
                         ::testing::Values(4, 10, 50, 200));

TEST(GaoRexfordTest, DeterministicForSeed) {
  const GaoRexfordParams params{.as_count = 30, .tier1_count = 3};
  crypto::Drbg rng1(5, "topo");
  crypto::Drbg rng2(5, "topo");
  const AsGraph a = generate_gao_rexford(params, rng1);
  const AsGraph b = generate_gao_rexford(params, rng2);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (const AsNumber asn : a.as_numbers()) {
    EXPECT_EQ(a.neighbors(asn), b.neighbors(asn));
  }
}

TEST(GaoRexfordTest, RejectsBadParams) {
  crypto::Drbg rng(1, "topo");
  EXPECT_THROW((void)generate_gao_rexford({.as_count = 3, .tier1_count = 5}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)generate_gao_rexford({.as_count = 3, .tier1_count = 0}, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace pvr::bgp
