#include "bgp/decision.h"

#include <gtest/gtest.h>

#include <vector>

namespace pvr::bgp {
namespace {

[[nodiscard]] Route route_with(std::uint32_t local_pref, std::size_t path_len,
                               Origin origin = Origin::kIgp,
                               std::uint32_t med = 0, AsNumber next_hop = 1) {
  std::vector<AsNumber> hops;
  for (std::size_t i = 0; i < path_len; ++i) {
    hops.push_back(static_cast<AsNumber>(100 + i));
  }
  return Route{
      .prefix = Ipv4Prefix::parse("198.51.100.0/24"),
      .path = AsPath(std::move(hops)),
      .next_hop = next_hop,
      .local_pref = local_pref,
      .med = med,
      .origin = origin,
      .communities = {},
  };
}

TEST(DecisionTest, EmptyCandidatesGiveNoRoute) {
  EXPECT_FALSE(best_route({}).has_value());
  EXPECT_FALSE(best_route_index({}).has_value());
}

TEST(DecisionTest, HighestLocalPrefWins) {
  const std::vector<Route> candidates = {route_with(100, 1), route_with(200, 5)};
  EXPECT_EQ(best_route(candidates)->local_pref, 200u);
}

TEST(DecisionTest, ShortestPathBreaksLocalPrefTie) {
  const std::vector<Route> candidates = {route_with(100, 3), route_with(100, 2)};
  EXPECT_EQ(best_route(candidates)->path.length(), 2u);
}

TEST(DecisionTest, OriginBreaksPathTie) {
  const std::vector<Route> candidates = {
      route_with(100, 2, Origin::kIncomplete),
      route_with(100, 2, Origin::kEgp),
      route_with(100, 2, Origin::kIgp),
  };
  EXPECT_EQ(best_route(candidates)->origin, Origin::kIgp);
}

TEST(DecisionTest, MedBreaksOriginTie) {
  const std::vector<Route> candidates = {
      route_with(100, 2, Origin::kIgp, 30),
      route_with(100, 2, Origin::kIgp, 10),
      route_with(100, 2, Origin::kIgp, 20),
  };
  EXPECT_EQ(best_route(candidates)->med, 10u);
}

TEST(DecisionTest, NextHopIsFinalTiebreak) {
  const std::vector<Route> candidates = {
      route_with(100, 2, Origin::kIgp, 0, 9),
      route_with(100, 2, Origin::kIgp, 0, 4),
  };
  EXPECT_EQ(best_route(candidates)->next_hop, 4u);
}

TEST(DecisionTest, BetterRouteIsStrictAndAsymmetric) {
  const Route a = route_with(200, 1);
  const Route b = route_with(100, 1);
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
  EXPECT_FALSE(better_route(a, a));
}

TEST(DecisionTest, IndexPointsAtWinner) {
  const std::vector<Route> candidates = {route_with(100, 5), route_with(100, 1),
                                         route_with(100, 3)};
  EXPECT_EQ(best_route_index(candidates), 1u);
}

// Property: the winner is never strictly beaten by any other candidate
// (i.e. best_route really is the maximum of the preference order).
TEST(DecisionTest, WinnerDominatesAllCandidates) {
  std::vector<Route> candidates;
  for (std::uint32_t lp : {100u, 150u}) {
    for (std::size_t len : {1u, 2u, 3u}) {
      for (std::uint32_t med : {0u, 5u}) {
        candidates.push_back(route_with(lp, len, Origin::kIgp, med,
                                        static_cast<AsNumber>(candidates.size())));
      }
    }
  }
  const Route winner = *best_route(candidates);
  for (const Route& candidate : candidates) {
    EXPECT_FALSE(better_route(candidate, winner)) << candidate.to_string();
  }
}

}  // namespace
}  // namespace pvr::bgp
