#include "bgp/route.h"

#include <gtest/gtest.h>

namespace pvr::bgp {
namespace {

[[nodiscard]] Route make_route() {
  return Route{
      .prefix = Ipv4Prefix::parse("203.0.113.0/24"),
      .path = AsPath{65002, 65001},
      .next_hop = 65002,
      .local_pref = 150,
      .med = 10,
      .origin = Origin::kEgp,
      .communities = {make_community(65000, 100), make_community(65000, 200)},
  };
}

TEST(RouteTest, CommunityHelpers) {
  const Route route = make_route();
  EXPECT_TRUE(route.has_community(make_community(65000, 100)));
  EXPECT_FALSE(route.has_community(make_community(65000, 300)));
  EXPECT_EQ(make_community(65000, 100), 0xFDE80064u);
}

TEST(RouteTest, EncodeDecodeRoundTrip) {
  const Route route = make_route();
  crypto::ByteWriter writer;
  route.encode(writer);
  crypto::ByteReader reader(writer.data());
  EXPECT_EQ(Route::decode(reader), route);
}

TEST(RouteTest, DecodeRejectsBadOrigin) {
  Route route = make_route();
  crypto::ByteWriter writer;
  route.encode(writer);
  auto bytes = writer.take();
  // The origin byte sits right after prefix(5) + path(2+2*4) + next_hop(4) +
  // local_pref(4) + med(4).
  bytes[5 + 10 + 12] = 9;
  crypto::ByteReader reader(bytes);
  EXPECT_THROW((void)Route::decode(reader), std::out_of_range);
}

TEST(RouteTest, DigestChangesWithAnyField) {
  const Route base = make_route();
  Route changed = base;
  changed.local_pref += 1;
  EXPECT_NE(base.digest(), changed.digest());

  changed = base;
  changed.path = changed.path.prepended(65099);
  EXPECT_NE(base.digest(), changed.digest());

  changed = base;
  changed.communities.clear();
  EXPECT_NE(base.digest(), changed.digest());
}

TEST(RouteTest, DigestDeterministic) {
  EXPECT_EQ(make_route().digest(), make_route().digest());
}

TEST(RouteTest, ToStringMentionsPrefixAndPath) {
  const std::string text = make_route().to_string();
  EXPECT_NE(text.find("203.0.113.0/24"), std::string::npos);
  EXPECT_NE(text.find("65002 65001"), std::string::npos);
}

}  // namespace
}  // namespace pvr::bgp
