// Differential tests for the CIOS Montgomery kernel against the schoolbook
// Bignum reference (mulmod / powmod_reference). The two paths share no
// arithmetic beyond Bignum's add/sub/mul/div primitives, so agreement over
// seeded random operands and the edge moduli below is strong evidence the
// kernel is right (the RSA known-answer vectors in rsa_test.cpp pin it to
// an outside implementation on top).
#include "crypto/montgomery.h"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/bignum.h"
#include "crypto/drbg.h"

namespace pvr::crypto {
namespace {

// Odd moduli that stress the kernel's boundaries: minimal width, all-ones
// limbs (carry chains), Mersenne shapes, and multi-limb RSA-ish widths.
std::vector<Bignum> edge_moduli() {
  std::vector<Bignum> moduli;
  moduli.push_back(Bignum(3));
  moduli.push_back(Bignum(0xf3));
  moduli.push_back(Bignum(0xffffffffffffffffULL));          // 2^64 - 1
  moduli.push_back((Bignum(1) << 64) + Bignum(1));          // 2^64 + 1
  moduli.push_back((Bignum(1) << 127) - Bignum(1));         // Mersenne prime
  moduli.push_back((Bignum(1) << 521) - Bignum(1));         // Mersenne prime
  moduli.push_back(((Bignum(1) << 192) - Bignum(1)) - Bignum(0x1e));
  return moduli;
}

TEST(MontgomeryTest, RejectsEvenTinyAndOversizedModuli) {
  EXPECT_THROW(MontgomeryCtx(Bignum(0)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bignum(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bignum(4096)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bignum(10) << 512), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bignum(1) << (64 * kMaxMontgomeryLimbs)),
               std::invalid_argument);
  // The widest accepted modulus: exactly kMaxMontgomeryLimbs limbs.
  EXPECT_NO_THROW(MontgomeryCtx((Bignum(1) << (64 * kMaxMontgomeryLimbs)) -
                                Bignum(1)));
}

TEST(MontgomeryTest, MulmodMatchesSchoolbookOnEdgeCases) {
  for (const Bignum& m : edge_moduli()) {
    const MontgomeryCtx ctx(m);
    const Bignum m_minus_1 = m - Bignum(1);
    const std::vector<Bignum> operands = {
        Bignum(0), Bignum(1), Bignum(2),      m_minus_1,
        m,         m + m,     m_minus_1 + m,  // >= m: reduced on entry
    };
    for (const Bignum& a : operands) {
      for (const Bignum& b : operands) {
        EXPECT_EQ(ctx.mulmod(a, b), a.mulmod(b, m))
            << "m=" << m.to_hex() << " a=" << a.to_hex()
            << " b=" << b.to_hex();
      }
    }
  }
}

TEST(MontgomeryTest, MulmodMatchesSchoolbookOnRandomOperands) {
  Drbg rng(7101, "montgomery-mulmod-fuzz");
  for (int round = 0; round < 200; ++round) {
    // Random odd modulus, 1..16 limbs wide.
    const std::size_t bits = 2 + rng.uniform(1023);
    Bignum m = rng.random_bits(bits);
    if (!m.is_odd()) m = m + Bignum(1);
    if (m.is_one()) m = Bignum(3);
    const MontgomeryCtx ctx(m);
    const Bignum a = rng.random_below(m);
    const Bignum b = rng.random_below(m);
    ASSERT_EQ(ctx.mulmod(a, b), a.mulmod(b, m))
        << "m=" << m.to_hex() << " a=" << a.to_hex() << " b=" << b.to_hex();
  }
}

TEST(MontgomeryTest, PowmodMatchesReferenceOnRandomOperands) {
  Drbg rng(7102, "montgomery-powmod-fuzz");
  for (int round = 0; round < 60; ++round) {
    const std::size_t bits = 2 + rng.uniform(511);
    Bignum m = rng.random_bits(bits);
    if (!m.is_odd()) m = m + Bignum(1);
    if (m.is_one()) m = Bignum(3);
    const MontgomeryCtx ctx(m);
    const Bignum base = rng.random_below(m + m);  // may exceed m
    const Bignum exponent = rng.random_bits(1 + rng.uniform(256));
    ASSERT_EQ(ctx.powmod(base, exponent), base.powmod_reference(exponent, m))
        << "m=" << m.to_hex() << " base=" << base.to_hex()
        << " e=" << exponent.to_hex();
  }
}

TEST(MontgomeryTest, PowmodEdgeExponents) {
  for (const Bignum& m : edge_moduli()) {
    const MontgomeryCtx ctx(m);
    const Bignum base = m - Bignum(2) < Bignum(1) ? Bignum(1) : m - Bignum(2);
    // e = 0 -> 1 (m > 1 always here), e = 1 -> base mod m.
    EXPECT_EQ(ctx.powmod(base, Bignum(0)), Bignum(1));
    EXPECT_EQ(ctx.powmod(base, Bignum(1)), base.mulmod(Bignum(1), m));
    EXPECT_EQ(ctx.powmod(Bignum(0), Bignum(5)), Bignum(0));
    EXPECT_EQ(ctx.powmod(Bignum(1), Bignum(1) << 200),
              Bignum(1).mulmod(Bignum(1), m));
    // The RSA verify exponent (33 bits of schedule: 16 squares + 1 mul)
    // and a just-past-the-ladder-cutoff exponent.
    EXPECT_EQ(ctx.powmod(base, Bignum(65537)),
              base.powmod_reference(Bignum(65537), m));
    EXPECT_EQ(ctx.powmod(base, (Bignum(1) << 33) + Bignum(5)),
              base.powmod_reference((Bignum(1) << 33) + Bignum(5), m));
  }
}

// Bignum::powmod routes odd moduli through the Montgomery kernel and even
// moduli through the schoolbook ladder — both must agree with the
// reference, so callers never need to care which engaged.
TEST(MontgomeryTest, BignumPowmodDispatchMatchesReference) {
  Drbg rng(7103, "montgomery-dispatch-fuzz");
  for (int round = 0; round < 40; ++round) {
    const Bignum m = rng.random_bits(2 + rng.uniform(200)) + Bignum(2);
    const Bignum base = rng.random_below(m);
    const Bignum exponent = rng.random_bits(1 + rng.uniform(80));
    ASSERT_EQ(base.powmod(exponent, m), base.powmod_reference(exponent, m))
        << "m=" << m.to_hex() << " (odd=" << m.is_odd() << ")";
  }
}

}  // namespace
}  // namespace pvr::crypto
