#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "crypto/drbg.h"

namespace pvr::crypto {
namespace {

TEST(BignumTest, DefaultIsZero) {
  const Bignum zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
}

TEST(BignumTest, SmallValueRoundTrip) {
  const Bignum x(0xdeadbeefULL);
  EXPECT_EQ(x.to_hex(), "deadbeef");
  EXPECT_EQ(Bignum::from_hex("deadbeef"), x);
  EXPECT_EQ(Bignum::from_hex("DEADBEEF"), x);
}

TEST(BignumTest, FromHexRejectsGarbage) {
  EXPECT_THROW((void)Bignum::from_hex("12g4"), std::invalid_argument);
}

TEST(BignumTest, HexRoundTripLarge) {
  const std::string hex =
      "f123456789abcdef0011223344556677f123456789abcdef0011223344556677";
  EXPECT_EQ(Bignum::from_hex(hex).to_hex(), hex);
}

TEST(BignumTest, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x02, 0x03, 0xff, 0x00, 0x80};
  const Bignum x = Bignum::from_bytes_be(bytes);
  EXPECT_EQ(x.to_bytes_be(6), bytes);
  EXPECT_EQ(x.to_bytes_be(), bytes);  // no leading zero in input
}

TEST(BignumTest, ToBytesPadsOnLeft) {
  const Bignum x(0x1234);
  const std::vector<std::uint8_t> expected = {0x00, 0x00, 0x12, 0x34};
  EXPECT_EQ(x.to_bytes_be(4), expected);
}

TEST(BignumTest, ToBytesThrowsWhenTooSmall) {
  const Bignum x(0x123456);
  EXPECT_THROW((void)x.to_bytes_be(2), std::length_error);
}

TEST(BignumTest, AdditionCarriesAcrossLimbs) {
  const Bignum x = Bignum::from_hex("ffffffffffffffffffffffffffffffff");
  const Bignum one(1);
  EXPECT_EQ((x + one).to_hex(), "100000000000000000000000000000000");
}

TEST(BignumTest, SubtractionBorrowsAcrossLimbs) {
  const Bignum x = Bignum::from_hex("100000000000000000000000000000000");
  const Bignum one(1);
  EXPECT_EQ((x - one).to_hex(), "ffffffffffffffffffffffffffffffff");
}

TEST(BignumTest, SubtractionUnderflowThrows) {
  EXPECT_THROW((void)(Bignum(1) - Bignum(2)), std::underflow_error);
}

TEST(BignumTest, MultiplicationKnownAnswer) {
  const Bignum a = Bignum::from_hex("123456789abcdef0");
  const Bignum b = Bignum::from_hex("fedcba9876543210");
  EXPECT_EQ((a * b).to_hex(), "121fa00ad77d7422236d88fe5618cf00");
}

TEST(BignumTest, MultiplyByZero) {
  const Bignum a = Bignum::from_hex("123456789abcdef0");
  EXPECT_TRUE((a * Bignum()).is_zero());
  EXPECT_TRUE((Bignum() * a).is_zero());
}

TEST(BignumTest, ShiftsInverse) {
  const Bignum x = Bignum::from_hex("123456789abcdef0123456789abcdef");
  for (std::size_t shift : {1u, 7u, 64u, 65u, 130u}) {
    EXPECT_EQ((x << shift) >> shift, x) << "shift=" << shift;
  }
}

TEST(BignumTest, ShiftRightDropsBits) {
  EXPECT_EQ(Bignum(0xff) >> 4, Bignum(0xf));
  EXPECT_TRUE((Bignum(1) >> 1).is_zero());
}

TEST(BignumTest, DivModSingleLimb) {
  const Bignum x = Bignum::from_hex("123456789abcdef0123456789abcdef0");
  const auto [q, r] = x.divmod(Bignum(1000));
  EXPECT_EQ(q * Bignum(1000) + r, x);
  EXPECT_LT(r, Bignum(1000));
}

TEST(BignumTest, DivModByZeroThrows) {
  EXPECT_THROW((void)Bignum(5).divmod(Bignum()), std::domain_error);
}

TEST(BignumTest, DivModSmallerDividend) {
  const auto [q, r] = Bignum(5).divmod(Bignum(7));
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, Bignum(5));
}

TEST(BignumTest, DivModMultiLimbKnownAnswer) {
  // Computed with Python:
  // x = 0xf000000000000000000000000000000000000000000000000000000000000001
  // d = 0x10000000000000001
  const Bignum x = Bignum::from_hex(
      "f000000000000000000000000000000000000000000000000000000000000001");
  const Bignum d = Bignum::from_hex("10000000000000001");
  const auto [q, r] = x.divmod(d);
  EXPECT_EQ(q * d + r, x);
  EXPECT_LT(r, d);
}

TEST(BignumTest, CompareOrdering) {
  EXPECT_LT(Bignum(1), Bignum(2));
  EXPECT_GT(Bignum::from_hex("10000000000000000"), Bignum(0xffffffffffffffffULL));
  EXPECT_EQ(Bignum(42), Bignum(42));
}

TEST(BignumTest, BitAccess) {
  Bignum x;
  x.set_bit(0);
  x.set_bit(64);
  x.set_bit(130);
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(64));
  EXPECT_TRUE(x.bit(130));
  EXPECT_FALSE(x.bit(1));
  EXPECT_FALSE(x.bit(1000));
  EXPECT_EQ(x.bit_length(), 131u);
}

TEST(BignumTest, PowmodKnownAnswers) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(Bignum(2).powmod(Bignum(10), Bignum(1000)), Bignum(24));
  // Fermat: a^(p-1) = 1 mod p for prime p not dividing a.
  const Bignum p(1000003);
  EXPECT_EQ(Bignum(12345).powmod(p - Bignum(1), p), Bignum(1));
  // x^0 = 1
  EXPECT_EQ(Bignum(7).powmod(Bignum(), Bignum(100)), Bignum(1));
  // mod 1 = 0
  EXPECT_TRUE(Bignum(7).powmod(Bignum(3), Bignum(1)).is_zero());
}

TEST(BignumTest, PowmodZeroModulusThrows) {
  EXPECT_THROW((void)Bignum(2).powmod(Bignum(2), Bignum()), std::domain_error);
}

TEST(BignumTest, GcdKnownAnswers) {
  EXPECT_EQ(Bignum::gcd(Bignum(12), Bignum(18)), Bignum(6));
  EXPECT_EQ(Bignum::gcd(Bignum(17), Bignum(31)), Bignum(1));
  EXPECT_EQ(Bignum::gcd(Bignum(0), Bignum(5)), Bignum(5));
  EXPECT_EQ(Bignum::gcd(Bignum(5), Bignum(0)), Bignum(5));
}

TEST(BignumTest, InvmodKnownAnswers) {
  // 3 * 4 = 12 = 1 mod 11.
  EXPECT_EQ(Bignum(3).invmod(Bignum(11)), Bignum(4));
  // Non-coprime -> zero.
  EXPECT_TRUE(Bignum(6).invmod(Bignum(9)).is_zero());
}

TEST(BignumTest, InvmodLargeRoundTrip) {
  Drbg rng(7, "bignum-invmod");
  const Bignum m = Bignum::from_hex(
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff61");
  for (int i = 0; i < 20; ++i) {
    const Bignum a = rng.random_below(m);
    if (a.is_zero() || !Bignum::gcd(a, m).is_one()) continue;
    const Bignum inv = a.invmod(m);
    EXPECT_EQ(a.mulmod(inv, m), Bignum(1));
  }
}

// Property sweep: q*d + r == x and r < d for randomized inputs of many sizes.
class BignumDivModProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BignumDivModProperty, QuotientRemainderIdentity) {
  const std::size_t bits = GetParam();
  Drbg rng(bits, "bignum-divmod-prop");
  for (int i = 0; i < 50; ++i) {
    const Bignum x = rng.random_bits(bits * 2);
    const Bignum d = rng.random_bits(bits);
    const auto [q, r] = x.divmod(d);
    EXPECT_EQ(q * d + r, x);
    EXPECT_LT(r, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BignumDivModProperty,
                         ::testing::Values(16, 63, 64, 65, 127, 128, 256, 512,
                                           1024));

class BignumRingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BignumRingProperty, AddSubInverse) {
  Drbg rng(GetParam(), "bignum-addsub-prop");
  for (int i = 0; i < 50; ++i) {
    const Bignum a = rng.random_bits(GetParam());
    const Bignum b = rng.random_bits(GetParam());
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BignumRingProperty, MulDistributesOverAdd) {
  Drbg rng(GetParam() + 1, "bignum-dist-prop");
  for (int i = 0; i < 25; ++i) {
    const Bignum a = rng.random_bits(GetParam());
    const Bignum b = rng.random_bits(GetParam());
    const Bignum c = rng.random_bits(GetParam());
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BignumRingProperty, MulCommutes) {
  Drbg rng(GetParam() + 2, "bignum-comm-prop");
  for (int i = 0; i < 25; ++i) {
    const Bignum a = rng.random_bits(GetParam());
    const Bignum b = rng.random_bits(GetParam());
    EXPECT_EQ(a * b, b * a);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BignumRingProperty,
                         ::testing::Values(8, 64, 65, 192, 521, 1024));

TEST(BignumTest, PowmodMatchesNaiveForSmallInputs) {
  const Bignum m(10007);
  for (std::uint64_t base = 2; base < 40; base += 7) {
    std::uint64_t expected = 1;
    for (int i = 0; i < 13; ++i) expected = expected * base % 10007;
    EXPECT_EQ(Bignum(base).powmod(Bignum(13), m), Bignum(expected));
  }
}

}  // namespace
}  // namespace pvr::crypto
