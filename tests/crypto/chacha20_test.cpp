#include "crypto/chacha20.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "crypto/encoding.h"

namespace pvr::crypto {
namespace {

// RFC 8439 §2.4.2 test vector: key 00..1f, nonce 00 00 00 00 00 00 00 4a
// 00 00 00 00 prefixed with 00 00 00 — counter starts at 1.
TEST(ChaCha20Test, Rfc8439KeystreamVector) {
  std::array<std::uint8_t, ChaCha20::kKeySize> key;
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce = {
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};

  ChaCha20 stream(key, nonce, /*initial_counter=*/1);
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  std::vector<std::uint8_t> data(plaintext.begin(), plaintext.end());
  stream.xor_inplace(data);

  EXPECT_EQ(to_hex(std::span(data.data(), 16)), "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(data.size(), 114u);
  EXPECT_EQ(to_hex(std::span(data.data() + 96, 18)),
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20Test, EncryptDecryptRoundTrip) {
  std::array<std::uint8_t, ChaCha20::kKeySize> key{};
  key[0] = 42;
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};

  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i);
  const std::vector<std::uint8_t> original = data;

  ChaCha20 enc(key, nonce);
  enc.xor_inplace(data);
  EXPECT_NE(data, original);

  ChaCha20 dec(key, nonce);
  dec.xor_inplace(data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20Test, KeystreamContinuesAcrossCalls) {
  std::array<std::uint8_t, ChaCha20::kKeySize> key{};
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce{};

  ChaCha20 one_shot(key, nonce);
  std::vector<std::uint8_t> expected(150);
  one_shot.keystream(expected);

  ChaCha20 chunked(key, nonce);
  std::vector<std::uint8_t> actual(150);
  chunked.keystream(std::span(actual.data(), 7));
  chunked.keystream(std::span(actual.data() + 7, 64));
  chunked.keystream(std::span(actual.data() + 71, 79));
  EXPECT_EQ(actual, expected);
}

TEST(ChaCha20Test, DifferentNoncesDifferentStreams) {
  std::array<std::uint8_t, ChaCha20::kKeySize> key{};
  std::array<std::uint8_t, ChaCha20::kNonceSize> n1{};
  std::array<std::uint8_t, ChaCha20::kNonceSize> n2{};
  n2[0] = 1;

  std::vector<std::uint8_t> s1(64), s2(64);
  ChaCha20(key, n1).keystream(s1);
  ChaCha20(key, n2).keystream(s2);
  EXPECT_NE(s1, s2);
}

}  // namespace
}  // namespace pvr::crypto
