#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pvr::crypto {
namespace {

TEST(DrbgTest, DeterministicForSameSeed) {
  Drbg a(12345);
  Drbg b(12345);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(DrbgTest, DifferentSeedsDiffer) {
  Drbg a(1);
  Drbg b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(DrbgTest, DifferentLabelsDiffer) {
  Drbg a(1, "alpha");
  Drbg b(1, "beta");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(DrbgTest, UniformRespectsBound) {
  Drbg rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(DrbgTest, UniformCoversRange) {
  Drbg rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(DrbgTest, UniformUnitInHalfOpenInterval) {
  Drbg rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(DrbgTest, CoinExtremes) {
  Drbg rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.coin(0.0));
    EXPECT_TRUE(rng.coin(1.0));
  }
}

TEST(DrbgTest, RandomBitsExactWidth) {
  Drbg rng(5);
  for (std::size_t bits : {1u, 8u, 9u, 63u, 64u, 65u, 257u, 1024u}) {
    const Bignum x = rng.random_bits(bits);
    EXPECT_EQ(x.bit_length(), bits) << "bits=" << bits;
  }
}

TEST(DrbgTest, RandomBelowRespectsBound) {
  Drbg rng(6);
  const Bignum bound = Bignum::from_hex("10000000001");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.random_below(bound), bound);
  }
}

TEST(DrbgTest, RandomBelowZeroBoundReturnsZero) {
  Drbg rng(8);
  EXPECT_TRUE(rng.random_below(Bignum()).is_zero());
}

TEST(DrbgTest, ForkProducesIndependentStreams) {
  Drbg parent1(11);
  Drbg parent2(11);
  Drbg child_a = parent1.fork("a");
  Drbg child_b = parent2.fork("a");
  // Same parent state + same label -> identical children (reproducibility).
  EXPECT_EQ(child_a.bytes(32), child_b.bytes(32));

  Drbg parent3(11);
  Drbg child_c = parent3.fork("c");
  Drbg parent4(11);
  Drbg child_d = parent4.fork("d");
  EXPECT_NE(child_c.bytes(32), child_d.bytes(32));
}

TEST(DrbgTest, RoughlyUnbiasedCoin) {
  Drbg rng(13);
  int heads = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) heads += rng.coin(0.5) ? 1 : 0;
  EXPECT_GT(heads, kTrials * 45 / 100);
  EXPECT_LT(heads, kTrials * 55 / 100);
}

}  // namespace
}  // namespace pvr::crypto
