#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace pvr::crypto {
namespace {

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(digest_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(digest_hex(hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog and keeps running";
  for (std::size_t split = 0; split <= message.size(); ++split) {
    Sha256 hasher;
    hasher.update(std::string_view(message).substr(0, split));
    hasher.update(std::string_view(message).substr(split));
    EXPECT_EQ(hasher.finalize(), sha256(message)) << "split=" << split;
  }
}

TEST(Sha256Test, BoundaryLengthsAroundBlockSize) {
  // Lengths 55, 56, 57, 63, 64, 65 exercise the padding edge cases.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string message(len, 'x');
    Sha256 incremental;
    for (char c : message) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), sha256(message)) << "len=" << len;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256Test, DigestHexLength) {
  EXPECT_EQ(digest_hex(sha256("x")).size(), 64u);
  EXPECT_EQ(digest_bytes(sha256("x")).size(), kSha256DigestSize);
}

}  // namespace
}  // namespace pvr::crypto
