#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <vector>

#include "crypto/encoding.h"

namespace pvr::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string data = "Hi There";
  const Digest mac = hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                     data.size()));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string data = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      std::span(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                data.size()));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = hmac_sha256(
      key, std::span(reinterpret_cast<const std::uint8_t*>(data.data()),
                     data.size()));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  const std::vector<std::uint8_t> k1 = {1, 2, 3};
  const std::vector<std::uint8_t> k2 = {1, 2, 4};
  const std::vector<std::uint8_t> msg = {9, 9, 9};
  EXPECT_NE(hmac_sha256(k1, msg), hmac_sha256(k2, msg));
}

TEST(HmacTest, MessageSensitivity) {
  const std::vector<std::uint8_t> key = {1, 2, 3};
  const std::vector<std::uint8_t> m1 = {9};
  const std::vector<std::uint8_t> m2 = {8};
  EXPECT_NE(hmac_sha256(key, m1), hmac_sha256(key, m2));
}

}  // namespace
}  // namespace pvr::crypto
