#include "crypto/merkle.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pvr::crypto {
namespace {

[[nodiscard]] std::vector<std::vector<std::uint8_t>> make_leaves(std::size_t n) {
  std::vector<std::vector<std::uint8_t>> leaves(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves[i] = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
  }
  return leaves;
}

TEST(MerkleTest, EmptyThrows) {
  EXPECT_THROW((void)MerkleTree::build({}), std::invalid_argument);
}

TEST(MerkleTest, SingleLeaf) {
  const auto leaves = make_leaves(1);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_EQ(tree.leaf_count(), 1u);
  const MerkleProof proof = tree.prove(0);
  EXPECT_TRUE(proof.siblings.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[0], proof));
}

TEST(MerkleTest, ProveOutOfRangeThrows) {
  const auto leaves = make_leaves(3);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_THROW((void)tree.prove(3), std::out_of_range);
}

TEST(MerkleTest, TamperedLeafFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree = MerkleTree::build(leaves);
  const MerkleProof proof = tree.prove(2);
  std::vector<std::uint8_t> tampered = leaves[2];
  tampered[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tampered, proof));
}

TEST(MerkleTest, WrongIndexFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree = MerkleTree::build(leaves);
  MerkleProof proof = tree.prove(2);
  proof.leaf_index = 3;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(MerkleTest, TruncatedProofFailsVerification) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree = MerkleTree::build(leaves);
  MerkleProof proof = tree.prove(2);
  proof.siblings.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[2], proof));
}

TEST(MerkleTest, PaddingLeafNotProvable) {
  // 5 leaves pad to 8; indices 5..7 are padding and must be rejected.
  const auto leaves = make_leaves(5);
  const MerkleTree tree = MerkleTree::build(leaves);
  EXPECT_THROW((void)tree.prove(5), std::out_of_range);
  MerkleProof proof = tree.prove(4);
  proof.leaf_index = 5;  // forged index pointing into padding
  proof.leaf_count = 8;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[4], proof));
}

TEST(MerkleTest, LeafInteriorDomainSeparation) {
  // A leaf whose payload equals (0x01 || h1 || h2) must not hash like the
  // interior node over (h1, h2).
  const Digest h1 = sha256("left");
  const Digest h2 = sha256("right");
  std::vector<std::uint8_t> payload;
  payload.push_back(0x01);
  payload.insert(payload.end(), h1.begin(), h1.end());
  payload.insert(payload.end(), h2.begin(), h2.end());
  EXPECT_NE(MerkleTree::hash_leaf(payload), MerkleTree::hash_interior(h1, h2));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(16);
  const Digest original_root = MerkleTree::build(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto modified = leaves;
    modified[i][0] ^= 0xff;
    EXPECT_NE(MerkleTree::build(modified).root(), original_root) << "leaf " << i;
  }
}

class MerkleAllLeavesProvable : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleAllLeavesProvable, EveryLeafVerifies) {
  const auto leaves = make_leaves(GetParam());
  const MerkleTree tree = MerkleTree::build(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof)) << "leaf " << i;
    // Proof length is ceil(log2(padded leaf count)).
    EXPECT_EQ(proof.siblings.size(),
              static_cast<std::size_t>(std::bit_width(std::bit_ceil(GetParam())) - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleAllLeavesProvable,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64));

}  // namespace
}  // namespace pvr::crypto
