#include "crypto/sparse_merkle.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/drbg.h"

namespace pvr::crypto {
namespace {

[[nodiscard]] SparseMerkleTree make_tree(std::uint64_t seed = 1) {
  Drbg rng(seed, "smt-test");
  return SparseMerkleTree(rng.bytes(32));
}

TEST(SparseMerkleTest, InsertContainsErase) {
  SparseMerkleTree tree = make_tree();
  const Digest key = SparseMerkleTree::key_for_label("var:r1");
  EXPECT_FALSE(tree.contains(key));
  tree.insert(key, sha256("value"));
  EXPECT_TRUE(tree.contains(key));
  EXPECT_EQ(tree.size(), 1u);
  tree.erase(key);
  EXPECT_FALSE(tree.contains(key));
  EXPECT_EQ(tree.size(), 0u);
}

TEST(SparseMerkleTest, ProveAbsentThrows) {
  const SparseMerkleTree tree = make_tree();
  EXPECT_THROW((void)tree.prove(SparseMerkleTree::key_for_label("nope")),
               std::out_of_range);
}

TEST(SparseMerkleTest, SingleEntryProofVerifies) {
  SparseMerkleTree tree = make_tree();
  const Digest key = SparseMerkleTree::key_for_label("op:min");
  const Digest value = sha256("minimum-operator");
  tree.insert(key, value);
  const SparseDisclosureProof proof = tree.prove(key);
  EXPECT_EQ(proof.siblings.size(), kSparseTreeDepth);
  EXPECT_TRUE(SparseMerkleTree::verify(tree.root(), value, proof));
}

TEST(SparseMerkleTest, WrongValueFailsVerification) {
  SparseMerkleTree tree = make_tree();
  const Digest key = SparseMerkleTree::key_for_label("op:min");
  tree.insert(key, sha256("real"));
  const SparseDisclosureProof proof = tree.prove(key);
  EXPECT_FALSE(SparseMerkleTree::verify(tree.root(), sha256("fake"), proof));
}

TEST(SparseMerkleTest, StaleProofFailsAfterUpdate) {
  SparseMerkleTree tree = make_tree();
  const Digest key = SparseMerkleTree::key_for_label("var:ro");
  tree.insert(key, sha256("v1"));
  const Digest old_root = tree.root();
  const SparseDisclosureProof old_proof = tree.prove(key);
  ASSERT_TRUE(SparseMerkleTree::verify(old_root, sha256("v1"), old_proof));

  tree.insert(key, sha256("v2"));
  const Digest new_root = tree.root();
  EXPECT_NE(old_root, new_root);
  EXPECT_FALSE(SparseMerkleTree::verify(new_root, sha256("v1"), old_proof));
  EXPECT_TRUE(SparseMerkleTree::verify(new_root, sha256("v2"), tree.prove(key)));
}

TEST(SparseMerkleTest, ManyEntriesAllProvable) {
  SparseMerkleTree tree = make_tree();
  constexpr int kEntries = 40;
  std::vector<Digest> keys;
  std::vector<Digest> values;
  for (int i = 0; i < kEntries; ++i) {
    keys.push_back(SparseMerkleTree::key_for_label("vertex:" + std::to_string(i)));
    values.push_back(sha256("payload:" + std::to_string(i)));
    tree.insert(keys.back(), values.back());
  }
  const Digest root = tree.root();
  for (int i = 0; i < kEntries; ++i) {
    const SparseDisclosureProof proof = tree.prove(keys[i]);
    EXPECT_TRUE(SparseMerkleTree::verify(root, values[i], proof)) << "entry " << i;
    // Cross-check: proof for key i must not validate value j != i.
    EXPECT_FALSE(SparseMerkleTree::verify(root, values[(i + 1) % kEntries], proof));
  }
}

TEST(SparseMerkleTest, RootDependsOnBlindingKey) {
  SparseMerkleTree a = make_tree(1);
  SparseMerkleTree b = make_tree(2);
  const Digest key = SparseMerkleTree::key_for_label("x");
  a.insert(key, sha256("v"));
  b.insert(key, sha256("v"));
  EXPECT_NE(a.root(), b.root());
}

// Privacy core: the proof for vertex x must be identical in *shape* whether
// or not other vertices exist — here we check that proofs always have full
// depth and that a verifier cannot distinguish an empty sibling from a
// populated one by value structure (all are 32-byte digests).
TEST(SparseMerkleTest, ProofShapeIndependentOfOccupancy) {
  SparseMerkleTree lone = make_tree(3);
  const Digest key = SparseMerkleTree::key_for_label("target");
  lone.insert(key, sha256("v"));
  const auto lone_proof = lone.prove(key);

  SparseMerkleTree crowded = make_tree(3);
  crowded.insert(key, sha256("v"));
  for (int i = 0; i < 20; ++i) {
    crowded.insert(SparseMerkleTree::key_for_label("other:" + std::to_string(i)),
                   sha256("o"));
  }
  const auto crowded_proof = crowded.prove(key);

  EXPECT_EQ(lone_proof.siblings.size(), crowded_proof.siblings.size());
  EXPECT_EQ(lone_proof.byte_size(), crowded_proof.byte_size());
}

TEST(SparseMerkleTest, TruncatedProofRejected) {
  SparseMerkleTree tree = make_tree();
  const Digest key = SparseMerkleTree::key_for_label("k");
  tree.insert(key, sha256("v"));
  SparseDisclosureProof proof = tree.prove(key);
  proof.siblings.pop_back();
  EXPECT_FALSE(SparseMerkleTree::verify(tree.root(), sha256("v"), proof));
}

TEST(SparseMerkleTest, SwappedKeyRejected) {
  SparseMerkleTree tree = make_tree();
  const Digest k1 = SparseMerkleTree::key_for_label("k1");
  const Digest k2 = SparseMerkleTree::key_for_label("k2");
  tree.insert(k1, sha256("v1"));
  tree.insert(k2, sha256("v2"));
  SparseDisclosureProof proof = tree.prove(k1);
  proof.key = k2;  // claim the same siblings prove a different vertex
  EXPECT_FALSE(SparseMerkleTree::verify(tree.root(), sha256("v1"), proof));
}

TEST(SparseMerkleTest, DeterministicRootAcrossInsertionOrder) {
  SparseMerkleTree forward = make_tree(9);
  SparseMerkleTree backward = make_tree(9);
  for (int i = 0; i < 10; ++i) {
    forward.insert(SparseMerkleTree::key_for_label(std::to_string(i)), sha256("v"));
  }
  for (int i = 9; i >= 0; --i) {
    backward.insert(SparseMerkleTree::key_for_label(std::to_string(i)), sha256("v"));
  }
  EXPECT_EQ(forward.root(), backward.root());
}

}  // namespace
}  // namespace pvr::crypto
