#include "crypto/ring_signature.h"

#include <gtest/gtest.h>

#include <vector>

namespace pvr::crypto {
namespace {

// 512-bit keys keep the test fast; the scheme is parametric in key size.
class RingSignatureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Drbg rng(77, "ring-test-keygen");
    keys_ = new std::vector<RsaKeyPair>();
    for (int i = 0; i < 4; ++i) keys_->push_back(generate_rsa_keypair(512, rng));
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  [[nodiscard]] static std::vector<RsaPublicKey> ring() {
    std::vector<RsaPublicKey> out;
    for (const auto& kp : *keys_) out.push_back(kp.pub);
    return out;
  }
  [[nodiscard]] static const RsaKeyPair& member(std::size_t i) { return (*keys_)[i]; }

 private:
  static std::vector<RsaKeyPair>* keys_;
};

std::vector<RsaKeyPair>* RingSignatureTest::keys_ = nullptr;

TEST_F(RingSignatureTest, SignVerifyEveryMemberPosition) {
  const std::vector<std::uint8_t> message = {'a', ' ', 'r', 'o', 'u', 't',
                                             'e', ' ', 'e', 'x', 'i', 's',
                                             't', 's'};
  Drbg rng(1, "ring-sign");
  const auto pubs = ring();
  for (std::size_t signer = 0; signer < pubs.size(); ++signer) {
    const RingSignature sig =
        ring_sign(pubs, signer, member(signer).priv, message, rng);
    EXPECT_TRUE(ring_verify(pubs, message, sig)) << "signer " << signer;
  }
}

TEST_F(RingSignatureTest, VerifyRejectsWrongMessage) {
  Drbg rng(2, "ring-sign");
  const auto pubs = ring();
  const std::vector<std::uint8_t> message = {1, 2, 3};
  const std::vector<std::uint8_t> other = {1, 2, 4};
  const RingSignature sig = ring_sign(pubs, 0, member(0).priv, message, rng);
  EXPECT_FALSE(ring_verify(pubs, other, sig));
}

TEST_F(RingSignatureTest, VerifyRejectsTamperedX) {
  Drbg rng(3, "ring-sign");
  const auto pubs = ring();
  const std::vector<std::uint8_t> message = {5, 5};
  RingSignature sig = ring_sign(pubs, 1, member(1).priv, message, rng);
  sig.x[2] = sig.x[2] + Bignum(1);
  EXPECT_FALSE(ring_verify(pubs, message, sig));
}

TEST_F(RingSignatureTest, VerifyRejectsWrongRing) {
  Drbg rng(4, "ring-sign");
  const auto pubs = ring();
  const std::vector<std::uint8_t> message = {7};
  const RingSignature sig = ring_sign(pubs, 0, member(0).priv, message, rng);
  // Drop one member: ring mismatch.
  std::vector<RsaPublicKey> smaller(pubs.begin(), pubs.end() - 1);
  EXPECT_FALSE(ring_verify(smaller, message, sig));
  // Reorder: the glue equation walks members in order.
  std::vector<RsaPublicKey> reordered = {pubs[1], pubs[0], pubs[2], pubs[3]};
  EXPECT_FALSE(ring_verify(reordered, message, sig));
}

TEST_F(RingSignatureTest, SignerIndexValidation) {
  Drbg rng(5, "ring-sign");
  const auto pubs = ring();
  const std::vector<std::uint8_t> message = {9};
  EXPECT_THROW((void)ring_sign(pubs, 99, member(0).priv, message, rng),
               std::invalid_argument);
  // Key mismatch: claiming index 1 with member 0's private key.
  EXPECT_THROW((void)ring_sign(pubs, 1, member(0).priv, message, rng),
               std::invalid_argument);
  EXPECT_THROW((void)ring_sign({}, 0, member(0).priv, message, rng),
               std::invalid_argument);
}

TEST_F(RingSignatureTest, SingletonRingWorks) {
  Drbg rng(6, "ring-sign");
  const std::vector<RsaPublicKey> solo = {member(0).pub};
  const std::vector<std::uint8_t> message = {42};
  const RingSignature sig = ring_sign(solo, 0, member(0).priv, message, rng);
  EXPECT_TRUE(ring_verify(solo, message, sig));
}

// Anonymity smoke check: signatures by different signers over the same
// message are structurally identical (same sizes) — a verifier cannot tell
// the signer from the shape of the signature.
TEST_F(RingSignatureTest, SignaturesShapeIndependentOfSigner) {
  Drbg rng(7, "ring-sign");
  const auto pubs = ring();
  const std::vector<std::uint8_t> message = {'z'};
  const RingSignature s0 = ring_sign(pubs, 0, member(0).priv, message, rng);
  const RingSignature s2 = ring_sign(pubs, 2, member(2).priv, message, rng);
  EXPECT_EQ(s0.x.size(), s2.x.size());
  EXPECT_EQ(s0.domain_bits, s2.domain_bits);
  EXPECT_EQ(s0.byte_size(), s2.byte_size());
}

}  // namespace
}  // namespace pvr::crypto
