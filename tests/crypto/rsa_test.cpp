#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include <vector>

namespace pvr::crypto {
namespace {

// Key generation is the slow part; share one key pair across tests.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Drbg rng(2024, "rsa-test-keygen");
    key_ = new RsaKeyPair(generate_rsa_keypair(1024, rng));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static const RsaKeyPair& key() { return *key_; }

 private:
  static RsaKeyPair* key_;
};

RsaKeyPair* RsaTest::key_ = nullptr;

TEST(RsaPrimality, KnownPrimesAccepted) {
  Drbg rng(1, "primality");
  EXPECT_TRUE(is_probable_prime(Bignum(2), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(3), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(65537), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(1000003), rng));
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(is_probable_prime(Bignum((1ULL << 61) - 1), rng));
}

TEST(RsaPrimality, KnownCompositesRejected) {
  Drbg rng(2, "primality");
  EXPECT_FALSE(is_probable_prime(Bignum(1), rng));
  EXPECT_FALSE(is_probable_prime(Bignum(0), rng));
  EXPECT_FALSE(is_probable_prime(Bignum(1000005), rng));
  // Carmichael number 561 = 3 * 11 * 17.
  EXPECT_FALSE(is_probable_prime(Bignum(561), rng));
  // Large semiprime: 1000003 * 1000033.
  EXPECT_FALSE(is_probable_prime(Bignum(1000003ULL) * Bignum(1000033ULL), rng));
}

TEST(RsaPrimality, GeneratedPrimeHasExactWidth) {
  Drbg rng(3, "primegen");
  const Bignum p = generate_prime(128, rng);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
}

TEST_F(RsaTest, KeyPairInvariants) {
  const RsaKeyPair& kp = key();
  EXPECT_EQ(kp.pub.n.bit_length(), 1024u);
  EXPECT_EQ(kp.pub.e, Bignum(65537));
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.pub.n);
  // e*d = 1 mod phi
  const Bignum phi = (kp.priv.p - Bignum(1)) * (kp.priv.q - Bignum(1));
  EXPECT_EQ(kp.priv.e.mulmod(kp.priv.d, phi), Bignum(1));
}

TEST_F(RsaTest, TrapdoorRoundTrip) {
  Drbg rng(4, "trapdoor");
  for (int i = 0; i < 5; ++i) {
    const Bignum m = rng.random_below(key().pub.n);
    const Bignum c = rsa_public_apply(key().pub, m);
    EXPECT_EQ(rsa_private_apply(key().priv, c), m);
  }
}

TEST_F(RsaTest, CrtMatchesPlainExponentiation) {
  Drbg rng(5, "crt");
  const Bignum m = rng.random_below(key().pub.n);
  EXPECT_EQ(rsa_private_apply(key().priv, m),
            m.powmod(key().priv.d, key().priv.n));
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const std::vector<std::uint8_t> message = {'p', 'v', 'r'};
  const auto signature = rsa_sign(key().priv, message);
  EXPECT_EQ(signature.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const std::vector<std::uint8_t> message = {1, 2, 3, 4};
  const auto signature = rsa_sign(key().priv, message);
  std::vector<std::uint8_t> tampered = message;
  tampered[0] ^= 1;
  EXPECT_FALSE(rsa_verify(key().pub, tampered, signature));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const std::vector<std::uint8_t> message = {1, 2, 3, 4};
  auto signature = rsa_sign(key().priv, message);
  signature[10] ^= 1;
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const std::vector<std::uint8_t> message = {1};
  auto signature = rsa_sign(key().priv, message);
  signature.pop_back();
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsSignatureGeModulus) {
  const std::vector<std::uint8_t> message = {1};
  const auto signature = key().pub.n.to_bytes_be(key().pub.modulus_bytes());
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, EmptyMessageSigns) {
  const std::vector<std::uint8_t> empty;
  const auto signature = rsa_sign(key().priv, empty);
  EXPECT_TRUE(rsa_verify(key().pub, empty, signature));
}

TEST_F(RsaTest, PublicKeyEncodeDecodeRoundTrip) {
  const auto encoded = key().pub.encode();
  const RsaPublicKey decoded = RsaPublicKey::decode(encoded);
  EXPECT_EQ(decoded, key().pub);
}

TEST_F(RsaTest, SignaturesAreDeterministic) {
  const std::vector<std::uint8_t> message = {'x'};
  EXPECT_EQ(rsa_sign(key().priv, message), rsa_sign(key().priv, message));
}

TEST_F(RsaTest, CrossKeyVerificationFails) {
  Drbg rng(6, "rsa-second-key");
  const RsaKeyPair other = generate_rsa_keypair(512, rng);
  const std::vector<std::uint8_t> message = {'y'};
  const auto signature = rsa_sign(key().priv, message);
  EXPECT_FALSE(rsa_verify(other.pub, message, signature));
}

}  // namespace
}  // namespace pvr::crypto
