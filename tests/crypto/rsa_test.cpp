#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace pvr::crypto {
namespace {

// Key generation is the slow part; share one key pair across tests.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Drbg rng(2024, "rsa-test-keygen");
    key_ = new RsaKeyPair(generate_rsa_keypair(1024, rng));
  }
  static void TearDownTestSuite() {
    delete key_;
    key_ = nullptr;
  }
  static const RsaKeyPair& key() { return *key_; }

 private:
  static RsaKeyPair* key_;
};

RsaKeyPair* RsaTest::key_ = nullptr;

TEST(RsaPrimality, KnownPrimesAccepted) {
  Drbg rng(1, "primality");
  EXPECT_TRUE(is_probable_prime(Bignum(2), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(3), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(65537), rng));
  EXPECT_TRUE(is_probable_prime(Bignum(1000003), rng));
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(is_probable_prime(Bignum((1ULL << 61) - 1), rng));
}

TEST(RsaPrimality, KnownCompositesRejected) {
  Drbg rng(2, "primality");
  EXPECT_FALSE(is_probable_prime(Bignum(1), rng));
  EXPECT_FALSE(is_probable_prime(Bignum(0), rng));
  EXPECT_FALSE(is_probable_prime(Bignum(1000005), rng));
  // Carmichael number 561 = 3 * 11 * 17.
  EXPECT_FALSE(is_probable_prime(Bignum(561), rng));
  // Large semiprime: 1000003 * 1000033.
  EXPECT_FALSE(is_probable_prime(Bignum(1000003ULL) * Bignum(1000033ULL), rng));
}

TEST(RsaPrimality, GeneratedPrimeHasExactWidth) {
  Drbg rng(3, "primegen");
  const Bignum p = generate_prime(128, rng);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
}

TEST_F(RsaTest, KeyPairInvariants) {
  const RsaKeyPair& kp = key();
  EXPECT_EQ(kp.pub.n.bit_length(), 1024u);
  EXPECT_EQ(kp.pub.e, Bignum(65537));
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.pub.n);
  // e*d = 1 mod phi
  const Bignum phi = (kp.priv.p - Bignum(1)) * (kp.priv.q - Bignum(1));
  EXPECT_EQ(kp.priv.e.mulmod(kp.priv.d, phi), Bignum(1));
}

TEST_F(RsaTest, TrapdoorRoundTrip) {
  Drbg rng(4, "trapdoor");
  for (int i = 0; i < 5; ++i) {
    const Bignum m = rng.random_below(key().pub.n);
    const Bignum c = rsa_public_apply(key().pub, m);
    EXPECT_EQ(rsa_private_apply(key().priv, c), m);
  }
}

TEST_F(RsaTest, CrtMatchesPlainExponentiation) {
  Drbg rng(5, "crt");
  const Bignum m = rng.random_below(key().pub.n);
  EXPECT_EQ(rsa_private_apply(key().priv, m),
            m.powmod(key().priv.d, key().priv.n));
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const std::vector<std::uint8_t> message = {'p', 'v', 'r'};
  const auto signature = rsa_sign(key().priv, message);
  EXPECT_EQ(signature.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsTamperedMessage) {
  const std::vector<std::uint8_t> message = {1, 2, 3, 4};
  const auto signature = rsa_sign(key().priv, message);
  std::vector<std::uint8_t> tampered = message;
  tampered[0] ^= 1;
  EXPECT_FALSE(rsa_verify(key().pub, tampered, signature));
}

TEST_F(RsaTest, VerifyRejectsTamperedSignature) {
  const std::vector<std::uint8_t> message = {1, 2, 3, 4};
  auto signature = rsa_sign(key().priv, message);
  signature[10] ^= 1;
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsWrongLengthSignature) {
  const std::vector<std::uint8_t> message = {1};
  auto signature = rsa_sign(key().priv, message);
  signature.pop_back();
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, VerifyRejectsSignatureGeModulus) {
  const std::vector<std::uint8_t> message = {1};
  const auto signature = key().pub.n.to_bytes_be(key().pub.modulus_bytes());
  EXPECT_FALSE(rsa_verify(key().pub, message, signature));
}

TEST_F(RsaTest, EmptyMessageSigns) {
  const std::vector<std::uint8_t> empty;
  const auto signature = rsa_sign(key().priv, empty);
  EXPECT_TRUE(rsa_verify(key().pub, empty, signature));
}

TEST_F(RsaTest, PublicKeyEncodeDecodeRoundTrip) {
  const auto encoded = key().pub.encode();
  const RsaPublicKey decoded = RsaPublicKey::decode(encoded);
  EXPECT_EQ(decoded, key().pub);
}

TEST_F(RsaTest, SignaturesAreDeterministic) {
  const std::vector<std::uint8_t> message = {'x'};
  EXPECT_EQ(rsa_sign(key().priv, message), rsa_sign(key().priv, message));
}

TEST_F(RsaTest, CrossKeyVerificationFails) {
  Drbg rng(6, "rsa-second-key");
  const RsaKeyPair other = generate_rsa_keypair(512, rng);
  const std::vector<std::uint8_t> message = {'y'};
  const auto signature = rsa_sign(key().priv, message);
  EXPECT_FALSE(rsa_verify(other.pub, message, signature));
}

// Known-answer vectors computed by an independent RSASSA-PKCS1-v1_5 +
// SHA-256 implementation (pure-Python pow() over a fixed 1024-bit key).
// They pin the whole verify path — EMSA encoding, byte order, and the
// Montgomery exponentiation — to an outside reference, so a kernel bug
// that the self-consistent differential tests could share is caught here.
struct RsaKat {
  const char* message;
  const char* signature_hex;
};

TEST(RsaKnownAnswer, PinnedVectorsVerify) {
  RsaPublicKey pub;
  pub.n = Bignum::from_hex(
      "e4f68f1e47b8d1dfae93906e15aad518129eaa462fc9bb55329484f0618fcafe"
      "b3c95c8c135e452058c631c0110513f8137dbef3c9b0d1382a918e267fe81b77"
      "13492fb813d58bc8a495101a1772658ffbd510c0dcb13ff7838786514589e427"
      "eb702a3d2ff0bf2757889eff9bda47ce883d9ea3f88d3229f97931b9af09269f");
  pub.e = Bignum(65537);
  const RsaKat kats[] = {
      {"pvr montgomery known answer one",
       "cf555cb4af8dc6a549876ebd6ba5ed2a2033423f08f1b7b7fe65b677da79cf32"
       "fe698eee191fa689028497357e5baf1a000e09f20039e5489b1530350440ff13"
       "de55ba4454b620f7873d998d2a0c799ac0edbc3242c3e43d0eb9f0604a467479"
       "dd4e761ef150eb17289985cc88d7993bc603063ca75f72c80af42c936833142d"},
      {"",
       "90cd86aecf221d70022c1342f630d8066b46613de10e790ef04293fac947a041"
       "8fd916537c42f7895a5cb66aa2bdeab8559cfbeaff9b3d88f55b1ece3640ac0c"
       "6cfd6e0fb9d33d496c33e7dad7dd2f1a17a86d293680423a16a8ebf0a4e9245a"
       "6c656efba33f0d6ad75ff153c143bc24b38a839046838a60c2a4a7c55f979d67"},
      {"The quick brown fox jumps over the lazy dog",
       "9065822ea9a77979209689f1ab547adcc493618a876f586eda6dacf18fea57bd"
       "d447d23b3b01c66cd370312eb9099039a19e00b300561f3c8158dbc6861aa3ee"
       "bb2f55094939daac4ee80c28b0650f579af66d134ee06e3b52a44a0bb35a31e0"
       "25341495243ab2466e45b3f39165df593125d05f9b1a1a350122e710ba111069"},
  };
  const RsaVerifyKey prepared(pub);
  for (const RsaKat& kat : kats) {
    const std::string_view text = kat.message;
    const std::vector<std::uint8_t> message(text.begin(), text.end());
    const std::vector<std::uint8_t> signature =
        Bignum::from_hex(kat.signature_hex).to_bytes_be(128);
    EXPECT_TRUE(rsa_verify(pub, message, signature)) << kat.message;
    EXPECT_TRUE(prepared.verify(message, signature)) << kat.message;

    // Any corruption must flip the verdict on both paths.
    std::vector<std::uint8_t> bad_sig = signature;
    bad_sig[17] ^= 0x20;
    EXPECT_FALSE(rsa_verify(pub, message, bad_sig)) << kat.message;
    EXPECT_FALSE(prepared.verify(message, bad_sig)) << kat.message;
    std::vector<std::uint8_t> bad_msg = message;
    bad_msg.push_back('!');
    EXPECT_FALSE(prepared.verify(bad_msg, signature)) << kat.message;
  }
}

// The stateless free function and the prepared-key class are the same
// verifier: equal verdicts over matched and mismatched pairs.
TEST_F(RsaTest, PreparedKeyAgreesWithStatelessVerify) {
  const RsaVerifyKey prepared(key().pub);
  Drbg rng(7, "rsa-prepared-agree");
  for (int i = 0; i < 8; ++i) {
    const std::vector<std::uint8_t> message = rng.bytes(1 + i * 13);
    auto signature = rsa_sign(key().priv, message);
    EXPECT_EQ(rsa_verify(key().pub, message, signature),
              prepared.verify(message, signature));
    signature[0] ^= 1;
    EXPECT_EQ(rsa_verify(key().pub, message, signature),
              prepared.verify(message, signature));
    // Structurally invalid: wrong length and s >= n.
    EXPECT_FALSE(prepared.verify(message, rng.bytes(17)));
    const auto too_big =
        key().pub.n.to_bytes_be((key().pub.n.bit_length() + 7) / 8);
    EXPECT_FALSE(prepared.verify(message, too_big));
  }
}

TEST_F(RsaTest, PreparedKeyBatchMatchesSingles) {
  const RsaVerifyKey prepared(key().pub);
  std::vector<std::vector<std::uint8_t>> messages;
  std::vector<std::vector<std::uint8_t>> signatures;
  for (int i = 0; i < 5; ++i) {
    messages.push_back({static_cast<std::uint8_t>('a' + i)});
    signatures.push_back(rsa_sign(key().priv, messages.back()));
  }
  signatures[3][9] ^= 0x40;  // one forgery in the batch
  std::vector<RsaBatchItem> items;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    items.push_back(RsaBatchItem{.message = messages[i],
                                 .signature = signatures[i]});
  }
  const std::vector<bool> verdicts = prepared.verify_batch(items);
  ASSERT_EQ(verdicts.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(verdicts[i], prepared.verify(messages[i], signatures[i])) << i;
    EXPECT_EQ(verdicts[i], i != 3) << i;
  }
}

}  // namespace
}  // namespace pvr::crypto
