#include "crypto/commitment.h"

#include <gtest/gtest.h>

namespace pvr::crypto {
namespace {

TEST(CommitmentTest, CommitVerifyRoundTrip) {
  Drbg rng(1, "commit");
  const std::vector<std::uint8_t> value = {1, 2, 3};
  const auto [commitment, opening] = commit(value, rng);
  EXPECT_TRUE(verify_commitment(commitment, opening));
}

TEST(CommitmentTest, BitCommitRoundTrip) {
  Drbg rng(2, "commit");
  const auto [c0, o0] = commit_bit(false, rng);
  const auto [c1, o1] = commit_bit(true, rng);
  EXPECT_TRUE(verify_commitment(c0, o0));
  EXPECT_TRUE(verify_commitment(c1, o1));
  EXPECT_NE(c0, c1);
  EXPECT_EQ(o0.value, std::vector<std::uint8_t>{0});
  EXPECT_EQ(o1.value, std::vector<std::uint8_t>{1});
}

TEST(CommitmentTest, WrongValueRejected) {
  Drbg rng(3, "commit");
  const std::vector<std::uint8_t> value = {1};
  const auto [commitment, opening] = commit(value, rng);
  CommitmentOpening forged = opening;
  forged.value = {0};
  EXPECT_FALSE(verify_commitment(commitment, forged));
}

TEST(CommitmentTest, WrongNonceRejected) {
  Drbg rng(4, "commit");
  const std::vector<std::uint8_t> value = {1};
  const auto [commitment, opening] = commit(value, rng);
  CommitmentOpening forged = opening;
  forged.nonce[0] ^= 1;
  EXPECT_FALSE(verify_commitment(commitment, forged));
}

TEST(CommitmentTest, ShortNonceRejected) {
  Drbg rng(5, "commit");
  const std::vector<std::uint8_t> value = {1};
  const auto [commitment, opening] = commit(value, rng);
  CommitmentOpening forged = opening;
  forged.nonce.pop_back();
  EXPECT_FALSE(verify_commitment(commitment, forged));
}

// Paper footnote 2: without the nonce, c could be dictionary-tested against
// H(0)/H(1). With the nonce, the same bit commits to different digests.
TEST(CommitmentTest, HidingAcrossNonces) {
  Drbg rng(6, "commit");
  const auto [c_first, o_first] = commit_bit(true, rng);
  const auto [c_second, o_second] = commit_bit(true, rng);
  EXPECT_NE(c_first, c_second);
  EXPECT_NE(o_first.nonce, o_second.nonce);
}

TEST(CommitmentTest, ValueNonceSplitUnambiguous) {
  // (value="", nonce=N) must not collide with (value=N[0..k], nonce=rest):
  // the length prefix in the hash input prevents shifting bytes between the
  // two fields. Construct the would-be collision explicitly.
  Drbg rng(7, "commit");
  const auto [commitment, opening] = commit({}, rng);
  CommitmentOpening shifted;
  shifted.value = {opening.nonce.begin(), opening.nonce.begin() + 1};
  shifted.nonce = {opening.nonce.begin() + 1, opening.nonce.end()};
  shifted.nonce.push_back(0);  // restore nonce length
  EXPECT_FALSE(verify_commitment(commitment, shifted));
}

TEST(CommitmentTest, EmptyValueCommits) {
  Drbg rng(8, "commit");
  const auto [commitment, opening] = commit({}, rng);
  EXPECT_TRUE(verify_commitment(commitment, opening));
}

}  // namespace
}  // namespace pvr::crypto
