#include "crypto/encoding.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pvr::crypto {
namespace {

TEST(HexTest, RoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(bytes), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), bytes);
  EXPECT_EQ(from_hex("0001ABFF"), bytes);
}

TEST(HexTest, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
}

TEST(HexTest, RejectsNonHex) {
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

TEST(ByteWriterReaderTest, AllTypesRoundTrip) {
  ByteWriter writer;
  writer.put_u8(0xab);
  writer.put_u16(0x1234);
  writer.put_u32(0xdeadbeef);
  writer.put_u64(0x0123456789abcdefULL);
  writer.put_bool(true);
  writer.put_bool(false);
  writer.put_string("hello");
  const std::vector<std::uint8_t> blob = {9, 8, 7};
  writer.put_bytes(blob);

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_u8(), 0xab);
  EXPECT_EQ(reader.get_u16(), 0x1234);
  EXPECT_EQ(reader.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(reader.get_bool());
  EXPECT_FALSE(reader.get_bool());
  EXPECT_EQ(reader.get_string(), "hello");
  EXPECT_EQ(reader.get_bytes(), blob);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriterReaderTest, BigEndianLayout) {
  ByteWriter writer;
  writer.put_u32(0x01020304);
  const std::vector<std::uint8_t> expected = {1, 2, 3, 4};
  EXPECT_EQ(writer.data(), expected);
}

TEST(ByteReaderTest, TruncatedThrows) {
  const std::vector<std::uint8_t> short_buf = {1, 2};
  ByteReader reader(short_buf);
  EXPECT_THROW((void)reader.get_u32(), std::out_of_range);
}

TEST(ByteReaderTest, TruncatedLengthPrefixedThrows) {
  ByteWriter writer;
  writer.put_u32(100);  // claims 100 bytes follow; none do
  ByteReader reader(writer.data());
  EXPECT_THROW((void)reader.get_bytes(), std::out_of_range);
}

TEST(ByteReaderTest, InvalidBoolThrows) {
  const std::vector<std::uint8_t> buf = {2};
  ByteReader reader(buf);
  EXPECT_THROW((void)reader.get_bool(), std::out_of_range);
}

TEST(ByteReaderTest, RemainingTracksConsumption) {
  const std::vector<std::uint8_t> buf = {1, 2, 3, 4};
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 4u);
  (void)reader.get_u16();
  EXPECT_EQ(reader.remaining(), 2u);
  EXPECT_FALSE(reader.exhausted());
}

TEST(ByteWriterReaderTest, EmptyStringAndBytes) {
  ByteWriter writer;
  writer.put_string("");
  writer.put_bytes({});
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.get_string(), "");
  EXPECT_TRUE(reader.get_bytes().empty());
  EXPECT_TRUE(reader.exhausted());
}

}  // namespace
}  // namespace pvr::crypto
