// Every adversary strategy end-to-end through the scenario runner: the
// attack must be caught by the SHIPPED evidence checks with exactly the
// expected violation class, zero false evidence against honest ASes, and
// byte-identical reports at 1/2/8 engine workers.
#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.h"

namespace pvr::scenario {
namespace {

[[nodiscard]] ScenarioSpec small_spec(const std::string& adversary,
                                      std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "test_" + adversary;
  spec.seed = seed;
  spec.adversary = adversary;
  spec.topology.as_count = 400;
  spec.topology.tier1_count = 6;
  spec.neighborhoods = 2;
  spec.min_providers = 4;
  spec.max_providers = 4;
  spec.rounds = 16;  // 8 per neighborhood
  spec.attacked_fraction = 0.5;  // one attacked, one honest
  spec.traffic.mean_interarrival_us = 2000;
  spec.batch_deadline = 10'000;
  return spec;
}

class AdversaryStrategyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AdversaryStrategyTest, CaughtAtEveryWorkerCountWithoutFalsePositives) {
  const std::string adversary = GetParam();
  std::string fingerprint_at_1;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    ScenarioSpec spec = small_spec(adversary, 21);
    spec.workers = workers;
    const ScenarioReport report = run_scenario(spec);

    // 16 rounds round-robined over 2 neighborhoods, one of them attacked.
    EXPECT_EQ(report.rounds_started, 16u);
    EXPECT_EQ(report.attacked_rounds, 8u) << adversary;
    EXPECT_EQ(report.detection_rate, 1.0) << adversary;
    EXPECT_EQ(report.false_evidence, 0u) << adversary;
    EXPECT_EQ(report.audit_failures, 0u) << adversary;
    // Every attack here is an equivocation variant; real evidence exists.
    EXPECT_GT(report.evidence_total, 0u) << adversary;

    if (workers == 1) {
      fingerprint_at_1 = report.fingerprint();
    } else {
      EXPECT_EQ(report.fingerprint(), fingerprint_at_1)
          << adversary << " diverged at " << workers << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAttacks, AdversaryStrategyTest,
                         ::testing::Values("equivocator", "batch_split",
                                           "selective_drop", "delay_replay",
                                           "colluding_pair"));

TEST(ScenarioRunnerTest, HonestWorldIsSilent) {
  const ScenarioReport report = run_scenario(small_spec("honest", 4));
  EXPECT_EQ(report.attacked_rounds, 0u);
  EXPECT_EQ(report.detection_rate, 1.0);
  EXPECT_EQ(report.evidence_total, 0u);
  EXPECT_EQ(report.false_evidence, 0u);
}

TEST(ScenarioRunnerTest, SecondSeedAlsoHolds) {
  for (const std::uint64_t seed : {91u, 92u}) {
    const ScenarioReport report = run_scenario(small_spec("equivocator", seed));
    EXPECT_EQ(report.detection_rate, 1.0) << "seed " << seed;
    EXPECT_EQ(report.false_evidence, 0u) << "seed " << seed;
  }
}

TEST(ScenarioRunnerTest, CoalescesStaggeredArrivalsUnderDeadline) {
  ScenarioSpec spec = small_spec("honest", 6);
  spec.rounds = 40;
  spec.traffic.mean_interarrival_us = 800;
  spec.batch_deadline = 30'000;  // far beyond collect_window = 4000
  const ScenarioReport coalescing = run_scenario(spec);
  EXPECT_TRUE(coalescing.coalesced);
  EXPECT_LT(coalescing.windows_fired, coalescing.rounds_started);

  // Without a batching deadline the same traffic runs one window per round.
  spec.batch_deadline = 0;
  const ScenarioReport strict = run_scenario(spec);
  EXPECT_EQ(strict.windows_fired, strict.rounds_started);
  EXPECT_FALSE(strict.coalesced);
}

TEST(ScenarioRunnerTest, AdversaryRegistryIsInSync) {
  // adversary_names() is the public registry listing; every entry must
  // construct through the factory and report the name it was asked for —
  // this is what keeps the list and make_adversary's dispatch from
  // drifting apart.
  const std::vector<std::string_view> names = adversary_names();
  EXPECT_GE(names.size(), 7u);
  for (const std::string_view name : names) {
    const std::unique_ptr<AdversaryStrategy> strategy = make_adversary(name);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), name);
  }
}

TEST(ScenarioRunnerTest, NamedScenariosAreWellFormed) {
  for (const std::string& name : scenario_names()) {
    const ScenarioSpec spec = named_scenario(name, 1, 12);
    EXPECT_EQ(spec.name, name);
    EXPECT_GE(spec.topology.as_count, 1000u);
    EXPECT_GT(spec.batch_deadline, spec.collect_window);
  }
  EXPECT_THROW(named_scenario("no_such_scenario", 1, 12),
               std::invalid_argument);
  EXPECT_THROW(make_adversary("no_such_strategy"), std::invalid_argument);
}

TEST(ScenarioRunnerTest, JsonLineCarriesTheGatedFields) {
  const ScenarioReport report = run_scenario(small_spec("equivocator", 3));
  const std::string json = report.to_json_line();
  EXPECT_NE(json.find("\"bench\":\"scenarios\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"detection_rate\":1.0000"), std::string::npos);
  EXPECT_NE(json.find("\"false_evidence\":0"), std::string::npos);
}

}  // namespace
}  // namespace pvr::scenario
